"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the paper and
prints a paper-vs-measured comparison. Absolute equality is not the
goal (the substrate is a simulator, not the authors' testbed); the
*shape* — who wins, by what factor, where crossovers fall — is.

Set ``REPRO_BENCH_FULL=1`` to run the performance benchmarks at full
workload counts and longer simulated time.
"""

import os

import pytest


def full_run() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def print_rows(headers, rows) -> None:
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows))
        for i, header in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def check_shape(name, measured, paper, rel=0.10):
    """Assert a measured value lands within ``rel`` of the paper's."""
    assert measured == pytest.approx(paper, rel=rel), (
        f"{name}: measured {measured} vs paper {paper} (rel {rel})"
    )
