"""Ablation: blast radius 1 vs 2 for victim refresh.

Section V-E: "refreshing two rows on either side of an aggressor does
not mitigate transitive attacks, as the third row now experiences
failures" — the failure just moves outward. The transitive slot, not a
wider refresh, is the fix.
"""

import random

from conftest import print_header, print_rows

from repro.attacks import AttackParams, half_double
from repro.core.mint import MintTracker
from repro.sim.engine import BankSimulator, EngineConfig


def test_ablation_blast_radius(benchmark):
    params = AttackParams(max_act=73, intervals=2000)

    def run():
        peaks = {}
        for radius in (1, 2):
            simulator = BankSimulator(
                MintTracker(transitive=False, rng=random.Random(5)),
                EngineConfig(trh=1e9, blast_radius=radius),
            )
            simulator.run(half_double(params))
            model = simulator.device.banks[0]
            peaks[radius] = {
                distance: max(
                    model.peak_disturbance(params.base_row - distance),
                    model.peak_disturbance(params.base_row + distance),
                )
                for distance in (1, 2, 3)
            }
        return peaks

    peaks = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — blast radius vs the transitive channel")
    rows = []
    for radius, by_distance in sorted(peaks.items()):
        rows.append(
            (
                f"radius {radius}",
                f"{by_distance[1]:.0f}",
                f"{by_distance[2]:.0f}",
                f"{by_distance[3]:.0f}",
            )
        )
    print_rows(
        ["Victim refresh", "peak @ d=1", "peak @ d=2", "peak @ d=3"], rows
    )
    print("radius 2 moves the unbounded accumulation from d=2 to d=3 —"
          " it does not remove it (Section V-E)")

    # Radius 1: d=2 accumulates without bound (one per REF).
    assert peaks[1][2] > 1500
    # Radius 2: d=2 is now refreshed every REF...
    assert peaks[2][2] < 300
    # ...but d=3 inherits the unbounded accumulation.
    assert peaks[2][3] > 1500
