"""Ablation: DMQ depth (1-8 entries).

DDR5 postpones up to 4 refreshes, so depth 4 is exactly sufficient.
The single-target decoy attack cannot show this (one pseudo-mitigation
per super-window survives any depth); the multi-target variant hammers
one distinct row per postponed interval, forcing the queue to hold four
pending mitigations at once — shallower queues drop targets, and the
dropped targets accumulate without bound across super-windows.
"""

import random

from conftest import print_header, print_rows

from repro.attacks import AttackParams, postponement_decoy_multi
from repro.core.dmq import DelayedMitigationQueue, DMQ_ENTRY_BITS
from repro.core.mint import MintTracker
from repro.sim.engine import run_attack


def test_ablation_dmq_depth(benchmark):
    params = AttackParams(max_act=73, intervals=600)
    targets = [55_000 + 10 * i for i in range(4)]

    def run():
        outcomes = {}
        for depth in (1, 2, 3, 4, 6, 8):
            # transitive=False isolates the paper's DMQ sizing argument
            # (the transitive slot re-submits a preserved SAR during
            # REF batches, which is accounted separately).
            tracker = DelayedMitigationQueue(
                MintTracker(transitive=False, rng=random.Random(depth)),
                max_act=73, depth=depth,
            )
            result = run_attack(
                tracker,
                postponement_decoy_multi(targets, params),
                trh=1e9,
                allow_postponement=True,
            )
            peak = max(result.max_unmitigated.get(t, 0) for t in targets)
            outcomes[depth] = (peak, tracker.overflow_drops)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — DMQ depth vs the multi-target decoy attack")
    rows = [
        (depth, peak, drops, f"{depth * DMQ_ENTRY_BITS / 8.0:.1f}")
        for depth, (peak, drops) in sorted(outcomes.items())
    ]
    print_rows(
        ["Depth", "Peak unmitigated ACTs", "Dropped entries", "Bytes"],
        rows,
    )
    print("depth 4 = the DDR5 postponement ceiling: the knee of the curve")

    # Depth 4: no drops, single-interval exposure per target.
    assert outcomes[4][1] == 0
    assert outcomes[4][0] <= 365 + 292
    # Shallower queues drop entries and leak unbounded hammering
    # (the peak scales with the trace length).
    for depth in (1, 2, 3):
        assert outcomes[depth][1] > 0
        assert outcomes[depth][0] > 10 * outcomes[4][0]
    # Deeper queues buy nothing.
    assert outcomes[8][0] <= outcomes[4][0]
