"""Ablation: mitigation-rate sweep beyond Table V's four points.

MinTRH-D scales close to linearly with the mitigation interval: the
defining trade between mitigation bandwidth (energy, RFM slowdown) and
the tolerated threshold.
"""

from conftest import print_header, print_rows

from repro.analysis.rfm_scaling import mint_rfm_config, scheme_mintrh_d
from repro.constants import REFI_PER_REFW
from repro.analysis.adaptive import AdaConfig


def test_ablation_mitigation_rate(benchmark):
    intervals = [8, 16, 24, 32, 48, 64, 73]

    def run():
        out = {}
        for interval in intervals:
            if interval == 73:
                cfg = AdaConfig()
            else:
                cfg = mint_rfm_config(interval)
            out[interval] = scheme_mintrh_d(cfg)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Ablation — MinTRH-D vs mitigation interval (ACTs)")
    rows = [
        (interval, results[interval],
         f"{results[interval] / interval:.1f}")
        for interval in intervals
    ]
    print_rows(["Interval (ACTs)", "MinTRH-D", "per-ACT ratio"], rows)

    values = [results[i] for i in intervals]
    assert values == sorted(values)  # monotone in interval
    # Near-linear scaling: halving the interval roughly halves MinTRH-D.
    assert results[16] / results[32] < 0.62
    assert results[32] / results[64] < 0.62
    # The per-ACT ratio stays within a narrow band (log-term drift only).
    ratios = [results[i] / i for i in intervals]
    assert max(ratios) / min(ratios) < 1.6
