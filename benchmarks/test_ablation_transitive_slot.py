"""Ablation: the transitive-mitigation slot (URAND over 74 vs 73).

Trade: the slot costs a slightly higher direct-attack threshold
(2763 -> 2800, selection probability 1/73 -> 1/74) and buys immunity to
Half-Double — without it the effective threshold is the 8192 victim
refreshes per tREFW (Section V-E).
"""

import random

from conftest import print_header, print_rows

from repro.analysis.patterns import pattern2_mintrh
from repro.attacks import AttackParams, half_double
from repro.constants import REFI_PER_REFW
from repro.core.mint import MintTracker
from repro.sim.engine import BankSimulator, EngineConfig


def test_ablation_transitive_slot(benchmark):
    def run():
        direct_without = pattern2_mintrh(73, transitive=False)
        direct_with = pattern2_mintrh(73, transitive=True)
        params = AttackParams(max_act=73, intervals=2000)
        peaks = {}
        for transitive in (False, True):
            simulator = BankSimulator(
                MintTracker(transitive=transitive, rng=random.Random(7)),
                EngineConfig(trh=1e9),
            )
            simulator.run(half_double(params))
            model = simulator.device.banks[0]
            peaks[transitive] = max(
                model.peak_disturbance(params.base_row - 2),
                model.peak_disturbance(params.base_row + 2),
            )
        return direct_without, direct_with, peaks

    direct_without, direct_with, peaks = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_header("Ablation — transitive slot (0-slot in the URAND draw)")
    transitive_without = REFI_PER_REFW  # 1 silent ACT per REF, unbounded
    print_rows(
        ["Design", "Direct MinTRH", "Half-Double exposure/tREFW"],
        [
            ("MINT (73 slots)", direct_without,
             f"{transitive_without} (unmitigated)"),
            ("MINT (74 slots)", direct_with,
             f"~74/run (measured peak {peaks[True]:.0f} in 2000 tREFI)"),
        ],
    )
    print(f"cost of the slot: +{direct_with - direct_without} direct MinTRH;"
          f" benefit: transitive exposure drops from 8192/tREFW to a"
          f" geometric run (measured {peaks[False]:.0f} -> {peaks[True]:.0f})")

    # The slot costs ~1.3% direct threshold...
    assert 0 < direct_with - direct_without < 0.03 * direct_without
    # ...and removes the dominant transitive channel.
    assert peaks[False] > 3 * peaks[True]
    # Without the slot, the design's real threshold is the transitive
    # one (8192 > 2763): the slot is a net win.
    assert transitive_without > direct_without
