"""Section V-C claims: classic attacks bounded by construction.

Runs the live simulator: single-sided and double-sided patterns against
MINT, measuring the worst unmitigated disturbance any victim ever
accumulates — the executable version of "MINT would limit such a
classic attack to at-most M activations".
"""

import random

from conftest import print_header, print_rows

from repro.attacks import AttackParams, double_sided, half_double, single_sided
from repro.core.mint import MintTracker
from repro.sim.engine import BankSimulator, EngineConfig


def _run(tracker, trace):
    simulator = BankSimulator(tracker, EngineConfig(trh=1e9))
    simulator.run(trace)
    return simulator.device.banks[0]


def test_classic_attacks_bounded(benchmark):
    params = AttackParams(max_act=73, intervals=2000)

    def run():
        results = {}
        model = _run(MintTracker(rng=random.Random(1)), single_sided(params))
        results["single-sided"] = max(
            model.peak_disturbance(params.base_row - 1),
            model.peak_disturbance(params.base_row + 1),
        )
        model = _run(MintTracker(rng=random.Random(2)),
                     double_sided(params, victim=params.base_row))
        results["double-sided"] = model.peak_disturbance(params.base_row)
        model = _run(MintTracker(transitive=False, rng=random.Random(3)),
                     half_double(params))
        results["half-double (no slot)"] = max(
            model.peak_disturbance(params.base_row - 2),
            model.peak_disturbance(params.base_row + 2),
        )
        model = _run(MintTracker(transitive=True, rng=random.Random(3)),
                     half_double(params))
        results["half-double (with slot)"] = max(
            model.peak_disturbance(params.base_row - 2),
            model.peak_disturbance(params.base_row + 2),
        )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Section V-C/V-E — worst victim disturbance, 2000 tREFI")
    print_rows(
        ["Attack", "Peak unmitigated disturbance", "Paper bound"],
        [
            ("single-sided", results["single-sided"], "~M-2M (73-146)"),
            ("double-sided", results["double-sided"], "~M-2M (73-146)"),
            ("half-double vs plain MINT", results["half-double (no slot)"],
             "grows 1/REF (8192 per tREFW)"),
            ("half-double vs MINT+slot", results["half-double (with slot)"],
             "bounded (mean run 74)"),
        ],
    )
    # Classic attacks: within the geometric-tail bound of ~2M + jM/74^j.
    assert results["single-sided"] <= 4 * 73 + 4
    assert results["double-sided"] <= 4 * 73 + 4
    # The transitive channel is the ONLY one that grows without the slot.
    assert results["half-double (no slot)"] > 1500
    assert results["half-double (with slot)"] < 800
