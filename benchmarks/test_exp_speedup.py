"""Wall-clock speedup of the parallel experiment runner.

A 4-point grid is run serially and through a 4-worker pool; the results
must be bit-identical, and on a machine with at least 4 usable CPUs the
pool must cut wall-clock time by >= 2x. On smaller machines the
speedup assertion is skipped (a 1-CPU container cannot exhibit
parallelism), but the determinism half still runs.
"""

import json
import time

import pytest

from conftest import print_header, print_rows

from repro.exp import run_grid
from repro.exp.presets import scaled_benchmark_grid
from repro.parallel import default_workers, fork_available


def _canonical(report) -> str:
    return json.dumps(
        [result.to_payload() for result in report.results], sort_keys=True
    )


@pytest.mark.slow
def test_exp_runner_speedup():
    grid = scaled_benchmark_grid(points=4, windows=3)
    assert len(grid) == 4

    started = time.perf_counter()
    serial = run_grid(grid, base_seed=11, n_workers=1)
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel = run_grid(grid, base_seed=11, n_workers=4)
    parallel_s = time.perf_counter() - started

    speedup = serial_s / max(parallel_s, 1e-9)
    print_header("Parallel experiment runner: 4-point grid, 4 workers")
    print_rows(
        ["mode", "wall seconds", "points"],
        [
            ["serial", f"{serial_s:.2f}", serial.total],
            ["4 workers", f"{parallel_s:.2f}", parallel.total],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )

    assert _canonical(serial) == _canonical(parallel), (
        "worker count changed experiment results"
    )

    if not fork_available():
        pytest.skip("fork start method unavailable; no process parallelism")
    cpus = default_workers()
    if cpus < 4:
        pytest.skip(
            f"only {cpus} usable CPU(s); wall-clock speedup needs >= 4"
        )
    assert speedup >= 2.0, (
        f"expected >= 2x speedup on a 4-point grid with 4 workers, "
        f"got {speedup:.2f}x ({serial_s:.2f}s -> {parallel_s:.2f}s)"
    )
