"""Extension: MINT vs PRAC — the trade the paper's Section IX frames.

PRAC (now in JESD79-5C) embeds a counter in every DRAM row: principled,
deterministic protection, but ~9% area and a tRC stretch from 48 to
52 ns that costs activation throughput on every access, protected or
not. MINT's pitch is that a 4-byte probabilistic tracker gets within 2x
of the idealized counter design without those taxes. This bench puts
the trade side by side.
"""

import random

from conftest import print_header, print_rows

from repro.analysis.adaptive import AdaConfig, worst_case_ada_mintrh
from repro.attacks import AttackParams, double_sided
from repro.perf.memctrl import MemorySystemSim, MitigationPolicy
from repro.perf.workloads import RATE_WORKLOADS, rate_mix
from repro.sim.engine import run_attack
from repro.trackers.prac import (
    PRAC_AREA_OVERHEAD,
    PracTracker,
    prac_throughput_cost,
    prac_timing,
)


def test_extension_mint_vs_prac(benchmark):
    def run():
        # Security: both stop the classic double-sided attack.
        params = AttackParams(max_act=73, intervals=1000)
        prac = PracTracker(alert_threshold=512)
        prac_result = run_attack(
            prac, double_sided(params, victim=params.base_row), trh=1200
        )
        from repro.core.mint import MintTracker

        mint_result = run_attack(
            MintTracker(rng=random.Random(1)),
            double_sided(params, victim=params.base_row),
            trh=1200,
        )
        # Performance: PRAC's slower tRC taxes a memory-bound workload.
        cores = rate_mix(RATE_WORKLOADS[1])  # lbm-like streaming
        base = MemorySystemSim(cores, MitigationPolicy("none"), seed=9)
        base_ipc = base.run(400_000.0).ipc
        prac_sim = MemorySystemSim(
            cores, MitigationPolicy("none"), timing=prac_timing(), seed=9
        )
        prac_ipc = prac_sim.run(400_000.0).ipc
        return {
            "prac_ok": not prac_result.failed,
            "mint_ok": not mint_result.failed,
            "prac_rel_perf": prac_ipc / base_ipc,
            "prac_mintrh_d": PracTracker(alert_threshold=512).mintrh_d(),
            "mint_mintrh_d": worst_case_ada_mintrh(
                AdaConfig(), double_sided=True
            )[1],
        }

    r = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Extension — MINT vs PRAC (JESD79-5C)")
    print_rows(
        ["Property", "MINT", "PRAC"],
        [
            ("protection", "probabilistic (10K-year MTTF)",
             "deterministic"),
            ("MinTRH-D", r["mint_mintrh_d"],
             f"{r['prac_mintrh_d']} (alert 512)"),
            ("SRAM / area", "4 B per bank",
             f"~{PRAC_AREA_OVERHEAD * 100:.0f}% DRAM array area"),
            ("tRC", "48 ns (unchanged)", "52 ns (+8.3%)"),
            ("memory-bound throughput", "1.000",
             f"{r['prac_rel_perf']:.3f}"),
            ("peak ACT throughput cost", "0%",
             f"{prac_throughput_cost() * 100:.1f}%"),
        ],
    )
    print("the paper's Section IX argument: if a low-cost secure tracker"
          " exists, vendors can skip PRAC's area/timing taxes — MINT is"
          " that alternative.")

    assert r["prac_ok"] and r["mint_ok"]
    # PRAC's always-on timing tax is visible on memory-bound workloads.
    assert r["prac_rel_perf"] < 0.99
    assert prac_throughput_cost() > 0.05
