"""Fig 10: MinTRH of pattern-2 as the number of attack rows varies."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.patterns import pattern2_sweep


def test_fig10_pattern2_sweep(benchmark):
    ks = [1, 5, 10, 20, 30, 40, 50, 60, 73, 90, 110, 146]
    sweep = benchmark(lambda: dict(pattern2_sweep(ks=ks)))
    print_header("Fig 10 — MinTRH vs number of attack rows k (pattern-2)")
    rows = [(k, sweep[k]) for k in ks]
    print_rows(["k (rows)", "MinTRH"], rows)
    print("paper anchors: k=1 -> 2461, k=73 -> 2763 (peak), declining after")
    # Anchor points from the paper's text.
    check_shape("k=1", sweep[1], 2461, rel=0.01)
    check_shape("k=73", sweep[73], 2763, rel=0.01)
    # Shape: rises to k = M, declines in the multi-tREFI regime.
    assert sweep[73] == max(sweep.values())
    assert sweep[146] < sweep[73]
    assert all(sweep[a] <= sweep[b] for a, b in zip(ks[:8], ks[1:9]))
