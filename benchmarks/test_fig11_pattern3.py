"""Fig 11: MinTRH of pattern-3 as copies per attack row vary."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.patterns import pattern3_sweep


def test_fig11_pattern3_sweep(benchmark):
    copies = [1, 2, 3, 4, 6, 8, 12, 18, 24, 36, 48, 64, 73]
    sweep = benchmark(lambda: dict(pattern3_sweep(copies_list=copies)))
    print_header("Fig 11 — MinTRH vs copies per attack row (pattern-3)")
    rows = [(c, sweep[c]) for c in copies]
    print_rows(["c (copies)", "MinTRH"], rows)
    print("paper shape: flat for c=1-3 (within 0.5%), drops for 4+,"
          " collapses toward full occupancy")
    base = sweep[1]
    # Flat for 1-3 copies.
    for c in (2, 3):
        check_shape(f"c={c}", sweep[c], base, rel=0.01)
    # Declines beyond.
    assert sweep[8] < sweep[4] <= base * 1.01
    assert sweep[36] < sweep[8]
    # Collapse at full occupancy: an ineffective attack.
    assert sweep[73] < base / 5
