"""Fig 16: normalized performance of MINT, MINT+RFM32, MINT+RFM16.

Paper: MINT incurs zero slowdown (mitigations ride inside tRFC);
RFM32 ~0.1-0.2%; RFM16 ~1.6% average with memory-bound outliers.
"""

from conftest import full_run, print_header, print_rows

from repro.perf.runner import evaluate_workload, geometric_mean
from repro.perf.workloads import RATE_WORKLOADS, mixed_workloads, rate_mix


def _suite():
    sim_ns = 1_000_000.0 if full_run() else 300_000.0
    workloads = [(w.name, rate_mix(w)) for w in RATE_WORKLOADS]
    if full_run():
        workloads += [
            (f"mix{i + 1}", mix) for i, mix in enumerate(mixed_workloads())
        ]
    return sim_ns, workloads


def test_fig16_normalized_performance(benchmark):
    sim_ns, workloads = _suite()

    def run():
        return [
            evaluate_workload(name, cores, sim_time_ns=sim_ns)
            for name, cores in workloads
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Fig 16 — Normalized performance (1.0 = no mitigation)")
    rows = [
        (r.workload, f"{r.mint:.3f}", f"{r.rfm32:.3f}", f"{r.rfm16:.3f}")
        for r in results
    ]
    print_rows(["Workload", "MINT", "MINT+RFM32", "MINT+RFM16"], rows)
    gmean_rfm32 = geometric_mean([r.rfm32 for r in results])
    gmean_rfm16 = geometric_mean([r.rfm16 for r in results])
    print(f"geomean: MINT 1.000 (paper 1.000), RFM32 {gmean_rfm32:.3f} "
          f"(paper 0.999), RFM16 {gmean_rfm16:.3f} (paper 0.984)")

    # Shape assertions: MINT free; RFM32 within noise of free; RFM16
    # visibly but mildly slower; ordering preserved.
    assert all(r.mint == 1.0 for r in results)
    assert gmean_rfm32 > 0.985
    assert 0.90 < gmean_rfm16 <= gmean_rfm32 + 0.01
