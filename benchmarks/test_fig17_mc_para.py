"""Fig 17: MINT vs memory-controller-side PARA at similar MinTRH.

Paper: MC-PARA's DRFMs block the bank (410 ns each, cannot be deferred)
and cost 2-9% slowdown; MINT stays ~1%.
"""

from conftest import full_run, print_header, print_rows

from repro.perf.runner import evaluate_workload, geometric_mean
from repro.perf.workloads import RATE_WORKLOADS, rate_mix


def test_fig17_mint_vs_mc_para(benchmark):
    sim_ns = 1_000_000.0 if full_run() else 300_000.0
    memory_bound = [w for w in RATE_WORKLOADS if w.mpki >= 4.0]

    def run():
        return [
            evaluate_workload(
                w.name,
                rate_mix(w),
                sim_time_ns=sim_ns,
                include_mc_para=True,
                mc_para_probability=1.0 / 74.0,
            )
            for w in memory_bound
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_header("Fig 17 — MINT vs MC-PARA (tuned to similar MinTRH)")
    rows = [
        (r.workload, f"{r.mint:.3f}", f"{r.mc_para:.3f}") for r in results
    ]
    print_rows(["Workload", "MINT", "MC-PARA"], rows)
    gmean = geometric_mean([r.mc_para for r in results])
    slowdowns = [1 - r.mc_para for r in results]
    print(f"MC-PARA geomean {gmean:.3f}; per-workload slowdown range "
          f"{min(slowdowns) * 100:.1f}%-{max(slowdowns) * 100:.1f}% "
          f"(paper: 2-9%)")

    # Shape: MINT free; MC-PARA pays a visible blocking cost everywhere
    # memory-bound, in the paper's single-digit-percent range.
    assert all(r.mint == 1.0 for r in results)
    assert all(r.mc_para < 1.0 for r in results)
    assert 0.80 < gmean < 0.99
