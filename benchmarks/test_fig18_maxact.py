"""Fig 18 (Appendix A): MinTRH-D vs MaxACT for MINT and InDRAM-PARA."""

from conftest import print_header, print_rows

from repro.analysis.maxact import maxact_sweep
from repro.dram.timing import maxact_range


def test_fig18_maxact_sweep(benchmark):
    points = benchmark(lambda: maxact_sweep(list(range(65, 81, 3)) + [73, 80]))
    points = sorted(points, key=lambda p: p.max_act)
    print_header("Fig 18 — MinTRH-D vs MaxACT (65-80)")
    rows = [
        (p.max_act, p.mint_mintrh_d, p.para_mintrh_d, f"{p.ratio:.2f}x")
        for p in points
    ]
    print_rows(["MaxACT", "MINT", "InDRAM-PARA", "gap"], rows)
    lo, hi = maxact_range()
    print(f"viable DDR5 range (speed bins): MaxACT {lo}-{hi}")
    print("paper: both grow ~linearly; gap stays ~2.7x (probability ratio;"
          " exact-threshold ratio computes to ~2.4x)")

    # Monotone growth for both designs.
    mint_values = [p.mint_mintrh_d for p in points]
    para_values = [p.para_mintrh_d for p in points]
    assert mint_values == sorted(mint_values)
    assert para_values == sorted(para_values)
    # Near-linear: endpoints ratio tracks the MaxACT ratio.
    assert mint_values[-1] / mint_values[0] < (80 / 65) * 1.1
    # Gap roughly constant across the whole sweep.
    ratios = [p.ratio for p in points]
    assert max(ratios) - min(ratios) < 0.25
    assert all(2.2 <= r <= 2.8 for r in ratios)
