"""Fig 21 (Appendix B): adaptive attacks on MINT+DMQ vs morphing point."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.adaptive import AdaConfig, ada_curve, worst_case_ada_mintrh


def test_fig21_adaptive_attack_curves(benchmark):
    mps = [500, 1000, 1300, 1500, 2000, 2600, 3000, 4000, 6000, 8000]

    def run():
        cfg = AdaConfig()
        return (
            dict(ada_curve(mps, cfg, double_sided=False)),
            dict(ada_curve(mps, cfg, double_sided=True)),
        )

    single, double = benchmark(run)
    print_header("Fig 21 — MinTRH of MINT+DMQ under ADA vs morphing point")
    rows = [(mp, single[mp], double[mp]) for mp in mps]
    print_rows(["MP (tREFI)", "ADA single-sided", "ADA double-sided"], rows)

    mp_s, peak_s = worst_case_ada_mintrh(double_sided=False)
    mp_d, peak_d = worst_case_ada_mintrh(double_sided=True)
    print(f"peaks: single {peak_s} @ MP {mp_s} (paper 2899 @ 2533-3730), "
          f"double {peak_d} @ MP {mp_d} (paper 1482 @ 1299-1456)")

    check_shape("single peak", peak_s, 2899, rel=0.03)
    check_shape("double peak", peak_d, 1482, rel=0.02)
    # Shape: double-sided becomes effective earlier than single-sided.
    assert double[1300] > double[500]
    assert single[1300] == single[500]  # not yet effective
    assert single[2600] > single[500]
    # Repeats make very large MPs slightly weaker.
    assert double[8000] < peak_d
    assert single[8000] < peak_s
