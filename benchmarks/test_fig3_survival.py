"""Fig 3: InDRAM-PARA survival probability vs position in tREFI."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.survival import survival_probability


def test_fig3_survival_curve(benchmark):
    curve = benchmark(
        lambda: [survival_probability(k) for k in range(1, 74)]
    )
    print_header("Fig 3 — Survival probability, InDRAM-PARA (overwrite)")
    rows = [
        (k, f"{curve[k - 1]:.3f}")
        for k in (1, 10, 20, 30, 40, 50, 60, 70, 73)
    ]
    print_rows(["Position K", "S_K = (1-p)^(M-K)"], rows)
    print(f"dip at position 1: {1 / curve[0]:.2f}x below position 73 "
          f"(paper: 2.7x)")
    # Paper: first position survives with 0.37, last with 1.0.
    check_shape("S_1", curve[0], 0.372, rel=0.02)
    assert curve[-1] == 1.0
    check_shape("dip factor", 1 / curve[0], 2.7, rel=0.02)
