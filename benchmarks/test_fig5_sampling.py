"""Fig 5: sampling probability of InDRAM-PARA (no-overwrite)."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.survival import sampling_probability_no_overwrite


def test_fig5_sampling_curve(benchmark):
    p = 1 / 73
    curve = benchmark(
        lambda: [
            sampling_probability_no_overwrite(k) / p for k in range(1, 74)
        ]
    )
    print_header("Fig 5 — Sampling probability, InDRAM-PARA (no-overwrite)")
    rows = [(k, f"{curve[k - 1]:.3f}") for k in (1, 10, 30, 50, 73)]
    print_rows(["Position K", "P_K / p"], rows)
    print(f"dip at position 73: {1 / curve[-1]:.2f}x below position 1 "
          f"(paper: 2.7x, absolute 1/73 -> ~1/200)")
    check_shape("P_1 relative", curve[0], 1.0, rel=0.001)
    check_shape("P_73 relative", curve[-1], 0.372, rel=0.02)
    # Absolute probability of the weakest position: ~1/200 (paper).
    check_shape("1/P_73 absolute", 1 / (curve[-1] * p), 200, rel=0.03)
