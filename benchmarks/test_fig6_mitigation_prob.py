"""Fig 6: relative mitigation probability of both PARA variants vs ideal.

Also validates the analytic curves against a Monte-Carlo run of the
actual tracker implementation (the figure the paper plots is analytic).
"""

from conftest import check_shape, print_header, print_rows

from repro.analysis.survival import (
    non_selection_probability,
    relative_mitigation_curve,
    simulate_position_mitigation_rates,
    vulnerability_factor,
)


def test_fig6_relative_mitigation(benchmark):
    curves = benchmark(
        lambda: (
            relative_mitigation_curve(overwrite=True),
            relative_mitigation_curve(overwrite=False),
        )
    )
    overwrite, no_overwrite = curves
    print_header("Fig 6 — Mitigation probability relative to ideal (p=1/73)")
    rows = [
        (k, f"{overwrite[k - 1]:.3f}", f"{no_overwrite[k - 1]:.3f}", "1.000")
        for k in (1, 20, 40, 60, 73)
    ]
    print_rows(["Position", "Overwrite", "No-Overwrite", "Ideal"], rows)
    print(f"worst-case dip: overwrite {vulnerability_factor(overwrite=True):.2f}x, "
          f"no-overwrite {vulnerability_factor(overwrite=False):.2f}x (paper: 2.7x)")
    print(f"non-selection probability with all slots used: "
          f"{non_selection_probability():.3f} (paper: 0.37)")
    check_shape("overwrite dip", vulnerability_factor(overwrite=True), 2.7, rel=0.02)
    check_shape("no-overwrite dip", vulnerability_factor(overwrite=False), 2.7, rel=0.02)
    check_shape("non-selection", non_selection_probability(), 0.37, rel=0.02)


def test_fig6_monte_carlo_validation():
    """Cross-check the analytic curve against the live tracker."""
    measured = simulate_position_mitigation_rates(
        overwrite=True, windows=15_000, seed=11
    )
    predicted = relative_mitigation_curve(overwrite=True) / 73.0
    print_header("Fig 6 (validation) — analytic vs simulated, overwrite")
    rows = [
        (k, f"{predicted[k - 1]:.5f}", f"{measured[k - 1]:.5f}")
        for k in (1, 37, 73)
    ]
    print_rows(["Position", "Analytic", "Simulated"], rows)
    assert abs(measured.sum() - predicted.sum()) / predicted.sum() < 0.05
