"""Rank-level simulation throughput must degrade sub-linearly in banks.

The rank engine dispatches each interval's ACT batch per bank through
the batched ``activate_many`` hot path, so the per-ACT cost should be
nearly flat as banks are added: driving B banks at full rate costs ~B×
the *work* of one bank (B× the ACTs), not B× the *per-ACT overhead*.
The check pins throughput (ACTs simulated per second) at 4 banks to at
least a large fraction of the single-bank figure; a regression to
per-bank per-ACT dispatch (or per-ACT allocation in the bank split)
trips it.
"""

import time

from conftest import print_header, print_rows

from repro.attacks.base import AttackParams
from repro.attacks.rank import rank_stripe
from repro.sim.engine import EngineConfig, RankSimulator
from repro.trackers.registry import bank_tracker_factory

INTERVALS = 400
MAX_ACT = 73
#: Throughput at 4 banks must retain at least this fraction of the
#: 1-bank throughput (1.0 == perfectly flat hot loop; linear
#: degradation would put it near 0.25).
MIN_RETAINED = 0.35


def _throughput(num_banks: int) -> tuple[float, int]:
    """Best-of-3 ACTs/second for a full-rate ``num_banks`` rank run."""
    params = AttackParams(
        max_act=MAX_ACT, intervals=INTERVALS, base_row=1000
    )
    trace = rank_stripe(3 * num_banks, num_banks, params)
    total_acts = trace.total_acts
    assert total_acts == num_banks * MAX_ACT * INTERVALS
    best = float("inf")
    for _ in range(3):
        simulator = RankSimulator(
            bank_tracker_factory("mint", base_seed=7),
            EngineConfig(num_banks=num_banks, trh=1e9),
        )
        started = time.perf_counter()
        simulator.run(trace)
        best = min(best, time.perf_counter() - started)
    return total_acts / best, total_acts


def test_rank_throughput_scales_sublinearly_in_banks():
    single, single_acts = _throughput(1)
    rank, rank_acts = _throughput(4)

    retained = rank / single
    print_header("Rank engine throughput vs bank count (MINT, full rate)")
    print_rows(
        ["banks", "ACTs", "ACTs/second", "retained"],
        [
            ["1", single_acts, f"{single:,.0f}", "1.00"],
            ["4", rank_acts, f"{rank:,.0f}", f"{retained:.2f}"],
        ],
    )

    assert retained >= MIN_RETAINED, (
        f"4-bank throughput retained only {retained:.2f} of the 1-bank "
        f"figure (floor {MIN_RETAINED}); the per-bank hot loop has "
        f"regressed toward per-ACT dispatch"
    )
