"""Rank-level simulation throughput: scaling in banks, kernel speedup.

Two pins on the engine's hot loop:

* Sub-linear bank scaling — the engine dispatches each interval's ACT
  batch per bank through the batched ``activate_many`` hot path, so the
  per-ACT cost should be nearly flat as banks are added: driving B
  banks at full rate costs ~B× the *work* of one bank (B× the ACTs),
  not B× the *per-ACT overhead*.
* Vectorized-kernel speedup — the NumPy activation kernel (array
  interval views + shared per-unique-row aggregation + batched
  oracle/tracker updates) must beat the scalar per-ACT engine it
  replaced by at least 2× at 8 banks, while producing a bit-identical
  :class:`~repro.sim.results.RankSimResult` (the scalar path *is* the
  pre-vectorization engine, so this doubles as the no-regression pin).
"""

import json
import time
from dataclasses import asdict

from conftest import print_header, print_rows

from repro.attacks.base import AttackParams
from repro.attacks.channel import rank_synchronized
from repro.attacks.rank import rank_stripe
from repro.sim.engine import ChannelSimulator, EngineConfig, RankSimulator
from repro.trackers.registry import (
    bank_tracker_factory,
    channel_tracker_factory,
)

INTERVALS = 400
MAX_ACT = 73
#: Throughput at 4 banks must retain at least this fraction of the
#: 1-bank throughput (1.0 == perfectly flat hot loop; linear
#: degradation would put it near 0.25).
MIN_RETAINED = 0.35
#: Floor on the vectorized kernel's speedup over the scalar engine at
#: 8 banks (measured ~3.3× for MINT on the reference machine).
MIN_KERNEL_SPEEDUP = 2.0
#: Channel throughput at 4 ranks must retain this fraction of 1-rank
#: throughput (the channel march adds only chunk-granular dispatch on
#: top of the rank hot loop; measured ~0.9 on the reference machine).
MIN_CHANNEL_RETAINED = 0.35


def _run(num_banks: int, vectorized: bool | None = None):
    """Best-of-3 (result, ACTs/second) for a full-rate rank run."""
    params = AttackParams(
        max_act=MAX_ACT, intervals=INTERVALS, base_row=1000
    )
    trace = rank_stripe(3 * num_banks, num_banks, params)
    total_acts = trace.total_acts
    assert total_acts == num_banks * MAX_ACT * INTERVALS
    best = float("inf")
    result = None
    for _ in range(3):
        simulator = RankSimulator(
            bank_tracker_factory("mint", base_seed=7),
            EngineConfig(num_banks=num_banks, trh=1e9, vectorized=vectorized),
        )
        started = time.perf_counter()
        result = simulator.run(trace)
        best = min(best, time.perf_counter() - started)
    return result, total_acts / best, total_acts


def _throughput(num_banks: int) -> tuple[float, int]:
    _, acts_per_second, total_acts = _run(num_banks)
    return acts_per_second, total_acts


def test_rank_throughput_scales_sublinearly_in_banks():
    single, single_acts = _throughput(1)
    rank, rank_acts = _throughput(4)

    retained = rank / single
    print_header("Rank engine throughput vs bank count (MINT, full rate)")
    print_rows(
        ["banks", "ACTs", "ACTs/second", "retained"],
        [
            ["1", single_acts, f"{single:,.0f}", "1.00"],
            ["4", rank_acts, f"{rank:,.0f}", f"{retained:.2f}"],
        ],
    )

    assert retained >= MIN_RETAINED, (
        f"4-bank throughput retained only {retained:.2f} of the 1-bank "
        f"figure (floor {MIN_RETAINED}); the per-bank hot loop has "
        f"regressed toward per-ACT dispatch"
    )


def test_vectorized_kernel_speedup_and_bit_identity():
    """The NumPy kernel is ≥2× the scalar engine at 8 banks, same bits."""
    scalar_result, scalar_tp, total_acts = _run(8, vectorized=False)
    vector_result, vector_tp, _ = _run(8, vectorized=True)

    speedup = vector_tp / scalar_tp
    print_header("Vectorized activation kernel vs scalar engine (MINT, 8 banks)")
    print_rows(
        ["kernel", "ACTs", "ACTs/second", "speedup"],
        [
            ["scalar", total_acts, f"{scalar_tp:,.0f}", "1.00"],
            ["vectorized", total_acts, f"{vector_tp:,.0f}", f"{speedup:.2f}"],
        ],
    )

    # Bit-identity first: a fast-but-different kernel is worthless.
    # Canonical JSON catches stray NumPy scalar types that dataclass
    # equality would let through.
    assert json.dumps(asdict(scalar_result), sort_keys=True) == json.dumps(
        asdict(vector_result), sort_keys=True
    ), "vectorized kernel changed the RankSimResult"

    assert speedup >= MIN_KERNEL_SPEEDUP, (
        f"vectorized kernel is only {speedup:.2f}x the scalar engine at "
        f"8 banks (floor {MIN_KERNEL_SPEEDUP}x)"
    )


def _run_channel(num_ranks: int):
    """Best-of-3 (result, ACTs/second) for a full-rate channel run."""
    params = AttackParams(max_act=MAX_ACT, intervals=INTERVALS, base_row=1000)
    trace = rank_synchronized(6, num_ranks, params, num_banks=2)
    total_acts = num_ranks * 2 * MAX_ACT * INTERVALS
    best = float("inf")
    result = None
    for _ in range(3):
        simulator = ChannelSimulator(
            channel_tracker_factory("mint", base_seed=7),
            EngineConfig(num_banks=2, trh=1e9, num_ranks=num_ranks),
        )
        started = time.perf_counter()
        result = simulator.run(trace)
        best = min(best, time.perf_counter() - started)
    assert result.demand_acts == total_acts
    return result, total_acts / best, total_acts


def test_channel_throughput_scales_sublinearly_in_ranks():
    """Driving R ranks costs ~R× the work of one, not R× the overhead.

    The channel march (streamed per-rank schedules, chunk-granular
    lockstep) must not regress the rank hot loop: per-ACT cost stays
    nearly flat as ranks are added.
    """
    single_result, single, single_acts = _run_channel(1)
    channel_result, channel, channel_acts = _run_channel(4)

    retained = channel / single
    print_header("Channel engine throughput vs rank count (MINT, full rate)")
    print_rows(
        ["ranks", "ACTs", "ACTs/second", "retained"],
        [
            ["1", single_acts, f"{single:,.0f}", "1.00"],
            ["4", channel_acts, f"{channel:,.0f}", f"{retained:.2f}"],
        ],
    )

    assert channel_result.num_ranks == 4
    assert retained >= MIN_CHANNEL_RETAINED, (
        f"4-rank throughput retained only {retained:.2f} of the 1-rank "
        f"figure (floor {MIN_CHANNEL_RETAINED}); the channel march has "
        f"regressed the rank hot loop"
    )
