"""Section IX comparison: MINT vs PrIDE (the closest related tracker)."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.patterns import mint_mintrh_d
from repro.analysis.pride import (
    mint_vs_pride_gap,
    pride_loss_probability,
    pride_mintrh_d,
    pride_worst_position_loss,
)


def test_section9_pride_comparison(benchmark):
    def run():
        return {
            "loss_worst_d1": pride_worst_position_loss(1),
            "loss_mean_d4": pride_loss_probability(4),
            "pride": pride_mintrh_d(4),
            "pride_dmq": pride_mintrh_d(4, with_dmq=True),
            "mint": mint_mintrh_d(),
            "gap": mint_vs_pride_gap(),
        }

    r = benchmark(run)
    print_header("Section IX — MINT vs PrIDE")
    print_rows(
        ["Quantity", "Paper", "Measured"],
        [
            ("single-entry loss probability", "63%",
             f"{r['loss_worst_d1'] * 100:.0f}%"),
            ("4-entry FIFO loss probability", "~10%",
             f"{r['loss_mean_d4'] * 100:.0f}%"),
            ("PrIDE MinTRH-D", "1750", r["pride"]),
            ("PrIDE+DMQ MinTRH-D", "1900", r["pride_dmq"]),
            ("MINT MinTRH-D", "1400", r["mint"]),
            ("PrIDE premium over MINT", "~25%",
             f"{(r['gap'] - 1) * 100:.0f}%"),
        ],
    )
    print("MINT has zero loss probability and zero tardiness for the"
          " worst-case pattern — the Section IX claim.")

    check_shape("worst loss d1", r["loss_worst_d1"], 0.63, rel=0.02)
    check_shape("mean loss d4", r["loss_mean_d4"], 0.10, rel=0.30)
    check_shape("pride", r["pride"], 1750, rel=0.07)
    check_shape("pride dmq", r["pride_dmq"], 1900, rel=0.07)
    assert r["pride"] > r["mint"]
    assert 1.05 < r["gap"] < 1.35
