"""Table I: DDR5 parameters and the derived MaxACT = 73."""

from conftest import print_header, print_rows

from repro.dram.timing import DEFAULT_TIMING


def test_table1_dram_parameters(benchmark):
    timing = benchmark(lambda: DEFAULT_TIMING)
    print_header("Table I — DRAM parameters (DDR5-5200B, 32Gb)")
    rows = [
        ("tREFW", "Refresh Window", f"{timing.t_refw_ms:.0f} ms", "32 ms"),
        ("tREFI", "Interval between REF", f"{timing.t_refi_ns:.0f} ns", "3900 ns"),
        ("tRFC", "REF execution time", f"{timing.t_rfc_ns:.0f} ns", "410 ns"),
        ("tRC", "ACT-to-ACT time", f"{timing.t_rc_ns:.0f} ns", "48 ns"),
        ("MaxACT", "(tREFI-tRFC)/tRC", str(timing.max_act), "73"),
    ]
    print_rows(["Param", "Meaning", "Measured", "Paper"], rows)
    assert timing.max_act == 73
    assert timing.t_refw_ms == 32.0
