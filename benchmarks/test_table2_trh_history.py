"""Table II: Rowhammer threshold across DRAM generations."""

from conftest import print_header, print_rows

from repro.analysis.literature import TRH_HISTORY, lowest_known_trh_d, trend_factor


def test_table2_trh_history(benchmark):
    history = benchmark(lambda: TRH_HISTORY)
    print_header("Table II — Rowhammer threshold over time")
    rows = []
    for generation in history:
        single = (
            f"{generation.trh_single_sided[0] // 1000}K"
            if generation.trh_single_sided
            else "-"
        )
        double = (
            f"{generation.trh_double_sided[0] / 1000:.1f}K-"
            f"{generation.trh_double_sided[1] / 1000:.1f}K"
            if generation.trh_double_sided
            else "-"
        )
        rows.append((generation.generation, single, double, generation.source))
    print_rows(["Generation", "TRH-S", "TRH-D", "Source"], rows)
    assert lowest_known_trh_d() == 4800
    # The decade-long ~29x drop that motivates scalable defenses.
    assert trend_factor() > 25
