"""Table III: comparison of in-DRAM trackers."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.comparison import mint_vs_prct_gap, table3

PAPER = {
    "PRCT": (623, 128 * 1024, False),
    "Mithril": (1400, 677, False),
    "PARFM": (4096, 73, True),
    "InDRAM-PARA": (3732, 1, False),
    "MINT": (1400, 1, False),
}


def test_table3_tracker_comparison(benchmark):
    rows = benchmark(table3)
    print_header("Table III — Comparison of in-DRAM trackers")
    printable = []
    for row in rows:
        paper_trh, paper_entries, paper_vulnerable = PAPER[row.name]
        printable.append(
            (
                row.name,
                row.centric,
                row.mintrh_d,
                paper_trh,
                row.entries,
                paper_entries,
                "vulnerable" if row.transitive_vulnerable else "immune",
            )
        )
    print_rows(
        ["Design", "Centric", "MinTRH-D", "(paper)", "Entries", "(paper)",
         "Transitive"],
        printable,
    )
    print(f"MINT vs idealized PRCT gap: {mint_vs_prct_gap():.2f}x (paper: 2.25x)")

    by_name = {row.name: row for row in rows}
    # Exact-ish anchors.
    check_shape("PRCT", by_name["PRCT"].mintrh_d, 623, rel=0.02)
    check_shape("Mithril", by_name["Mithril"].mintrh_d, 1400, rel=0.02)
    check_shape("MINT", by_name["MINT"].mintrh_d, 1400, rel=0.01)
    assert by_name["PARFM"].mintrh_d == 4096
    # InDRAM-PARA: our exact-threshold model lands ~9% below the paper's
    # 3732 (the paper scales the 2.7x probability ratio directly).
    check_shape("InDRAM-PARA", by_name["InDRAM-PARA"].mintrh_d, 3732, rel=0.12)
    # Ordering (the table's message).
    assert (
        by_name["PRCT"].mintrh_d
        < by_name["MINT"].mintrh_d
        <= by_name["Mithril"].mintrh_d * 1.02
        < by_name["InDRAM-PARA"].mintrh_d
        < by_name["PARFM"].mintrh_d
    )
    # Transitive column.
    for name, (_t, _e, vulnerable) in PAPER.items():
        assert by_name[name].transitive_vulnerable == vulnerable
