"""Table IV: refresh postponement with and without the DMQ.

Includes the executable demonstration of the two key cells: the 478K
deterministic blow-up for MINT without DMQ, and the DMQ capping the
same attack at +292 activations.
"""

import random

from conftest import check_shape, print_header, print_rows

from repro.analysis.postponement import table4
from repro.attacks import AttackParams, postponement_decoy
from repro.core.dmq import DelayedMitigationQueue
from repro.core.mint import MintTracker
from repro.sim.engine import run_attack

PAPER = {
    "PRCT": (623, 769, 769),
    "Mithril": (1400, 1546, 1546),
    "PARFM": (4096, 478_000, 4242),
    "InDRAM-PARA": (3732, 21_300, 3650),
    "MINT": (1400, 478_000, 1482),
}


def test_table4_postponement(benchmark):
    rows = benchmark(table4)
    print_header("Table IV — Impact of refresh postponement and DMQ")
    printable = []
    for row in rows:
        paper = PAPER[row.name]
        printable.append(
            (
                row.name,
                row.entries,
                f"{row.mintrh_d_no_postpone} ({paper[0]})",
                f"{row.mintrh_d_no_dmq} ({paper[1]})",
                f"{row.mintrh_d_with_dmq} ({paper[2]})",
            )
        )
    print_rows(
        ["Design", "Entries", "NoPostpone (paper)", "No DMQ (paper)",
         "With DMQ (paper)"],
        printable,
    )
    print("note: InDRAM-PARA 'No DMQ' deviates from the paper's 21.3K —"
          " our attacker sweeps acts-per-superwindow and finds a stronger"
          " pattern; the conclusion (demolished without DMQ) is identical.")

    by_name = {row.name: row for row in rows}
    check_shape("MINT no-DMQ", by_name["MINT"].mintrh_d_no_dmq, 478_000, rel=0.01)
    check_shape("MINT with DMQ", by_name["MINT"].mintrh_d_with_dmq, 1482, rel=0.02)
    check_shape("PARFM with DMQ", by_name["PARFM"].mintrh_d_with_dmq, 4242, rel=0.01)
    check_shape("PRCT postponed", by_name["PRCT"].mintrh_d_no_dmq, 769, rel=0.02)
    check_shape("Mithril postponed", by_name["Mithril"].mintrh_d_no_dmq, 1546, rel=0.02)
    # InDRAM-PARA: collapse without DMQ (>> baseline), repaired with DMQ.
    para = by_name["InDRAM-PARA"]
    assert para.mintrh_d_no_dmq > 4 * para.mintrh_d_no_postpone
    assert para.mintrh_d_with_dmq < 1.1 * para.mintrh_d_no_postpone + 160


def test_table4_executable_demonstration():
    """Run the decoy attack through the live simulator (both cells)."""
    params = AttackParams(max_act=73, intervals=1000)
    target = 42_000

    plain = MintTracker(rng=random.Random(1))
    r1 = run_attack(plain, postponement_decoy(target, params), trh=1e9,
                    allow_postponement=True)
    queued = DelayedMitigationQueue(MintTracker(rng=random.Random(2)),
                                    max_act=73, depth=4)
    r2 = run_attack(queued, postponement_decoy(target, params), trh=1e9,
                    allow_postponement=True)
    print_header("Table IV (live) — decoy attack, 1000 tREFI slice")
    print_rows(
        ["Tracker", "peak unmitigated ACTs on target"],
        [("MINT", r1.max_unmitigated[target]),
         ("MINT+DMQ", r2.max_unmitigated[target])],
    )
    scale = 8192 / params.intervals
    print(f"scaled to a full tREFW: MINT ~{r1.max_unmitigated[target] * scale:,.0f}"
          f" (paper: 478K), MINT+DMQ stays {r2.max_unmitigated[target]}")
    assert r1.max_unmitigated[target] == 73 * 4 * (params.intervals // 5)
    assert r2.max_unmitigated[target] <= 365 + 292
