"""Table V: MINT co-designed with RFM scales to lower thresholds."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.rfm_scaling import table5

PAPER = [2700, 1482, 689, 356]


def test_table5_rfm_scaling(benchmark):
    rows = benchmark(table5)
    print_header("Table V — MinTRH-D of MINT and MINT+RFM (with DMQ, ADA)")
    printable = [
        (row.name, row.relative_rate, row.interval_acts, row.mintrh_d, paper)
        for row, paper in zip(rows, PAPER)
    ]
    print_rows(
        ["Scheme", "Mitigation rate", "Interval (ACTs)", "MinTRH-D", "Paper"],
        printable,
    )
    for row, paper in zip(rows, PAPER):
        check_shape(row.name + row.relative_rate, row.mintrh_d, paper, rel=0.05)
    # Threshold scales ~linearly with the mitigation interval.
    ratio = rows[1].mintrh_d / rows[3].mintrh_d
    assert 3.3 <= ratio <= 4.9  # ~4x from RFM16
