"""Table VII: MinTRH-D sensitivity to the Target Time-to-Fail."""

import pytest

from conftest import check_shape, print_header, print_rows

from repro.analysis.rfm_scaling import ttf_sensitivity
from repro.analysis.saroiu_wolman import mttf_years, target_refw_probability
from repro.constants import CONCURRENT_BANKS

PAPER = {
    1e3: (1400, 651, 336),
    1e4: (1480, 689, 356),
    1e5: (1570, 726, 375),
    1e6: (1640, 763, 395),
}


def test_table7_ttf_sensitivity(benchmark):
    rows = benchmark(lambda: ttf_sensitivity([1e3, 1e4, 1e5, 1e6]))
    print_header("Table VII — MinTRH-D vs Target-TTF (per bank)")
    printable = []
    for row in rows:
        target = row["target_ttf_years"]
        system_years = target / CONCURRENT_BANKS
        paper = PAPER[target]
        printable.append(
            (
                f"{target:,.0f} y",
                f"{system_years:,.0f} y",
                f"{row['mint']} ({paper[0]})",
                f"{row['rfm32']} ({paper[1]})",
                f"{row['rfm16']} ({paper[2]})",
            )
        )
    print_rows(
        ["Target-TTF (bank)", "MTTF (system)", "MINT (paper)",
         "+RFM32 (paper)", "+RFM16 (paper)"],
        printable,
    )
    for row in rows:
        paper = PAPER[row["target_ttf_years"]]
        check_shape("mint", row["mint"], paper[0], rel=0.03)
        check_shape("rfm32", row["rfm32"], paper[1], rel=0.05)
        check_shape("rfm16", row["rfm16"], paper[2], rel=0.06)
    # Equation 8 sanity: the target probability reproduces the MTTF.
    assert mttf_years(target_refw_probability(1e4)) == pytest.approx(1e4)
