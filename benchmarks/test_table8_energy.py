"""Table VIII: memory energy overheads of MINT and MINT+RFM.

Paper: ACT energy 1.06x / 1.10x / 1.25x; total 1.01x / 1.01x / 1.03x.
The harness derives the ACT multipliers from live simulation counters
(demand ACTs from the perf model, mitigations from the schemes' rates)
and folds in the TRNG/DMQ microwatt constants.
"""

from conftest import check_shape, full_run, print_header, print_rows

from repro.perf.energy import scheme_energy, table8
from repro.perf.memctrl import MemorySystemSim, MitigationPolicy
from repro.perf.workloads import RATE_WORKLOADS, rate_mix

PAPER = {
    "Base (No Mitig)": (1.00, 1.00),
    "MINT": (1.06, 1.01),
    "MINT+RFM32": (1.10, 1.01),
    "MINT+RFM16": (1.25, 1.03),
}


def test_table8_energy_from_model(benchmark):
    rows = benchmark(table8)
    print_header("Table VIII — Memory energy (normalized to no mitigation)")
    printable = []
    for row in rows:
        paper_act, paper_total = PAPER[row.scheme]
        printable.append(
            (
                row.scheme,
                f"{row.act_energy:.2f}x ({paper_act:.2f}x)",
                f"{row.non_act_energy:.2f}x",
                f"{row.total:.2f}x ({paper_total:.2f}x)",
            )
        )
    print_rows(
        ["Config", "ACT energy (paper)", "Non-ACT", "Total (paper)"],
        printable,
    )
    by_name = {row.scheme: row for row in rows}
    check_shape("MINT act", by_name["MINT"].act_energy, 1.06, rel=0.03)
    check_shape("RFM32 act", by_name["MINT+RFM32"].act_energy, 1.10, rel=0.05)
    check_shape("RFM16 act", by_name["MINT+RFM16"].act_energy, 1.25, rel=0.08)
    for scheme in ("MINT", "MINT+RFM32", "MINT+RFM16"):
        assert by_name[scheme].total < 1.04


def test_table8_from_simulation_counters():
    """Same table, but with demand ACT counts measured in the DES."""
    sim_ns = 1_000_000.0 if full_run() else 400_000.0
    sim = MemorySystemSim(rate_mix(RATE_WORKLOADS[5]), MitigationPolicy("none"))
    result = sim.run(sim_ns)
    intervals = sim_ns / 3900.0
    demand = result.demand_activations
    banks = 32
    rows = [
        scheme_energy("MINT", demand, int(intervals * banks)),
        scheme_energy("MINT+RFM32", demand, int(intervals * banks + demand / 32)),
        scheme_energy("MINT+RFM16", demand, int(intervals * banks + demand / 16)),
    ]
    print_header("Table VIII (live counters) — cactuBSSN-like workload")
    print_rows(
        ["Scheme", "ACT", "Total"],
        [(r.scheme, f"{r.act_energy:.3f}x", f"{r.total:.3f}x") for r in rows],
    )
    # Same ordering and magnitude as the paper.
    assert rows[0].act_energy < rows[1].act_energy < rows[2].act_energy
    assert rows[2].total < 1.06
