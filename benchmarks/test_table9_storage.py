"""Table IX: per-bank SRAM overhead of trackers (Graphene vs MINT)."""

from conftest import check_shape, print_header, print_rows

from repro.analysis.storage import (
    graphene_storage,
    mint_dmq_storage,
    mint_impress_storage,
    mint_storage,
    table9,
)


def test_table9_sram_overheads(benchmark):
    rows = benchmark(table9)
    print_header("Table IX — Per-bank SRAM overhead (per-rank is 32x)")
    printable = [
        (
            f"TRH-D = {row['trh_d']}",
            f"{row['graphene_kb_per_bank']:.1f} KB",
            f"{row['mint_dmq_bytes_per_bank']:.1f} B",
        )
        for row in rows
    ]
    print_rows(["Device threshold", "Graphene", "MINT+DMQ"], printable)
    print("paper: Graphene 56.5 KB @ 3K / 565 KB @ 300; MINT+DMQ 15 bytes")

    check_shape("graphene@3k", rows[0]["graphene_kb_per_bank"], 56.5, rel=0.01)
    check_shape("graphene@300", rows[1]["graphene_kb_per_bank"], 565.0, rel=0.01)
    assert rows[0]["mint_dmq_bytes_per_bank"] < 15.0
    # MINT's storage is threshold-independent.
    assert rows[0]["mint_dmq_bytes_per_bank"] == rows[1]["mint_dmq_bytes_per_bank"]


def test_section8c_storage_breakdown():
    """Section VIII-C: 4 bytes MINT, 9.5 bytes DMQ, <15 total, ~17 with
    the Row-Press extension."""
    print_header("Section VIII-C — storage breakdown")
    budgets = [mint_storage(), mint_dmq_storage(), mint_impress_storage()]
    print_rows(
        ["Structure", "Bits", "Bytes"],
        [(b.name, b.bits, f"{b.bytes:.1f}") for b in budgets],
    )
    assert mint_storage().bytes == 4.0
    assert mint_dmq_storage().bytes < 15.0
    assert 15.0 <= mint_impress_storage().bytes <= 17.5
