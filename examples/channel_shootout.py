#!/usr/bin/env python3
"""Channel shootout: channel-scale attacks vs ranks of tracker instances.

The channel-level edition of the rank shootout. A DDR5 channel carries
``num_ranks`` full ranks behind one command bus — each rank with its
own per-bank trackers and its own refresh schedule — and the channel
attacks exploit exactly that scale:

* ``rank-rotation`` deals a classic pattern's intervals round-robin
  across the ranks, so every rank's trackers see a slow, gappy slice;
* ``rank-synchronized`` hammers the many-sided stripe on *every* rank
  in lockstep — the channel-scale TRRespass, stressing the sum of all
  rank tracker budgets at once;
* ``channel-stripe-decoy`` plays the §VI-B postponement decoy on the
  target rank while sibling ranks burn the bus with decoy stripes.

The sweep is one base ``Scenario`` crossed into a grid — trackers ×
channel attacks × rank counts (``Scenario.sweep``) — and handed to the
``repro.exp`` runner; each point executes through the ``Session``
facade on the ``ChannelSimulator``, with per-rank derived seeds and
streaming per-rank schedules (memory stays flat in the horizon).

Run:  python examples/channel_shootout.py [--ranks N] [--banks N]
      [--workers N] [--store FILE]
"""

import argparse
from collections import defaultdict

from repro.exp import ResultStore, run_grid
from repro.exp.presets import RANK_TRACKERS, channel_shootout_grid

TRH_D = 1500
INTERVALS = 1000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=None,
                        help="run a single rank count instead of the "
                             "default (1, 2) sweep")
    parser.add_argument("--banks", type=int, default=2,
                        help="banks per rank (default 2)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: usable CPUs)")
    parser.add_argument("--store", default=None,
                        help="JSON result store for incremental re-runs")
    args = parser.parse_args()

    ranks = (args.ranks,) if args.ranks else (1, 2)
    grid = channel_shootout_grid(
        ranks=ranks, banks=(args.banks,), trh=TRH_D, intervals=INTERVALS
    )
    print(f"device threshold TRH-D = {TRH_D}; {INTERVALS} tREFI per attack; "
          f"rank counts {ranks} x {args.banks} banks\n")

    store = ResultStore(args.store) if args.store else None
    report = run_grid(grid, base_seed=1, n_workers=args.workers, store=store)

    # One table block per rank count: tracker x attack, with the failing
    # ranks called out (a channel fails if any rank fails).
    by_ranks = defaultdict(list)
    for result in report.results:
        by_ranks[result.num_ranks].append(result)
    for num_ranks in sorted(by_ranks):
        print(f"--- {num_ranks}-rank channel ---")
        for result in by_ranks[num_ranks]:
            status = "FLIP" if result.failed else "ok"
            failed = result.metrics.get("failed_ranks", [])
            detail = f" failed ranks {failed}" if failed else ""
            print(f"  [{status:>4}] {result.tracker:<8} vs "
                  f"{result.trace:<56} "
                  f"mitigations={result.metrics['mitigations']:<6}{detail}")
        print()

    survivors = sorted(
        {r.tracker for r in report.results}
        - {r.tracker for r in report.results if r.failed}
    )
    print(f"[{report.summary()}]")
    print(f"channel-level survivors across {sorted(by_ranks)} ranks: "
          f"{', '.join(survivors) or 'none'} "
          f"(of {', '.join(RANK_TRACKERS)})")


if __name__ == "__main__":
    main()
