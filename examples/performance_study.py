#!/usr/bin/env python3
"""Performance study: what mitigation costs at the memory system.

Reproduces the Fig 16 / Fig 17 story on a few representative workloads:
MINT rides inside tRFC (free); RFM32 defers into idle bank slots
(~free); RFM16 doubles the RFM rate (~1-2%); MC-side PARA issues
blocking DRFMs (2-9%).

Run:  python examples/performance_study.py [--full]
"""

import sys

from repro.perf.runner import evaluate_workload, geometric_mean
from repro.perf.workloads import RATE_WORKLOADS, mixed_workloads, rate_mix


def main() -> None:
    full = "--full" in sys.argv
    sim_ns = 1_500_000.0 if full else 400_000.0
    picks = RATE_WORKLOADS if full else [
        w for w in RATE_WORKLOADS
        if w.name in ("mcf_r", "lbm_r", "bwaves_r", "xalancbmk_r",
                      "blender_r", "leela_r")
    ]

    print(f"simulating {sim_ns / 1e6:.1f} ms of DDR5 time per scheme, "
          f"4-core rate workloads\n")
    print(f"{'workload':<14} {'MINT':>7} {'RFM32':>7} {'RFM16':>7} "
          f"{'MC-PARA':>8}")
    print("-" * 47)
    results = []
    for workload in picks:
        result = evaluate_workload(
            workload.name,
            rate_mix(workload),
            sim_time_ns=sim_ns,
            include_mc_para=True,
        )
        results.append(result)
        print(f"{result.workload:<14} {result.mint:>7.3f} "
              f"{result.rfm32:>7.3f} {result.rfm16:>7.3f} "
              f"{result.mc_para:>8.3f}")
    if full:
        for index, mix in enumerate(mixed_workloads()[:6]):
            result = evaluate_workload(
                f"mix{index + 1}", mix, sim_time_ns=sim_ns,
                include_mc_para=True,
            )
            results.append(result)
            print(f"{result.workload:<14} {result.mint:>7.3f} "
                  f"{result.rfm32:>7.3f} {result.rfm16:>7.3f} "
                  f"{result.mc_para:>8.3f}")

    print("-" * 47)
    print(f"{'geomean':<14} {1.0:>7.3f} "
          f"{geometric_mean([r.rfm32 for r in results]):>7.3f} "
          f"{geometric_mean([r.rfm16 for r in results]):>7.3f} "
          f"{geometric_mean([r.mc_para for r in results]):>8.3f}")
    print("\npaper: MINT 0%, RFM32 0.1-0.2%, RFM16 ~1.6%, MC-PARA 2-9%."
          "\nMC-PARA pays because DRFM blocks the bank and cannot be"
          " deferred; MINT's mitigations hide inside the refresh budget.")


if __name__ == "__main__":
    main()
