#!/usr/bin/env python3
"""Refresh postponement: the decoy attack and the DMQ fix (Section VI).

DDR5 lets the memory controller postpone up to four refreshes. This
script runs the decoy attack that exploits it — the attacker fills the
tracker's visible window with decoys and hammers the target during the
postponed intervals — with and without the Delayed Mitigation Queue,
then sweeps the DMQ depth.

The whole study is one ``repro.exp`` grid (the ``postponement``
preset, built from a base ``Scenario`` via ``Scenario.sweep``): MINT ±
DMQ against the single- and multi-target decoy attacks, each point
executed through the ``Session`` facade, fanned out over the process
pool and cacheable via --store.

Run:  python examples/postponement_study.py [--workers N] [--store FILE]
"""

import argparse

from repro.analysis.empirical import exposure_row, result_matrix
from repro.exp import ResultStore, run_grid
from repro.exp.presets import POSTPONEMENT_TARGET, postponement_grid

TARGET = POSTPONEMENT_TARGET
DEPTHS = (1, 2, 3, 4, 6, 8)
INTERVALS = 2000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: usable CPUs)")
    parser.add_argument("--store", default=None,
                        help="JSON result store for incremental re-runs")
    args = parser.parse_args()

    window_scale = 8192 / INTERVALS
    print("decoy + postponement attack, 2000 tREFI slice "
          f"(scale x{window_scale:.1f} for a full 32 ms window)\n")

    grid = postponement_grid(intervals=INTERVALS, depths=DEPTHS)
    store = ResultStore(args.store) if args.store else None
    report = run_grid(grid, base_seed=1, n_workers=args.workers, store=store)
    matrix = result_matrix(report.results)

    plain = matrix[("mint", "decoy")]
    peak = plain.max_unmitigated(TARGET)
    print(f"MINT without DMQ : {peak:,.0f} unmitigated ACTs on the target "
          f"(~{peak * window_scale:,.0f} per tREFW; paper: 478K)")

    queued = matrix[("mint+dmq4", "decoy")]
    print(f"MINT with DMQ(4) : {queued.max_unmitigated(TARGET):,.0f} "
          f"unmitigated ACTs (paper bound: 365 + 292)\n")

    # Depth sweep against the *multi-target* decoy attack (one distinct
    # target per postponed interval), which is what actually stresses
    # the queue depth.
    targets = [TARGET + 10 * i for i in range(4)]
    print(f"{'DMQ depth':>10} {'peak ACTs':>12} {'dropped':>9} "
          f"{'storage bytes':>14}")
    for depth in DEPTHS:
        sweep_label = f"mint(transitive=False)+dmq{depth}"
        row = exposure_row(matrix[(sweep_label, "decoy-multi")], targets)
        print(f"{depth:>10} {row['peak_unmitigated']:>12,.0f} "
              f"{row['overflow_drops']:>9,} {row['storage_bytes']:>14.1f}")

    print(f"\n[{report.summary()}]")
    print("\ndepth 4 matches the DDR5 postponement ceiling: shallower "
          "queues drop targets whose hammering then grows without bound; "
          "deeper queues only add storage.")


if __name__ == "__main__":
    main()
