#!/usr/bin/env python3
"""Refresh postponement: the decoy attack and the DMQ fix (Section VI).

DDR5 lets the memory controller postpone up to four refreshes. This
script runs the decoy attack that exploits it — the attacker fills the
tracker's visible window with decoys and hammers the target during the
postponed intervals — with and without the Delayed Mitigation Queue,
then sweeps the DMQ depth.

Run:  python examples/postponement_study.py
"""

import random

from repro.attacks import (
    AttackParams,
    postponement_decoy,
    postponement_decoy_multi,
)
from repro.core import DelayedMitigationQueue, MintTracker
from repro.sim.engine import run_attack

TARGET = 60_000


def run_decoy(tracker, params):
    return run_attack(
        tracker,
        postponement_decoy(TARGET, params),
        trh=1e9,  # measure exposure rather than stopping at a flip
        allow_postponement=True,
    )


def main() -> None:
    params = AttackParams(max_act=73, intervals=2000)
    window_scale = 8192 / params.intervals

    print("decoy + postponement attack, 2000 tREFI slice "
          f"(scale x{window_scale:.1f} for a full 32 ms window)\n")

    plain = run_decoy(MintTracker(rng=random.Random(1)), params)
    peak = plain.max_unmitigated[TARGET]
    print(f"MINT without DMQ : {peak:,} unmitigated ACTs on the target "
          f"(~{peak * window_scale:,.0f} per tREFW; paper: 478K)")

    queued = run_decoy(
        DelayedMitigationQueue(MintTracker(rng=random.Random(2)),
                               max_act=73, depth=4),
        params,
    )
    print(f"MINT with DMQ(4) : {queued.max_unmitigated[TARGET]:,} "
          f"unmitigated ACTs (paper bound: 365 + 292)\n")

    # Depth sweep against the *multi-target* decoy attack (one distinct
    # target per postponed interval), which is what actually stresses
    # the queue depth.
    targets = [TARGET + 10 * i for i in range(4)]
    print(f"{'DMQ depth':>10} {'peak ACTs':>12} {'dropped':>9} "
          f"{'storage bytes':>14}")
    for depth in (1, 2, 3, 4, 6, 8):
        tracker = DelayedMitigationQueue(
            MintTracker(transitive=False, rng=random.Random(depth)),
            max_act=73,
            depth=depth,
        )
        result = run_attack(
            tracker,
            postponement_decoy_multi(targets, params),
            trh=1e9,
            allow_postponement=True,
        )
        peak = max(result.max_unmitigated.get(t, 0) for t in targets)
        print(f"{depth:>10} {peak:>12,} {tracker.overflow_drops:>9,} "
              f"{tracker.storage_bits / 8:>14.1f}")

    print("\ndepth 4 matches the DDR5 postponement ceiling: shallower "
          "queues drop targets whose hammering then grows without bound; "
          "deeper queues only add storage.")


if __name__ == "__main__":
    main()
