#!/usr/bin/env python3
"""Quickstart: protect a DRAM bank with MINT.

Runs the classic double-sided Rowhammer attack against an unprotected
bank and against MINT, at a modern threshold (TRH-D = 4800, the lowest
LPDDR4 value from the paper's Table II), and shows the outcome.

Run:  python examples/quickstart.py
"""

import random

from repro import MintTracker, run_attack
from repro.attacks import AttackParams, double_sided
from repro.trackers import NullTracker


def main() -> None:
    # One refresh window's worth of hammering (8192 tREFI), full rate.
    params = AttackParams(max_act=73, intervals=8192)
    trace = double_sided(params, victim=1000)
    trh_d = 4800

    print(f"attack: {trace.name}, {trace.total_acts:,} activations "
          f"over {len(trace)} tREFI (one 32 ms refresh window)")
    print(f"device threshold: TRH-D = {trh_d}\n")

    unprotected = run_attack(NullTracker(), trace, trh=trh_d)
    print(f"unprotected bank : {unprotected.summary()}")
    if unprotected.failed:
        flip = unprotected.flips[0]
        print(f"                   first flip in row {flip.row} after "
              f"{flip.disturbance:.0f} disturbances "
              f"({flip.time_ns / 1e6:.2f} ms into the window)")

    tracker = MintTracker(max_act=73, transitive=True, rng=random.Random(42))
    protected = run_attack(tracker, trace, trh=trh_d)
    print(f"with MINT        : {protected.summary()}")
    print(f"                   {protected.mitigations} victim refreshes "
          f"({protected.transitive_mitigations} transitive), "
          f"tracker storage: {tracker.storage_bits // 8} bytes")

    assert unprotected.failed and not protected.failed
    print("\nMINT (single-entry, 4 bytes per bank) stopped the attack "
          "the unprotected bank failed in milliseconds.")


if __name__ == "__main__":
    main()
