#!/usr/bin/env python3
"""Rank shootout: cross-bank attacks vs per-bank tracker instances.

The rank-level edition of the tracker shootout. Every DDR5 bank carries
its own tracker, but refresh scheduling — and its postponement — is a
rank-wide decision, and attackers exploit exactly that seam:

* ``bank-interleaved`` spreads a classic pattern across the banks, so
  each tracker sees only a slice of the aggressor activity;
* ``cross-bank-decoy`` burns the trackers' one visible interval on
  sibling-bank decoys while the REF debt lets the target bank soak
  unmitigated hammering (the §VI-B blow-up, rank edition);
* ``rank-stripe`` drives every bank at full rate with its own
  TRRespass aggressor set, stretching the rank's total tracker budget.

The sweep is one base ``Scenario`` crossed into a grid — trackers ×
cross-bank attacks × bank counts (``Scenario.sweep``) — and handed to
the ``repro.exp`` runner; each point executes through the ``Session``
facade on the ``RankSimulator`` with one seeded tracker instance per
bank.

Run:  python examples/rank_shootout.py [--banks N] [--workers N]
      [--store FILE]
"""

import argparse
from collections import defaultdict

from repro.exp import ResultStore, run_grid
from repro.exp.presets import RANK_TRACKERS, rank_shootout_grid

TRH_D = 1500
INTERVALS = 1000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--banks", type=int, default=None,
                        help="run a single bank count instead of the "
                             "default (2, 4) sweep")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: usable CPUs)")
    parser.add_argument("--store", default=None,
                        help="JSON result store for incremental re-runs")
    args = parser.parse_args()

    banks = (args.banks,) if args.banks else (2, 4)
    grid = rank_shootout_grid(banks=banks, trh=TRH_D, intervals=INTERVALS)
    print(f"device threshold TRH-D = {TRH_D}; {INTERVALS} tREFI per attack; "
          f"bank counts {banks}\n")

    store = ResultStore(args.store) if args.store else None
    report = run_grid(grid, base_seed=1, n_workers=args.workers, store=store)

    # One table block per bank count: tracker x attack, with the failing
    # banks called out (a rank fails if any bank fails).
    by_banks = defaultdict(list)
    for result in report.results:
        by_banks[result.num_banks].append(result)
    for num_banks in sorted(by_banks):
        print(f"--- {num_banks}-bank rank ---")
        for result in by_banks[num_banks]:
            status = "FLIP" if result.failed else "ok"
            failed = result.metrics.get("failed_banks", [])
            detail = f" failed banks {failed}" if failed else ""
            print(f"  [{status:>4}] {result.tracker:<8} vs "
                  f"{result.trace:<48} "
                  f"mitigations={result.metrics['mitigations']:<6}{detail}")
        print()

    survivors = sorted(
        {r.tracker for r in report.results}
        - {r.tracker for r in report.results if r.failed}
    )
    print(f"[{report.summary()}]")
    print(f"rank-level survivors across {sorted(by_banks)} banks: "
          f"{', '.join(survivors) or 'none'} "
          f"(of {', '.join(RANK_TRACKERS)})")


if __name__ == "__main__":
    main()
