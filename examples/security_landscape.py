#!/usr/bin/env python3
"""Security landscape: render the paper's key figures in the terminal.

Plots Fig 3/5 (InDRAM-PARA's non-uniformity), Fig 10/11 (MINT's
worst-case patterns), Fig 18 (MaxACT sensitivity) and Fig 21 (adaptive
attacks) as ASCII charts, straight from the analysis package.

Run:  python examples/security_landscape.py
"""

from repro.analysis.adaptive import ada_curve
from repro.analysis.figures import ascii_multi_plot, ascii_plot
from repro.analysis.maxact import maxact_sweep
from repro.analysis.patterns import pattern2_sweep, pattern3_sweep
from repro.analysis.survival import (
    sampling_probability_no_overwrite,
    survival_probability,
)


def main() -> None:
    positions = list(range(1, 74))
    print(ascii_multi_plot(
        {
            "survival (Fig 3, overwrite)": [
                survival_probability(k) for k in positions
            ],
            "sampling/p (Fig 5, no-overwrite)": [
                sampling_probability_no_overwrite(k) * 73 for k in positions
            ],
        },
        height=10,
    ))
    print("\nboth PARA variants dip to 0.37 at opposite ends — the 2.7x"
          " hole MINT closes.\n")

    ks = list(range(1, 147, 3))
    print(ascii_plot(
        [v for _, v in pattern2_sweep(ks=ks)],
        xs=ks,
        height=10,
        label="Fig 10 — MinTRH vs attack rows k (peak at k = 73)",
    ))
    print()

    copies = list(range(1, 74, 2))
    print(ascii_plot(
        [v for _, v in pattern3_sweep(copies_list=copies)],
        xs=copies,
        height=10,
        label="Fig 11 — MinTRH vs copies per row (collapses for c >= 4)",
    ))
    print()

    points = maxact_sweep(list(range(65, 81)))
    print(ascii_multi_plot(
        {
            "MINT (Fig 18)": [p.mint_mintrh_d for p in points],
            "InDRAM-PARA": [p.para_mintrh_d for p in points],
        },
        height=10,
    ))
    print("\nMaxACT 65..80: both scale linearly; the gap stays ~2.4-2.7x.\n")

    mps = list(range(200, 8000, 200))
    print(ascii_multi_plot(
        {
            "ADA single-sided (Fig 21)": [
                v for _, v in ada_curve(mps, double_sided=False)
            ],
            "ADA double-sided": [
                v for _, v in ada_curve(mps, double_sided=True)
            ],
        },
        height=10,
    ))
    print("\nadaptive attacks peak at 2899 (single) / 1482 (double):"
          " MINT+DMQ's reported thresholds.")


if __name__ == "__main__":
    main()
