#!/usr/bin/env python3
"""Threshold planner: pick a MINT configuration for a device.

Given a device's measured double-sided Rowhammer threshold, the planner
uses the paper's analysis to choose the cheapest MINT configuration
that protects it (plain MINT, MINT+RFM32, MINT+RFM16), and reports the
security margin, storage, and expected costs.

Run:  python examples/threshold_planner.py [trh_d ...]
"""

import sys

from repro.analysis.adaptive import AdaConfig
from repro.analysis.rfm_scaling import mint_rfm_config, scheme_mintrh_d
from repro.analysis.storage import mint_dmq_storage
from repro.perf.energy import table8


def plan(trh_d: int):
    """Return (scheme name, tolerated MinTRH-D, notes) for a device."""
    options = [
        ("MINT", scheme_mintrh_d(AdaConfig()), "zero slowdown"),
        ("MINT+RFM32", scheme_mintrh_d(mint_rfm_config(32)),
         "~0.1% slowdown"),
        ("MINT+RFM16", scheme_mintrh_d(mint_rfm_config(16)),
         "~1.6% slowdown"),
    ]
    for name, tolerated, note in options:
        if trh_d >= tolerated:
            return name, tolerated, note
    return None, options[-1][1], "below RFM16 reach"


def main() -> None:
    devices = [int(arg) for arg in sys.argv[1:]] or [
        9000, 4800, 2000, 1500, 700, 400, 300
    ]
    energy = {row.scheme: row for row in table8()}
    storage = mint_dmq_storage()

    print(f"{'device TRH-D':>13} {'recommended':>14} {'tolerates':>10} "
          f"{'margin':>8} {'ACT energy':>11} {'notes':>16}")
    print("-" * 78)
    for trh_d in devices:
        scheme, tolerated, note = plan(trh_d)
        if scheme is None:
            print(f"{trh_d:>13} {'(PRAC needed)':>14} {tolerated:>10} "
                  f"{'-':>8} {'-':>11} {note:>16}")
            continue
        margin = trh_d / tolerated
        act = energy.get(scheme.replace("MINT", "MINT", 1))
        act_str = f"{act.act_energy:.2f}x" if act else "-"
        print(f"{trh_d:>13} {scheme:>14} {tolerated:>10} "
              f"{margin:>7.2f}x {act_str:>11} {note:>16}")

    print(f"\nall configurations use {storage.bytes:.1f} bytes per bank "
          f"({storage.per_rank_bytes():.0f} bytes per 32-bank rank) and "
          f"include the DMQ for refresh-postponement compliance.")
    print("devices below the RFM16 threshold need per-row counting "
          "(PRAC) — the costly alternative MINT exists to avoid.")


if __name__ == "__main__":
    main()
