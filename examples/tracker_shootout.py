#!/usr/bin/env python3
"""Tracker shootout: the paper's attack families vs the tracker zoo.

Runs classic, many-sided (TRRespass), Blacksmith, and Half-Double
patterns against every tracker and prints which survive — the
executable version of the paper's Sections II-F and V-G story:
deployed low-cost trackers break, counter tables hold but cost
kilobytes, MINT holds with four bytes.

Run:  python examples/tracker_shootout.py
"""

import random

from repro.attacks import (
    AttackParams,
    double_sided,
    half_double,
    many_sided,
    random_blacksmith,
    single_sided,
)
from repro.sim.engine import run_attack
from repro.trackers import make_tracker

TRH_D = 1500
INTERVALS = 1500
TRACKERS = ["trr", "pride", "para", "parfm", "mithril", "prct", "prac", "mint"]


def attacks(params):
    return [
        ("single-sided", single_sided(params)),
        ("double-sided", double_sided(params, victim=params.base_row)),
        ("many-sided x12", many_sided(12, params)),
        ("blacksmith", random_blacksmith(16, params, seed=7)),
        ("half-double", half_double(params)),
    ]


def main() -> None:
    params = AttackParams(max_act=73, intervals=INTERVALS)
    names = [(name, trace) for name, trace in attacks(params)]
    print(f"device threshold TRH-D = {TRH_D}; "
          f"{INTERVALS} tREFI ({INTERVALS * 3.9 / 1000:.1f} ms) per attack\n")

    header = f"{'tracker':<10} {'bytes':>8} " + "".join(
        f"{name:>16}" for name, _ in names
    )
    print(header)
    print("-" * len(header))
    for tracker_name in TRACKERS:
        cells = []
        probe = make_tracker(tracker_name, rng=random.Random(0))
        storage = f"{probe.storage_bits / 8:,.0f}"
        for _attack_name, trace in names:
            tracker = make_tracker(tracker_name, rng=random.Random(1))
            result = run_attack(tracker, trace, trh=TRH_D)
            cells.append("FLIP" if result.failed else "ok")
        print(
            f"{tracker_name:<10} {storage:>8} "
            + "".join(f"{cell:>16}" for cell in cells)
        )

    print("\nreading: TRR/PrIDE-class trackers fall to many-sided or "
          "Blacksmith traffic; trackers that cannot see mitigative "
          "refreshes (PARFM) fall to Half-Double; MINT (4 bytes) and "
          "the counter tables (kilobytes) survive everything.")


if __name__ == "__main__":
    main()
