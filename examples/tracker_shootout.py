#!/usr/bin/env python3
"""Tracker shootout: the paper's attack families vs the tracker zoo.

Runs classic, many-sided (TRRespass), Blacksmith, and Half-Double
patterns against every tracker and prints which survive — the
executable version of the paper's Sections II-F and V-G story:
deployed low-cost trackers break, counter tables hold but cost
kilobytes, MINT holds with four bytes.

The sweep is one base ``Scenario`` crossed with tracker/attack axes
(``Scenario.sweep``) and handed to the ``repro.exp`` runner, which
executes every point through the ``Session`` facade: the 40 points fan
out across the process pool, and with ``--store`` a re-run serves
every unchanged point from cache.

Run:  python examples/tracker_shootout.py [--workers N] [--store FILE]
"""

import argparse

from repro.analysis.empirical import shootout_table, survivors
from repro.exp import ResultStore, run_grid
from repro.exp.presets import (
    SHOOTOUT_ATTACKS,
    SHOOTOUT_TRACKERS,
    shootout_grid,
)

TRH_D = 1500
INTERVALS = 1500


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool size (default: usable CPUs)")
    parser.add_argument("--store", default=None,
                        help="JSON result store for incremental re-runs")
    args = parser.parse_args()

    grid = shootout_grid(trh=TRH_D, intervals=INTERVALS)
    print(f"device threshold TRH-D = {TRH_D}; "
          f"{INTERVALS} tREFI ({INTERVALS * 3.9 / 1000:.1f} ms) per attack\n")

    store = ResultStore(args.store) if args.store else None
    report = run_grid(grid, base_seed=1, n_workers=args.workers, store=store)

    attack_names = [name for name, _ in SHOOTOUT_ATTACKS]
    print(shootout_table(report.results, SHOOTOUT_TRACKERS, attack_names))
    print(f"\n[{report.summary()}]")
    print(f"survivors: {', '.join(survivors(report.results))}")

    print("\nreading: TRR/PrIDE-class trackers fall to many-sided or "
          "Blacksmith traffic; trackers that cannot see mitigative "
          "refreshes (PARFM) fall to Half-Double; MINT (4 bytes) and "
          "the counter tables (kilobytes) survive everything.")


if __name__ == "__main__":
    main()
