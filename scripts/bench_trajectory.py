#!/usr/bin/env python
"""Record the engine's performance trajectory into ``BENCH_engine.json``.

Runs the rank-scaling benchmark (full-rate ``rank_stripe`` traces) for
each requested tracker at each requested bank count, through both the
scalar per-ACT engine and the vectorized NumPy kernel, and verifies the
two produce bit-identical ``RankSimResult``s while timing them. On top
of that it records the channel trajectory (``channel_points``: acts/sec
vs rank count through ``ChannelSimulator``) and the streaming pipeline
(``streaming``: streamed-vs-materialized overhead with bit-identity,
plus the bounded-memory check — peak traced memory of a streamed run
must stay flat as the horizon grows 16x). Also times the Scenario
``Session`` facade against driving the engine directly (the facade must
cost <5%, recorded as ``scenario_overhead``) and the parallel
experiment runner's fan-out (the exp-speedup benchmark) unless
``--no-exp`` is given.

The output JSON is the machine-readable perf trajectory: acts/sec per
(tracker, banks, kernel) plus the scalar→vectorized speedup, suitable
for diffing across commits. CI uploads it as a build artifact on every
push (non-blocking: wall-clock numbers on shared runners inform, they
do not gate).

The fused-kernel acceptance point (``fused_channel_points``) times the
8-bank/4-rank channel config through the lockstep march, the fused
multi-rank kernel, and the scalar engine, verifying all three are
bit-identical and recording the fused-vs-lockstep speedup.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py            # full
    PYTHONPATH=src python scripts/bench_trajectory.py --quick    # CI
    PYTHONPATH=src python scripts/bench_trajectory.py --smoke    # gate
    PYTHONPATH=src python scripts/bench_trajectory.py -o out.json

``--smoke`` runs only the behavioural gates (small horizon, no timing
thresholds, no file write) and exits non-zero on any mismatch — the
blocking CI gate; wall-clock numbers never gate. It covers the fused
and compiled kernel bit-identity checks plus the experiment-service
lifecycle: run a grid, crash it mid-run, resume to a bit-identical
store, and answer a query over HTTP (``repro serve``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import asdict
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.attacks.base import AttackParams  # noqa: E402
from repro.attacks.channel import rank_synchronized  # noqa: E402
from repro.attacks.rank import (  # noqa: E402
    cross_bank_decoy,
    cross_bank_decoy_stream,
    rank_stripe,
)
from repro.scenario import AttackSpec, Scenario, Session, TrackerSpec  # noqa: E402
from repro.sim.engine import (  # noqa: E402
    ChannelSimulator,
    EngineConfig,
    RankSimulator,
)
from repro.trackers.registry import (  # noqa: E402
    bank_tracker_factory,
    channel_tracker_factory,
)

MAX_ACT = 73

#: Budget for the Session facade over the direct engine drive (ratio).
SCENARIO_OVERHEAD_BUDGET = 0.05


def _canonical(result) -> str:
    return json.dumps(asdict(result), sort_keys=True)


def bench_engine_point(
    tracker: str,
    num_banks: int,
    intervals: int,
    repeats: int,
) -> dict:
    """Time one (tracker × banks) point on both kernels; verify identity."""
    params = AttackParams(max_act=MAX_ACT, intervals=intervals, base_row=1000)
    trace = rank_stripe(3 * num_banks, num_banks, params)
    total_acts = trace.total_acts
    point: dict = {
        "tracker": tracker,
        "num_banks": num_banks,
        "intervals": intervals,
        "total_acts": total_acts,
    }
    results = {}
    for kernel, vectorized in (("scalar", False), ("vectorized", True)):
        best = float("inf")
        for _ in range(repeats):
            simulator = RankSimulator(
                bank_tracker_factory(tracker, base_seed=7),
                EngineConfig(num_banks=num_banks, trh=1e9, vectorized=vectorized),
            )
            started = time.perf_counter()
            results[kernel] = simulator.run(trace)
            best = min(best, time.perf_counter() - started)
        point[f"{kernel}_acts_per_second"] = round(total_acts / best, 1)
        point[f"{kernel}_seconds"] = round(best, 6)
    point["speedup"] = round(
        point["vectorized_acts_per_second"] / point["scalar_acts_per_second"], 3
    )
    point["bit_identical"] = _canonical(results["scalar"]) == _canonical(
        results["vectorized"]
    )
    return point


def bench_scenario_overhead(intervals: int, repeats: int) -> dict:
    """Time the Session facade against driving the engine directly.

    Both paths execute the *same* computation — scenario-derived
    trackers, trace, and config through ``RankSimulator`` — so the gap
    is pure facade cost (payload hashing for the seed streams plus
    dispatch), which must stay under ``SCENARIO_OVERHEAD_BUDGET``. The
    two results are asserted bit-identical while timing.
    """
    scenario = Scenario(
        tracker=TrackerSpec.of("mint"),
        attack=AttackSpec.of("rank-stripe", sides=12),
        trh=1e9,
        intervals=intervals,
        num_banks=4,
        seed=7,
    )
    results = {}

    def direct() -> None:
        simulator = RankSimulator(
            scenario.tracker_factory(), scenario.engine_config()
        )
        results["direct"] = simulator.run(scenario.build_trace())

    def facade() -> None:
        results["session"] = Session(scenario).run()

    # Paired measurement: the facade delta is far below this machine's
    # run-to-run jitter, so time the two paths back to back each round
    # (drift hits both sides of a round equally) and report the median
    # per-round ratio. Best-of seconds are recorded for context.
    pairs = (("direct", direct), ("session", facade))
    timings = {label: float("inf") for label, _ in pairs}
    for _, runner in pairs:
        runner()  # warmup: NumPy ufunc + per-interval cache build
    ratios = []
    for _ in range(repeats):
        round_times = {}
        for label, runner in pairs:
            started = time.perf_counter()
            runner()
            round_times[label] = time.perf_counter() - started
            timings[label] = min(timings[label], round_times[label])
        ratios.append(round_times["session"] / round_times["direct"])
    ratios.sort()
    overhead = ratios[len(ratios) // 2] - 1.0
    return {
        "intervals": intervals,
        "num_banks": 4,
        "direct_seconds": round(timings["direct"], 6),
        "session_seconds": round(timings["session"], 6),
        "overhead_ratio": round(overhead, 4),
        "budget": SCENARIO_OVERHEAD_BUDGET,
        "within_budget": overhead < SCENARIO_OVERHEAD_BUDGET,
        "bit_identical": (
            _canonical(results["direct"]) == _canonical(results["session"])
        ),
    }


def bench_channel_scaling(
    tracker: str,
    ranks: list[int],
    intervals: int,
    repeats: int,
    num_banks: int = 2,
) -> list[dict]:
    """Acts/sec vs rank count on the channel engine (throughput must be
    ~flat per ACT: R ranks do R× the work, not R× the overhead)."""
    points = []
    for num_ranks in ranks:
        params = AttackParams(
            max_act=MAX_ACT, intervals=intervals, base_row=1000
        )
        trace = rank_synchronized(6, num_ranks, params, num_banks=num_banks)
        total_acts = num_ranks * num_banks * MAX_ACT * intervals
        best = float("inf")
        for _ in range(repeats):
            simulator = ChannelSimulator(
                channel_tracker_factory(tracker, base_seed=7),
                EngineConfig(
                    num_banks=num_banks, trh=1e9, num_ranks=num_ranks
                ),
            )
            started = time.perf_counter()
            result = simulator.run(trace)
            best = min(best, time.perf_counter() - started)
        assert result.demand_acts == total_acts
        points.append({
            "tracker": tracker,
            "num_ranks": num_ranks,
            "num_banks": num_banks,
            "intervals": intervals,
            "total_acts": total_acts,
            "acts_per_second": round(total_acts / best, 1),
            "seconds": round(best, 6),
        })
    base = points[0]["acts_per_second"]
    for point in points:
        point["retained_vs_1_rank"] = round(
            point["acts_per_second"] / base, 3
        )
    return points


def bench_fused_channel(
    trackers: list[str],
    intervals: int,
    repeats: int,
    num_ranks: int = 4,
    num_banks: int = 8,
) -> list[dict]:
    """The fused-kernel acceptance point: one 8-bank/4-rank config
    through all three engines, timed, with three-way bit-identity.

    ``lockstep`` is the chunk-granular march of independent per-rank
    vectorized kernels (``fused=False``), ``fused`` the packed
    multi-rank kernel, ``scalar`` the per-ACT reference engine; the
    speedup recorded is fused over lockstep.

    The workload is the attack shape the fused kernel exists for: each
    rank's whole ``max_act`` tREFI budget *striped across* the banks as
    double-sided pairs, so every (rank, bank) batch carries only
    ``max_act/num_banks`` ACTs and the lockstep march is dispatch-bound
    — one Python dispatch per (rank, bank) per tREFI for a handful of
    ACTs each. (The bank-saturating ``rank_synchronized`` shape used by
    ``channel_points`` amortizes that dispatch over 73-ACT batches and
    understates the fused win.)
    """
    from repro.sim.trace import ChannelTrace, CycleStream, RankInterval

    acts = []
    for i in range(MAX_ACT):
        bank = i % num_banks
        pair = (i // num_banks) % 3
        acts.append(
            (bank, 1000 + 4000 * bank + 6 * pair + (2 if i % 2 else 0))
        )
    interval = RankInterval.of(acts)
    points = []
    for tracker in trackers:
        trace = ChannelTrace(
            name="fused-stripe",
            per_rank={
                rank: CycleStream(
                    f"fused-stripe-r{rank}", (interval,), intervals
                )
                for rank in range(num_ranks)
            },
        )
        total_acts = num_ranks * MAX_ACT * intervals
        point: dict = {
            "tracker": tracker,
            "num_ranks": num_ranks,
            "num_banks": num_banks,
            "intervals": intervals,
            "total_acts": total_acts,
            "kernel": "fused",
        }
        specs = (
            ("lockstep", dict(fused=False, vectorized=True)),
            # backend pinned: this point tracks the pure-NumPy fused
            # kernel tier; the compiled tier has its own points
            # (``compiled_channel_points``) and must not leak in via
            # backend="auto" resolution.
            ("fused", dict(fused=True, vectorized=True, backend="numpy")),
            ("scalar", dict(fused=False, vectorized=False)),
        )
        results = {}
        best = {label: float("inf") for label, _ in specs}
        # Repeats interleave the engines so a load burst on a shared
        # box lands on all of them instead of skewing one label's whole
        # timing window (this point records a cross-engine *ratio*).
        for _ in range(repeats):
            for label, overrides in specs:
                simulator = ChannelSimulator(
                    channel_tracker_factory(tracker, base_seed=7),
                    EngineConfig(
                        num_banks=num_banks,
                        num_ranks=num_ranks,
                        trh=1e9,
                        **overrides,
                    ),
                )
                started = time.perf_counter()
                results[label] = simulator.run(trace)
                best[label] = min(
                    best[label], time.perf_counter() - started
                )
        for label, _ in specs:
            point[f"{label}_acts_per_second"] = round(
                total_acts / best[label], 1
            )
            point[f"{label}_seconds"] = round(best[label], 6)
        point["speedup_vs_lockstep"] = round(
            point["fused_acts_per_second"]
            / point["lockstep_acts_per_second"],
            3,
        )
        canon = {label: _canonical(r) for label, r in results.items()}
        point["bit_identical"] = (
            canon["fused"] == canon["lockstep"] == canon["scalar"]
        )
        points.append(point)
    return points


def bench_compiled_channel(
    trackers: list[str],
    intervals: int,
    repeats: int,
    num_ranks: int = 4,
    num_banks: int = 8,
) -> list[dict]:
    """The compiled-tier acceptance point: the fused 8-bank/4-rank
    striped workload through lockstep, fused, compiled, and scalar,
    timed, with four-way bit-identity.

    Same workload as :func:`bench_fused_channel` — the steady state the
    compiled march exists for (every rank replaying one cached interval
    for thousands of tREFIs). ``compiled`` is the fused kernel with
    ``backend="compiled"`` (best available provider); the speedups
    recorded are compiled over fused and compiled over lockstep. When
    no compiled provider is available on the host the points record
    ``provider: null`` and skip the compiled timing rather than fail.
    """
    from repro import kernels
    from repro.sim.trace import ChannelTrace, CycleStream, RankInterval

    provider = kernels.provider()
    acts = []
    for i in range(MAX_ACT):
        bank = i % num_banks
        pair = (i // num_banks) % 3
        acts.append(
            (bank, 1000 + 4000 * bank + 6 * pair + (2 if i % 2 else 0))
        )
    interval = RankInterval.of(acts)
    points = []
    for tracker in trackers:
        trace = ChannelTrace(
            name="compiled-stripe",
            per_rank={
                rank: CycleStream(
                    f"compiled-stripe-r{rank}", (interval,), intervals
                )
                for rank in range(num_ranks)
            },
        )
        total_acts = num_ranks * MAX_ACT * intervals
        point: dict = {
            "tracker": tracker,
            "num_ranks": num_ranks,
            "num_banks": num_banks,
            "intervals": intervals,
            "total_acts": total_acts,
            "kernel": "compiled",
            "provider": provider,
        }
        specs = [
            ("lockstep", dict(fused=False, vectorized=True)),
            ("fused", dict(fused=True, vectorized=True, backend="numpy")),
            ("scalar", dict(fused=False, vectorized=False)),
        ]
        if provider is not None:
            specs.insert(
                2, ("compiled", dict(fused=True, vectorized=True,
                                     backend="compiled"))
            )
        results = {}
        best = {label: float("inf") for label, _ in specs}
        for _ in range(repeats):
            for label, overrides in specs:
                simulator = ChannelSimulator(
                    channel_tracker_factory(tracker, base_seed=7),
                    EngineConfig(
                        num_banks=num_banks,
                        num_ranks=num_ranks,
                        trh=1e9,
                        **overrides,
                    ),
                )
                started = time.perf_counter()
                results[label] = simulator.run(trace)
                best[label] = min(
                    best[label], time.perf_counter() - started
                )
        for label, _ in specs:
            point[f"{label}_acts_per_second"] = round(
                total_acts / best[label], 1
            )
            point[f"{label}_seconds"] = round(best[label], 6)
        canon = {label: _canonical(r) for label, r in results.items()}
        point["bit_identical"] = all(
            canon[label] == canon["scalar"] for label, _ in specs
        )
        if provider is not None:
            point["speedup_vs_fused"] = round(
                point["compiled_acts_per_second"]
                / point["fused_acts_per_second"],
                3,
            )
            point["speedup_vs_lockstep"] = round(
                point["compiled_acts_per_second"]
                / point["lockstep_acts_per_second"],
                3,
            )
            stats = results["compiled"].kernel_stats
            point["kernel_stats"] = stats
        points.append(point)
    return points


def bench_streaming(intervals: int, repeats: int) -> dict:
    """Streamed vs materialized: time overhead, bit-identity, and the
    bounded-memory guarantee.

    The same cross-bank decoy schedule runs once as a materialized
    ``RankTrace`` and once as its ``CycleStream`` twin; the results
    must be bit-identical and the stream's cost stays within a few
    percent. The memory probe then runs the stream at 1× and 16× the
    horizon: peak traced memory must stay flat (a materialized trace
    would grow by 8 bytes of pointer per added tREFI).
    """
    import tracemalloc

    params = AttackParams(max_act=MAX_ACT, intervals=intervals, base_row=1000)
    num_banks = 4

    def simulator():
        return RankSimulator(
            bank_tracker_factory("mint", base_seed=7),
            EngineConfig(
                num_banks=num_banks, trh=1e9, allow_postponement=True
            ),
        )

    results = {}
    timings = {"materialized": float("inf"), "streamed": float("inf")}
    variants = {
        "materialized": lambda: cross_bank_decoy(60_000, num_banks, params),
        "streamed": lambda: cross_bank_decoy_stream(
            60_000, num_banks, params
        ),
    }
    for label, build in variants.items():
        trace = build()
        for _ in range(repeats):
            sim = simulator()
            started = time.perf_counter()
            results[label] = sim.run(trace)
            timings[label] = min(
                timings[label], time.perf_counter() - started
            )

    def streamed_peak(horizon_intervals: int) -> int:
        stream = cross_bank_decoy_stream(
            60_000,
            num_banks,
            AttackParams(
                max_act=MAX_ACT, intervals=horizon_intervals, base_row=1000
            ),
        )
        sim = simulator()
        tracemalloc.start()
        sim.run(stream)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    streamed_peak(intervals)  # warm-up: caches, ufunc state
    short_peak = streamed_peak(intervals)
    long_peak = streamed_peak(16 * intervals)
    overhead = timings["streamed"] / timings["materialized"] - 1.0
    return {
        "intervals": intervals,
        "num_banks": num_banks,
        "materialized_seconds": round(timings["materialized"], 6),
        "streamed_seconds": round(timings["streamed"], 6),
        "overhead_ratio": round(overhead, 4),
        "bit_identical": (
            _canonical(results["materialized"]) == _canonical(
                results["streamed"]
            )
        ),
        "peak_bytes_at_1x_horizon": short_peak,
        "peak_bytes_at_16x_horizon": long_peak,
        # Flat = the 16x run costs at most ~the 1x run plus slack; a
        # materialized 16x trace would add 8 bytes/tREFI of pointers.
        "memory_flat_in_horizon": long_peak <= 2 * short_peak + 65536,
    }


#: ``--compare`` gate: a bit-identical point may lose at most this
#: fraction of its acts/sec before the diff exits non-zero.
REGRESSION_TOLERANCE = 0.20

#: The record keys holding lists of timed points (each point a dict of
#: metadata plus ``*_per_second`` metrics).
_POINT_LIST_KEYS = (
    "engine_points",
    "channel_points",
    "fused_channel_points",
    "compiled_channel_points",
    "exp_service_points",
)


def _point_key(point: dict) -> tuple:
    return (
        point.get("tracker"),
        point.get("num_ranks"),
        point.get("num_banks"),
        point.get("kernel"),
    )


def compare_records(old_path: Path, new_path: Path) -> int:
    """Diff two ``BENCH_engine.json`` records point by point.

    Prints a per-point speedup-delta table for every ``*_acts_per_second``
    metric present in both records, and exits non-zero when any point
    that is ``bit_identical`` in both records regressed by more than
    ``REGRESSION_TOLERANCE``. Points or metrics present on only one
    side are reported but never gate (the trajectory grows new tiers).
    """
    old = json.loads(Path(old_path).read_text())
    new = json.loads(Path(new_path).read_text())
    header = f"{'point':<42s} {'metric':<28s} {'old':>14s} {'new':>14s} {'delta':>8s}"
    print(header)
    print("-" * len(header))
    regressions = []
    for list_key in _POINT_LIST_KEYS:
        old_points = {
            _point_key(p): p for p in old.get(list_key, [])
        }
        for point in new.get(list_key, []):
            base = old_points.get(_point_key(point))
            label = (
                f"{list_key}:{point.get('tracker')}"
                f"@{point.get('num_ranks', 1)}r"
                f"{point.get('num_banks', 1)}b"
            )
            if base is None:
                print(f"{label:<42s} {'(new point)':<28s}")
                continue
            gated = bool(
                point.get("bit_identical")
                and base.get("bit_identical")
            )
            metrics = sorted(
                metric
                for metric in point
                if metric.endswith("_per_second")
            )
            for metric in metrics:
                after = point[metric]
                before = base.get(metric)
                if not before:
                    print(f"{label:<42s} {metric:<28s} "
                          f"{'(new metric)':>14s} {after:>14,.0f}")
                    continue
                delta = after / before - 1.0
                flag = ""
                if gated and delta < -REGRESSION_TOLERANCE:
                    regressions.append((label, metric, delta))
                    flag = "  REGRESSION"
                print(
                    f"{label:<42s} {metric:<28s} {before:>14,.0f} "
                    f"{after:>14,.0f} {delta:>+7.1%}{flag}"
                )
    if regressions:
        print(
            f"ERROR: {len(regressions)} bit-identical point(s) regressed "
            f"more than {REGRESSION_TOLERANCE:.0%}:"
        )
        for label, metric, delta in regressions:
            print(f"  {label} {metric} {delta:+.1%}")
        return 1
    print("compare: no gated regressions")
    return 0


def bench_exp_runner(points: int, windows: int) -> dict:
    """Time the experiment runner serially vs with a 4-worker pool."""
    from repro.exp import run_grid
    from repro.exp.presets import scaled_benchmark_grid
    from repro.parallel import default_workers, fork_available

    grid = scaled_benchmark_grid(points=points, windows=windows)
    # Interleaved best-of-2: run-to-run drift on a shared box exceeds
    # the serial/pool delta being measured (see bench_exp_service).
    timings = {"serial": float("inf"), "pool4": float("inf")}
    for _ in range(2):
        for label, workers in (("serial", 1), ("pool4", 4)):
            started = time.perf_counter()
            run_grid(grid, base_seed=11, n_workers=workers)
            timings[label] = min(
                timings[label], time.perf_counter() - started
            )
    return {
        "points": len(grid),
        "windows": windows,
        "serial_seconds": round(timings["serial"], 3),
        "pool4_seconds": round(timings["pool4"], 3),
        "speedup": round(timings["serial"] / max(timings["pool4"], 1e-9), 3),
        "fork_available": fork_available(),
        "usable_cpus": default_workers(),
    }


def _exp_service_grid(windows: int = 2):
    """A 16-point grid of cheap scaled points for the service bench."""
    base = Scenario(
        tracker="mint",
        attack="single-sided",
        trh=60.0,
        intervals=windows * 64,
        max_act=8,
        num_rows=1024,
        refi_per_refw=64,
        scaled_timing=True,
    )
    return base.sweep(
        tracker=["mint", "para"],
        attack=[AttackSpec.of("single-sided"), AttackSpec.of("double-sided")],
        trh=[50.0, 60.0, 70.0, 80.0],
    )


def _store_bytes(path: Path) -> dict:
    """Manifest + shard bytes keyed by name, for bit-identity diffs."""
    files = {"manifest": path.read_bytes()}
    shards_dir = path.with_name(path.name + ".shards")
    if shards_dir.exists():
        for shard in sorted(shards_dir.glob("*.json")):
            files[shard.name] = shard.read_bytes()
    return files


def bench_exp_service(windows: int = 2) -> dict:
    """The experiment-service acceptance point (one dict in
    ``exp_service_points``): points/sec through the sharded scheduler
    serially vs with a 4-worker pool, crash→resume latency and store
    bit-identity, and the dirty-shard flush telemetry (incremental
    bytes vs the full store).

    On a 1-CPU host the pool guard collapses ``pool4`` to the inline
    path, so its throughput tracks serial (~1.0x) instead of paying
    fork overhead — the regression the guards exist to prevent; the
    recorded ``usable_cpus`` disambiguates the two regimes.
    """
    import tempfile

    from repro.exp import ResultStore, run_grid
    from repro.exp.runner import _InjectedCrash
    from repro.parallel import default_workers, fork_available

    grid = _exp_service_grid(windows=windows)
    n_points = len(grid)
    point: dict = {
        "tracker": "mint+para",
        "kernel": "exp-service",
        "points": n_points,
        "windows": windows,
        "fork_available": fork_available(),
        "usable_cpus": default_workers(),
    }
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        # Interleaved best-of-N: run-to-run drift on a busy shared box
        # exceeds the serial/pool delta, so alternate the two labels
        # within each round instead of timing them in separate windows.
        timings = {"serial": float("inf"), "pool4": float("inf")}
        for round_index in range(2):
            for label, workers in (("serial", 1), ("pool4", 4)):
                store = ResultStore(tmp / f"{label}-{round_index}.json")
                started = time.perf_counter()
                report = run_grid(grid, base_seed=11, n_workers=workers,
                                  store=store)
                timings[label] = min(
                    timings[label], time.perf_counter() - started
                )
                if label == "pool4":
                    point["pool4_dispatch"] = report.dispatch
        for label in ("serial", "pool4"):
            point[f"{label}_seconds"] = round(timings[label], 3)
            point[f"{label}_points_per_second"] = round(
                n_points / timings[label], 2
            )
        point["speedup"] = round(
            timings["serial"] / max(timings["pool4"], 1e-9), 3
        )

        # Crash after 2 of the serial plan's shards, then time the
        # resume; the recovered store must be byte-identical to the
        # uninterrupted serial run's.
        crashed = ResultStore(tmp / "crashed.json")
        try:
            run_grid(grid, base_seed=11, n_workers=1, store=crashed,
                     fail_after_shards=2)
        except _InjectedCrash:
            pass
        started = time.perf_counter()
        resume = run_grid(
            grid, base_seed=11, n_workers=1,
            store=ResultStore(tmp / "crashed.json"),
        )
        point["resume_seconds"] = round(time.perf_counter() - started, 3)
        point["resume_executed"] = resume.executed
        point["bit_identical"] = (
            _store_bytes(tmp / "serial-0.json")
            == _store_bytes(tmp / "crashed.json")
        )

        # Dirty-shard flush telemetry: growing a flushed store by one
        # result should rewrite one shard + manifest, not the store.
        store = ResultStore(tmp / "serial-0.json")
        extra = _exp_service_grid(windows=windows + 1).points()[0]
        from repro.exp import run_point

        store.put(run_point(extra, base_seed=11))
        point["dirty_flush_bytes"] = store.flush()
        point["full_store_bytes"] = store.disk_bytes()
    return point


def smoke_exp_service() -> int:
    """The blocking exp-service smoke: run, crash, resume, serve, query.

    Returns the number of failed checks (0 = ok). Small grid, no
    timing thresholds — behavioural identity only.
    """
    import tempfile
    import threading
    import urllib.request

    from repro.exp import QueryAPI, ResultStore, make_server, run_grid
    from repro.exp.runner import _InjectedCrash

    failures = 0
    grid = _exp_service_grid(windows=1)
    with tempfile.TemporaryDirectory() as tmp_name:
        tmp = Path(tmp_name)
        run_grid(grid, base_seed=11, n_workers=1,
                 store=ResultStore(tmp / "clean.json"))
        try:
            run_grid(grid, base_seed=11, n_workers=1,
                     store=ResultStore(tmp / "resumed.json"),
                     fail_after_shards=1)
        except _InjectedCrash:
            pass
        resume = run_grid(grid, base_seed=11, n_workers=1,
                          store=ResultStore(tmp / "resumed.json"))
        identical = (
            _store_bytes(tmp / "clean.json")
            == _store_bytes(tmp / "resumed.json")
        )
        failures += not identical
        print(
            f"exp service: resume recovered {resume.resumed} point(s), "
            f"executed {resume.executed}, store bit-identical "
            f"[{'ok' if identical else 'MISMATCH'}]"
        )

        server = make_server(QueryAPI.open(tmp / "resumed.json"), port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with urllib.request.urlopen(
                f"http://{host}:{port}/v1/status"
            ) as response:
                status = json.loads(response.read())
            served = status["results"] == len(grid)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        failures += not served
        print(
            f"exp service: served {status['results']}/{len(grid)} "
            f"result(s) over HTTP [{'ok' if served else 'MISMATCH'}]"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument(
        "--trackers",
        default="mint,graphene,para,mithril",
        help="comma-separated registry tracker names",
    )
    parser.add_argument(
        "--banks",
        default="1,4,8",
        help="comma-separated bank counts",
    )
    parser.add_argument(
        "--intervals", type=int, default=400, help="tREFIs per run"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    parser.add_argument(
        "--no-exp",
        action="store_true",
        help="skip the experiment-runner fan-out benchmark",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI preset: fewer trackers/banks/intervals, single repeat",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fused + compiled bit-identity gate only: small horizon, "
        "no timing thresholds, no output file; exits non-zero on any "
        "mismatch",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD.json", "NEW.json"),
        help="diff two BENCH_engine.json records: per-point acts/sec "
        "delta table; exits non-zero when any bit-identical point "
        f"regressed more than {REGRESSION_TOLERANCE:.0%}",
    )
    args = parser.parse_args(argv)

    if args.compare:
        return compare_records(Path(args.compare[0]), Path(args.compare[1]))

    if args.smoke:
        from repro import kernels

        points = bench_fused_channel(
            ["mint", "graphene"], intervals=120, repeats=1
        )
        mismatches = 0
        for point in points:
            status = "ok" if point["bit_identical"] else "MISMATCH"
            mismatches += not point["bit_identical"]
            print(
                f"{point['tracker']:>10s} ranks={point['num_ranks']} "
                f"banks={point['num_banks']} fused identity [{status}]"
            )
        if kernels.available():
            for point in bench_compiled_channel(
                ["mint", "none"], intervals=120, repeats=1
            ):
                status = "ok" if point["bit_identical"] else "MISMATCH"
                mismatches += not point["bit_identical"]
                print(
                    f"{point['tracker']:>10s} ranks={point['num_ranks']} "
                    f"banks={point['num_banks']} compiled identity "
                    f"({point['provider']}) [{status}]"
                )
        else:
            print(
                "compiled identity: skipped "
                f"({kernels.unavailable_reason()})"
            )
        mismatches += smoke_exp_service()
        if mismatches:
            print(f"ERROR: {mismatches} bit-identity check(s) failed")
            return 1
        print("bit-identity smoke: all ok")
        return 0

    if args.quick:
        args.trackers = "mint,graphene"
        args.banks = "1,8"
        args.intervals = min(args.intervals, 200)
        # Two repeats, best-of: a single cold run on a tiny trace mostly
        # times NumPy ufunc warmup and the per-interval cache build.
        args.repeats = 2

    trackers = [name.strip() for name in args.trackers.split(",") if name.strip()]
    banks = [int(n) for n in args.banks.split(",") if n.strip()]

    record: dict = {
        "schema": 1,
        "benchmark": "engine-trajectory",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "platform": platform.platform(),
        "engine_points": [],
    }
    failures = 0
    for tracker in trackers:
        for num_banks in banks:
            point = bench_engine_point(
                tracker, num_banks, args.intervals, args.repeats
            )
            record["engine_points"].append(point)
            status = "ok" if point["bit_identical"] else "MISMATCH"
            failures += not point["bit_identical"]
            print(
                f"{tracker:>10s} banks={num_banks:<2d} "
                f"scalar {point['scalar_acts_per_second']:>12,.0f}/s  "
                f"vectorized {point['vectorized_acts_per_second']:>12,.0f}/s  "
                f"x{point['speedup']:<5.2f} [{status}]"
            )
    record["channel_points"] = bench_channel_scaling(
        trackers[0], [1, 2, 4], args.intervals, args.repeats
    )
    for point in record["channel_points"]:
        print(
            f"{point['tracker']:>10s} ranks={point['num_ranks']:<2d} "
            f"channel {point['acts_per_second']:>12,.0f}/s  "
            f"retained x{point['retained_vs_1_rank']:<5.2f}"
        )
    # Long horizon regardless of --quick: the fused kernel pays a fixed
    # packed-array setup (~100MB of zeros at 128K-row banks) that a
    # short run would mistake for marginal cost.
    # "none" isolates the kernel itself (no tracker floor): the ceiling
    # the tracked points approach as their per-REF Python work shrinks.
    # Extra repeats here: this is the acceptance point, and best-of-N
    # needs more draws than the one-engine benches to shake shared-box
    # scheduling noise out of a cross-engine ratio.
    record["fused_channel_points"] = bench_fused_channel(
        trackers[:2] + ["none"],
        max(args.intervals, 2000),
        max(args.repeats, 5),
    )
    for point in record["fused_channel_points"]:
        status = "ok" if point["bit_identical"] else "MISMATCH"
        failures += not point["bit_identical"]
        print(
            f"{point['tracker']:>10s} ranks={point['num_ranks']} "
            f"banks={point['num_banks']} "
            f"lockstep {point['lockstep_acts_per_second']:>12,.0f}/s  "
            f"fused {point['fused_acts_per_second']:>12,.0f}/s  "
            f"x{point['speedup_vs_lockstep']:<5.2f} [{status}]"
        )
    # The compiled-tier acceptance point: same long-horizon workload,
    # plus the compiled march (when a provider exists on this host).
    record["compiled_channel_points"] = bench_compiled_channel(
        list(dict.fromkeys([trackers[0], "mint", "none"])),
        max(args.intervals, 2000),
        max(args.repeats, 5),
    )
    for point in record["compiled_channel_points"]:
        status = "ok" if point["bit_identical"] else "MISMATCH"
        failures += not point["bit_identical"]
        if point["provider"] is not None:
            print(
                f"{point['tracker']:>10s} ranks={point['num_ranks']} "
                f"banks={point['num_banks']} "
                f"fused {point['fused_acts_per_second']:>12,.0f}/s  "
                f"compiled {point['compiled_acts_per_second']:>12,.0f}/s "
                f"({point['provider']})  "
                f"x{point['speedup_vs_fused']:<5.2f} vs fused, "
                f"x{point['speedup_vs_lockstep']:<5.2f} vs lockstep "
                f"[{status}]"
            )
        else:
            print(
                f"{point['tracker']:>10s} ranks={point['num_ranks']} "
                f"banks={point['num_banks']} compiled: no provider "
                f"[{status}]"
            )
    record["streaming"] = bench_streaming(
        intervals=2 * args.intervals, repeats=max(args.repeats, 3)
    )
    streaming = record["streaming"]
    streaming_status = "ok" if (
        streaming["bit_identical"] and streaming["memory_flat_in_horizon"]
    ) else "MISMATCH" if not streaming["bit_identical"] else "MEM GROWTH"
    failures += streaming_status != "ok"
    print(
        f"streaming: materialized {streaming['materialized_seconds']}s, "
        f"streamed {streaming['streamed_seconds']}s "
        f"({streaming['overhead_ratio'] * 100:+.2f}%), peak "
        f"{streaming['peak_bytes_at_1x_horizon']:,}B -> "
        f"{streaming['peak_bytes_at_16x_horizon']:,}B at 16x horizon "
        f"[{streaming_status}]"
    )
    # Longer runs + more interleaved repeats than the kernel points:
    # the facade delta is tiny, so the measurement needs a deep floor.
    record["scenario_overhead"] = bench_scenario_overhead(
        intervals=2 * args.intervals, repeats=max(args.repeats, 7)
    )
    overhead = record["scenario_overhead"]
    overhead_status = "ok" if (
        overhead["within_budget"] and overhead["bit_identical"]
    ) else "OVER BUDGET" if not overhead["within_budget"] else "MISMATCH"
    failures += overhead_status != "ok"
    print(
        f"scenario facade: direct {overhead['direct_seconds']}s, "
        f"session {overhead['session_seconds']}s "
        f"({overhead['overhead_ratio'] * 100:+.2f}%, budget "
        f"{SCENARIO_OVERHEAD_BUDGET * 100:.0f}%) [{overhead_status}]"
    )
    if not args.no_exp:
        record["exp_runner"] = bench_exp_runner(
            points=2 if args.quick else 4, windows=2 if args.quick else 3
        )
        print(
            f"exp runner: serial {record['exp_runner']['serial_seconds']}s, "
            f"4 workers {record['exp_runner']['pool4_seconds']}s "
            f"(x{record['exp_runner']['speedup']})"
        )
        service = bench_exp_service(windows=1 if args.quick else 2)
        record["exp_service_points"] = [service]
        failures += not service["bit_identical"]
        print(
            f"exp service: {service['points']} points, serial "
            f"{service['serial_points_per_second']}/s, pool4 "
            f"{service['pool4_points_per_second']}/s "
            f"({service['pool4_dispatch']}, x{service['speedup']}), "
            f"resume {service['resume_seconds']}s, dirty flush "
            f"{service['dirty_flush_bytes']:,}B of "
            f"{service['full_store_bytes']:,}B "
            f"[{'ok' if service['bit_identical'] else 'MISMATCH'}]"
        )

    args.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    if failures:
        print(f"ERROR: {failures} check(s) failed (kernel identity, "
              f"streaming identity/memory, or scenario-facade overhead "
              f"budget)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
