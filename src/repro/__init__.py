"""repro — a reproduction of MINT (MICRO 2024).

MINT: Securely Mitigating Rowhammer with a Minimalist In-DRAM Tracker
(Qureshi, Qazi, Jaleel). The package provides:

* :mod:`repro.core` — MINT itself, the Delayed Mitigation Queue, the
  RFM co-design, and the Row-Press (ImPress) extension.
* :mod:`repro.trackers` — every baseline tracker the paper compares
  (PRCT, Mithril, ProTRR, PARFM, InDRAM-PARA, TRR, PrIDE, Graphene).
* :mod:`repro.dram` — the DDR5 substrate: timing, banks, refresh
  postponement, and the row-disturbance oracle.
* :mod:`repro.attacks` — pattern generators from classic double-sided
  through Blacksmith, Half-Double, Feinting, and the adaptive attack.
* :mod:`repro.sim` — the trace-driven security simulator: the
  rank-level engine (per-bank trackers behind one refresh schedule)
  with its single-bank shims.
* :mod:`repro.analysis` — the analytical models (Saroiu-Wolman failure
  recurrence, MinTRH search, Markov adaptive-attack model) behind every
  number in the paper.
* :mod:`repro.perf` — the performance/energy substrate standing in for
  the paper's Gem5 setup.
* :mod:`repro.scenario` — **the canonical entry point**: the frozen,
  serializable :class:`~repro.scenario.Scenario` description of one
  evaluation and the :class:`~repro.scenario.Session` facade that runs
  it (single run, Monte-Carlo ``run_many``, grid ``sweep``, ``perf``).
  Every other entry point (CLI, experiment runner, the legacy free
  functions below) is a view onto it.

Quickstart — declarative::

    from repro import Scenario, Session

    scenario = Scenario(tracker="mint", attack="double-sided",
                        trh=4800, intervals=1000, seed=1)
    result = Session(scenario).run()
    assert not result.failed

Quickstart — legacy free-function shim (bit-identical engine)::

    import random
    from repro import MintTracker, run_attack
    from repro.attacks import AttackParams, double_sided

    tracker = MintTracker(rng=random.Random(1))
    result = run_attack(tracker, double_sided(AttackParams(intervals=1000)),
                        trh=4800)
    assert not result.failed
"""

from .constants import (
    BANKS_PER_RANK,
    CONCURRENT_BANKS,
    DEFAULT_BLAST_RADIUS,
    DEFAULT_TARGET_TTF_YEARS,
    MAX_POSTPONED_REFRESHES,
    REFI_PER_REFW,
    ROWS_PER_BANK,
)
from .core import (
    DelayedMitigationQueue,
    MintTracker,
    RfmConfig,
    RfmController,
    RowPressMintTracker,
    equivalent_activations,
)
from .dram import DDR5Timing, DEFAULT_TIMING, DramDevice, RowDisturbanceModel
from .scenario import (
    AttackSpec,
    Scenario,
    Session,
    TrackerSpec,
    run_scenario,
)
from .sim import (
    BankSimulator,
    ChannelSimResult,
    ChannelSimulator,
    ChannelTrace,
    EngineConfig,
    RankSimResult,
    RankSimulator,
    RankTrace,
    SimResult,
    Trace,
    TraceStream,
    run_attack,
    run_channel_attack,
    run_rank_attack,
    system_mttf_years,
)
from .trackers import (
    InDramParaTracker,
    MithrilTracker,
    MitigationRequest,
    ParfmTracker,
    PrctTracker,
    Tracker,
    available_trackers,
    bank_tracker_factory,
    channel_tracker_factory,
    make_tracker,
)

__version__ = "1.0.0"

__all__ = [
    "AttackSpec",
    "BANKS_PER_RANK",
    "BankSimulator",
    "CONCURRENT_BANKS",
    "ChannelSimResult",
    "ChannelSimulator",
    "ChannelTrace",
    "DDR5Timing",
    "DEFAULT_BLAST_RADIUS",
    "DEFAULT_TARGET_TTF_YEARS",
    "DEFAULT_TIMING",
    "DelayedMitigationQueue",
    "DramDevice",
    "EngineConfig",
    "InDramParaTracker",
    "MAX_POSTPONED_REFRESHES",
    "MintTracker",
    "MithrilTracker",
    "MitigationRequest",
    "ParfmTracker",
    "PrctTracker",
    "REFI_PER_REFW",
    "ROWS_PER_BANK",
    "RankSimResult",
    "RankSimulator",
    "RankTrace",
    "RfmConfig",
    "RfmController",
    "RowDisturbanceModel",
    "RowPressMintTracker",
    "Scenario",
    "Session",
    "SimResult",
    "Trace",
    "TraceStream",
    "Tracker",
    "TrackerSpec",
    "available_trackers",
    "bank_tracker_factory",
    "channel_tracker_factory",
    "equivalent_activations",
    "make_tracker",
    "run_attack",
    "run_channel_attack",
    "run_rank_attack",
    "run_scenario",
    "system_mttf_years",
    "__version__",
]
