"""repro — a reproduction of MINT (MICRO 2024).

MINT: Securely Mitigating Rowhammer with a Minimalist In-DRAM Tracker
(Qureshi, Qazi, Jaleel). The package provides:

* :mod:`repro.core` — MINT itself, the Delayed Mitigation Queue, the
  RFM co-design, and the Row-Press (ImPress) extension.
* :mod:`repro.trackers` — every baseline tracker the paper compares
  (PRCT, Mithril, ProTRR, PARFM, InDRAM-PARA, TRR, PrIDE, Graphene).
* :mod:`repro.dram` — the DDR5 substrate: timing, banks, refresh
  postponement, and the row-disturbance oracle.
* :mod:`repro.attacks` — pattern generators from classic double-sided
  through Blacksmith, Half-Double, Feinting, and the adaptive attack.
* :mod:`repro.sim` — the trace-driven security simulator: the
  rank-level engine (per-bank trackers behind one refresh schedule)
  with its single-bank shims.
* :mod:`repro.analysis` — the analytical models (Saroiu-Wolman failure
  recurrence, MinTRH search, Markov adaptive-attack model) behind every
  number in the paper.
* :mod:`repro.perf` — the performance/energy substrate standing in for
  the paper's Gem5 setup.

Quickstart::

    import random
    from repro import MintTracker, run_attack
    from repro.attacks import AttackParams, double_sided

    tracker = MintTracker(rng=random.Random(1))
    result = run_attack(tracker, double_sided(AttackParams(intervals=1000)),
                        trh=4800)
    assert not result.failed
"""

from .constants import (
    BANKS_PER_RANK,
    CONCURRENT_BANKS,
    DEFAULT_BLAST_RADIUS,
    DEFAULT_TARGET_TTF_YEARS,
    MAX_POSTPONED_REFRESHES,
    REFI_PER_REFW,
    ROWS_PER_BANK,
)
from .core import (
    DelayedMitigationQueue,
    MintTracker,
    RfmConfig,
    RfmController,
    RowPressMintTracker,
    equivalent_activations,
)
from .dram import DDR5Timing, DEFAULT_TIMING, DramDevice, RowDisturbanceModel
from .sim import (
    BankSimulator,
    EngineConfig,
    RankSimResult,
    RankSimulator,
    RankTrace,
    SimResult,
    Trace,
    run_attack,
    run_rank_attack,
)
from .trackers import (
    InDramParaTracker,
    MithrilTracker,
    MitigationRequest,
    ParfmTracker,
    PrctTracker,
    Tracker,
    available_trackers,
    bank_tracker_factory,
    make_tracker,
)

__version__ = "1.0.0"

__all__ = [
    "BANKS_PER_RANK",
    "BankSimulator",
    "CONCURRENT_BANKS",
    "DDR5Timing",
    "DEFAULT_BLAST_RADIUS",
    "DEFAULT_TARGET_TTF_YEARS",
    "DEFAULT_TIMING",
    "DelayedMitigationQueue",
    "DramDevice",
    "EngineConfig",
    "InDramParaTracker",
    "MAX_POSTPONED_REFRESHES",
    "MintTracker",
    "MithrilTracker",
    "MitigationRequest",
    "ParfmTracker",
    "PrctTracker",
    "REFI_PER_REFW",
    "ROWS_PER_BANK",
    "RankSimResult",
    "RankSimulator",
    "RankTrace",
    "RfmConfig",
    "RfmController",
    "RowDisturbanceModel",
    "RowPressMintTracker",
    "SimResult",
    "Trace",
    "Tracker",
    "available_trackers",
    "bank_tracker_factory",
    "equivalent_activations",
    "make_tracker",
    "run_attack",
    "run_rank_attack",
    "__version__",
]
