"""Analytical security models: the paper's Sections III-VII math."""

from .adaptive import (
    AdaConfig,
    ada_curve,
    ada_failure_probability,
    ada_mintrh,
    count_distribution,
    mint_dmq_mintrh_d,
    worst_case_ada_mintrh,
)
from .comparison import (
    TrackerComparison,
    indram_para_comparison,
    mc_para_probability_for,
    mint_comparison,
    mint_vs_prct_gap,
    mithril_comparison,
    parfm_comparison,
    prct_comparison,
    table3,
)
from .empirical import (
    exposure_row,
    result_matrix,
    shootout_table,
    survivors,
)
from .feinting import (
    FeintingResult,
    feinting_attack_prct,
    feinting_level_closed_form,
    prct_mintrh_d,
)
from .literature import TRH_HISTORY, lowest_known_trh_d, trend_factor
from .maxact import MaxActPoint, maxact_sweep
from .mintrh import (
    PatternSpec,
    mintrh,
    mintrh_double_sided,
    refw_failure_probability,
)
from .mithril_bound import (
    mithril_entries_for,
    mithril_mintrh_d,
    mithril_mintrh_d_postponed,
)
from .patterns import (
    mint_mintrh,
    mint_mintrh_d,
    pattern1_mintrh,
    pattern2_mintrh,
    pattern2_sweep,
    pattern3_mintrh,
    pattern3_sweep,
)
from .pride import (
    mint_vs_pride_gap,
    pride_loss_probability,
    pride_mintrh_d,
    pride_tardiness_acts,
    pride_worst_position_loss,
)
from .postponement import (
    PostponementRow,
    deterministic_unmitigated_acts,
    mint_dmq_vs_prct_gap,
    table4,
)
from .rfm_scaling import (
    RfmSchemeResult,
    mint_rfm_config,
    mint_slow_config,
    table5,
    ttf_sensitivity,
)
from .saroiu_wolman import (
    approx_failure_probability,
    auto_refresh_correction,
    failure_probability,
    failure_probability_sequence,
    mttf_years,
    target_refw_probability,
)
from .storage import (
    StorageBudget,
    dmq_storage,
    graphene_storage,
    mint_dmq_storage,
    mint_impress_storage,
    mint_storage,
    table9,
)
from .survival import (
    effective_mitigation_probability,
    mitigation_probability,
    most_vulnerable_position,
    non_selection_probability,
    relative_mitigation_curve,
    sampling_probability_no_overwrite,
    survival_probability,
    vulnerability_factor,
)

__all__ = [name for name in dir() if not name.startswith("_")]
