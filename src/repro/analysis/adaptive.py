"""Adaptive attacks on MINT+DMQ (paper Appendix B, Fig 21).

The best attack on MINT activates each row once per tREFI (stealth);
the best attack on the DMQ hammers the selected row while it waits in
the FIFO. The Adaptive Attack (ADA) morphs from the MINT-optimal
pattern-2 into the DMQ-optimal repeated hammering at a chosen
morphing point (MP).

Appendix B models the activation count of a row with a Markov chain:
at each tREFI the row's count A since its last mitigation either grows
by one (escape, probability q = 1 - p) or resets (selection). After MP
intervals the distribution is geometric:

    P(A = a) = p * q^a        for a < MP
    P(A = MP) = q^MP          (never selected this window)

and the tail mass telescopes: P(A >= a0) = q^a0. ADA then adds up to
365 deterministic activations (5 batched refresh windows) to the
chosen row before its guaranteed mitigation, so the row fails if
``A >= TRH - 365``. The attack repeats floor(8192 / (MP + 5)) times
per tREFW window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..constants import MAX_POSTPONED_REFRESHES, REFI_PER_REFW
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from .mintrh import PatternSpec, refw_failure_probability
from .saroiu_wolman import auto_refresh_correction, target_refw_probability


@dataclass(frozen=True)
class AdaConfig:
    """Parameters of the adaptive attack analysis.

    ``max_act`` is M, the activations per mitigation interval (73 for
    plain MINT, the RAA threshold for MINT+RFM). ``delay_intervals`` is
    how many intervals a pseudo-mitigated row can wait in the DMQ (4
    postponed REFs for plain MINT; JEDEC allows RFM to be delayed more,
    Section VII). The DMQ-phase hammering budget is
    ``(delay_intervals + 1) * max_act`` activations.
    """

    max_act: int = 73
    transitive: bool = True
    intervals_per_refw: float = REFI_PER_REFW
    delay_intervals: int = MAX_POSTPONED_REFRESHES
    target_ttf_years: float = 10_000.0

    @property
    def selection_p(self) -> float:
        slots = self.max_act + 1 if self.transitive else self.max_act
        return 1.0 / slots

    @property
    def extra_acts(self) -> int:
        """Deterministic ACTs the DMQ phase can land on one row (365)."""
        return (self.delay_intervals + 1) * self.max_act


def count_distribution(
    mp: int, p: float, refi_per_interval: float = 1.0
) -> np.ndarray:
    """Markov-chain distribution of a row's count after ``mp`` steps.

    Index a holds P(A = a) for a = 0..mp. Exposed for validation: the
    test suite cross-checks the geometric closed form against explicit
    chain evolution (paper Fig 20).
    """
    if mp < 0:
        raise ValueError("mp must be non-negative")
    q = 1.0 - p
    dist = np.zeros(mp + 1)
    dist[:-1] = p * q ** np.arange(mp)
    dist[-1] = q ** mp
    return dist


def evolve_markov_chain(mp: int, p: float) -> np.ndarray:
    """Explicit step-by-step evolution of the Fig 20 Markov chain."""
    dist = np.zeros(mp + 1)
    dist[0] = 1.0
    q = 1.0 - p
    for _ in range(mp):
        nxt = np.zeros_like(dist)
        nxt[0] = p * dist.sum()
        nxt[1:] = q * dist[:-1]
        dist = nxt
    return dist


def ada_failure_probability(
    trh: int,
    mp: int,
    cfg: AdaConfig,
    double_sided: bool = False,
) -> float:
    """Per-tREFW failure probability of ADA with morphing point ``mp``.

    Single-sided: one victim per attack row; the row fails if its count
    at MP plus the 365 DMQ-phase ACTs reaches TRH.

    Double-sided: a victim is sandwiched; its disturbance grows by 2
    per interval (both neighbours activated) and resets when *either*
    neighbour is selected (escape probability q^2 per interval). The
    DMQ phase adds 365 disturbances to the victim; failure needs total
    disturbance >= 2 * TRH-D.
    """
    if trh < 1:
        raise ValueError("trh must be >= 1")
    if mp < 1:
        raise ValueError("mp must be >= 1")
    p = cfg.selection_p
    q = 1.0 - p
    extra = cfg.extra_acts
    rows = float(cfg.max_act)
    if double_sided:
        # Victim-centric chain: escape per interval = q^2; disturbance
        # grows 2/interval. Need a0 intervals with 2*a0 + extra >= 2*T.
        escape = q * q
        victims = rows / 2.0
        a0 = max(0, math.ceil((2 * trh - extra) / 2.0))
        tail = escape ** a0 if a0 <= mp else 0.0
        per_round = victims * tail
    else:
        a0 = max(0, trh - extra)
        tail = q ** a0 if a0 <= mp else 0.0
        per_round = rows * tail
    rounds = max(1, int(cfg.intervals_per_refw // (mp + cfg.delay_intervals + 1)))
    refi_per_interval = REFI_PER_REFW / cfg.intervals_per_refw
    correction = auto_refresh_correction(
        min(a0, mp) * refi_per_interval, REFI_PER_REFW
    )
    return min(1.0, per_round * rounds * correction)


def baseline_failure_probability(
    trh: int, cfg: AdaConfig, double_sided: bool = False
) -> float:
    """Failure probability of the non-morphing pattern-2 component.

    The DMQ delays every mitigation by up to ``delay_intervals``
    intervals, during which the pattern lands one more activation per
    interval on the selected row — the paper's +4 adjustment (§VI-D).
    """
    p = cfg.selection_p
    dmq_extra = cfg.delay_intervals  # one act per interval while queued
    if double_sided:
        spec = PatternSpec(
            p=1.0 - (1.0 - p) ** 2,
            trials_per_refw=cfg.intervals_per_refw,
            acts_per_trial=2.0,
            rows=max(1.0, cfg.max_act / 2.0),
            refi_per_trial=REFI_PER_REFW / cfg.intervals_per_refw,
        )
        effective = max(1, 2 * trh - dmq_extra)
        return refw_failure_probability(spec, effective)
    spec = PatternSpec(
        p=p,
        trials_per_refw=cfg.intervals_per_refw,
        acts_per_trial=1.0,
        rows=float(cfg.max_act),
        refi_per_trial=REFI_PER_REFW / cfg.intervals_per_refw,
    )
    effective = max(1, trh - dmq_extra)
    return refw_failure_probability(spec, effective)


def ada_mintrh(
    mp: int,
    cfg: AdaConfig | None = None,
    double_sided: bool = False,
    timing: DDR5Timing = DEFAULT_TIMING,
) -> int:
    """MinTRH of MINT+DMQ under ADA at morphing point ``mp``."""
    cfg = cfg or AdaConfig()
    target = target_refw_probability(cfg.target_ttf_years, timing)

    def total(trh: int) -> float:
        return ada_failure_probability(
            trh, mp, cfg, double_sided
        ) + baseline_failure_probability(trh, cfg, double_sided)

    lo, hi = 1, 4 * cfg.extra_acts + int(cfg.intervals_per_refw)
    if total(lo) <= target:
        return lo
    while total(hi) > target:
        hi *= 2
        if hi > 1 << 32:
            raise RuntimeError("ADA MinTRH search diverged")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if total(mid) <= target:
            hi = mid
        else:
            lo = mid
    return hi


def ada_curve(
    morphing_points: list[int],
    cfg: AdaConfig | None = None,
    double_sided: bool = False,
) -> list[tuple[int, int]]:
    """The Fig 21 series: (MP, MinTRH) for each morphing point."""
    cfg = cfg or AdaConfig()
    return [
        (mp, ada_mintrh(mp, cfg, double_sided)) for mp in morphing_points
    ]


def worst_case_ada_mintrh(
    cfg: AdaConfig | None = None,
    double_sided: bool = False,
    mp_step: int = 64,
) -> tuple[int, int]:
    """(best MP, MinTRH) maximised over morphing points.

    This is the number the paper reports as "MinTRH under an adaptive
    attack": 2899 single-sided, 1482 double-sided for MINT+DMQ.
    """
    cfg = cfg or AdaConfig()
    hi = int(cfg.intervals_per_refw) - cfg.delay_intervals - 1
    best_mp, best = 1, 0
    for mp in range(mp_step, hi, mp_step):
        value = ada_mintrh(mp, cfg, double_sided)
        if value > best:
            best, best_mp = value, mp
    # Refine around the coarse winner.
    for mp in range(max(1, best_mp - mp_step), min(hi, best_mp + mp_step)):
        value = ada_mintrh(mp, cfg, double_sided)
        if value > best:
            best, best_mp = value, mp
    return best_mp, best


def mint_dmq_mintrh_d(
    cfg: AdaConfig | None = None,
) -> int:
    """Headline number: MINT+DMQ double-sided threshold under ADA (1482)."""
    _mp, value = worst_case_ada_mintrh(cfg, double_sided=True)
    return value
