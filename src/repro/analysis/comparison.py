"""Cross-tracker security comparison (paper Table III).

Assembles, for each tracker family, the double-sided MinTRH, the
tracking entries per bank, and transitive-attack susceptibility, using
the per-design analyses elsewhere in this package:

=================  ======= ==========  ========  ==========
Design             Centric MinTRH-D    Entries   Transitive
=================  ======= ==========  ========  ==========
PRCT               past    623         128K      immune
Mithril            past    1400        677       immune
PARFM              past    4096        73        vulnerable
InDRAM-PARA        present 3732        1         immune
MINT               future  1400        1         immune
=================  ======= ==========  ========  ==========
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import REFI_PER_REFW, ROWS_PER_BANK
from .feinting import feinting_attack_prct
from .mintrh import PatternSpec, mintrh, mintrh_double_sided
from .mithril_bound import mithril_entries_for, mithril_mintrh_d
from .patterns import mint_mintrh, pattern2_mintrh
from .survival import effective_mitigation_probability


@dataclass(frozen=True)
class TrackerComparison:
    """One row of Table III."""

    name: str
    centric: str
    mintrh_d: int
    entries: int
    transitive_vulnerable: bool


def prct_comparison(
    max_act: int = 73, rows_per_bank: int = ROWS_PER_BANK
) -> TrackerComparison:
    """PRCT bounded by the Feinting attack (Section V-G)."""
    result = feinting_attack_prct(max_act)
    return TrackerComparison(
        name="PRCT",
        centric="past",
        mintrh_d=result.mintrh_d,
        entries=rows_per_bank,
        transitive_vulnerable=False,
    )


def mithril_comparison(
    target_mintrh_d: int = 1400, max_act: int = 73
) -> TrackerComparison:
    """Mithril sized to match MINT's threshold (paper: 677 entries)."""
    entries = mithril_entries_for(target_mintrh_d, max_act)
    return TrackerComparison(
        name="Mithril",
        centric="past",
        mintrh_d=int(mithril_mintrh_d(entries, max_act)),
        entries=entries,
        transitive_vulnerable=False,
    )


def parfm_comparison(max_act: int = 73) -> TrackerComparison:
    """PARFM: transitive attacks dominate (Section V-G).

    PARFM mitigates exactly one uniformly chosen buffered activation per
    REF, so its direct-attack threshold resembles MINT's — but only
    demand activations are buffered, so a Half-Double pattern earns
    8192 silent victim refreshes per tREFW: MinTRH 8192, D = 4096.
    """
    direct = pattern2_mintrh(max_act, max_act, transitive=False)
    transitive = REFI_PER_REFW
    return TrackerComparison(
        name="PARFM",
        centric="past",
        mintrh_d=mintrh_double_sided(max(direct, transitive)),
        entries=max_act,
        transitive_vulnerable=True,
    )


def indram_para_comparison(max_act: int = 73) -> TrackerComparison:
    """InDRAM-PARA: the most vulnerable position drives MinTRH (§III-C).

    The attacker parks a distinct row at every position of the window;
    each position K has mitigation probability ``p * (1-p)^(M-K)``.
    The union over positions is dominated by position 1 with effective
    probability ``p * (1-p)^(M-1)`` ~= p / 2.7. Direct attacks dominate
    transitive ones at this threshold, so PARA counts as immune.
    """
    p_eff = effective_mitigation_probability(max_act)
    spec = PatternSpec(
        p=p_eff,
        trials_per_refw=REFI_PER_REFW,
        acts_per_trial=1.0,
        rows=float(max_act),
        refi_per_trial=1.0,
    )
    single = mintrh(spec)
    return TrackerComparison(
        name="InDRAM-PARA",
        centric="present",
        mintrh_d=mintrh_double_sided(single),
        entries=1,
        transitive_vulnerable=False,
    )


def mint_comparison(max_act: int = 73) -> TrackerComparison:
    """MINT with the transitive slot (Section V)."""
    single = mint_mintrh(max_act, transitive=True)
    return TrackerComparison(
        name="MINT",
        centric="future",
        mintrh_d=mintrh_double_sided(single),
        entries=1,
        transitive_vulnerable=False,
    )


def table3(max_act: int = 73) -> list[TrackerComparison]:
    """All rows of Table III, in the paper's order."""
    mint_row = mint_comparison(max_act)
    return [
        prct_comparison(max_act),
        mithril_comparison(mint_row.mintrh_d, max_act),
        parfm_comparison(max_act),
        indram_para_comparison(max_act),
        mint_row,
    ]


def mc_para_probability_for(
    target_mintrh_d: int, max_act: int = 73,
    target_ttf_years: float = 10_000.0,
) -> float:
    """DRFM probability that gives MC-PARA a target threshold (§VIII-E).

    MC-side PARA mitigates each activation with probability p via a
    blocking DRFM; its failure model is the uniform Saroiu-Wolman one
    (no survival/selection pathologies), so tuning p to "similar
    MinTRH" as MINT lands near MINT's own 1/74 — which is how the
    Fig 17 comparison is configured.
    """
    if target_mintrh_d < 1:
        raise ValueError("target_mintrh_d must be >= 1")
    lo, hi = 1e-6, 0.999
    for _ in range(60):
        mid = (lo + hi) / 2.0
        spec = PatternSpec(
            p=mid,
            trials_per_refw=REFI_PER_REFW,
            acts_per_trial=1.0,
            rows=float(max_act),
            refi_per_trial=1.0,
        )
        achieved = mintrh_double_sided(mintrh(spec, target_ttf_years))
        if achieved > target_mintrh_d:
            lo = mid  # need more mitigation
        else:
            hi = mid
    return hi


def mint_vs_prct_gap(max_act: int = 73) -> float:
    """The headline bound: MINT within ~2.25x of idealized PRCT."""
    mint_row = mint_comparison(max_act)
    prct_row = prct_comparison(max_act)
    return mint_row.mintrh_d / prct_row.mintrh_d
