"""Tables and figures built from experiment-runner results.

The analytic modules in this package derive the paper's numbers from
closed forms; this one derives the *empirical* counterparts from
:class:`~repro.exp.result.ExperimentResult` records, so the shootout
table and the postponement blow-up read straight from a (possibly
cached) grid run instead of hand-rolled simulation loops.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..exp.result import ExperimentResult


def result_matrix(
    results: Iterable[ExperimentResult],
) -> dict[tuple[str, str], ExperimentResult]:
    """Index results by (tracker label, attack name).

    Later entries win on collision, matching "most recent run" intuition
    when a store accumulates history.
    """
    return {(r.tracker, r.attack): r for r in results}


def shootout_table(
    results: Iterable[ExperimentResult],
    trackers: Sequence[str],
    attacks: Sequence[str],
) -> str:
    """Render the tracker-shootout matrix (ok / FLIP per cell).

    ``trackers`` and ``attacks`` fix the presentation order; the storage
    column comes from the per-result tracker stats.
    """
    matrix = result_matrix(results)
    header = f"{'tracker':<10} {'bytes':>8} " + "".join(
        f"{attack:>16}" for attack in attacks
    )
    lines = [header, "-" * len(header)]
    for tracker in trackers:
        cells = []
        storage = "?"
        for attack in attacks:
            result = matrix.get((tracker, attack))
            if result is None:
                cells.append("-")
                continue
            storage = f"{result.tracker_stats.get('storage_bits', 0) / 8:,.0f}"
            cells.append("FLIP" if result.failed else "ok")
        lines.append(
            f"{tracker:<10} {storage:>8} "
            + "".join(f"{cell:>16}" for cell in cells)
        )
    return "\n".join(lines)


def survivors(results: Iterable[ExperimentResult]) -> list[str]:
    """Tracker labels that survived every attack they faced."""
    failed: set[str] = set()
    seen: list[str] = []
    for result in results:
        if result.tracker not in seen:
            seen.append(result.tracker)
        if result.failed:
            failed.add(result.tracker)
    return [tracker for tracker in seen if tracker not in failed]


def exposure_row(
    result: ExperimentResult, targets: Sequence[int]
) -> dict[str, float | int]:
    """Postponement-study accounting for one decoy-attack result.

    Returns the peak unmitigated-ACT count over ``targets`` plus the
    DMQ counters, i.e. one row of the depth-sweep table (Section VI).
    """
    peak = max(result.max_unmitigated(target) for target in targets)
    return {
        "tracker": result.tracker,
        "attack": result.attack,
        "peak_unmitigated": peak,
        "overflow_drops": result.tracker_stats.get("overflow_drops", 0),
        "storage_bytes": result.tracker_stats.get("storage_bits", 0) / 8,
        "pseudo_mitigations": result.tracker_stats.get(
            "pseudo_mitigations", 0
        ),
    }
