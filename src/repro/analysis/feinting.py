"""The Feinting attack on counter-based trackers (paper Section V-G).

PRCT mitigates the row with the highest counter at each REF. The
Feinting attack (from ProTRR) defeats maximal-count selection by
keeping *all* aggressor counters equal: the attacker spreads the M
activations of each tREFI across the surviving aggressor set, so each
mitigation removes a row whose count equals the common water level, and
the level keeps rising as the set shrinks.

Starting from 8192 rows, the level after the set shrinks to two rows is
approximately M * (H_8192 - 1) ~= 627; the paper reports 623 for the
exact discrete schedule. With the victim sandwiched between the last
two rows, MinTRH = 2 * level (MinTRH-D = level).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import REFI_PER_REFW


@dataclass(frozen=True)
class FeintingResult:
    """Outcome of the Feinting schedule against a PRCT-style tracker."""

    final_rows: int
    per_row_activations: int
    mintrh: int
    mintrh_d: int
    rounds_used: int


def feinting_attack_prct(
    max_act: int = 73,
    initial_rows: int = REFI_PER_REFW,
    mitigations_per_round: int = 1,
    stop_rows: int = 2,
) -> FeintingResult:
    """Simulate the exact integer Feinting schedule against PRCT.

    Each round (tREFI) the attacker distributes ``max_act`` activations
    to equalise counts across surviving rows (water-filling), then the
    tracker removes the ``mitigations_per_round`` highest rows. The
    schedule must complete within one tREFW (8192 rounds) or the
    rolling auto-refresh resets the counts.

    Returns the per-row activation level of the last ``stop_rows``
    rows, which bounds PRCT's MinTRH (Section V-G: 623 double-sided).
    """
    if initial_rows < stop_rows:
        raise ValueError("initial_rows must be >= stop_rows")
    if mitigations_per_round < 1:
        raise ValueError("mitigations_per_round must be >= 1")

    rows = initial_rows
    # All surviving rows share the same integer count; `remainder`
    # carries activations that did not divide evenly this round.
    level = 0
    remainder = 0
    rounds = 0
    max_rounds = REFI_PER_REFW
    while rows > stop_rows and rounds < max_rounds:
        budget = max_act + remainder
        level += budget // rows
        remainder = budget % rows
        # The tracker mitigates the highest-count rows; all are equal,
        # so the set simply shrinks.
        rows -= mitigations_per_round
        rounds += 1
    if rows > stop_rows:
        # Ran out of tREFW budget: the attack cannot finish; clamp.
        rows = stop_rows
    # Final burst: remaining rounds all hammer the last two rows, but a
    # mitigation now removes one of them each REF, so at most one more
    # round of gain is available before the pair is broken.
    level += max_act // max(rows, 1)
    per_row = level
    return FeintingResult(
        final_rows=rows,
        per_row_activations=per_row,
        mintrh=2 * per_row,
        mintrh_d=per_row,
        rounds_used=rounds,
    )


def feinting_level_closed_form(
    max_act: int = 73, initial_rows: int = REFI_PER_REFW
) -> float:
    """Analytic water level: M * (H_n - 1) for n starting rows."""
    harmonic = math.log(initial_rows) + 0.5772156649 + 1.0 / (2 * initial_rows)
    return max_act * (harmonic - 1.0)


def prct_mintrh_d(
    max_act: int = 73,
    postponed_refreshes: int = 0,
) -> int:
    """PRCT's double-sided MinTRH (paper: 623; 769 with postponement).

    Refresh postponement adds ``4 * M`` unmitigated activations to the
    pair, i.e. ``2 * M`` per row of a double-sided attack (§VI-A).
    """
    base = feinting_attack_prct(max_act).mintrh_d
    return base + (postponed_refreshes * max_act) // 2
