"""Terminal rendering for the paper's figures.

The benchmark harness prints numeric series; these helpers render them
as ASCII charts so the *shape* claims (dips, peaks, plateaus, linear
growth) are visible at a glance in test output and examples.
"""

from __future__ import annotations

from typing import Sequence


def ascii_plot(
    ys: Sequence[float],
    xs: Sequence[float] | None = None,
    height: int = 12,
    width: int = 64,
    label: str = "",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render one series as an ASCII chart.

    Values are resampled to ``width`` columns and quantised to
    ``height`` rows; the returned string includes a y-axis with the
    min/max values and an optional label line.
    """
    if not ys:
        raise ValueError("ys must be non-empty")
    if height < 2 or width < 2:
        raise ValueError("height and width must be >= 2")
    values = [float(v) for v in ys]
    lo = min(values) if y_min is None else y_min
    hi = max(values) if y_max is None else y_max
    if hi <= lo:
        hi = lo + 1.0

    columns = _resample(values, width)
    rows = [[" "] * width for _ in range(height)]
    for x, value in enumerate(columns):
        level = (value - lo) / (hi - lo)
        y = min(height - 1, max(0, round(level * (height - 1))))
        rows[height - 1 - y][x] = "*"

    lines = []
    if label:
        lines.append(label)
    for index, row in enumerate(rows):
        if index == 0:
            prefix = f"{hi:>10.4g} |"
        elif index == height - 1:
            prefix = f"{lo:>10.4g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    if xs is not None and len(xs) >= 2:
        lines.append(
            " " * 12 + f"{xs[0]:<10.4g}" + " " * (width - 20)
            + f"{xs[-1]:>10.4g}"
        )
    return "\n".join(lines)


def ascii_multi_plot(
    series: dict[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
) -> str:
    """Overlay several series, one glyph each, sharing the y-scale."""
    if not series:
        raise ValueError("series must be non-empty")
    glyphs = "*o+x#@"
    all_values = [float(v) for ys in series.values() for v in ys]
    lo, hi = min(all_values), max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    rows = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, ys) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        legend.append(f"{glyph}={name}")
        for x, value in enumerate(_resample([float(v) for v in ys], width)):
            level = (value - lo) / (hi - lo)
            y = min(height - 1, max(0, round(level * (height - 1))))
            if rows[height - 1 - y][x] == " ":
                rows[height - 1 - y][x] = glyph
    lines = ["  ".join(legend)]
    for index, row in enumerate(rows):
        if index == 0:
            prefix = f"{hi:>10.4g} |"
        elif index == height - 1:
            prefix = f"{lo:>10.4g} |"
        else:
            prefix = " " * 10 + " |"
        lines.append(prefix + "".join(row))
    return "\n".join(lines)


def _resample(values: list[float], width: int) -> list[float]:
    """Linear-interpolate ``values`` onto ``width`` columns."""
    if len(values) == 1:
        return values * width
    out = []
    span = len(values) - 1
    for x in range(width):
        position = x * span / (width - 1)
        left = int(position)
        right = min(left + 1, span)
        fraction = position - left
        out.append(values[left] * (1 - fraction) + values[right] * fraction)
    return out
