"""Literature data tables reproduced from the paper.

Table II (Rowhammer threshold over time) is measurement data from the
cited characterisation studies, recorded here so the benchmark harness
can print the table and the examples can pick realistic thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TrhGeneration:
    """One row of Table II."""

    generation: str
    trh_single_sided: tuple[int, int] | None
    trh_double_sided: tuple[int, int] | None
    source: str


#: Table II: Rowhammer threshold over DRAM generations.
TRH_HISTORY = [
    TrhGeneration("DDR3-old", (139_000, 139_000), None, "Kim et al. ISCA'14"),
    TrhGeneration("DDR3-new", None, (22_400, 22_400), "Kim et al. ISCA'20"),
    TrhGeneration("DDR4", None, (10_000, 17_500), "Kim et al. ISCA'20"),
    TrhGeneration(
        "LPDDR4", None, (4_800, 9_000), "Kim et al. ISCA'20 / Half-Double"
    ),
]


def lowest_known_trh_d() -> int:
    """The most pessimistic measured double-sided threshold (4.8K)."""
    lows = [
        row.trh_double_sided[0]
        for row in TRH_HISTORY
        if row.trh_double_sided is not None
    ]
    return min(lows)


def trend_factor() -> float:
    """How much TRH dropped across the decade covered by Table II."""
    first = TRH_HISTORY[0].trh_single_sided[0]
    return first / lowest_known_trh_d()
