"""MaxACT sensitivity sweep (paper Appendix A, Fig 18).

JEDEC's DDR5 speed bins put MaxACT between 67 and 78; the appendix
sweeps 65-80 and shows that (a) MinTRH-D grows roughly linearly with
MaxACT for both MINT and InDRAM-PARA (more slots per interval mean a
lower per-activation mitigation probability), and (b) the relative gap
between them stays ~2.7x across the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import REFI_PER_REFW
from .mintrh import PatternSpec, mintrh, mintrh_double_sided
from .patterns import mint_mintrh
from .survival import effective_mitigation_probability


@dataclass(frozen=True)
class MaxActPoint:
    """One x-position of Fig 18."""

    max_act: int
    mint_mintrh_d: int
    para_mintrh_d: int

    @property
    def ratio(self) -> float:
        return self.para_mintrh_d / self.mint_mintrh_d


def mint_mintrh_d_for_maxact(
    max_act: int, target_ttf_years: float = 10_000.0
) -> int:
    """MINT's double-sided threshold at a given MaxACT."""
    return mintrh_double_sided(
        mint_mintrh(max_act, transitive=True, target_ttf_years=target_ttf_years)
    )


def para_mintrh_d_for_maxact(
    max_act: int, target_ttf_years: float = 10_000.0
) -> int:
    """InDRAM-PARA's double-sided threshold at a given MaxACT."""
    p_eff = effective_mitigation_probability(max_act)
    spec = PatternSpec(
        p=p_eff,
        trials_per_refw=REFI_PER_REFW,
        acts_per_trial=1.0,
        rows=float(max_act),
        refi_per_trial=1.0,
    )
    return mintrh_double_sided(mintrh(spec, target_ttf_years))


def maxact_sweep(
    max_acts: list[int] | None = None, target_ttf_years: float = 10_000.0
) -> list[MaxActPoint]:
    """The Fig 18 series over MaxACT = 65..80."""
    values = max_acts or list(range(65, 81))
    return [
        MaxActPoint(
            max_act=m,
            mint_mintrh_d=mint_mintrh_d_for_maxact(m, target_ttf_years),
            para_mintrh_d=para_mintrh_d_for_maxact(m, target_ttf_years),
        )
        for m in values
    ]
