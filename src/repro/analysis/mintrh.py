"""Minimum Tolerated TRH: the paper's key figure of merit (§IV-C).

``MinTRH`` is the lowest Rowhammer threshold for which a design meets
the Target-MTTF (default: 10,000 years per bank). Devices whose actual
TRH is at or above the design's MinTRH are protected.

The machinery here is pattern-generic. A :class:`PatternSpec` describes
how an attack exercises one row: the per-trial mitigation probability,
how many trials the row gets per tREFW, how many activations one trial
represents (1 for single-copy patterns; c for pattern-3, where a trial
is a whole tREFI containing c copies), and a union-bound multiplier for
the number of simultaneously attacked rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..constants import REFI_PER_REFW
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from .saroiu_wolman import (
    approx_failure_probability,
    auto_refresh_correction,
    failure_probability,
    target_refw_probability,
)


@dataclass(frozen=True)
class PatternSpec:
    """How an attack pattern stresses one row.

    Attributes
    ----------
    p:
        Probability that one trial mitigates the row.
    trials_per_refw:
        Trials the row receives within one tREFW window.
    acts_per_trial:
        Demand activations the row receives per trial (TRH is counted
        in activations, trials in mitigation opportunities).
    rows:
        Union-bound multiplier: number of rows attacked concurrently
        (failure anywhere counts, Section V-D pattern-2).
    refi_per_trial:
        tREFI intervals one trial spans, for the auto-refresh factor.
    """

    p: float
    trials_per_refw: float
    acts_per_trial: float = 1.0
    rows: float = 1.0
    refi_per_trial: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        if self.trials_per_refw <= 0:
            raise ValueError("trials_per_refw must be positive")
        if self.acts_per_trial <= 0:
            raise ValueError("acts_per_trial must be positive")
        if self.rows < 1:
            raise ValueError("rows must be >= 1")


def refw_failure_probability(
    spec: PatternSpec, trh: int, exact: bool = False
) -> float:
    """Per-tREFW failure probability of the pattern at threshold ``trh``.

    Applies the Saroiu-Wolman model at trial granularity, the rolling
    auto-refresh correction, and the union bound over attacked rows.
    """
    if trh < 1:
        raise ValueError("trh must be >= 1")
    trials_needed = max(1, math.ceil(trh / spec.acts_per_trial))
    n_trials = int(spec.trials_per_refw)
    if trials_needed > n_trials:
        return 0.0
    if spec.p >= 1.0:
        # Every trial mitigates: a run of even one escaping trial is
        # impossible, so probabilistic failure cannot occur.
        return 0.0
    if exact:
        per_row = failure_probability(n_trials, spec.p, trials_needed)
    else:
        per_row = approx_failure_probability(n_trials, spec.p, trials_needed)
    correction = auto_refresh_correction(trials_needed * spec.refi_per_trial)
    return min(1.0, per_row * spec.rows * correction)


def mintrh(
    spec: PatternSpec,
    target_ttf_years: float = 10_000.0,
    timing: DDR5Timing = DEFAULT_TIMING,
    hi: int | None = None,
    exact: bool = False,
) -> int:
    """Smallest TRH at which the pattern meets the Target-MTTF.

    Binary searches the monotone boundary of
    ``refw_failure_probability(spec, T) <= target``.
    """
    target = target_refw_probability(target_ttf_years, timing)
    if hi is None:
        hi = int(spec.trials_per_refw * spec.acts_per_trial) + 1
    lo = 1
    if refw_failure_probability(spec, lo, exact=exact) <= target:
        return lo
    # refw failure probability is non-increasing in T; find boundary.
    while refw_failure_probability(spec, hi, exact=exact) > target:
        hi *= 2
        if hi > 1 << 40:
            raise RuntimeError("MinTRH search diverged; pattern never safe")
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if refw_failure_probability(spec, mid, exact=exact) <= target:
            hi = mid
        else:
            lo = mid
    return hi


def mintrh_double_sided(single_sided_mintrh: int) -> int:
    """Per-row double-sided threshold (Section V-F).

    MINT's probabilistic selection means a sandwiched victim enjoys the
    mitigation chances of *both* neighbours, so the total activations
    over the pair cannot exceed MinTRH: each row gets half.
    """
    return single_sided_mintrh // 2


def scale_pattern(spec: PatternSpec, **changes) -> PatternSpec:
    """Convenience for sweeps: a modified copy of ``spec``."""
    return replace(spec, **changes)
