"""Mithril's entries-vs-threshold bound (paper Sections II-G, V-G).

Mithril's Theorem 1 bounds the TRH a Counter-based Summary with m
entries tolerates at a given mitigation rate. We reconstruct the bound
from its two components:

* the **feinting term** ``M * H_m`` — inside the m tracked rows, the
  attacker can play the Feinting game (equalised counters, one
  mitigation per tREFI), raising the water level by the harmonic sum;
* the **sketch undercount** ``W / m`` — a Space-Saving summary with m
  entries can under-serve a row by at most (total stream length)/m,
  with W = M * 8192 activations per tREFW.

    MinTRH(m) ~= M * H_m + W / m

The paper's calibration point — 677 entries for MinTRH-D 1400 — is
reproduced within a fraction of a percent (our inverse yields 679).
"""

from __future__ import annotations

import math

from ..constants import REFI_PER_REFW

_EULER_GAMMA = 0.5772156649015329


def _harmonic(m: int) -> float:
    if m < 1:
        raise ValueError("m must be >= 1")
    if m < 64:
        return sum(1.0 / i for i in range(1, m + 1))
    return math.log(m) + _EULER_GAMMA + 1.0 / (2 * m)


def mithril_mintrh_d(num_entries: int, max_act: int = 73) -> float:
    """Double-sided MinTRH tolerated by an m-entry Mithril tracker.

    For counter-based schemes the spatial (double-sided) pattern doubles
    the victim's exposure (Section V-F), so the per-row double-sided
    threshold equals the single-row bound.
    """
    stream = max_act * REFI_PER_REFW
    return max_act * _harmonic(num_entries) + stream / num_entries


def mithril_entries_for(
    mintrh_d: float, max_act: int = 73, hi: int = 1 << 20
) -> int:
    """Minimum entries per bank for a target double-sided threshold.

    The bound is monotonically... non-monotone: the harmonic term grows
    with m while the undercount shrinks, so the curve has a minimum.
    We return the smallest m on the shrinking side that meets the
    target, matching how the paper sizes the tracker (677 for 1400).
    """
    if mintrh_d <= 0:
        raise ValueError("mintrh_d must be positive")
    # The bound M*H_m + W/m is minimised at m* = W/M (= 8192).
    stream = max_act * REFI_PER_REFW
    m_star = max(1, int(stream / max_act))
    floor_value = mithril_mintrh_d(m_star, max_act)
    if mintrh_d < floor_value * 0.5:
        raise ValueError(
            f"target {mintrh_d} unreachable: bound floor ~{floor_value:.0f}"
        )
    for m in range(1, hi):
        if mithril_mintrh_d(m, max_act) <= mintrh_d:
            return m
        # Past the minimum the bound only grows; give up.
        if m > 4 * m_star and mithril_mintrh_d(m, max_act) > mintrh_d:
            break
    raise ValueError(f"no entry count within {hi} meets target {mintrh_d}")


def mithril_mintrh_d_postponed(
    num_entries: int, max_act: int = 73, postponed_refreshes: int = 4
) -> float:
    """Threshold under refresh postponement (+2M per row => +146 D)."""
    return mithril_mintrh_d(num_entries, max_act) + (
        postponed_refreshes * max_act
    ) / 2.0
