"""Worst-case pattern analysis for MINT (paper Section V-D, Figs 10/11).

MINT's three structural properties (selection localised to one tREFI;
position-independent selection; n copies => n-times selection chance)
reduce the attacker's search space to three pattern families:

* **Pattern-1** (single row, single copy per tREFI): MinTRH 2461.
* **Pattern-2** (k rows, single copy each): failure probability scales
  with k; peaks at k = M = 73 (MinTRH 2763 without the transitive slot,
  2800 with it). Beyond k = M the pattern spans multiple tREFI and
  weakens (Fig 10).
* **Pattern-3** (k rows, c copies each): a row occupying c of the M
  slots is selected with probability c/M per tREFI — more copies mean
  faster mitigation, so the pattern collapses for c >= 4 (Fig 11).

The module maps each family onto a :class:`~repro.analysis.mintrh.PatternSpec`.
"""

from __future__ import annotations

import math

from ..constants import REFI_PER_REFW
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from .mintrh import PatternSpec, mintrh, mintrh_double_sided


def _selection_slots(max_act: int, transitive: bool) -> int:
    """URAND range: M slots, plus the transitive slot 0 when enabled."""
    return max_act + 1 if transitive else max_act


def pattern1_spec(max_act: int = 73, transitive: bool = False) -> PatternSpec:
    """Single row, one activation per tREFI, 8192 repeats."""
    p = 1.0 / _selection_slots(max_act, transitive)
    return PatternSpec(
        p=p,
        trials_per_refw=REFI_PER_REFW,
        acts_per_trial=1.0,
        rows=1.0,
        refi_per_trial=1.0,
    )


def pattern2_spec(
    k: int, max_act: int = 73, transitive: bool = False
) -> PatternSpec:
    """k rows, one activation each per round.

    For k <= M all rows fit in one tREFI (each row hammered once per
    tREFI). For k > M the pattern spans ceil(k/M) tREFI per round
    (the "Multi-TREFI" regime of Fig 10), so each row gets fewer trials
    per tREFW.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    p = 1.0 / _selection_slots(max_act, transitive)
    rounds_refi = max(1.0, k / max_act)
    return PatternSpec(
        p=p,
        trials_per_refw=REFI_PER_REFW / rounds_refi,
        acts_per_trial=1.0,
        rows=float(k),
        refi_per_trial=rounds_refi,
    )


def pattern3_spec(
    copies: int, max_act: int = 73, transitive: bool = False
) -> PatternSpec:
    """floor(M/c) rows, c copies each, all slots filled each tREFI.

    One *trial* is an entire tREFI: the row occupies c of the selection
    slots, so its per-tREFI mitigation probability is c / slots — this
    is the property that makes many-copy patterns ineffective against
    MINT (selection is an exact uniform draw over slots, not IID
    per-activation sampling).
    """
    if not 1 <= copies <= max_act:
        raise ValueError(f"copies must be in [1, {max_act}]")
    slots = _selection_slots(max_act, transitive)
    rows = max(1, max_act // copies)
    return PatternSpec(
        p=min(1.0, copies / slots),
        trials_per_refw=REFI_PER_REFW,
        acts_per_trial=float(copies),
        rows=float(rows),
        refi_per_trial=1.0,
    )


# ----------------------------------------------------------------------
# MinTRH entry points
# ----------------------------------------------------------------------

def pattern1_mintrh(
    max_act: int = 73,
    transitive: bool = False,
    target_ttf_years: float = 10_000.0,
    timing: DDR5Timing = DEFAULT_TIMING,
) -> int:
    """MinTRH for pattern-1 (paper: 2461 at M=73, p=1/73)."""
    return mintrh(pattern1_spec(max_act, transitive), target_ttf_years, timing)


def pattern2_mintrh(
    k: int,
    max_act: int = 73,
    transitive: bool = False,
    target_ttf_years: float = 10_000.0,
    timing: DDR5Timing = DEFAULT_TIMING,
) -> int:
    """MinTRH for pattern-2 with k attack rows (Fig 10)."""
    return mintrh(pattern2_spec(k, max_act, transitive), target_ttf_years, timing)


def pattern3_mintrh(
    copies: int,
    max_act: int = 73,
    transitive: bool = False,
    target_ttf_years: float = 10_000.0,
    timing: DDR5Timing = DEFAULT_TIMING,
) -> int:
    """MinTRH for pattern-3 with c copies per row (Fig 11).

    When c fills every slot the per-tREFI selection is guaranteed
    (p = 1 without the transitive slot); probabilistic failure is then
    impossible and the deterministic bound of ~2c activations (one
    interval plus the mitigation latency) applies.
    """
    spec = pattern3_spec(copies, max_act, transitive)
    if spec.p >= 1.0:
        return 2 * copies
    return mintrh(spec, target_ttf_years, timing)


def pattern2_sweep(
    ks: list[int] | None = None,
    max_act: int = 73,
    transitive: bool = False,
    target_ttf_years: float = 10_000.0,
) -> list[tuple[int, int]]:
    """The Fig 10 series: (k, MinTRH) for k = 1..2M."""
    if ks is None:
        ks = list(range(1, 2 * max_act + 1))
    return [
        (k, pattern2_mintrh(k, max_act, transitive, target_ttf_years))
        for k in ks
    ]


def pattern3_sweep(
    copies_list: list[int] | None = None,
    max_act: int = 73,
    transitive: bool = False,
    target_ttf_years: float = 10_000.0,
) -> list[tuple[int, int]]:
    """The Fig 11 series: (c, MinTRH) for c = 1..M."""
    if copies_list is None:
        copies_list = list(range(1, max_act + 1))
    return [
        (c, pattern3_mintrh(c, max_act, transitive, target_ttf_years))
        for c in copies_list
    ]


def mint_mintrh(
    max_act: int = 73,
    transitive: bool = True,
    target_ttf_years: float = 10_000.0,
    timing: DDR5Timing = DEFAULT_TIMING,
) -> int:
    """MINT's overall MinTRH: worst case over the pattern families.

    Pattern-2 at k = M dominates (Section V-D key takeaway); with the
    transitive slot the selection probability is 1/74 and the paper's
    number is 2800.
    """
    candidates = [
        pattern1_mintrh(max_act, transitive, target_ttf_years, timing),
        pattern2_mintrh(max_act, max_act, transitive, target_ttf_years, timing),
    ]
    # A few pattern-3 points; they never dominate but we verify that.
    for copies in (2, 3, 4):
        if copies <= max_act:
            candidates.append(
                pattern3_mintrh(copies, max_act, transitive, target_ttf_years, timing)
            )
    return max(candidates)


def mint_mintrh_d(
    max_act: int = 73,
    transitive: bool = True,
    target_ttf_years: float = 10_000.0,
    timing: DDR5Timing = DEFAULT_TIMING,
) -> int:
    """MINT's double-sided threshold (paper: 1400)."""
    return mintrh_double_sided(
        mint_mintrh(max_act, transitive, target_ttf_years, timing)
    )
