"""Refresh postponement analysis (paper Section VI, Table IV).

DDR5 refresh postponement stretches the unguarded window from M = 73 to
5M = 365 activations. The impact differs sharply by tracker class:

* **Counter-based** (PRCT, Mithril): the selected row simply absorbs up
  to 4M more activations before its delayed mitigation lands: MinTRH-D
  grows by 2M = 146 (Section VI-A). No DMQ needed.
* **Interval-tailored low-cost** (MINT, PARFM): activations past M are
  invisible. Decoys fill the first M slots, then the attacker hammers
  deterministically: 4/5 of the whole tREFW budget = ~478K unmitigated
  activations (Section VI-B).
* **Sampling-based** (InDRAM-PARA): the sampled entry must now survive
  a 365-activation window, collapsing the mitigation probability.

The Delayed Mitigation Queue restores all low-cost trackers to within
the counter-based +146 adjustment (Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import MAX_POSTPONED_REFRESHES, REFI_PER_REFW
from .adaptive import AdaConfig, worst_case_ada_mintrh
from .comparison import (
    indram_para_comparison,
    mithril_comparison,
    mint_comparison,
    parfm_comparison,
    prct_comparison,
)
from .mintrh import PatternSpec, mintrh, mintrh_double_sided


@dataclass(frozen=True)
class PostponementRow:
    """One row of Table IV."""

    name: str
    entries: int
    mintrh_d_no_postpone: int
    mintrh_d_no_dmq: int
    mintrh_d_with_dmq: int


def deterministic_unmitigated_acts(
    max_act: int = 73,
    postponed: int = MAX_POSTPONED_REFRESHES,
    refi_per_refw: int = REFI_PER_REFW,
) -> int:
    """The 478K blow-up (Section VI-B).

    With batches of ``postponed + 1`` refreshes, the attacker spends the
    first M activations of each super-window on decoys and the next
    ``postponed * M`` hammering: a fraction postponed/(postponed+1) of
    the full tREFW activation budget lands unmitigated.
    """
    total = max_act * refi_per_refw
    return total * postponed // (postponed + 1)


def para_postponed_mintrh_d(
    max_act: int = 73, postponed: int = MAX_POSTPONED_REFRESHES
) -> int:
    """InDRAM-PARA under postponement, without DMQ (paper: 21.3K).

    The super-window holds ``5M = 365`` activations but only one
    mitigation survives (the SAR is single-entry). The attacker places
    the target row in the first ``j`` positions of every super-window
    and fills the rest with decoys whose samples dislodge the SAR: the
    row is mitigated only if one of its own j activations is sampled
    (``1 - (1-p)^j``) *and* no decoy overwrites it (``(1-p)^(5M-j)``).
    We report the worst case over j.

    Note: the paper reports 21.3K for this cell using the first-position
    (j = 1) argument; sweeping j yields an even weaker tracker (the
    attacker can push the tolerated threshold far higher), so our
    number is larger. Either way the conclusion stands: postponement
    demolishes the sampling tracker and the DMQ repairs it.
    """
    window = (postponed + 1) * max_act
    p = 1.0 / max_act
    worst = 0
    for j in range(1, window + 1):
        sample = 1.0 - (1.0 - p) ** j
        survive = (1.0 - p) ** (window - j)
        p_trial = sample * survive
        if p_trial >= 1.0:
            continue
        spec = PatternSpec(
            p=max(p_trial, 1e-12),
            trials_per_refw=REFI_PER_REFW / (postponed + 1),
            acts_per_trial=float(j),
            rows=max(1.0, window / j),
            refi_per_trial=float(postponed + 1),
        )
        worst = max(worst, mintrh(spec))
    return mintrh_double_sided(worst)


def counter_tracker_postponement_delta(
    max_act: int = 73, postponed: int = MAX_POSTPONED_REFRESHES
) -> int:
    """+2M per double-sided row for counter-based trackers (+146)."""
    return postponed * max_act // 2


def dmq_tardiness_delta_d(postponed: int = MAX_POSTPONED_REFRESHES) -> int:
    """DMQ delay cost for MINT-style single-copy patterns (+4, §VI-D).

    A row selected by MINT receives one activation per interval while
    queued, so waiting ``postponed`` intervals adds ``postponed``
    activations to the double-sided per-row threshold.
    """
    return postponed


def table4(max_act: int = 73) -> list[PostponementRow]:
    """All rows of Table IV."""
    delta = counter_tracker_postponement_delta(max_act)
    blowup = deterministic_unmitigated_acts(max_act)

    prct = prct_comparison(max_act)
    mithril = mithril_comparison(max_act=max_act)
    parfm = parfm_comparison(max_act)
    para = indram_para_comparison(max_act)
    mint = mint_comparison(max_act)

    ada = AdaConfig(max_act=max_act, transitive=True)
    _mp, mint_dmq = worst_case_ada_mintrh(ada, double_sided=True)

    return [
        PostponementRow(
            "PRCT", prct.entries, prct.mintrh_d,
            prct.mintrh_d + delta, prct.mintrh_d + delta,
        ),
        PostponementRow(
            "Mithril", mithril.entries, mithril.mintrh_d,
            mithril.mintrh_d + delta, mithril.mintrh_d + delta,
        ),
        PostponementRow(
            "PARFM", parfm.entries, parfm.mintrh_d,
            blowup, parfm.mintrh_d + delta,
        ),
        PostponementRow(
            "InDRAM-PARA", para.entries, para.mintrh_d,
            para_postponed_mintrh_d(max_act), para.mintrh_d + delta,
        ),
        PostponementRow(
            "MINT", mint.entries, mint.mintrh_d,
            blowup, mint_dmq,
        ),
    ]


def mint_dmq_vs_prct_gap(max_act: int = 73) -> float:
    """MINT+DMQ within 1.9x of PRCT under postponement (Section VI-D)."""
    rows = {row.name: row for row in table4(max_act)}
    return rows["MINT"].mintrh_d_with_dmq / rows["PRCT"].mintrh_d_with_dmq
