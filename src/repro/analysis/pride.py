"""PrIDE analysis: loss probability and tardiness (paper Section IX).

PrIDE samples activations with probability p into a small FIFO and
mitigates the oldest entry at each REF. Two quantities govern its
security, both of which MINT eliminates:

* **Loss probability** — a sampled entry is lost if it overflows the
  FIFO before being mitigated. Single-entry PrIDE (= InDRAM-PARA)
  loses ~63% of samples under full-rate traffic; the 4-entry FIFO cuts
  that to ~10% (Section IX).
* **Tardiness** — a sampled row waits in the FIFO while the attacker
  keeps hammering it; with depth d the wait is up to d tREFI, i.e.
  d * M extra activations.

The resulting thresholds (paper: MinTRH-D 1750, 1900 with DMQ) sit
~25% above MINT's.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import REFI_PER_REFW
from .mintrh import PatternSpec, mintrh, mintrh_double_sided


def pride_loss_probability(
    fifo_depth: int, max_act: int = 73, p: float | None = None
) -> float:
    """Mean fraction of samples lost to FIFO overflow, full-rate traffic.

    Exact steady-state computation: the queue length after each REF is
    a Markov chain with Binomial(M, p) arrivals per tREFI and one
    departure per REF; the loss rate is the expected overflow divided
    by the expected arrivals. Matches the live tracker to within Monte
    Carlo noise (see the test suite); the paper's "63% -> 10%" quotes
    the worst-case (first-position) loss for depth 1 and roughly this
    mean for depth 4.
    """
    if fifo_depth < 1:
        raise ValueError("fifo_depth must be >= 1")
    p = 1.0 / max_act if p is None else p
    arrival = [
        math.comb(max_act, k) * p ** k * (1.0 - p) ** (max_act - k)
        for k in range(max_act + 1)
    ]
    d = fifo_depth
    transition = np.zeros((d + 1, d + 1))
    lost_given_state = np.zeros(d + 1)
    for state in range(d + 1):
        for count, probability in enumerate(arrival):
            filled = min(d, state + count)
            lost_given_state[state] += probability * max(
                0, state + count - d
            )
            after_departure = max(0, filled - 1)
            transition[state, after_departure] += probability
    # Stationary distribution of the post-REF queue length.
    eigenvalues, eigenvectors = np.linalg.eig(transition.T)
    index = int(np.argmin(np.abs(eigenvalues - 1.0)))
    pi = np.real(eigenvectors[:, index])
    pi = np.abs(pi) / np.abs(pi).sum()
    expected_lost = float(pi @ lost_given_state)
    return expected_lost / (max_act * p)


def pride_worst_position_loss(
    fifo_depth: int, max_act: int = 73, p: float | None = None
) -> float:
    """Loss probability for the attacker-aligned worst position.

    For depth 1 this is the paper's 63%: a sample at the first position
    is lost if any of the remaining M-1 activations is sampled.
    """
    if fifo_depth < 1:
        raise ValueError("fifo_depth must be >= 1")
    p = 1.0 / max_act if p is None else p
    q = 1.0 - p
    remaining = max_act - 1
    # Lost if at least `fifo_depth` further samples land before the
    # entry reaches the head and is mitigated.
    tail = 0.0
    for k in range(fifo_depth):
        tail += math.comb(remaining, k) * p ** k * q ** (remaining - k)
    return 1.0 - tail


def pride_tardiness_acts(fifo_depth: int, max_act: int = 73) -> int:
    """Extra activations a queued row can absorb before mitigation."""
    if fifo_depth < 1:
        raise ValueError("fifo_depth must be >= 1")
    return (fifo_depth - 1) * max_act


def pride_mintrh_d(
    fifo_depth: int = 4,
    max_act: int = 73,
    target_ttf_years: float = 10_000.0,
    with_dmq: bool = False,
) -> int:
    """Double-sided threshold of PrIDE (paper: 1750; 1900 with DMQ).

    The effective per-activation mitigation probability is the sampling
    probability discounted by the loss probability; tardiness adds
    (depth-1) * M activations to the threshold; the DMQ adds the same
    +146 double-sided adjustment as for MINT plus its own queue wait.
    """
    p = 1.0 / max_act
    loss = pride_loss_probability(fifo_depth, max_act, p)
    effective = p * (1.0 - loss)
    spec = PatternSpec(
        p=effective,
        trials_per_refw=REFI_PER_REFW,
        acts_per_trial=1.0,
        rows=float(max_act),
        refi_per_trial=1.0,
    )
    single = mintrh(spec, target_ttf_years) + pride_tardiness_acts(
        fifo_depth, max_act
    )
    result = mintrh_double_sided(single)
    if with_dmq:
        result += 2 * max_act  # postponement wait, double-sided share
    return result


def mint_vs_pride_gap(target_ttf_years: float = 10_000.0) -> float:
    """PrIDE's threshold premium over MINT (paper: ~25%)."""
    from .patterns import mint_mintrh_d

    return pride_mintrh_d(4, target_ttf_years=target_ttf_years) / mint_mintrh_d(
        target_ttf_years=target_ttf_years
    )
