"""MINT + RFM scaling to lower thresholds (paper Section VII, Table V).

RFM raises the mitigation rate: the memory controller issues an RFM to
a bank whenever its RAA counter crosses RFMTH, so MINT's selection
interval shrinks from 73 activations to RFMTH, and the URAND draw
covers 0..RFMTH. Lower intervals mean a higher per-activation
mitigation probability and therefore a lower tolerated threshold:

=================  =====================  =========
Scheme             Relative rate          MinTRH-D
=================  =====================  =========
MINT (0.5x)        one per two tREFI      2.70K
MINT (1x)          one per tREFI          1.48K
MINT+RFM32         ~two per tREFI         689
MINT+RFM16         ~four per tREFI        356
=================  =====================  =========

All rows include the DMQ and are reported under the adaptive attack of
Appendix B; JEDEC allows RFM commands to be delayed 3x-6x, which the
DMQ absorbs (we model the worst case, 6 intervals of delay).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import MAX_POSTPONED_REFRESHES, REFI_PER_REFW
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from .adaptive import AdaConfig, worst_case_ada_mintrh


@dataclass(frozen=True)
class RfmSchemeResult:
    """One row of Table V."""

    name: str
    relative_rate: str
    interval_acts: int
    mintrh_d: int


def mint_rfm_config(
    rfm_th: int,
    timing: DDR5Timing = DEFAULT_TIMING,
    rfm_delay_intervals: int = 6,
    target_ttf_years: float = 10_000.0,
) -> AdaConfig:
    """ADA configuration for MINT co-designed with an RFM threshold.

    The selection interval is RFMTH activations; the number of
    mitigation intervals per tREFW equals the total activation budget
    divided by RFMTH.
    """
    if rfm_th < 1:
        raise ValueError("rfm_th must be >= 1")
    intervals = timing.acts_per_refw / rfm_th
    return AdaConfig(
        max_act=rfm_th,
        transitive=True,
        intervals_per_refw=intervals,
        delay_intervals=rfm_delay_intervals,
        target_ttf_years=target_ttf_years,
    )


def mint_slow_config(
    refi_per_mitigation: int = 2,
    timing: DDR5Timing = DEFAULT_TIMING,
    target_ttf_years: float = 10_000.0,
) -> AdaConfig:
    """ADA configuration for a reduced mitigation rate (0.5x row).

    One mitigation every ``refi_per_mitigation`` tREFI: the selection
    interval spans that many refresh intervals' worth of activations.
    """
    interval_acts = timing.max_act * refi_per_mitigation
    return AdaConfig(
        max_act=interval_acts,
        transitive=True,
        intervals_per_refw=REFI_PER_REFW / refi_per_mitigation,
        delay_intervals=MAX_POSTPONED_REFRESHES,
        target_ttf_years=target_ttf_years,
    )


def scheme_mintrh_d(cfg: AdaConfig) -> int:
    """Double-sided threshold of a scheme under the adaptive attack."""
    _mp, value = worst_case_ada_mintrh(cfg, double_sided=True)
    return value


def table5(
    timing: DDR5Timing = DEFAULT_TIMING,
    target_ttf_years: float = 10_000.0,
) -> list[RfmSchemeResult]:
    """All rows of Table V (MinTRH-D includes DMQ + adaptive attack)."""
    rows = []
    slow = mint_slow_config(2, timing, target_ttf_years)
    rows.append(
        RfmSchemeResult(
            "MINT", "0.5x (one per two tREFI)", slow.max_act,
            scheme_mintrh_d(slow),
        )
    )
    base = AdaConfig(
        max_act=timing.max_act,
        transitive=True,
        intervals_per_refw=REFI_PER_REFW,
        delay_intervals=MAX_POSTPONED_REFRESHES,
        target_ttf_years=target_ttf_years,
    )
    rows.append(
        RfmSchemeResult(
            "MINT", "1x (one per tREFI)", base.max_act,
            scheme_mintrh_d(base),
        )
    )
    for rfm_th, label in ((32, "2x (approx two per tREFI)"),
                          (16, "4x (approx four per tREFI)")):
        cfg = mint_rfm_config(rfm_th, timing, target_ttf_years=target_ttf_years)
        rows.append(
            RfmSchemeResult(
                f"MINT+RFM{rfm_th}", label, rfm_th, scheme_mintrh_d(cfg)
            )
        )
    return rows


def ttf_sensitivity(
    target_ttf_years_list: list[float] | None = None,
    timing: DDR5Timing = DEFAULT_TIMING,
) -> list[dict]:
    """Table VII: MinTRH-D of MINT / +RFM32 / +RFM16 vs Target-TTF."""
    targets = target_ttf_years_list or [1e3, 1e4, 1e5, 1e6]
    out = []
    for target in targets:
        base = AdaConfig(target_ttf_years=target)
        rfm32 = mint_rfm_config(32, timing, target_ttf_years=target)
        rfm16 = mint_rfm_config(16, timing, target_ttf_years=target)
        out.append(
            {
                "target_ttf_years": target,
                "mint": scheme_mintrh_d(base),
                "rfm32": scheme_mintrh_d(rfm32),
                "rfm16": scheme_mintrh_d(rfm16),
            }
        )
    return out
