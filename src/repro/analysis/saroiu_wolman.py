"""The Saroiu-Wolman analytical failure model (paper Section IV).

Given a row whose activations are each mitigated independently with
probability ``p``, the probability that the row has failed (received
``T = TRH`` activations with no intervening mitigation) by its k-th
activation obeys the recurrence (paper Equations 5-7):

    P_k = 0                                       k < T
    P_k = (1 - p)^T                               k = T
    P_k = p * (1-p)^T * (1 - P_{k-T-1}) + P_{k-1}     k > T

The recurrence is sequential, but the lagged term ``P_{k-T-1}`` trails
by T+1 positions, so it can be evaluated in vectorised chunks of T+1
with a prefix sum — chunk k's lagged values are always already known.

Two evaluation paths are provided:

* :func:`failure_probability` — exact chunked recurrence.
* :func:`approx_failure_probability` — the closed form
  ``q^T * (1 + (n - T) * p)``, obtained by setting the (1 - P) factors
  to 1. In the secure regime (P around 1e-13) it matches the exact
  recurrence to better than one part in 1e12 and is thousands of times
  faster; the test suite verifies the agreement.
"""

from __future__ import annotations

import math

import numpy as np

from ..constants import REFI_PER_REFW, SECONDS_PER_YEAR
from ..dram.timing import DDR5Timing, DEFAULT_TIMING


def _escape_probability(p: float, trh: int) -> float:
    """(1 - p)^T computed in log space to dodge underflow warnings."""
    if p >= 1.0:
        return 0.0
    log_q = math.log1p(-p)
    exponent = trh * log_q
    if exponent < -745.0:  # exp underflows float64
        return 0.0
    return math.exp(exponent)


def failure_probability(num_acts: int, p: float, trh: int) -> float:
    """Exact P_k at ``k = num_acts`` via the chunked recurrence."""
    probs = failure_probability_sequence(num_acts, p, trh)
    return float(probs[-1]) if len(probs) else 0.0


def failure_probability_sequence(
    num_acts: int, p: float, trh: int
) -> np.ndarray:
    """P_k for k = 1..num_acts (Equations 5-7), exact.

    Returns an array of length ``num_acts``; entry ``k-1`` is P_k.
    """
    if num_acts < 0:
        raise ValueError("num_acts must be non-negative")
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    if trh < 1:
        raise ValueError("trh must be >= 1")
    probs = np.zeros(num_acts, dtype=np.float64)
    if num_acts < trh:
        return probs
    q_pow_t = _escape_probability(p, trh)
    probs[trh - 1] = q_pow_t
    if q_pow_t == 0.0:
        return probs
    step = p * q_pow_t
    lag = trh + 1
    k = trh  # zero-based index of the next entry to fill is `k`
    while k < num_acts:
        end = min(k + lag, num_acts)
        # Lagged indices (k - trh - 1) for entries [k, end) are
        # [k - lag, end - lag), all strictly below k: already computed.
        lo = k - lag
        lagged = np.empty(end - k, dtype=np.float64)
        if lo < 0:
            # P_j = 0 for j < 1 (one-based), i.e. negative zero-based.
            zeros = min(-lo, end - k)
            lagged[:zeros] = 0.0
            if end - k > zeros:
                lagged[zeros:] = probs[0 : end - lag]
        else:
            lagged = probs[lo : end - lag]
        increments = step * (1.0 - lagged)
        probs[k:end] = probs[k - 1] + np.cumsum(increments)
        k = end
    return np.minimum(probs, 1.0)


def approx_failure_probability(num_acts: int, p: float, trh: int) -> float:
    """Closed-form P_n ~= q^T * (1 + (n - T) * p); exact when P << 1."""
    if num_acts < trh:
        return 0.0
    if not 0.0 < p <= 1.0:
        raise ValueError("p must be in (0, 1]")
    q_pow_t = _escape_probability(p, trh)
    return min(1.0, q_pow_t * (1.0 + (num_acts - trh) * p))


def auto_refresh_correction(
    sequence_length_refi: float, refi_per_refw: int = REFI_PER_REFW
) -> float:
    """Sariou-Wolman auto-refresh factor: (1 - N / 8192).

    ``N`` is the length of the successful hammer sequence measured in
    tREFI intervals: a sequence spanning nearly the whole window has
    almost no chance of dodging the rolling auto-refresh.
    """
    if sequence_length_refi < 0:
        raise ValueError("sequence length must be non-negative")
    return max(0.0, 1.0 - sequence_length_refi / refi_per_refw)


def mttf_years(
    p_refw: float, timing: DDR5Timing = DEFAULT_TIMING, banks: int = 1
) -> float:
    """Mean time to failure (Equation 8), in years.

    ``banks`` scales the failure rate for multi-bank systems: MTTF for
    B banks is approximately B times lower (Section IV-B).
    """
    if p_refw <= 0.0:
        return math.inf
    t_refw_s = timing.t_refw_ns * 1e-9
    return t_refw_s / (p_refw * banks) / SECONDS_PER_YEAR


def target_refw_probability(
    target_ttf_years: float, timing: DDR5Timing = DEFAULT_TIMING
) -> float:
    """The per-tREFW failure probability matching a Target-TTF."""
    if target_ttf_years <= 0:
        raise ValueError("target_ttf_years must be positive")
    t_refw_s = timing.t_refw_ns * 1e-9
    return t_refw_s / (target_ttf_years * SECONDS_PER_YEAR)
