"""Storage-overhead accounting (paper Section VIII-C, Table IX).

MINT needs CAN (7b) + SAN (7b) + SAR (18b) = 4 bytes per bank; the DMQ
adds four 19-bit entries (9.5 bytes); the ImPress extension widens CAN
to 14 bits. Counter tables, by contrast, scale inversely with the
threshold — Graphene needs 56.5 KB per bank at TRH-D = 3K and 565 KB
at 300 (Table IX; per-rank numbers are 32x higher).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import BANKS_PER_RANK
from ..core.dmq import DMQ_ENTRY_BITS
from ..core.mint import COUNTER_BITS, SAR_BITS
from ..core.rowpress import EACT_FRACTION_BITS


@dataclass(frozen=True)
class StorageBudget:
    """Per-bank storage of one design, in bits."""

    name: str
    bits: int

    @property
    def bytes(self) -> float:
        return self.bits / 8.0

    def per_rank_bytes(self, banks: int = BANKS_PER_RANK) -> float:
        return self.bytes * banks


def mint_storage() -> StorageBudget:
    """MINT registers: 4 bytes per bank."""
    return StorageBudget("MINT", 2 * COUNTER_BITS + SAR_BITS)


def dmq_storage(depth: int = 4) -> StorageBudget:
    """DMQ FIFO: 9.5 bytes at depth 4."""
    return StorageBudget("DMQ", depth * DMQ_ENTRY_BITS)


def mint_dmq_storage(depth: int = 4) -> StorageBudget:
    """MINT plus DMQ: under 15 bytes per bank (Section VIII-C)."""
    return StorageBudget("MINT+DMQ", mint_storage().bits + dmq_storage(depth).bits)


def mint_impress_storage(depth: int = 4) -> StorageBudget:
    """MINT + DMQ + ImPress: ~17 bytes per bank (Appendix C)."""
    can = COUNTER_BITS + EACT_FRACTION_BITS
    # The ImPress timer tracks tON; the paper budgets ~2 extra bytes in
    # total for the fixed-point CAN and the timer.
    timer = 9
    return StorageBudget(
        "MINT+DMQ+ImPress",
        can + COUNTER_BITS + SAR_BITS + dmq_storage(depth).bits + timer,
    )


#: Calibration for the Graphene sizing of Table IX: 56.5 KB per bank at
#: a device TRH-D of 3K, scaling inversely with the threshold.
_GRAPHENE_KB_AT_3K = 56.5


def graphene_storage(trh_d: int) -> StorageBudget:
    """Graphene per-bank SRAM at a device threshold (Table IX).

    Misra-Gries table sizing: entries ~ W / (TRH/safety), each entry a
    row address plus a counter; the constant is calibrated to the
    paper's 56.5 KB @ 3K point and reproduces 565 KB @ 300.
    """
    if trh_d <= 0:
        raise ValueError("trh_d must be positive")
    kilobytes = _GRAPHENE_KB_AT_3K * 3000.0 / trh_d
    return StorageBudget("Graphene", int(kilobytes * 1024 * 8))


def counter_table_bits(
    entries: int, counter_bits: int, addr_bits: int = SAR_BITS
) -> int:
    """Generic sizing helper for counter-table trackers."""
    if entries < 0 or counter_bits < 0:
        raise ValueError("entries and counter_bits must be non-negative")
    return entries * (addr_bits + counter_bits)


def table9(trh_values: tuple[int, ...] = (3000, 300)) -> list[dict]:
    """Table IX rows: Graphene vs MINT+DMQ at two device thresholds."""
    rows = []
    mint = mint_dmq_storage()
    for trh_d in trh_values:
        graphene = graphene_storage(trh_d)
        rows.append(
            {
                "trh_d": trh_d,
                "graphene_kb_per_bank": graphene.bytes / 1024.0,
                "mint_dmq_bytes_per_bank": mint.bytes,
                "graphene_kb_per_rank": graphene.per_rank_bytes() / 1024.0,
                "mint_dmq_bytes_per_rank": mint.per_rank_bytes(),
            }
        )
    return rows
