"""InDRAM-PARA survival/sampling analysis (paper Section III, Figs 3-6).

The pitfalls of extending PARA into the DRAM chip:

* **Overwrite variant** (Fig 2/3): a sampled row must *survive* in SAR
  until REF. Survival of position K out of M is ``(1-p)^(M-K)``
  (Equation 2): position 1 survives with only 0.37.
* **No-overwrite variant** (Fig 4/5): sampling stops once SAR fills, so
  position K is sampled with ``p * (1-p)^(K-1)`` (Equation 3): position
  73's sampling probability is 0.37x of p.
* Either way the most vulnerable position is mitigated 2.7x less often
  than an ideal uniform policy (Fig 6), and with probability
  ``(1-p)^M = 0.37`` *nothing* is selected in a full window (Eq 4).
"""

from __future__ import annotations

import math
import random

import numpy as np

from ..trackers.para import InDramParaTracker


def survival_probability(
    position: int, max_act: int = 73, p: float | None = None
) -> float:
    """S_K for the overwrite variant (Equation 2)."""
    p = 1.0 / max_act if p is None else p
    _check_position(position, max_act)
    return (1.0 - p) ** (max_act - position)


def sampling_probability_no_overwrite(
    position: int, max_act: int = 73, p: float | None = None
) -> float:
    """P_K for the no-overwrite variant (Equation 3).

    Absolute probability that position K is the one sampled; position 1
    equals p, position M equals ``p * (1-p)^(M-1)`` (~0.37 p for M=73).
    """
    p = 1.0 / max_act if p is None else p
    _check_position(position, max_act)
    return p * (1.0 - p) ** (position - 1)


def mitigation_probability(
    position: int,
    max_act: int = 73,
    p: float | None = None,
    overwrite: bool = True,
) -> float:
    """Absolute mitigation probability of position K (Equation 1).

    Overwrite variant: P = p * survival. No-overwrite: P = sampling
    (survival is 1 once sampled).
    """
    p = 1.0 / max_act if p is None else p
    if overwrite:
        return p * survival_probability(position, max_act, p)
    return sampling_probability_no_overwrite(position, max_act, p)


def relative_mitigation_curve(
    max_act: int = 73, overwrite: bool = True
) -> np.ndarray:
    """Fig 6 series: mitigation probability normalised to ideal p."""
    p = 1.0 / max_act
    return np.array(
        [
            mitigation_probability(k, max_act, p, overwrite) / p
            for k in range(1, max_act + 1)
        ]
    )


def most_vulnerable_position(max_act: int = 73, overwrite: bool = True) -> int:
    """Position the attacker targets (1 for overwrite, M otherwise)."""
    curve = relative_mitigation_curve(max_act, overwrite)
    return int(np.argmin(curve)) + 1


def vulnerability_factor(max_act: int = 73, overwrite: bool = True) -> float:
    """How much worse the weakest position is vs ideal (~2.7 for M=73)."""
    curve = relative_mitigation_curve(max_act, overwrite)
    return float(1.0 / curve.min())


def effective_mitigation_probability(max_act: int = 73) -> float:
    """Per-activation mitigation probability at the weakest position.

    This is the ``p`` an optimal attacker faces against InDRAM-PARA and
    the value the MinTRH analysis uses (Section V-G).
    """
    p = 1.0 / max_act
    return p * (1.0 - p) ** (max_act - 1)


def non_selection_probability(max_act: int = 73, p: float | None = None) -> float:
    """Probability that a full window selects nothing (Equation 4)."""
    p = 1.0 / max_act if p is None else p
    return (1.0 - p) ** max_act


def simulate_position_mitigation_rates(
    max_act: int = 73,
    overwrite: bool = True,
    windows: int = 20_000,
    seed: int = 2024,
) -> np.ndarray:
    """Monte-Carlo check of the analytic curves using the real tracker.

    Runs ``windows`` tREFI intervals in which position K holds row K,
    and measures how often each position's row is the one mitigated.
    Used by the test suite to validate Equations 2-3 against the
    implementation in :class:`~repro.trackers.para.InDramParaTracker`.
    """
    rng = random.Random(seed)
    tracker = InDramParaTracker(
        sample_probability=1.0 / max_act, overwrite=overwrite, rng=rng
    )
    hits = np.zeros(max_act, dtype=np.int64)
    for _ in range(windows):
        for position in range(1, max_act + 1):
            tracker.on_activate(position)
        for request in tracker.on_refresh():
            hits[request.row - 1] += 1
    return hits / windows


def _check_position(position: int, max_act: int) -> None:
    if not 1 <= position <= max_act:
        raise ValueError(f"position must be in [1, {max_act}]")
