"""Attack-pattern library: every pattern family the paper analyses."""

from .adaptive import adaptive_attack, repeated_adaptive_attack
from .base import AttackParams, build_trace, spaced_rows
from .blacksmith import (
    FuzzedAggressor,
    blacksmith,
    fuzz_aggressors,
    random_blacksmith,
)
from .classic import double_sided, one_location, single_sided
from .decoy import (
    expected_unmitigated_acts,
    postponement_decoy,
    postponement_decoy_multi,
)
from .feinting import FeintingOutcome, run_feinting
from .halfdouble import half_double, half_double_distance
from .manysided import decoy_assisted, many_sided
from .multirow import pattern2, pattern2_double_sided, pattern3
from .channel import (
    channel_stripe_decoy,
    rank_rotation,
    rank_synchronized,
    replicate_across_ranks,
)
from .rank import (
    bank_interleaved,
    cross_bank_decoy,
    cross_bank_decoy_stream,
    rank_stripe,
)
from .registry import (
    available_attacks,
    available_channel_attacks,
    available_rank_attacks,
    is_channel_attack,
    is_rank_attack,
    make_attack,
    make_channel_attack,
    make_rank_attack,
    register_attack,
    register_channel_attack,
    register_rank_attack,
)

__all__ = [
    "AttackParams",
    "FeintingOutcome",
    "FuzzedAggressor",
    "adaptive_attack",
    "available_attacks",
    "available_channel_attacks",
    "available_rank_attacks",
    "bank_interleaved",
    "blacksmith",
    "channel_stripe_decoy",
    "cross_bank_decoy",
    "cross_bank_decoy_stream",
    "build_trace",
    "decoy_assisted",
    "double_sided",
    "expected_unmitigated_acts",
    "fuzz_aggressors",
    "half_double",
    "half_double_distance",
    "is_channel_attack",
    "is_rank_attack",
    "make_attack",
    "make_channel_attack",
    "make_rank_attack",
    "many_sided",
    "one_location",
    "pattern2",
    "pattern2_double_sided",
    "pattern3",
    "postponement_decoy",
    "postponement_decoy_multi",
    "random_blacksmith",
    "rank_rotation",
    "rank_stripe",
    "rank_synchronized",
    "register_attack",
    "register_channel_attack",
    "register_rank_attack",
    "replicate_across_ranks",
    "repeated_adaptive_attack",
    "run_feinting",
    "single_sided",
    "spaced_rows",
]
