"""The Adaptive Attack (ADA) trace generator (paper Appendix B).

ADA runs the MINT-optimal pattern-2 for ``morphing_point`` intervals,
then morphs into the DMQ-optimal repeated hammering: pick one attack
row and hammer it through a full postponement super-window (365
activations), banking on the row already carrying a high unmitigated
count from the first phase.
"""

from __future__ import annotations

from ..sim.trace import Interval, Trace
from .base import AttackParams, spaced_rows


def adaptive_attack(
    morphing_point: int,
    params: AttackParams | None = None,
    postponed: int = 4,
    k: int | None = None,
    spacing: int = 8,
    target_index: int = 0,
) -> Trace:
    """Build one ADA round: pattern-2 for MP intervals, then the DMQ phase.

    ``target_index`` picks which of the k pattern-2 rows is hammered in
    the DMQ phase (the attacker cannot observe counts, so any choice is
    equivalent; experiments sweep it for averaging).
    """
    params = params or AttackParams()
    if morphing_point < 1:
        raise ValueError("morphing_point must be >= 1")
    k = params.max_act if k is None else k
    rows = spaced_rows(k, params.base_row, spacing)
    target = rows[target_index % k]

    intervals: list[Interval] = []
    cursor = 0
    for _ in range(morphing_point):
        interval = []
        for _slot in range(min(params.max_act, k)):
            interval.append(rows[cursor % k])
            cursor += 1
        intervals.append(Interval.of(interval))
    # DMQ phase: one postponement super-window hammering the target.
    intervals.append(Interval.of([target] * params.max_act, postpone=True))
    for i in range(postponed):
        last = i == postponed - 1
        intervals.append(
            Interval.of([target] * params.max_act, postpone=not last)
        )
    return Trace(
        name=f"ada(mp={morphing_point},target={target})", intervals=intervals
    )


def repeated_adaptive_attack(
    morphing_point: int,
    params: AttackParams | None = None,
    postponed: int = 4,
    k: int | None = None,
) -> Trace:
    """Chain as many ADA rounds as fit in ``params.intervals`` (tREFW)."""
    params = params or AttackParams()
    round_len = morphing_point + postponed + 1
    rounds = max(1, params.intervals // round_len)
    intervals: list[Interval] = []
    for round_index in range(rounds):
        chunk = adaptive_attack(
            morphing_point, params, postponed, k, target_index=round_index
        )
        intervals.extend(chunk.intervals)
    return Trace(
        name=f"ada-repeated(mp={morphing_point},rounds={rounds})",
        intervals=intervals,
    )
