"""Base utilities for attack-trace generators.

Each attack module exposes functions returning a
:class:`~repro.sim.trace.Trace`. Generators take the interval budget
(MaxACT) and the number of tREFI intervals to emit, plus
pattern-specific parameters; rows are plain integers into the bank's
row space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.trace import Interval, Trace


@dataclass(frozen=True)
class AttackParams:
    """Common parameters shared by the attack generators."""

    max_act: int = 73
    intervals: int = 8192
    base_row: int = 1000

    def __post_init__(self) -> None:
        if self.max_act < 1:
            raise ValueError("max_act must be >= 1")
        if self.intervals < 1:
            raise ValueError("intervals must be >= 1")
        if self.base_row < 0:
            raise ValueError("base_row must be non-negative")


def build_trace(
    name: str,
    per_interval_acts: list[list[int]],
    postpone_mask: list[bool] | None = None,
) -> Trace:
    """Assemble a trace from per-interval activation lists."""
    if postpone_mask is None:
        postpone_mask = [False] * len(per_interval_acts)
    if len(postpone_mask) != len(per_interval_acts):
        raise ValueError("postpone_mask length must match interval count")
    intervals = [
        Interval.of(acts, postpone)
        for acts, postpone in zip(per_interval_acts, postpone_mask)
    ]
    return Trace(name=name, intervals=intervals)


def spaced_rows(count: int, base_row: int, spacing: int = 8) -> list[int]:
    """``count`` attack rows far enough apart not to share victims.

    A spacing of >= 2 * blast_radius + 2 guarantees no victim overlap;
    8 leaves margin for the blast-radius-2 ablation.
    """
    if count < 1:
        raise ValueError("count must be >= 1")
    return [base_row + i * spacing for i in range(count)]
