"""Blacksmith-style frequency-domain patterns (paper Section II-F).

Blacksmith defeats deployed TRR by hammering aggressors with
*non-uniform* per-row frequencies, phases, and amplitudes, synchronised
to the refresh interval so the most intense hammering lands where the
tracker is least attentive. We reproduce the structure: each aggressor
row has a (frequency, phase, amplitude) triple describing how its
activations are laid out across a period of tREFI intervals.

Against MINT this structure buys nothing (selection is uniform over
slots regardless of layout — Section V-D property 2), and the test
suite confirms Blacksmith-patterned traffic is mitigated just like
pattern-2; against the TRR model it wins, matching the paper's account
of why deployed trackers fail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sim.trace import Trace
from .base import AttackParams, build_trace, spaced_rows


@dataclass(frozen=True)
class FuzzedAggressor:
    """One aggressor's schedule in the Blacksmith parameter space."""

    row: int
    frequency: int  # hammer every `frequency` intervals
    phase: int      # offset within the period
    amplitude: int  # activations per hammered interval

    def __post_init__(self) -> None:
        if self.frequency < 1:
            raise ValueError("frequency must be >= 1")
        if self.amplitude < 1:
            raise ValueError("amplitude must be >= 1")
        if not 0 <= self.phase < self.frequency:
            raise ValueError("phase must be in [0, frequency)")


def fuzz_aggressors(
    count: int,
    rng: random.Random,
    base_row: int = 1000,
    max_frequency: int = 4,
    max_amplitude: int = 4,
    spacing: int = 8,
) -> list[FuzzedAggressor]:
    """Randomly sample a Blacksmith parameter assignment."""
    rows = spaced_rows(count, base_row, spacing)
    aggressors = []
    for row in rows:
        frequency = rng.randint(1, max_frequency)
        aggressors.append(
            FuzzedAggressor(
                row=row,
                frequency=frequency,
                phase=rng.randrange(frequency),
                amplitude=rng.randint(1, max_amplitude),
            )
        )
    return aggressors


def blacksmith(
    aggressors: list[FuzzedAggressor],
    params: AttackParams | None = None,
) -> Trace:
    """Lay the fuzzed schedules out over the trace intervals.

    Activations are interleaved round-robin within each interval and
    clipped to the MaxACT budget (Blacksmith synchronises with REF, so
    the budget models its refresh-interval alignment).
    """
    params = params or AttackParams()
    if not aggressors:
        raise ValueError("at least one aggressor required")
    acts: list[list[int]] = []
    for index in range(params.intervals):
        due: list[list[int]] = []
        for aggressor in aggressors:
            if index % aggressor.frequency == aggressor.phase:
                due.append([aggressor.row] * aggressor.amplitude)
        interval: list[int] = []
        # Round-robin interleave so no single aggressor hogs the budget.
        cursor = 0
        while due and len(interval) < params.max_act:
            queue = due[cursor % len(due)]
            interval.append(queue.pop(0))
            if not queue:
                due.remove(queue)
            else:
                cursor += 1
        acts.append(interval)
    return build_trace(f"blacksmith(n={len(aggressors)})", acts)


def random_blacksmith(
    count: int = 16,
    params: AttackParams | None = None,
    seed: int = 13,
) -> Trace:
    """A seeded Blacksmith instance (fuzzing loop collapsed to one draw)."""
    params = params or AttackParams()
    rng = random.Random(seed)
    return blacksmith(
        fuzz_aggressors(count, rng, params.base_row), params
    )
