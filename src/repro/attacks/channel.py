"""Channel-level attack generators: schedules across a rank set.

Real DDR5 deployments hammer a whole *channel*: multiple ranks share
one command bus, the memory controller interleaves activations across
them, and every rank carries its own full complement of per-bank
trackers behind its own refresh schedule. These generators build
:class:`~repro.sim.trace.ChannelTrace` schedules — one stream per rank
— for the :class:`~repro.sim.engine.ChannelSimulator`:

* :func:`rank_rotation` — rotate *any* row-only pattern across the
  ranks whole-interval round-robin: each rank's trackers see a slower,
  gappier version of the pattern (starving interval-tailored designs of
  context) while the victim rows still accumulate activations between
  their own rank's refreshes.
* :func:`rank_synchronized` — the many-sided aggressor stripe played on
  *every* rank simultaneously, in lockstep: the channel-scale
  TRRespass, stressing the sum of all rank tracker budgets at once.
* :func:`channel_stripe_decoy` — the postponement decoy at channel
  scale: the target rank plays the cross-bank decoy game while the
  sibling ranks burn the bus with striped decoy activations.

Every builder emits per-rank :class:`~repro.sim.trace.CycleStream`
schedules (or interned materialized traces for the aperiodic rotation),
so horizons far beyond RAM — the multi-refresh-window campaigns
Monte-Carlo and adaptive attacks need — cost no more memory than one
pattern window per rank.
"""

from __future__ import annotations

from ..sim.trace import (
    ChannelTrace,
    CycleStream,
    RankInterval,
    RankTrace,
    Trace,
    lift_trace,
)
from .base import AttackParams, spaced_rows
from .rank import _rank_interval, cross_bank_decoy_stream, rank_stripe

#: Shared idle interval: rotation schedules intern one object for every
#: tREFI a rank sits out, so the engine's per-interval caches see a
#: single distinct "nothing" interval.
_IDLE = RankInterval(())


def rank_rotation(
    base: Trace,
    num_ranks: int,
    bank: int = 0,
) -> ChannelTrace:
    """Rotate a row-only pattern across ``num_ranks`` ranks.

    Interval ``i`` of the base trace plays on rank ``i % num_ranks``
    (on ``bank``); the other ranks idle that tREFI. Each rank's tracker
    set sees only every ``num_ranks``-th slice of the pattern — the
    channel analogue of :func:`~repro.attacks.rank.bank_interleaved` —
    but unlike the bank case the gaps also slow the *victims'*
    accumulation relative to each rank's own refresh sweep, so rotation
    trades per-rank tracker starvation against hammer rate.

    Rank-level postpone flags follow the active interval (an idle rank
    never requests postponement).
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    per_rank: dict[int, RankTrace] = {}
    lifted = lift_trace(base, bank)
    for rank in range(num_ranks):
        intervals = [
            interval if i % num_ranks == rank else _IDLE
            for i, interval in enumerate(lifted.intervals)
        ]
        per_rank[rank] = RankTrace(
            name=f"rank-rotation({base.name},rank={rank}/{num_ranks})",
            intervals=intervals,
        )
    return ChannelTrace(
        name=f"rank-rotation({base.name},ranks={num_ranks})",
        per_rank=per_rank,
    )


def rank_synchronized(
    sides: int,
    num_ranks: int,
    params: AttackParams | None = None,
    num_banks: int = 1,
    spacing: int = 8,
) -> ChannelTrace:
    """A many-sided aggressor stripe hammered on every rank in lockstep.

    Each rank runs the same :func:`~repro.attacks.rank.rank_stripe`
    pattern (``sides`` aggressors dealt over ``num_banks`` banks at the
    full per-bank rate) against its *own* rows — same addresses, but
    distinct physical rows per rank — so the channel sustains
    ``num_ranks ×`` the activation pressure of one rank, and every
    tracker instance in the channel faces the identical worst case
    simultaneously. This is the schedule behind channel-level MTTF
    accounting: per-rank failure odds are equal and independent.

    Emitted as one :class:`~repro.sim.trace.CycleStream` per rank (the
    pattern is a single repeated interval), so the horizon can span
    many refresh windows at constant memory.
    """
    params = params or AttackParams()
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    window_params = AttackParams(
        max_act=params.max_act, intervals=1, base_row=params.base_row
    )
    window = rank_stripe(sides, num_banks, window_params, spacing=spacing)
    per_rank: dict[int, CycleStream] = {}
    for rank in range(num_ranks):
        per_rank[rank] = CycleStream(
            f"rank-sync(n={sides},rank={rank}/{num_ranks})",
            window.intervals,
            params.intervals,
        )
    return ChannelTrace(
        name=(
            f"rank-synchronized(n={sides},ranks={num_ranks},"
            f"banks={num_banks})"
        ),
        per_rank=per_rank,
    )


def channel_stripe_decoy(
    target: int,
    num_ranks: int,
    params: AttackParams | None = None,
    num_banks: int = 2,
    postponed: int = 4,
    target_rank: int = 0,
    target_bank: int = 0,
) -> ChannelTrace:
    """The postponement decoy attack played across a channel.

    The target rank runs the cross-bank decoy game (§VI-B lifted to the
    rank: decoy banks burn the visible interval, the REF debt accrues,
    ``target`` is hammered during the postponed intervals). Every
    sibling rank sustains a *decoy stripe* — spaced rows dealt across
    its banks at full rate — modelling the attacker saturating the
    shared command bus so the controller cannot reclaim the postponed
    refreshes early, and keeping every tracker in the channel busy on
    rows that never matter. Since DDR5 refresh is per rank, the decoy
    ranks cannot alter the target rank's bits (the channel-equivalence
    property); what they change is the channel-level accounting — total
    mitigation burn and the aggregate exposure the MTTF model consumes.

    All per-rank schedules are streams; horizons of many refresh
    windows cost one super-window of memory per rank.
    """
    params = params or AttackParams()
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    if not 0 <= target_rank < num_ranks:
        raise ValueError(
            f"target_rank {target_rank} outside 0..{num_ranks - 1}"
        )
    target_stream = cross_bank_decoy_stream(
        target, num_banks, params, postponed=postponed,
        target_bank=target_bank,
    )
    horizon = target_stream.horizon
    per_rank: dict[int, CycleStream] = {target_rank: target_stream}
    decoys = spaced_rows(params.max_act, params.base_row + 90_000, spacing=4)
    stripe = _rank_interval(
        [bank for bank in range(num_banks) for _ in decoys[: params.max_act]],
        [row for _ in range(num_banks) for row in decoys[: params.max_act]],
    )
    for rank in range(num_ranks):
        if rank == target_rank:
            continue
        per_rank[rank] = CycleStream(
            f"decoy-stripe(rank={rank}/{num_ranks})", [stripe], horizon
        )
    return ChannelTrace(
        name=(
            f"channel-stripe-decoy(target={target},ranks={num_ranks},"
            f"banks={num_banks},postponed={postponed})"
        ),
        per_rank=per_rank,
    )


def replicate_across_ranks(trace: RankTrace, num_ranks: int) -> ChannelTrace:
    """Play one rank-scoped schedule on every rank simultaneously.

    The generic lift behind
    :func:`~repro.attacks.registry.make_channel_attack`'s fallback: any
    rank (or auto-interleaved row-only) attack becomes a synchronized
    channel attack. The per-rank entries share one trace object — the
    schedules are read-only — so the lift is O(1) in memory.
    """
    if num_ranks < 1:
        raise ValueError("num_ranks must be >= 1")
    return ChannelTrace(
        name=f"channel({trace.name},ranks={num_ranks})",
        per_rank={rank: trace for rank in range(num_ranks)},
    )
