"""Classic single-sided and double-sided Rowhammer attacks (§V-C).

These are the patterns MINT defeats *by construction*: a row (or pair)
hammered continuously through the tREFI window is guaranteed to be
selected, so the attack is bounded at M activations — the simulation
tests assert exactly that.
"""

from __future__ import annotations

from ..sim.trace import Trace
from .base import AttackParams, build_trace


def single_sided(params: AttackParams | None = None, row: int | None = None) -> Trace:
    """Hammer one row for every activation slot of every interval."""
    params = params or AttackParams()
    row = params.base_row if row is None else row
    acts = [[row] * params.max_act for _ in range(params.intervals)]
    return build_trace(f"single-sided(row={row})", acts)


def double_sided(
    params: AttackParams | None = None, victim: int | None = None
) -> Trace:
    """Alternate between the two neighbours of ``victim``.

    The victim sits between aggressors victim-1 and victim+1; each
    interval alternates them across all M slots.
    """
    params = params or AttackParams()
    victim = params.base_row if victim is None else victim
    if victim < 1:
        raise ValueError("victim must have a lower neighbour")
    left, right = victim - 1, victim + 1
    per_interval = [
        left if i % 2 == 0 else right for i in range(params.max_act)
    ]
    acts = [list(per_interval) for _ in range(params.intervals)]
    return build_trace(f"double-sided(victim={victim})", acts)


def one_location(
    params: AttackParams | None = None, row: int | None = None
) -> Trace:
    """Pattern-1: a single activation per interval (stealth attack).

    This is the MINT-optimal stealth pattern analysed in Section V-D
    (MinTRH 2461): one activation of the row per tREFI, the remaining
    slots unused.
    """
    params = params or AttackParams()
    row = params.base_row if row is None else row
    acts = [[row] for _ in range(params.intervals)]
    return build_trace(f"one-location(row={row})", acts)
