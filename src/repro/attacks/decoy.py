"""Refresh-postponement decoy attack (paper Section VI-B).

The attack that "demolishes" interval-tailored low-cost trackers: the
attacker persuades the memory controller to postpone four refreshes,
spends the first M activations of each 5-tREFI super-window on decoy
rows (the only activations the tracker can see or select), then
hammers the real target for the remaining 4M activations. Without the
DMQ the target receives 4/5 of the entire tREFW activation budget —
~478K activations — with zero mitigations.
"""

from __future__ import annotations

from ..sim.trace import Interval, Trace
from .base import AttackParams, spaced_rows


def postponement_decoy(
    target: int,
    params: AttackParams | None = None,
    postponed: int = 4,
    decoy_count: int | None = None,
) -> Trace:
    """Build the decoy + postponement super-window pattern.

    Each super-window is ``postponed + 1`` intervals: the first carries
    decoy activations and requests postponement; the rest hammer the
    target (still postponing until the ceiling, then refreshing).
    """
    params = params or AttackParams()
    if postponed < 1:
        raise ValueError("postponed must be >= 1")
    window = postponed + 1
    decoys = spaced_rows(
        decoy_count or params.max_act, params.base_row + 50_000, spacing=4
    )
    intervals: list[Interval] = []
    count = 0
    while count + window <= params.intervals:
        # Decoy interval: fills the tracker's visible window.
        intervals.append(Interval.of(decoys[: params.max_act], postpone=True))
        # Hammer intervals: invisible to an interval-tailored tracker.
        for i in range(postponed):
            last = i == postponed - 1
            intervals.append(
                Interval.of([target] * params.max_act, postpone=not last)
            )
        count += window
    return Trace(name=f"postponement-decoy(target={target})", intervals=intervals)


def postponement_decoy_multi(
    targets: list[int],
    params: AttackParams | None = None,
    postponed: int = 4,
    decoy_count: int | None = None,
) -> Trace:
    """The decoy attack with one distinct target per postponed interval.

    The single-target decoy attack is survivable even by a depth-1 DMQ,
    because one pseudo-mitigation per super-window suffices to cover the
    lone target. Hammering ``postponed`` *distinct* rows — one per
    postponed interval — forces the queue to hold ``postponed`` pending
    mitigations at once: shallower queues must drop some, and the
    dropped targets accumulate across super-windows. This is the attack
    that makes the DMQ depth ablation meaningful.
    """
    params = params or AttackParams()
    if postponed < 1:
        raise ValueError("postponed must be >= 1")
    if len(targets) < postponed:
        raise ValueError(f"need at least {postponed} distinct targets")
    window = postponed + 1
    decoys = spaced_rows(
        decoy_count or params.max_act, params.base_row + 50_000, spacing=4
    )
    intervals: list[Interval] = []
    count = 0
    while count + window <= params.intervals:
        intervals.append(Interval.of(decoys[: params.max_act], postpone=True))
        for i in range(postponed):
            last = i == postponed - 1
            intervals.append(
                Interval.of(
                    [targets[i % len(targets)]] * params.max_act,
                    postpone=not last,
                )
            )
        count += window
    return Trace(
        name=f"postponement-decoy-multi(targets={len(targets)})",
        intervals=intervals,
    )


def expected_unmitigated_acts(
    params: AttackParams | None = None, postponed: int = 4
) -> int:
    """The deterministic activation count the target absorbs (478K)."""
    params = params or AttackParams()
    window = postponed + 1
    windows = params.intervals // window
    return windows * postponed * params.max_act
