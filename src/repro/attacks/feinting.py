"""Feinting attack traces against counter-based trackers (§V-G).

The executable counterpart of :mod:`repro.analysis.feinting`: keep all
surviving aggressor counters equal so the tracker's pick-the-max
mitigation gains nothing, and funnel the budget into fewer and fewer
rows. The generator is adaptive — it needs to know which row the
tracker mitigated — so it is expressed as a driver over the simulation
engine rather than a static trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.engine import BankSimulator, EngineConfig
from ..trackers.base import Tracker
from .base import AttackParams, spaced_rows


@dataclass
class FeintingOutcome:
    """What the adaptive feinting driver achieved."""

    rounds: int
    peak_unmitigated: int
    survivor_rows: list[int]
    flips: int


def run_feinting(
    tracker: Tracker,
    initial_rows: int = 256,
    params: AttackParams | None = None,
    trh: float = 1e9,
    spacing: int = 8,
    num_rows: int = 128 * 1024,
) -> FeintingOutcome:
    """Drive the feinting schedule against a live tracker.

    Water-fills activations across the rows the tracker has not yet
    mitigated; each refresh removes (at most) one row from the pool.
    ``trh`` defaults high so the run measures the achievable water
    level rather than stopping at a flip.
    """
    params = params or AttackParams()
    engine = BankSimulator(
        tracker,
        EngineConfig(trh=trh, num_rows=num_rows),
    )
    pool = spaced_rows(initial_rows, params.base_row, spacing)
    counts = {row: 0 for row in pool}
    rounds = 0
    peak = 0
    while len(pool) > 1 and rounds < params.intervals:
        rounds += 1
        # Equalise: hand this interval's budget to the lowest-count rows.
        budget = params.max_act
        order = sorted(pool, key=counts.__getitem__)
        interval: list[int] = []
        index = 0
        while budget > 0:
            row = order[index % len(order)]
            interval.append(row)
            counts[row] += 1
            peak = max(peak, counts[row])
            budget -= 1
            index += 1
        for row in interval:
            engine._activate(row, rounds * 3900.0)
        event = engine.scheduler.tick()
        if event is not None:
            before = set(engine._since_mitigation)
            for _ in range(event.count):
                engine._refresh(rounds * 3900.0)
        # Remove pool rows whose unmitigated run was reset (mitigated).
        pool = [
            row for row in pool if engine._since_mitigation.get(row, 0) > 0
        ] or pool[:1]
    flips = len(engine.device.flips(0))
    return FeintingOutcome(
        rounds=rounds,
        peak_unmitigated=peak,
        survivor_rows=pool,
        flips=flips,
    )
