"""Half-Double transitive attacks (paper Section V-E).

The attacker hammers row C continuously; the defense obligingly
refreshes C's neighbours B and D at every REF, and those mitigative
refreshes are themselves silent activations that disturb A and E —
rows two away from the hammered one. Without a countermeasure the
victim two rows out absorbs one silent activation per REF: 8192 per
tREFW, which is why plain MINT's threshold would degrade to 8192
(MinTRH-D 4096) and why MINT adds the transitive-mitigation slot.
"""

from __future__ import annotations

from ..sim.trace import Trace
from .base import AttackParams, build_trace
from .classic import single_sided


def half_double(
    params: AttackParams | None = None, center: int | None = None
) -> Trace:
    """Continuous hammering of ``center``; victims are center±2.

    The damage mechanism lives in the mitigation path, not the trace:
    the trace is just a single-sided pattern, and the simulation engine
    models the silent activations of victim refreshes.
    """
    params = params or AttackParams()
    center = params.base_row if center is None else center
    trace = single_sided(params, row=center)
    return Trace(name=f"half-double(center={center})", intervals=trace.intervals)


def half_double_distance(
    distance: int,
    params: AttackParams | None = None,
    center: int | None = None,
) -> Trace:
    """Recursive Half-Double targeting rows ``center ± distance``.

    With radius-2 victim refresh the failure moves to distance 3, etc.
    (Section V-E: "refreshing two rows on either side ... does not
    mitigate transitive attacks"). The trace is identical; the label
    records the intended victim distance for the experiment harness.
    """
    if distance < 2:
        raise ValueError("transitive attacks target distance >= 2")
    params = params or AttackParams()
    center = params.base_row if center is None else center
    trace = single_sided(params, row=center)
    return Trace(
        name=f"half-double(center={center},distance={distance})",
        intervals=trace.intervals,
    )
