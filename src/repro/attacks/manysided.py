"""TRRespass-style many-sided patterns (paper Section II-F).

TRRespass defeats deployed TRR by hammering more aggressor rows than
the tracker has table entries: the tracker's eviction policy thrashes
and the true aggressors escape mitigation. These generators exist to
demonstrate *why* the deployed low-cost trackers are insecure (the
comparison experiments show TRR failing while MINT holds).
"""

from __future__ import annotations

from ..sim.trace import Trace
from .base import AttackParams, build_trace, spaced_rows


def many_sided(
    sides: int,
    params: AttackParams | None = None,
    spacing: int = 4,
) -> Trace:
    """An n-sided TRRespass pattern: ``sides`` aggressors hammered
    round-robin, saturating every activation slot."""
    params = params or AttackParams()
    if sides < 1:
        raise ValueError("sides must be >= 1")
    rows = spaced_rows(sides, params.base_row, spacing)
    acts: list[list[int]] = []
    cursor = 0
    for _ in range(params.intervals):
        interval = []
        for _slot in range(params.max_act):
            interval.append(rows[cursor % sides])
            cursor += 1
        acts.append(interval)
    return build_trace(f"many-sided(n={sides})", acts)


def decoy_assisted(
    target: int,
    decoys: int,
    hammers_per_interval: int,
    params: AttackParams | None = None,
) -> Trace:
    """Hammer ``target`` while spraying decoy rows to thrash the tracker.

    The decoys occupy the tracker's table entries (defeating TRR-class
    designs); the target receives ``hammers_per_interval`` activations
    per tREFI.
    """
    params = params or AttackParams()
    if hammers_per_interval < 1:
        raise ValueError("hammers_per_interval must be >= 1")
    if hammers_per_interval > params.max_act:
        raise ValueError("hammers_per_interval exceeds the interval budget")
    decoy_rows = spaced_rows(
        max(1, decoys), params.base_row + 10_000, spacing=4
    )
    acts: list[list[int]] = []
    cursor = 0
    for _ in range(params.intervals):
        interval = [target] * hammers_per_interval
        while len(interval) < params.max_act:
            interval.append(decoy_rows[cursor % len(decoy_rows)])
            cursor += 1
        acts.append(interval)
    return build_trace(
        f"decoy-assisted(target={target},decoys={decoys})", acts
    )
