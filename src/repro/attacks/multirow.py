"""Pattern-2 and pattern-3 multi-row attacks (paper Section V-D).

Pattern-2 (multi-row, single-copy): k rows receive one activation each
per round. For k <= M a round is one tREFI; larger k spans several.
This is MINT's worst case at k = M = 73.

Pattern-3 (multi-row, multi-copy): each of k rows is activated c times
per tREFI. Copies raise the per-tREFI selection odds to c/M, so this
family collapses for c >= 4 (Fig 11).
"""

from __future__ import annotations

from ..sim.trace import Trace
from .base import AttackParams, build_trace, spaced_rows


def pattern2(
    k: int,
    params: AttackParams | None = None,
    spacing: int = 8,
) -> Trace:
    """k attack rows, one activation each per round (Fig 10)."""
    params = params or AttackParams()
    if k < 1:
        raise ValueError("k must be >= 1")
    rows = spaced_rows(k, params.base_row, spacing)
    acts: list[list[int]] = []
    cursor = 0
    for _ in range(params.intervals):
        interval: list[int] = []
        for _slot in range(min(params.max_act, k)):
            interval.append(rows[cursor % k])
            cursor += 1
        acts.append(interval)
    return build_trace(f"pattern2(k={k})", acts)


def pattern2_double_sided(
    pairs: int,
    params: AttackParams | None = None,
    spacing: int = 8,
) -> Trace:
    """Pattern-2 arranged as aggressor pairs sandwiching victims (§V-F).

    ``pairs`` victim rows, each between two aggressors. Both aggressors
    of each pair are activated once per round, so a round uses
    ``2 * pairs`` slots.
    """
    params = params or AttackParams()
    if pairs < 1:
        raise ValueError("pairs must be >= 1")
    victims = spaced_rows(pairs, params.base_row, spacing)
    rows: list[int] = []
    for victim in victims:
        rows.extend((victim - 1, victim + 1))
    acts: list[list[int]] = []
    cursor = 0
    k = len(rows)
    for _ in range(params.intervals):
        interval = []
        for _slot in range(min(params.max_act, k)):
            interval.append(rows[cursor % k])
            cursor += 1
        acts.append(interval)
    return build_trace(f"pattern2-double(pairs={pairs})", acts)


def pattern3(
    copies: int,
    params: AttackParams | None = None,
    spacing: int = 8,
) -> Trace:
    """floor(M/c) rows, each activated c times per tREFI (Fig 11)."""
    params = params or AttackParams()
    if not 1 <= copies <= params.max_act:
        raise ValueError(f"copies must be in [1, {params.max_act}]")
    k = max(1, params.max_act // copies)
    rows = spaced_rows(k, params.base_row, spacing)
    per_interval: list[int] = []
    for row in rows:
        per_interval.extend([row] * copies)
    per_interval = per_interval[: params.max_act]
    acts = [list(per_interval) for _ in range(params.intervals)]
    return build_trace(f"pattern3(c={copies},k={k})", acts)
