"""Cross-bank attack generators for the rank-level simulator.

Real DDR5 attacks interleave aggressors across banks: every bank has
its own tracker with its own per-interval selection budget, but refresh
scheduling (and its postponement) is a rank-level decision, and tFAW
limits how many banks can sustain full-rate activations concurrently.
These generators lift the existing row-only pattern families into
bank-addressed :class:`~repro.sim.trace.RankTrace` streams:

* :func:`bank_interleaved` — wrap *any* registered pattern and spread
  it across banks, either whole intervals round-robin (each bank sees a
  slower, gappier version of the pattern, starving interval-tailored
  trackers of context) or ACT-by-ACT striping.
* :func:`cross_bank_decoy` — the postponement decoy played across the
  rank: decoy banks burn the visible intervals while the target bank is
  hammered during the postponed ones.
* :func:`rank_stripe` — a many-sided aggressor set striped over the
  banks, every bank driven at full rate (the tracker-budget-stretching
  TRRespass variant).
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from ..sim.trace import CycleStream, RankInterval, RankTrace, Trace
from .base import AttackParams, spaced_rows
from .manysided import many_sided


def _rank_interval(banks, rows, postpone: bool = False) -> RankInterval:
    """Build a bank-addressed interval, via arrays when NumPy is around.

    :meth:`RankInterval.from_arrays` seeds the interval's per-bank array
    split directly, so the vectorized engine never re-derives it.
    """
    if np is not None:
        return RankInterval.from_arrays(
            np.asarray(banks, dtype=np.intp),
            np.asarray(rows, dtype=np.intp),
            postpone,
        )
    return RankInterval(tuple(zip(banks, rows)), postpone)


def bank_interleaved(
    base: Trace,
    num_banks: int,
    scheme: str = "interval",
) -> RankTrace:
    """Spread an existing row-only pattern across ``num_banks`` banks.

    ``scheme="interval"`` sends interval ``i`` of the base trace to bank
    ``i % num_banks`` (other banks idle that tREFI): each bank's tracker
    sees only every ``num_banks``-th slice of the pattern, while the
    victim rows still accumulate the full activation count between
    their bank's refreshes. ``scheme="act"`` stripes each interval's
    ACTs over the banks round-robin, splitting the per-interval budget.

    Rank-level postpone flags are preserved either way.
    """
    if num_banks < 1:
        raise ValueError("num_banks must be >= 1")
    if scheme not in ("interval", "act"):
        raise ValueError(f"unknown scheme {scheme!r}; use 'interval' or 'act'")
    intervals: list[RankInterval] = []
    # Repeated source intervals (the repeat_interval idiom) map to one
    # shared bank-addressed interval per (contents, bank placement), so
    # the engine's per-distinct-interval caches stay effective.
    interned: dict[tuple, RankInterval] = {}
    if scheme == "interval":
        for i, interval in enumerate(base.intervals):
            bank = i % num_banks
            key = (interval.acts, interval.postpone, bank)
            lifted = interned.get(key)
            if lifted is None:
                lifted = _rank_interval(
                    [bank] * len(interval.acts), interval.acts, interval.postpone
                )
                interned[key] = lifted
            intervals.append(lifted)
    else:
        for interval in base.intervals:
            key = (interval.acts, interval.postpone)
            striped = interned.get(key)
            if striped is None:
                striped = _rank_interval(
                    [i % num_banks for i in range(len(interval.acts))],
                    interval.acts,
                    interval.postpone,
                )
                interned[key] = striped
            intervals.append(striped)
    return RankTrace(
        name=f"bank-interleaved({base.name},banks={num_banks},{scheme})",
        intervals=intervals,
    )


def cross_bank_decoy(
    target: int,
    num_banks: int,
    params: AttackParams | None = None,
    postponed: int = 4,
    target_bank: int = 0,
) -> RankTrace:
    """The postponement decoy attack played across a rank.

    Each super-window is ``postponed + 1`` intervals. In the first, all
    *other* banks are flooded with decoy activations (each within its
    own per-bank ACT budget) and the controller is asked to postpone the
    rank's REF — so the trackers' visible interval is spent entirely on
    decoys, across every bank. The remaining ``postponed`` intervals
    hammer ``target`` on ``target_bank`` while the REF debt accrues;
    the final interval lets the batch of refreshes land.

    Against a rank of interval-tailored trackers this stretches the
    decoy blow-up of §VI-B: the target bank's tracker saw *nothing* in
    the visible interval (its decoys ran on sibling banks), so even its
    own-interval selection is wasted.
    """
    params = params or AttackParams()
    window = _decoy_window(target, num_banks, params, postponed, target_bank)
    repeats = params.intervals // len(window)
    return RankTrace(
        name=_decoy_name(target, num_banks, postponed),
        intervals=window * repeats,
    )


def cross_bank_decoy_stream(
    target: int,
    num_banks: int,
    params: AttackParams | None = None,
    postponed: int = 4,
    target_bank: int = 0,
) -> CycleStream:
    """The streaming form of :func:`cross_bank_decoy`.

    Same super-window, same interval objects, but the schedule is a
    :class:`~repro.sim.trace.CycleStream` repeated out to the horizon
    lazily — a multi-refresh-window campaign (``params.intervals`` in
    the billions) costs no more memory than one super-window, where the
    materialized builder would spend 8 bytes of pointer per tREFI.
    Bit-identical to the materialized trace (pinned by the
    stream-equivalence tests).
    """
    params = params or AttackParams()
    window = _decoy_window(target, num_banks, params, postponed, target_bank)
    repeats = params.intervals // len(window)
    return CycleStream(
        _decoy_name(target, num_banks, postponed),
        window,
        repeats * len(window),
    )


def _decoy_name(target: int, num_banks: int, postponed: int) -> str:
    return (
        f"cross-bank-decoy(target={target},banks={num_banks},"
        f"postponed={postponed})"
    )


def _decoy_window(
    target: int,
    num_banks: int,
    params: AttackParams,
    postponed: int,
    target_bank: int,
) -> list[RankInterval]:
    """One decoy-then-hammer super-window (``postponed + 1`` intervals).

    Three shared interval objects cover the whole attack no matter the
    horizon: the engine's per-distinct-interval caches then do the
    grouping work once.
    """
    if num_banks < 2:
        raise ValueError("cross-bank decoy needs at least 2 banks")
    if postponed < 1:
        raise ValueError("postponed must be >= 1")
    if not 0 <= target_bank < num_banks:
        raise ValueError(f"target_bank {target_bank} outside 0..{num_banks - 1}")
    decoys = spaced_rows(params.max_act, params.base_row + 50_000, spacing=4)
    decoy_banks = [b for b in range(num_banks) if b != target_bank]
    decoy_interval = _rank_interval(
        [bank for bank in decoy_banks for _ in decoys[: params.max_act]],
        [row for _ in decoy_banks for row in decoys[: params.max_act]],
        postpone=True,
    )
    hammer_banks = [target_bank] * params.max_act
    hammer_rows = [target] * params.max_act
    hammer_postponed = _rank_interval(hammer_banks, hammer_rows, postpone=True)
    hammer_final = _rank_interval(hammer_banks, hammer_rows, postpone=False)
    return (
        [decoy_interval]
        + [hammer_postponed] * (postponed - 1)
        + [hammer_final]
    )


def rank_stripe(
    sides: int,
    num_banks: int,
    params: AttackParams | None = None,
    spacing: int = 8,
) -> RankTrace:
    """A many-sided aggressor set striped across the rank's banks.

    ``sides`` aggressors are dealt round-robin over ``num_banks`` banks;
    each bank then hammers its local share at the full per-bank rate (a
    TRRespass pattern per bank, all banks concurrent). With more total
    aggressors than any single tracker can hold, this is the attack
    that stretches the *rank's* tracker budget rather than one bank's.
    With fewer aggressors than banks, only the first ``sides`` banks
    carry an aggressor — the total stays exactly ``sides``.
    """
    params = params or AttackParams()
    if sides < 1:
        raise ValueError("sides must be >= 1")
    if num_banks < 1:
        raise ValueError("num_banks must be >= 1")
    active_banks = min(num_banks, sides)
    bank_traces = {
        bank: many_sided(
            len(range(bank, sides, num_banks)),
            AttackParams(
                max_act=params.max_act,
                intervals=params.intervals,
                base_row=params.base_row + bank * sides * spacing,
            ),
            spacing=spacing,
        )
        for bank in range(active_banks)
    }
    trace = RankTrace.from_bank_traces(
        f"rank-stripe(n={sides},banks={num_banks})", bank_traces
    )
    return trace
