"""Factory registry: build any attack trace from a name plus parameters.

The counterpart of :mod:`repro.trackers.registry` for the attack side,
so an experiment can be described entirely as data: ``("mint",
"blacksmith", config)``. Factories take the shared
:class:`~repro.attacks.base.AttackParams` plus an optional RNG for the
randomised families; randomness is drawn only from that RNG, so a
seeded call is reproducible across processes.
"""

from __future__ import annotations

import random
from typing import Callable

from ..sim.trace import ChannelTrace, RankTrace, Trace
from .base import AttackParams
from .channel import (
    channel_stripe_decoy,
    rank_rotation,
    rank_synchronized,
    replicate_across_ranks,
)
from .classic import double_sided, one_location, single_sided
from .blacksmith import random_blacksmith
from .decoy import postponement_decoy, postponement_decoy_multi
from .halfdouble import half_double
from .manysided import decoy_assisted, many_sided
from .multirow import pattern2, pattern2_double_sided, pattern3
from .rank import bank_interleaved, cross_bank_decoy, rank_stripe

_FACTORIES: dict[str, Callable[..., Trace]] = {}
_RANK_FACTORIES: dict[str, Callable[..., RankTrace]] = {}
_CHANNEL_FACTORIES: dict[str, Callable[..., ChannelTrace]] = {}


def register_attack(name: str, factory: Callable[..., Trace]) -> None:
    """Register an attack factory under ``name`` (case-insensitive)."""
    _FACTORIES[name.lower()] = factory


def make_attack(
    name: str,
    params: AttackParams | None = None,
    rng: random.Random | None = None,
    **kwargs,
) -> Trace:
    """Build an attack trace by name.

    ``rng`` feeds the randomised families (Blacksmith fuzzing); the
    deterministic patterns ignore it.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown attack {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory(params or AttackParams(), rng=rng, **kwargs)


def available_attacks() -> list[str]:
    """Names accepted by :func:`make_attack`."""
    return sorted(_FACTORIES)


def register_rank_attack(
    name: str, factory: Callable[..., RankTrace]
) -> None:
    """Register a bank-addressed attack factory (case-insensitive).

    Rank factories take ``(params, rng=None, num_banks=..., **extra)``
    and return a :class:`~repro.sim.trace.RankTrace`.
    """
    _RANK_FACTORIES[name.lower()] = factory


def make_rank_attack(
    name: str,
    params: AttackParams | None = None,
    rng: random.Random | None = None,
    num_banks: int = 4,
    **kwargs,
) -> RankTrace:
    """Build a bank-addressed attack trace by name.

    Falls back to the row-only registry for convenience: a plain attack
    name resolves through :func:`make_attack` and is wrapped
    :func:`~repro.attacks.rank.bank_interleaved` across ``num_banks``.
    """
    factory = _RANK_FACTORIES.get(name.lower())
    if factory is not None:
        return factory(
            params or AttackParams(), rng=rng, num_banks=num_banks, **kwargs
        )
    if name.lower() in _FACTORIES:
        base = make_attack(name, params, rng=rng, **kwargs)
        return bank_interleaved(base, num_banks)
    raise KeyError(
        f"unknown rank attack {name!r}; known: "
        f"{sorted(_RANK_FACTORIES)} (plus any row-only attack, "
        f"auto-interleaved)"
    )


def available_rank_attacks() -> list[str]:
    """Names with a dedicated bank-addressed factory."""
    return sorted(_RANK_FACTORIES)


def is_rank_attack(name: str) -> bool:
    """True if ``name`` resolves to a bank-addressed (rank) factory."""
    return name.lower() in _RANK_FACTORIES


def register_channel_attack(
    name: str, factory: Callable[..., ChannelTrace]
) -> None:
    """Register a channel (multi-rank) attack factory (case-insensitive).

    Channel factories take ``(params, rng=None, num_ranks=...,
    num_banks=..., **extra)`` and return a
    :class:`~repro.sim.trace.ChannelTrace` of per-rank schedules.
    """
    _CHANNEL_FACTORIES[name.lower()] = factory


def make_channel_attack(
    name: str,
    params: AttackParams | None = None,
    rng: random.Random | None = None,
    num_ranks: int = 2,
    num_banks: int = 1,
    **kwargs,
) -> ChannelTrace:
    """Build a channel-level attack schedule by name.

    Falls back through the registries for convenience: a rank-attack
    name resolves via :func:`make_rank_attack` and a row-only name via
    :func:`make_attack` (auto-interleaved), then the resulting
    rank-scoped schedule is replicated onto every rank (synchronized
    channel play; see
    :func:`~repro.attacks.channel.replicate_across_ranks`).
    """
    factory = _CHANNEL_FACTORIES.get(name.lower())
    if factory is not None:
        return factory(
            params or AttackParams(), rng=rng, num_ranks=num_ranks,
            num_banks=num_banks, **kwargs,
        )
    lower = name.lower()
    if lower in _RANK_FACTORIES or lower in _FACTORIES:
        base = make_rank_attack(
            name, params, rng=rng, num_banks=num_banks, **kwargs
        )
        return replicate_across_ranks(base, num_ranks)
    raise KeyError(
        f"unknown channel attack {name!r}; known: "
        f"{sorted(_CHANNEL_FACTORIES)} (plus any rank or row-only "
        f"attack, replicated across the ranks)"
    )


def available_channel_attacks() -> list[str]:
    """Names with a dedicated channel (multi-rank) factory."""
    return sorted(_CHANNEL_FACTORIES)


def is_channel_attack(name: str) -> bool:
    """True if ``name`` resolves to a dedicated channel factory."""
    return name.lower() in _CHANNEL_FACTORIES


# ---------------------------------------------------------------------
# Built-in factories. Each accepts (params, rng, **extra) even when it
# ignores the RNG, so make_attack can treat them uniformly.
# ---------------------------------------------------------------------

def _single_sided(params, rng=None, row=None):
    return single_sided(params, row=row)


def _double_sided(params, rng=None, victim=None):
    return double_sided(
        params, victim=params.base_row if victim is None else victim
    )


def _one_location(params, rng=None, row=None):
    return one_location(params, row=row)


def _many_sided(params, rng=None, sides=12, spacing=4):
    return many_sided(sides, params, spacing=spacing)


def _blacksmith(params, rng=None, count=16, seed=None):
    if seed is None:
        seed = rng.randrange(2**32) if rng is not None else 13
    return random_blacksmith(count, params, seed=seed)


def _half_double(params, rng=None, center=None):
    return half_double(params, center=center)


def _pattern2(params, rng=None, k=None, spacing=8):
    return pattern2(params.max_act if k is None else k, params, spacing)


def _pattern2_double(params, rng=None, pairs=8, spacing=8):
    return pattern2_double_sided(pairs, params, spacing)


def _pattern3(params, rng=None, copies=4, spacing=8):
    return pattern3(copies, params, spacing)


def _decoy(params, rng=None, target=60_000, postponed=4):
    return postponement_decoy(target, params, postponed=postponed)


def _decoy_multi(params, rng=None, targets=None, postponed=4):
    if targets is None:
        targets = [60_000 + 10 * i for i in range(postponed)]
    return postponement_decoy_multi(list(targets), params, postponed=postponed)


def _decoy_assisted(params, rng=None, target=60_000, decoys=16,
                    hammers_per_interval=8):
    return decoy_assisted(target, decoys, hammers_per_interval, params)


# --- bank-addressed (rank) factories ---------------------------------

def _bank_interleaved(params, rng=None, num_banks=4, base="double-sided",
                      scheme="interval", **base_kwargs):
    base_trace = make_attack(base, params, rng=rng, **base_kwargs)
    return bank_interleaved(base_trace, num_banks, scheme=scheme)


def _cross_bank_decoy(params, rng=None, num_banks=4, target=60_000,
                      postponed=4, target_bank=0):
    return cross_bank_decoy(
        target, num_banks, params, postponed=postponed,
        target_bank=target_bank,
    )


def _rank_stripe(params, rng=None, num_banks=4, sides=12, spacing=8):
    return rank_stripe(sides, num_banks, params, spacing=spacing)


register_attack("single-sided", _single_sided)
register_attack("double-sided", _double_sided)
register_attack("one-location", _one_location)
register_attack("many-sided", _many_sided)
register_attack("blacksmith", _blacksmith)
register_attack("half-double", _half_double)
register_attack("pattern2", _pattern2)
register_attack("pattern2-double", _pattern2_double)
register_attack("pattern3", _pattern3)
register_attack("decoy", _decoy)
register_attack("decoy-multi", _decoy_multi)
register_attack("decoy-assisted", _decoy_assisted)

# --- channel (multi-rank) factories ----------------------------------

def _rank_rotation(params, rng=None, num_ranks=2, num_banks=1,
                   base="double-sided", bank=0, **base_kwargs):
    base_trace = make_attack(base, params, rng=rng, **base_kwargs)
    return rank_rotation(base_trace, num_ranks, bank=bank)


def _rank_synchronized(params, rng=None, num_ranks=2, num_banks=1,
                       sides=12, spacing=8):
    return rank_synchronized(
        sides, num_ranks, params, num_banks=num_banks, spacing=spacing
    )


def _channel_stripe_decoy(params, rng=None, num_ranks=2, num_banks=2,
                          target=60_000, postponed=4, target_rank=0,
                          target_bank=0):
    return channel_stripe_decoy(
        target, num_ranks, params, num_banks=num_banks,
        postponed=postponed, target_rank=target_rank,
        target_bank=target_bank,
    )


register_rank_attack("bank-interleaved", _bank_interleaved)
register_rank_attack("cross-bank-decoy", _cross_bank_decoy)
register_rank_attack("rank-stripe", _rank_stripe)

register_channel_attack("rank-rotation", _rank_rotation)
register_channel_attack("rank-synchronized", _rank_synchronized)
register_channel_attack("channel-stripe-decoy", _channel_stripe_decoy)
