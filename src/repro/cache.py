"""Bounded identity-keyed memo used by the hot-loop kernels.

The engine memoizes per-batch work (unique/count aggregations, packed
scatter plans) keyed by object identity, because attack traces reuse
one interval object across thousands of tREFIs. Those memos used to be
plain dicts wholesale-``clear()``-ed at a size ceiling — which meant a
long stream of *distinct* intervals (randomized placements, adaptive
attacks) periodically flushed the hot shared-interval entries along
with the cold ones, and the next tREFI re-paid the aggregation for the
very interval that recurs every cycle.

:class:`BoundedCache` replaces that: entries carry a last-use tick, and
when the cache is full an insert evicts the least-recently-used quarter
in one pass (one O(n log n) sweep per ~n/4 misses, amortized O(log n)
per insert). Hot entries — the shared intervals touched every tREFI —
always carry recent ticks and survive every sweep.

Entries must hold strong references to their key objects (the caller
stores the keyed object inside the value), so an ``id()`` key can never
be recycled while its entry lives — the same contract the plain-dict
memos relied on.
"""

from __future__ import annotations

from typing import Any, Hashable


class BoundedCache:
    """A bounded mapping with LRU-style quarter eviction.

    ``get`` refreshes the entry's recency; ``put`` inserts, evicting the
    least-recently-used ~quarter of the entries when ``capacity`` is
    reached. Not thread-safe (the engine is single-threaded per
    simulator).
    """

    __slots__ = ("capacity", "_entries", "_tick")

    def __init__(self, capacity: int) -> None:
        if capacity < 4:
            raise ValueError("capacity must be >= 4")
        self.capacity = capacity
        # key -> [value, last_use_tick]
        self._entries: dict[Hashable, list] = {}
        self._tick = 0

    def get(self, key: Hashable, default: Any = None) -> Any | None:
        """The cached value for ``key`` (marked recently used).

        Returns ``default`` on a miss. A legitimately cached ``None``
        is a hit like any other value — callers that need to tell the
        two apart pass a private sentinel as ``default`` instead of
        testing ``is None`` (which would rebuild cached-``None``
        entries on every access).
        """
        entry = self._entries.get(key)
        if entry is None:
            return default
        self._tick += 1
        entry[1] = self._tick
        return entry[0]

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the stalest quarter if at capacity."""
        entries = self._entries
        if key not in entries and len(entries) >= self.capacity:
            ticks = sorted(entry[1] for entry in entries.values())
            cutoff = ticks[len(ticks) // 4]
            for stale in [k for k, e in entries.items() if e[1] <= cutoff]:
                del entries[stale]
        self._tick += 1
        entries[key] = [value, self._tick]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries
