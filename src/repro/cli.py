"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``      execute a scenario file through the Session facade
``scenario`` inspect a scenario file (``show`` / ``fingerprint``)
``attack``   run an attack pattern against a tracker in the simulator
``mintrh``   compute the tolerated threshold of a MINT configuration
``table``    print one of the paper's comparison tables
``plan``     recommend a configuration for a device threshold
``exp``      run/inspect batched experiment grids (parallel + cached)
``serve``    HTTP read API over a result store (cached sweep queries)
``lint``     determinism & identity static analysis (see repro.lint)

Every simulation command goes through :mod:`repro.scenario`: ``run``
consumes a serialized :class:`~repro.scenario.Scenario` verbatim,
``attack`` builds one from flags, and ``exp run`` fans a grid of them
out over the process pool. ``--format json|csv`` renders results via
the shared serializers on
:class:`~repro.sim.results.RankSimResult` /
:class:`~repro.sim.montecarlo.MonteCarloResult`.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys

from .analysis.adaptive import AdaConfig, worst_case_ada_mintrh
from .analysis.comparison import table3
from .analysis.postponement import table4
from .analysis.rfm_scaling import (
    mint_rfm_config,
    mint_slow_config,
    table5,
    ttf_sensitivity,
)
from .analysis.storage import table9
from .attacks import (
    available_attacks,
    available_channel_attacks,
    available_rank_attacks,
)
from .scenario import AttackSpec, Scenario, Session, TrackerSpec
from .sim.results import RESULT_CSV_COLUMNS, result_csv_rows
from .trackers import available_trackers

#: Attack families exposed by ``repro attack`` (the full registry also
#: carries the postponement/decoy patterns used by ``repro exp``).
_CLI_ATTACKS = (
    "single-sided", "double-sided", "many-sided", "blacksmith",
    "half-double", "pattern2",
)


def _load_scenario(path: str) -> Scenario:
    """Read a scenario file (JSON payload) or raise ``SystemExit(2)``."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as error:
        print(f"cannot read scenario file: {error}")
        raise SystemExit(2)
    except json.JSONDecodeError as error:
        print(f"{path}: not valid JSON ({error})")
        raise SystemExit(2)
    try:
        return Scenario.from_payload(payload)
    except (KeyError, TypeError, ValueError) as error:
        print(f"{path}: invalid scenario: {error}")
        raise SystemExit(2)


def _emit_csv(rows: list[dict], columns) -> None:
    writer = csv.DictWriter(sys.stdout, fieldnames=list(columns))
    writer.writeheader()
    writer.writerows(rows)


def _emit_run_result(result, fmt: str) -> None:
    """Render a RankSimResult in the requested format."""
    if fmt == "json":
        print(json.dumps(result.to_payload(), indent=2, sort_keys=True))
    elif fmt == "csv":
        _emit_csv(result_csv_rows(result.to_payload()), RESULT_CSV_COLUMNS)
    else:
        print(result.summary())
        if result.failed:
            flip = result.flips[0]
            print(f"first flip: row {flip.row} after "
                  f"{flip.disturbance:.0f} disturbances at "
                  f"{flip.time_ns / 1e6:.2f} ms")


def _cmd_run(args) -> int:
    scenario = _load_scenario(args.scenario)
    session = Session(scenario)
    if args.windows:
        result = session.run_many(args.windows, n_workers=args.workers or 1)
        payload = result.to_payload()
        if args.format == "json":
            print(json.dumps(payload, indent=2, sort_keys=True))
        elif args.format == "csv":
            _emit_csv([payload], payload.keys())
        else:
            low, high = result.confidence_interval()
            print(f"{scenario.label}: {result.failures}/{result.windows} "
                  f"windows failed (p = {result.failure_probability:.4g}, "
                  f"95% CI [{low:.4g}, {high:.4g}], "
                  f"{result.total_mitigations} mitigations)")
        return 1 if result.failures else 0
    result = session.run()
    _emit_run_result(result, args.format)
    return 1 if result.failed else 0


def _cmd_scenario_show(args) -> int:
    scenario = _load_scenario(args.scenario)
    if args.format == "json":
        print(json.dumps(scenario.to_payload(), indent=2, sort_keys=True))
    else:
        print(scenario.describe())
    return 0


def _cmd_scenario_fingerprint(args) -> int:
    print(_load_scenario(args.scenario).fingerprint())
    return 0


def _cmd_attack(args) -> int:
    scenario = Scenario(
        tracker=TrackerSpec.of(args.tracker, dmq=args.dmq),
        attack=AttackSpec.of(args.attack),
        trh=args.trh,
        intervals=args.intervals,
        max_act=args.max_act,
        allow_postponement=args.allow_postponement,
        num_banks=args.banks,
        num_ranks=args.ranks,
        backend=args.backend,
        seed=args.seed,
    )
    try:
        result = Session(scenario).run()
    except RuntimeError as error:
        # e.g. backend="compiled" with no compiled provider available:
        # an environment problem, not a bug — report it without a
        # traceback.
        print(f"attack: {error}", file=sys.stderr)
        return 2
    if not scenario.is_channel and not scenario.is_rank:
        result = result.per_bank[0]
    print(result.summary())
    if result.failed:
        flip = result.flips[0]
        print(f"first flip: row {flip.row} after {flip.disturbance:.0f} "
              f"disturbances at {flip.time_ns / 1e6:.2f} ms")
    return 1 if result.failed else 0


def _cmd_mintrh(args) -> int:
    if args.scheme == "mint":
        cfg = AdaConfig(target_ttf_years=args.target_ttf)
    elif args.scheme == "mint-0.5x":
        cfg = mint_slow_config(2, target_ttf_years=args.target_ttf)
    elif args.scheme == "rfm32":
        cfg = mint_rfm_config(32, target_ttf_years=args.target_ttf)
    elif args.scheme == "rfm16":
        cfg = mint_rfm_config(16, target_ttf_years=args.target_ttf)
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.scheme)
    mp, value = worst_case_ada_mintrh(cfg, double_sided=True)
    print(f"{args.scheme}: MinTRH-D = {value} "
          f"(worst adaptive morphing point {mp}, "
          f"target TTF {args.target_ttf:,.0f} years/bank)")
    return 0


def _cmd_table(args) -> int:
    if args.which == "3":
        for row in table3():
            print(f"{row.name:<14} {row.centric:<8} MinTRH-D={row.mintrh_d:<7}"
                  f" entries={row.entries:<7} "
                  f"{'vulnerable' if row.transitive_vulnerable else 'immune'}")
    elif args.which == "4":
        for row in table4():
            print(f"{row.name:<14} entries={row.entries:<7} "
                  f"none={row.mintrh_d_no_postpone:<7} "
                  f"noDMQ={row.mintrh_d_no_dmq:<7} "
                  f"DMQ={row.mintrh_d_with_dmq}")
    elif args.which == "5":
        for row in table5():
            print(f"{row.name:<14} {row.relative_rate:<28} "
                  f"MinTRH-D={row.mintrh_d}")
    elif args.which == "7":
        for row in ttf_sensitivity():
            print(f"target={row['target_ttf_years']:>12,.0f}y "
                  f"mint={row['mint']:<6} rfm32={row['rfm32']:<5} "
                  f"rfm16={row['rfm16']}")
    elif args.which == "9":
        for row in table9():
            print(f"TRH-D={row['trh_d']:<6} "
                  f"graphene={row['graphene_kb_per_bank']:.1f}KB/bank "
                  f"mint+dmq={row['mint_dmq_bytes_per_bank']:.1f}B/bank")
    return 0


def _cmd_plan(args) -> int:
    options = [
        ("MINT", AdaConfig()),
        ("MINT+RFM32", mint_rfm_config(32)),
        ("MINT+RFM16", mint_rfm_config(16)),
    ]
    for name, cfg in options:
        _mp, tolerated = worst_case_ada_mintrh(cfg, double_sided=True)
        if args.trh_d >= tolerated:
            print(f"device TRH-D {args.trh_d}: use {name} "
                  f"(tolerates {tolerated}, margin "
                  f"{args.trh_d / tolerated:.2f}x)")
            return 0
    print(f"device TRH-D {args.trh_d}: below MINT+RFM16 reach; "
          f"per-row counting (PRAC) required")
    return 1


def _cmd_exp_run(args) -> int:
    from .exp import (
        AttackSpec,
        ExperimentGrid,
        PointConfig,
        TrackerSpec,
        preset_grid,
        run_grid,
    )

    if args.preset:
        preset_kwargs = {}
        if args.banks is not None:
            if args.preset not in ("rank-shootout", "channel-shootout"):
                print(f"exp run: --banks only applies to the rank-shootout "
                      f"and channel-shootout presets (got --preset "
                      f"{args.preset})")
                return 2
            preset_kwargs["banks"] = (args.banks,)
        if args.ranks is not None:
            if args.preset != "channel-shootout":
                print(f"exp run: --ranks only applies to the "
                      f"channel-shootout preset (got --preset "
                      f"{args.preset})")
                return 2
            preset_kwargs["ranks"] = (args.ranks,)
        try:
            grid = preset_grid(args.preset, **preset_kwargs)
        except TypeError as error:
            print(f"exp run: {error}")
            return 2
    else:
        if not (args.trackers and args.attacks):
            print("exp run: need --preset, or both --trackers and --attacks")
            return 2
        grid = ExperimentGrid(
            trackers=[
                TrackerSpec.of(name, dmq=args.dmq)
                for name in args.trackers.split(",")
            ],
            attacks=[AttackSpec.of(name) for name in args.attacks.split(",")],
            configs=[
                PointConfig(
                    trh=args.trh,
                    intervals=args.intervals,
                    max_act=args.max_act,
                    allow_postponement=args.allow_postponement,
                    num_banks=args.banks or 1,
                    num_ranks=args.ranks or 1,
                    backend=args.backend,
                )
            ],
        )
    store = _open_store(args.store) if args.store else None
    try:
        report = run_grid(
            grid, base_seed=args.seed, n_workers=args.workers, store=store
        )
    except KeyError as error:
        # Unknown tracker/attack names surface from the factories.
        print(f"exp run: {error.args[0]}")
        return 2
    except ValueError as error:
        # Invalid point definitions (tFAW ceiling, attacks needing more
        # banks than configured, budget violations) surface from the
        # generators and the engine's trace validation.
        print(f"exp run: {error}")
        return 2
    failed = any(result.failed for result in report.results)
    if args.format == "json":
        print(json.dumps(
            [result.to_payload() for result in report.results],
            indent=2, sort_keys=True,
        ))
        return 1 if failed else 0
    if args.format == "csv":
        from .exp.query import SWEEP_CSV_COLUMNS, sweep_csv_rows

        _emit_csv(sweep_csv_rows(report.results), SWEEP_CSV_COLUMNS)
        return 1 if failed else 0
    print(f"exp run: {report.summary()}")
    for result in report.results:
        metrics = result.metrics
        status = "FLIP" if result.failed else "ok"
        label = result.attack
        if result.num_ranks > 1:
            label = f"{label}@{result.num_ranks}r{result.num_banks}b"
        elif result.num_banks > 1:
            label = f"{label}@{result.num_banks}b"
        print(
            f"  [{status:>4}] {result.tracker:<14} vs {label:<17} "
            f"acts={metrics['demand_acts']:<9} "
            f"mitigations={metrics['mitigations']}"
        )
        for rank, rank_metrics in enumerate(result.per_rank_metrics):
            rank_status = "FLIP" if rank_metrics.get("failed") else "ok"
            print(
                f"         rank {rank}: [{rank_status:>4}] "
                f"acts={rank_metrics['demand_acts']:<9} "
                f"mitigations={rank_metrics['mitigations']}"
            )
        for bank, bank_metrics in enumerate(result.per_bank_metrics):
            bank_status = "FLIP" if bank_metrics.get("failed") else "ok"
            print(
                f"         bank {bank}: [{bank_status:>4}] "
                f"acts={bank_metrics['demand_acts']:<9} "
                f"mitigations={bank_metrics['mitigations']}"
            )
    return 1 if failed else 0


def _open_store(path: str):
    """Open a result store, mapping format refusals to exit code 2."""
    from .exp import ResultStore, StoreFormatError

    try:
        return ResultStore(path)
    except StoreFormatError as error:
        print(f"store: {error}")
        raise SystemExit(2)


def _cmd_exp_status(args) -> int:
    from .exp import journal_for_store, shard_key

    store = _open_store(args.store)
    shards = sorted({shard_key(key, store.shard_width) for key in store.keys()})
    print(
        f"{args.store}: {len(store)} cached result(s) in "
        f"{len(shards)} shard(s), {store.disk_bytes():,} bytes on disk"
    )
    journal = journal_for_store(store)
    state = journal.load() if journal is not None else None
    if state is not None and state.interrupted:
        print(
            f"  interrupted run {state.run_key}: "
            f"{len(state.done)}/{len(state.planned)} planned point(s) "
            f"done, {len(state.remaining)} missing — re-running the "
            f"same grid resumes it"
        )
    elif state is not None and state.finished:
        print(f"  last run {state.run_key}: complete "
              f"({state.shards_done} shard(s))")
    for result in store.results():
        status = "FLIP" if result.failed else "ok"
        print(
            f"  {result.key[:12]}  [{status:>4}] "
            f"{result.tracker:<14} vs {result.attack:<14} "
            f"seed={result.seed}"
        )
    return 0


def _cmd_exp_compact(args) -> int:
    store = _open_store(args.store)
    before = store.disk_bytes()
    written = store.compact()
    print(
        f"{args.store}: compacted {len(store)} result(s) "
        f"({before:,} -> {store.disk_bytes():,} bytes, "
        f"{written:,} written)"
    )
    return 0


def _cmd_serve(args) -> int:
    from .exp import StoreFormatError
    from .exp.serve import serve_store

    try:
        return serve_store(
            args.store, host=args.host, port=args.port,
            verbose=not args.quiet,
        )
    except StoreFormatError as error:
        print(f"serve: {error}")
        return 2
    except OSError as error:
        print(f"serve: cannot bind {args.host}:{args.port} ({error})")
        return 2


def _cmd_lint(args) -> int:
    # Imported lazily: the lint subsystem is never needed on the
    # simulation paths.
    from .lint import RULE_REGISTRY, render_json, render_text, run_lint

    if args.list_rules:
        width = max(len(rule_id) for rule_id in RULE_REGISTRY)
        for rule_id in sorted(RULE_REGISTRY):
            print(f"{rule_id:<{width}}  {RULE_REGISTRY[rule_id].summary}")
        return 0
    rules = None
    if args.rules:
        wanted = [name.strip() for name in args.rules.split(",") if name.strip()]
        unknown = sorted(set(wanted) - set(RULE_REGISTRY))
        if unknown:
            print(f"lint: unknown rule(s) {unknown}; "
                  f"known: {sorted(RULE_REGISTRY)}")
            return 2
        rules = [RULE_REGISTRY[name] for name in wanted]
    paths = args.paths or ["src", "scripts"]
    missing = [path for path in paths if not os.path.exists(path)]
    if missing:
        print(f"lint: no such path(s): {', '.join(missing)}")
        return 2
    findings, files_scanned = run_lint(paths, rules)
    if args.format == "json":
        print(render_json(findings, files_scanned))
    else:
        print(render_text(findings, files_scanned))
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MINT (MICRO 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute a scenario file (JSON) through the facade"
    )
    run.add_argument("scenario",
                     help="path to a scenario JSON payload "
                          "(see `repro scenario show` and README)")
    run.add_argument("--windows", type=int, default=None,
                     help="Monte-Carlo mode: run N independent tREFW "
                          "windows instead of one full trace")
    run.add_argument("--workers", type=int, default=None,
                     help="process-pool size for --windows fan-out")
    run.add_argument("--format", choices=["human", "json", "csv"],
                     default="human")
    run.set_defaults(func=_cmd_run)

    scenario = sub.add_parser(
        "scenario", help="inspect a scenario file"
    )
    scenario_sub = scenario.add_subparsers(
        dest="scenario_command", required=True
    )
    scenario_show = scenario_sub.add_parser(
        "show", help="print the normalized scenario (human or json)"
    )
    scenario_show.add_argument("scenario", help="path to a scenario JSON")
    scenario_show.add_argument("--format", choices=["human", "json"],
                               default="human")
    scenario_show.set_defaults(func=_cmd_scenario_show)
    scenario_fp = scenario_sub.add_parser(
        "fingerprint", help="print the scenario's stable fingerprint"
    )
    scenario_fp.add_argument("scenario", help="path to a scenario JSON")
    scenario_fp.set_defaults(func=_cmd_scenario_fingerprint)

    attack = sub.add_parser("attack", help="simulate an attack vs a tracker")
    attack.add_argument("--tracker", choices=available_trackers(),
                        default="mint")
    attack.add_argument("--attack", choices=sorted(_CLI_ATTACKS),
                        required=True)
    attack.add_argument("--trh", type=float, default=4800.0)
    attack.add_argument("--intervals", type=int, default=2000)
    attack.add_argument("--max-act", type=int, default=73)
    attack.add_argument("--banks", type=int, default=1,
                        help="banks per rank (runs on the rank engine "
                             "when above 1)")
    attack.add_argument("--ranks", type=int, default=1,
                        help="ranks in the simulated channel (runs on "
                             "the channel engine when above 1)")
    attack.add_argument("--seed", type=int, default=1)
    attack.add_argument("--dmq", action="store_true")
    attack.add_argument("--allow-postponement", action="store_true")
    attack.add_argument("--backend", choices=["auto", "compiled", "numpy"],
                        default=None,
                        help="inner-loop backend: 'compiled' requires a "
                             "provider (Numba or a C compiler), 'numpy' "
                             "pins the pure-NumPy path, 'auto' (default) "
                             "takes compiled when available — results "
                             "are bit-identical either way")
    attack.set_defaults(func=_cmd_attack)

    mintrh = sub.add_parser("mintrh", help="tolerated threshold of a scheme")
    mintrh.add_argument("--scheme", default="mint",
                        choices=["mint", "mint-0.5x", "rfm32", "rfm16"])
    mintrh.add_argument("--target-ttf", type=float, default=10_000.0)
    mintrh.set_defaults(func=_cmd_mintrh)

    table = sub.add_parser("table", help="print a paper table")
    table.add_argument("--which", choices=["3", "4", "5", "7", "9"],
                       required=True)
    table.set_defaults(func=_cmd_table)

    plan = sub.add_parser("plan", help="recommend a configuration")
    plan.add_argument("--trh-d", type=int, required=True)
    plan.set_defaults(func=_cmd_plan)

    exp = sub.add_parser(
        "exp", help="batched experiment grids (parallel, cached)"
    )
    exp_sub = exp.add_subparsers(dest="exp_command", required=True)

    exp_run = exp_sub.add_parser(
        "run", help="run a (tracker x attack) grid through the pool"
    )
    exp_run.add_argument(
        "--preset",
        choices=["shootout", "postponement", "rank-shootout",
                 "channel-shootout"],
    )
    exp_run.add_argument("--trackers",
                         help="comma-separated tracker names "
                              f"(known: {','.join(available_trackers())})")
    exp_run.add_argument("--attacks",
                         help="comma-separated attack names "
                              f"(known: {','.join(available_attacks())})")
    exp_run.add_argument("--trh", type=float, default=4800.0)
    exp_run.add_argument("--intervals", type=int, default=2000)
    exp_run.add_argument("--max-act", type=int, default=73)
    exp_run.add_argument("--banks", type=int, default=None,
                         help="banks in the simulated rank (runs points on "
                              "the rank-level engine; rank attacks: "
                              f"{','.join(available_rank_attacks())})")
    exp_run.add_argument("--ranks", type=int, default=None,
                         help="ranks in the simulated channel (runs points "
                              "on the channel-level engine; channel "
                              "attacks: "
                              f"{','.join(available_channel_attacks())})")
    exp_run.add_argument("--seed", type=int, default=0,
                         help="base seed; every task seed derives from it")
    exp_run.add_argument("--workers", type=int, default=None,
                         help="process-pool size (default: usable CPUs)")
    exp_run.add_argument("--store",
                         help="JSON result store for incremental re-runs")
    exp_run.add_argument("--dmq", action="store_true")
    exp_run.add_argument("--allow-postponement", action="store_true")
    exp_run.add_argument("--backend",
                         choices=["auto", "compiled", "numpy"], default=None,
                         help="inner-loop backend for every point "
                              "(bit-identical across choices; ignored by "
                              "--preset grids)")
    exp_run.add_argument("--format", choices=["human", "json", "csv"],
                         default="human",
                         help="result export format (json/csv render via "
                              "the shared result serializers)")
    exp_run.set_defaults(func=_cmd_exp_run)

    exp_status = exp_sub.add_parser(
        "status", help="inspect a result store (results, shards, and "
                       "any interrupted run recorded in its journal)"
    )
    exp_status.add_argument("--store", required=True)
    exp_status.set_defaults(func=_cmd_exp_status)

    exp_compact = exp_sub.add_parser(
        "compact", help="rewrite every store shard and drop orphans"
    )
    exp_compact.add_argument("--store", required=True)
    exp_compact.set_defaults(func=_cmd_exp_compact)

    serve = sub.add_parser(
        "serve",
        help="read-only HTTP API over a result store "
             "(GET /v1/status, /v1/points, /v1/point/<fingerprint>, "
             "/v1/sweep?tracker=&attack=&failed=&format=json|csv)",
    )
    serve.add_argument("--store", required=True,
                       help="result store to serve (see `repro exp run "
                            "--store`); new results written by concurrent "
                            "runs are picked up automatically")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8731,
                       help="TCP port (0 picks a free one; default 8731)")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")
    serve.set_defaults(func=_cmd_serve)

    lint = sub.add_parser(
        "lint",
        help="determinism & identity static analysis (exit 1 on findings)",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint "
                           "(default: src scripts)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="finding report format (json is versioned and "
                           "round-trips, see repro.lint.reporters)")
    lint.add_argument("--rules",
                      help="comma-separated rule ids to run "
                           "(default: all; see --list-rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed stdout; exit quietly instead of
        # tracebacking. Point stdout at devnull so interpreter teardown
        # does not re-raise while flushing.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
