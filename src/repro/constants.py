"""Shared physical and experimental constants.

These are the handful of values that appear across the analysis,
simulation, and performance subsystems and must agree everywhere.
"""

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0

#: Default per-bank Target Time-to-Failure used by the paper (Section IV-C).
DEFAULT_TARGET_TTF_YEARS = 10_000.0

#: Number of tREFI intervals in one tREFW window (32 ms / 3.9 us = 8192).
REFI_PER_REFW = 8192

#: DDR5 allows postponing up to four refresh commands (Section VI).
MAX_POSTPONED_REFRESHES = 4

#: Rows refreshed on either side of an aggressor during a mitigation.
DEFAULT_BLAST_RADIUS = 1

#: Banks per rank in the paper's DDR5 configuration (Table VI).
BANKS_PER_RANK = 32

#: Banks usable concurrently given tFAW limits (Section VIII-B).
CONCURRENT_BANKS = 22

#: Rows per bank in the paper's configuration (Table VI).
ROWS_PER_BANK = 128 * 1024

#: Row-address register width (18 bits covers 128K rows + valid bit),
#: from the paper's storage analysis (Section VIII-C).
SAR_BITS = 18

#: Width of MINT's CAN/SAN sequence counters (7 bits for M = 73).
COUNTER_BITS = 7
