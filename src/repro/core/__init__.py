"""The paper's primary contribution: MINT, DMQ, RFM co-design, Row-Press."""

from .dmq import DelayedMitigationQueue, DMQ_ENTRY_BITS
from .mint import MintTracker, COUNTER_BITS, SAR_BITS
from .rfm import RaaCounter, RfmConfig, RfmController, mint_interval_for_rfm
from .rowpress import (
    EACT_FRACTION_BITS,
    RowPressMintTracker,
    equivalent_activations,
)

__all__ = [
    "COUNTER_BITS",
    "DelayedMitigationQueue",
    "DMQ_ENTRY_BITS",
    "EACT_FRACTION_BITS",
    "MintTracker",
    "RaaCounter",
    "RfmConfig",
    "RfmController",
    "RowPressMintTracker",
    "SAR_BITS",
    "equivalent_activations",
    "mint_interval_for_rfm",
]
