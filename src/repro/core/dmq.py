"""Delayed Mitigation Queue (DMQ) — paper Section VI-C.

DDR5 lets the memory controller postpone up to four REF commands. For a
low-cost tracker tailored to M activations per interval, every
activation past M is invisible: an attacker can spend the first M
activations on decoys and then hammer freely (478K deterministic
activations per tREFW, Table IV).

The DMQ fixes this generically. It wraps any tracker and counts
activations since the last REF; each time the count exceeds M it resets
the count and performs a *pseudo-mitigation*: the wrapped tracker hands
over its current selection, which is pushed into a small FIFO. At a real
REF, if the FIFO holds entries the oldest is mitigated (and the
tracker's fresh selection joins the queue); otherwise the tracker
mitigates normally.
"""

from __future__ import annotations

from collections import deque

from ..trackers.base import MitigationRequest, Tracker

#: One DMQ entry holds a row address plus the transitive-distance bit
#: (19 bits per the paper's storage analysis, Section VIII-C).
DMQ_ENTRY_BITS = 19


class DelayedMitigationQueue(Tracker):
    """Wrap ``inner`` so it survives refresh postponement.

    Parameters
    ----------
    inner:
        Any :class:`~repro.trackers.base.Tracker`.
    max_act:
        M — the number of activations the inner tracker expects per
        mitigation interval.
    depth:
        FIFO entries; 4 matches the DDR5 postponement ceiling.
    """

    centric = "wrapper"

    def __init__(self, inner: Tracker, max_act: int = 73, depth: int = 4) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if max_act < 1:
            raise ValueError("max_act must be >= 1")
        self.inner = inner
        self.max_act = max_act
        self.depth = depth
        self.queue: deque[MitigationRequest] = deque()
        self.num_acts = 0
        self.pseudo_mitigations = 0
        self.overflow_drops = 0
        self.name = f"{inner.name}+DMQ"
        self.observes_mitigations = inner.observes_mitigations

    # ------------------------------------------------------------------
    def on_activate(self, row: int) -> None:
        self.num_acts += 1
        if self.num_acts > self.max_act:
            # Refresh is overdue: flush the tracker's selection into the
            # queue so it cannot be dislodged by the extra activations.
            self.num_acts = 1
            self.pseudo_mitigations += 1
            self._enqueue(self.inner.pseudo_refresh())
        self.inner.on_activate(row)

    def on_activate_batch(self, rows, counts=None) -> None:
        """Feed a batch through in pseudo-refresh-boundary chunks.

        The wrapped tracker sees the same act stream as the scalar path:
        runs of up to ``max_act`` activations separated by the
        pseudo-mitigation hand-offs the overflow rule inserts. The
        shared ``counts`` aggregation is forwarded when a chunk covers
        the whole batch (the common full-interval case); a sub-slice
        passes ``counts=None`` since the whole-batch aggregation does
        not describe it.
        """
        n = len(rows)
        index = 0
        while index < n:
            space = self.max_act - self.num_acts
            if space <= 0:
                self.num_acts = 0
                self.pseudo_mitigations += 1
                self._enqueue(self.inner.pseudo_refresh())
                space = self.max_act
            chunk = min(n - index, space)
            if index == 0 and chunk == n:
                self.inner.on_activate_batch(rows, counts)
            else:
                self.inner.on_activate_batch(rows[index : index + chunk])
            self.num_acts += chunk
            index += chunk

    def on_mitigation_activate(self, row: int) -> None:
        # Victim-refresh activations do not advance the DMQ's activation
        # count (they happen inside the REF, not in the demand stream).
        self.inner.on_mitigation_activate(row)

    def on_refresh(self) -> list[MitigationRequest]:
        self.num_acts = 0
        fresh = self.inner.on_refresh()
        if not self.queue:
            return fresh
        # Queue is non-empty: FIFO order — mitigate the oldest entry,
        # then queue the fresh selection behind the rest (popping first
        # guarantees a full queue plus a fresh selection never drops an
        # entry during a 5-REF batch).
        oldest = self.queue.popleft()
        self._enqueue(fresh)
        return [oldest]

    def pseudo_refresh(self) -> list[MitigationRequest]:
        # Nesting DMQs is meaningless but harmless: behave like refresh.
        return self.on_refresh()

    def reset(self) -> None:
        self.inner.reset()
        self.queue.clear()
        self.num_acts = 0
        self.pseudo_mitigations = 0
        self.overflow_drops = 0

    # ------------------------------------------------------------------
    def _enqueue(self, requests: list[MitigationRequest]) -> None:
        for request in requests:
            if len(self.queue) >= self.depth:
                # Tail-drop: the oldest entries carry the bounded-delay
                # guarantee (Section VI-D), so an overflowing *new*
                # request is dropped instead. With the DDR5 ceiling of
                # four postponed REFs this only happens for duplicate
                # transitive re-submissions; counted for the ablations.
                self.overflow_drops += 1
                continue
            self.queue.append(request)

    @property
    def entries(self) -> int:
        return self.inner.entries

    @property
    def storage_bits(self) -> int:
        """Inner tracker plus ``depth`` 19-bit queue entries (§VIII-C)."""
        return self.inner.storage_bits + self.depth * DMQ_ENTRY_BITS
