"""MINT: the Minimalist In-DRAM Tracker (paper Section V).

MINT is *future-centric*: at each REF it draws, uniformly at random, the
sequence number of the activation in the upcoming tREFI interval that
will be mitigated at the next REF. Three registers implement it:

``SAN`` (Selected Activation Number, 7 bits)
    The position drawn at the last REF.
``CAN`` (Current Activation Number, 7 bits)
    Sequence number of activations since the last REF.
``SAR`` (Selected Address Register, 18 bits incl. valid)
    The row captured when ``CAN == SAN``; mitigated at the next REF.

With the transitive-mitigation extension (Section V-E) the URAND draw
covers 0..M instead of 1..M: drawing 0 preserves SAR across the REF and
upgrades the pending mitigation to a transitive one (refresh the victims
of the victim rows, i.e. aggressor±2); consecutive zeros increase the
distance recursively.
"""

from __future__ import annotations

import random

from ..trackers.base import MitigationRequest, Tracker

from ..constants import COUNTER_BITS, SAR_BITS


class MintTracker(Tracker):
    """The single-entry future-centric tracker.

    Parameters
    ----------
    max_act:
        M, the maximum number of activations per mitigation interval
        (73 for the default DDR5 timing; 32/16 when co-designed with
        RFM, Section VII).
    transitive:
        Enable the 0-slot transitive mitigation (on by default, as in
        the final MINT design). With it the URAND covers ``0..M`` and the
        selection probability becomes ``1/(M+1)``.
    rng:
        Source of randomness standing in for the in-DRAM TRNG.
    """

    name = "MINT"
    centric = "future"
    observes_mitigations = False

    def __init__(
        self,
        max_act: int = 73,
        transitive: bool = True,
        rng: random.Random | None = None,
    ) -> None:
        if max_act < 1:
            raise ValueError("max_act must be >= 1")
        self.max_act = max_act
        self.transitive = transitive
        # ad-hoc convenience default: every engine/Session path
        # repro-lint: allow[seed-policy] passes a derived rng
        self.rng = rng or random.Random()
        self.can = 0
        self.sar: int | None = None
        self._distance = 1
        self.san: int | None = None
        self._draw_san()
        # Statistics
        self.selections = 0
        self.mitigations_issued = 0
        self.transitive_mitigations = 0

    # ------------------------------------------------------------------
    @property
    def selection_probability(self) -> float:
        """Per-activation selection probability (1/M or 1/(M+1))."""
        slots = self.max_act + 1 if self.transitive else self.max_act
        return 1.0 / slots

    def _draw_san(self) -> None:
        """Draw the selected activation number for the next interval.

        Drawing 0 (only possible with the transitive extension) keeps
        the current SAR and marks the pending mitigation transitive.
        """
        low = 0 if self.transitive else 1
        draw = self.rng.randint(low, self.max_act)
        if draw == 0:
            # Slot 0: preserve SAR; its mitigation distance grows by one.
            # No new selection happens during the upcoming interval.
            if self.sar is not None:
                self._distance += 1
            self.san = None
        else:
            self.sar = None
            self._distance = 1
            self.san = draw

    # ------------------------------------------------------------------
    def on_activate(self, row: int) -> None:
        self.can += 1
        if self.san is not None and self.can == self.san:
            self.sar = row
            self.selections += 1

    def on_activate_batch(self, rows, counts=None) -> None:
        """O(1) batch observation: MINT only reads the SAN-th activation.

        CAN advances by the batch size; if the selected activation
        number falls inside this batch, capture that one row. Identical
        to the scalar loop (no randomness is consumed between REFs).
        """
        n = len(rows)
        if n == 0:
            return
        san = self.san
        if san is not None:
            index = san - self.can - 1
            if 0 <= index < n:
                self.sar = int(rows[index])
                self.selections += 1
        self.can += n

    def on_refresh(self) -> list[MitigationRequest]:
        requests = []
        if self.sar is not None:
            requests.append(MitigationRequest(self.sar, self._distance))
            self.mitigations_issued += 1
            if self._distance > 1:
                self.transitive_mitigations += 1
        self.can = 0
        self._draw_san()
        return requests

    def pseudo_refresh(self) -> list[MitigationRequest]:
        """DMQ boundary: same selection hand-over as a refresh.

        MINT already counts activations in CAN, so the DMQ reuses it
        (Section VI-C: "MINT already does this with CAN").
        """
        return self.on_refresh()

    def reset(self) -> None:
        self.can = 0
        self.sar = None
        self._distance = 1
        self._draw_san()
        self.selections = 0
        self.mitigations_issued = 0
        self.transitive_mitigations = 0

    # ------------------------------------------------------------------
    @property
    def entries(self) -> int:
        return 1

    @property
    def storage_bits(self) -> int:
        """CAN (7) + SAN (7) + SAR (18) = 32 bits = 4 bytes (§VIII-C)."""
        return 2 * COUNTER_BITS + SAR_BITS
