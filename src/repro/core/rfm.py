"""Refresh Management (RFM) co-design — paper Section VII.

DDR5's RFM feature lets the memory controller grant the DRAM extra
mitigation slots. The controller keeps a Rolling Accumulation of ACTs
(RAA) counter per bank; when it crosses ``rfm_th`` the counter resets
and an RFM command is sent to that bank, giving the in-DRAM tracker one
additional mitigation opportunity.

MINT co-designed with RFM simply shrinks its interval: with RFMTH = 32
the URAND selection covers 0..32, with RFMTH = 16 it covers 0..16.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RfmConfig:
    """RFM policy parameters.

    ``rfm_th`` is the RAA threshold (32 for MINT+RFM32, 16 for
    MINT+RFM16). ``max_delay_intervals`` models the JEDEC allowance for
    RFM commands to be delayed (3x-6x, Section VII) — the DMQ absorbs
    that delay just as it absorbs REF postponement.
    """

    rfm_th: int = 32
    max_delay_intervals: int = 4

    def __post_init__(self) -> None:
        if self.rfm_th < 1:
            raise ValueError("rfm_th must be >= 1")


class RaaCounter:
    """Per-bank Rolling Accumulation of ACTs counter at the controller."""

    def __init__(self, config: RfmConfig) -> None:
        self.config = config
        self.count = 0
        self.rfms_issued = 0

    def on_activate(self) -> bool:
        """Count one ACT. Returns True when an RFM must be issued."""
        self.count += 1
        if self.count >= self.config.rfm_th:
            self.count = 0
            self.rfms_issued += 1
            return True
        return False

    def reset(self) -> None:
        self.count = 0
        self.rfms_issued = 0


class RfmController:
    """RAA counters for every bank of a rank."""

    def __init__(self, num_banks: int, config: RfmConfig | None = None) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self.config = config or RfmConfig()
        self.counters = [RaaCounter(self.config) for _ in range(num_banks)]

    def on_activate(self, bank: int) -> bool:
        """Record an ACT to ``bank``; True if an RFM fires for it."""
        return self.counters[bank].on_activate()

    @property
    def total_rfms(self) -> int:
        return sum(counter.rfms_issued for counter in self.counters)

    def reset(self) -> None:
        for counter in self.counters:
            counter.reset()


def mint_interval_for_rfm(rfm_th: int) -> int:
    """The M value MINT uses when co-designed with an RFM threshold.

    Section VII: "we modify MINT to select URAND(0,32) or URAND(0,16)"
    — the mitigation interval equals the RAA threshold.
    """
    if rfm_th < 1:
        raise ValueError("rfm_th must be >= 1")
    return rfm_th
