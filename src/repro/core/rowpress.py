"""Row-Press tolerance via ImPress-style equivalent activations (App. C).

Row-Press keeps a row open for a long time (tON), leaking charge from
neighbours with far fewer activations than TRH. ImPress converts row
open-time into an Equivalent number of ACTivations:

    EACT = (tON + tPRE) / tRC        (Equation 9)

MINT then increments its CAN register by EACT (a fixed-point value with
7 fractional bits) instead of by 1, so long-open rows are proportionally
more likely to be selected for mitigation.
"""

from __future__ import annotations

import random

from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..trackers.base import MitigationRequest, Tracker
from .mint import COUNTER_BITS, SAR_BITS

#: Fractional bits of the fixed-point CAN register (Appendix C).
EACT_FRACTION_BITS = 7


def equivalent_activations(
    t_on_ns: float, timing: DDR5Timing = DEFAULT_TIMING
) -> float:
    """EACT for a row kept open ``t_on_ns`` nanoseconds (Equation 9)."""
    if t_on_ns < 0:
        raise ValueError("t_on_ns must be non-negative")
    return (t_on_ns + timing.t_rp_ns) / timing.t_rc_ns


class RowPressMintTracker(Tracker):
    """MINT with the ImPress fixed-point CAN extension.

    ``on_activate_timed`` accepts the row-open time; plain
    ``on_activate`` assumes a minimal open time (tRAS-like, one EACT).
    The selection rule becomes "CAN crosses SAN" because CAN now
    advances in fractional steps.
    """

    name = "MINT+ImPress"
    centric = "future"
    observes_mitigations = False

    def __init__(
        self,
        max_act: int = 73,
        transitive: bool = True,
        timing: DDR5Timing = DEFAULT_TIMING,
        rng: random.Random | None = None,
    ) -> None:
        self.max_act = max_act
        self.transitive = transitive
        self.timing = timing
        # ad-hoc convenience default: every engine/Session path
        # repro-lint: allow[seed-policy] passes a derived rng
        self.rng = rng or random.Random()
        self.can = 0.0
        self.sar: int | None = None
        self._distance = 1
        self.san: int | None = None
        self._draw_san()

    def _draw_san(self) -> None:
        low = 0 if self.transitive else 1
        draw = self.rng.randint(low, self.max_act)
        if draw == 0:
            if self.sar is not None:
                self._distance += 1
            self.san = None
        else:
            self.sar = None
            self._distance = 1
            self.san = draw

    def on_activate(self, row: int) -> None:
        # A normal activation: the row is open for roughly tRC - tRP.
        self.on_activate_timed(row, self.timing.t_rc_ns - self.timing.t_rp_ns)

    def on_activate_timed(self, row: int, t_on_ns: float) -> None:
        """Observe an activation whose row stayed open ``t_on_ns``."""
        eact = equivalent_activations(t_on_ns, self.timing)
        # Quantize to the fixed-point resolution of the CAN register.
        step = round(eact * (1 << EACT_FRACTION_BITS)) / (1 << EACT_FRACTION_BITS)
        before = self.can
        self.can = before + step
        if self.san is not None and before < self.san <= self.can:
            self.sar = row

    def on_refresh(self) -> list[MitigationRequest]:
        requests = []
        if self.sar is not None:
            requests.append(MitigationRequest(self.sar, self._distance))
        self.can = 0.0
        self._draw_san()
        return requests

    def reset(self) -> None:
        self.can = 0.0
        self.sar = None
        self._distance = 1
        self._draw_san()

    @property
    def entries(self) -> int:
        return 1

    @property
    def storage_bits(self) -> int:
        """Fixed-point CAN (14) + SAN (7) + SAR (18) bits (Appendix C)."""
        return (COUNTER_BITS + EACT_FRACTION_BITS) + COUNTER_BITS + SAR_BITS
