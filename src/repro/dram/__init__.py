"""DDR5 device substrate: timing, banks, refresh, and the disturbance oracle."""

from .bank import Bank, BankStats
from .commands import Command, CommandKind, act, drfm, ref, rfm
from .device import DeviceConfig, DramDevice
from .mapping import RankAddressMap, RowMapping, ScrambledRowMapping
from .refresh import RefreshEvent, RefreshScheduler
from .rowstate import DenseRowDisturbanceModel, FlipEvent, RowDisturbanceModel
from .timing import (
    DDR5Timing,
    DEFAULT_TIMING,
    SPEED_BINS,
    maxact_range,
    timing_for_bin,
)

__all__ = [
    "Bank",
    "BankStats",
    "Command",
    "CommandKind",
    "DDR5Timing",
    "DEFAULT_TIMING",
    "DenseRowDisturbanceModel",
    "DeviceConfig",
    "DramDevice",
    "FlipEvent",
    "RankAddressMap",
    "RefreshEvent",
    "RefreshScheduler",
    "RowDisturbanceModel",
    "RowMapping",
    "SPEED_BINS",
    "ScrambledRowMapping",
    "act",
    "drfm",
    "maxact_range",
    "ref",
    "rfm",
    "timing_for_bin",
]
