"""DRAM bank state machine with row-buffer and timing bookkeeping.

This is the timing-level bank used by the performance simulator
(``repro.perf``). The security simulator works at the activation-stream
level and uses :mod:`repro.dram.rowstate` directly — the vectorized
activation kernel lives there; this module stays scalar on purpose
(the perf model advances one access at a time to order tRC/tFAW
events, so there is no batch to vectorize).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .timing import DDR5Timing


@dataclass
class BankStats:
    """Counters accumulated by one bank over a simulation."""

    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    refreshes: int = 0
    rfm_commands: int = 0
    drfm_commands: int = 0
    mitigative_activations: int = 0
    busy_ns: float = 0.0


class Bank:
    """One DRAM bank: open-row policy state plus next-free timestamps.

    The bank exposes ``access(row, now_ns)`` returning the completion
    time of a demand access, and ``block(duration_ns)`` used for REF,
    RFM, and DRFM penalties. Time is carried by the caller; the bank
    only remembers when it becomes free.
    """

    def __init__(self, timing: DDR5Timing, closed_page: bool = False) -> None:
        self.timing = timing
        self.closed_page = closed_page
        self.open_row: int | None = None
        self.free_at_ns: float = 0.0
        self._last_act_ns: float = -1e18
        self.stats = BankStats()

    def access(self, row: int, now_ns: float) -> float:
        """Perform a demand read/write to ``row`` starting at ``now_ns``.

        Returns the completion time. Honors tRC between activations and
        models row-buffer hits vs misses.
        """
        t = self.timing
        start = max(now_ns, self.free_at_ns)
        if not self.closed_page and self.open_row == row:
            # Row-buffer hit: column access only.
            self.stats.row_hits += 1
            done = start + t.t_cl_ns
        else:
            # Miss: precharge (if a row is open), then ACT + column access.
            self.stats.row_misses += 1
            if self.open_row is not None:
                start += t.t_rp_ns
            # Enforce tRC between successive ACTs.
            act_start = max(start, self._last_act_ns + t.t_rc_ns)
            self._last_act_ns = act_start
            self.stats.activations += 1
            done = act_start + t.t_rcd_ns + t.t_cl_ns
            self.open_row = None if self.closed_page else row
        self.free_at_ns = done
        self.stats.busy_ns += done - start
        return done

    def block(self, now_ns: float, duration_ns: float) -> float:
        """Block the bank for ``duration_ns`` (REF/RFM/DRFM penalty).

        Returns the time at which the bank becomes free again.
        """
        start = max(now_ns, self.free_at_ns)
        self.open_row = None
        self.free_at_ns = start + duration_ns
        self.stats.busy_ns += duration_ns
        return self.free_at_ns

    def refresh(self, now_ns: float) -> float:
        self.stats.refreshes += 1
        return self.block(now_ns, self.timing.t_rfc_ns)

    def rfm(self, now_ns: float) -> float:
        self.stats.rfm_commands += 1
        return self.block(now_ns, self.timing.t_rfm_sb_ns)

    def drfm(self, now_ns: float) -> float:
        self.stats.drfm_commands += 1
        return self.block(now_ns, self.timing.t_drfm_sb_ns)
