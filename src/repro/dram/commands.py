"""DRAM command vocabulary shared by the security and performance models.

The security simulator (``repro.sim``) consumes the logical stream of
ACT/REF/RFM commands; the performance simulator (``repro.perf``) adds the
timing cost of each command class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommandKind(enum.Enum):
    """The DDR5 commands relevant to Rowhammer mitigation."""

    ACT = "act"            #: Activate a row (a potential hammer).
    PRE = "pre"            #: Precharge (close) the open row.
    READ = "read"          #: Column read on the open row.
    WRITE = "write"        #: Column write on the open row.
    REF = "ref"            #: All-bank refresh; mitigation piggybacks here.
    RFM = "rfm"            #: Refresh Management: extra mitigation slot.
    DRFM = "drfm"          #: Directed RFM: MC names the row to mitigate.


@dataclass(frozen=True)
class Command:
    """One command directed at a bank.

    ``row`` is meaningful for ACT and DRFM; ``None`` otherwise.
    """

    kind: CommandKind
    bank: int = 0
    row: int | None = None

    def __post_init__(self) -> None:
        needs_row = self.kind in (CommandKind.ACT, CommandKind.DRFM)
        if needs_row and self.row is None:
            raise ValueError(f"{self.kind.value} command requires a row")


def act(row: int, bank: int = 0) -> Command:
    """Shorthand constructor for an activate command."""
    return Command(CommandKind.ACT, bank=bank, row=row)


def ref(bank: int = 0) -> Command:
    """Shorthand constructor for a refresh command."""
    return Command(CommandKind.REF, bank=bank)


def rfm(bank: int = 0) -> Command:
    """Shorthand constructor for an RFM command."""
    return Command(CommandKind.RFM, bank=bank)


def drfm(row: int, bank: int = 0) -> Command:
    """Shorthand constructor for a directed-RFM command."""
    return Command(CommandKind.DRFM, bank=bank, row=row)
