"""A DRAM device: banks, row-disturbance oracles, and refresh plumbing.

The device is the security simulator's view of the DRAM chip: it owns
one :class:`~repro.dram.rowstate.RowDisturbanceModel` per bank and the
auto-refresh sweep that restores 1/8192 of the rows at each REF.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import REFI_PER_REFW, ROWS_PER_BANK
from .mapping import RankAddressMap
from .rowstate import RowBatch, RowDisturbanceModel
from .timing import DDR5Timing, DEFAULT_TIMING


@dataclass
class DeviceConfig:
    """Static configuration of the simulated device.

    ``refi_per_refw`` controls the granularity of the rolling
    auto-refresh (8192 for DDR5; tests shrink it together with
    ``rows_per_bank`` to keep Monte-Carlo runs fast). ``backend``
    selects the per-bank oracle storage
    (:mod:`repro.dram.rowstate`): ``"auto"`` picks the dense NumPy
    vectors for production-sized banks and the sparse dict otherwise.
    """

    timing: DDR5Timing = DEFAULT_TIMING
    num_banks: int = 1
    rows_per_bank: int = ROWS_PER_BANK
    trh: float = 4800.0
    blast_radius: int = 1
    refi_per_refw: int = REFI_PER_REFW
    backend: str = "auto"


class DramDevice:
    """Security-level DRAM device.

    Tracks per-bank disturbance and performs the rolling auto-refresh:
    REF number ``i`` refreshes the slice of rows
    ``[i * rows/8192, (i+1) * rows/8192)`` so that every row is restored
    exactly once per tREFW, matching the model the paper analyses.
    """

    def __init__(self, config: DeviceConfig | None = None) -> None:
        self.config = config or DeviceConfig()
        c = self.config
        self.banks = [
            RowDisturbanceModel(
                num_rows=c.rows_per_bank,
                trh=c.trh,
                blast_radius=c.blast_radius,
                backend=c.backend,
            )
            for _ in range(c.num_banks)
        ]
        self._ref_counter = [0] * c.num_banks
        self._rows_per_slice = max(1, c.rows_per_bank // c.refi_per_refw)
        self.address_map = RankAddressMap(c.num_banks, c.rows_per_bank)

    def activate(self, bank: int, row: int, time_ns: float = 0.0) -> None:
        """A demand activation: hammers the row's neighbours."""
        self.banks[bank].activate(row, time_ns)

    def activate_many(
        self,
        bank: int,
        rows: RowBatch,
        time_ns: float = 0.0,
        agg=None,
    ) -> None:
        """Batch of demand activations on one bank (hot-loop entry).

        ``rows`` may be any integer sequence or NumPy array and is
        never mutated. ``agg`` is the optional sorted
        ``(unique_rows, counts)`` pre-aggregation shared by the engine
        (see :meth:`repro.dram.rowstate.RowDisturbanceModel.activate_many`).
        """
        self.banks[bank].activate_many(rows, time_ns, agg=agg)

    def activate_flat(self, address: int, time_ns: float = 0.0) -> tuple[int, int]:
        """Activate by flat physical address; returns the decoded
        ``(bank, row)`` so callers can correlate with per-bank results."""
        bank, row = self.address_map.decode(address)
        self.banks[bank].activate(row, time_ns)
        return bank, row

    def mitigate(
        self, bank: int, aggressor: int, distance: int = 1, time_ns: float = 0.0
    ) -> list[int]:
        """Victim refresh around ``aggressor`` at ``distance``.

        ``distance=1`` is a normal mitigation (refresh aggressor±1);
        ``distance=2`` is a transitive mitigation (refresh aggressor±2),
        and so on for recursive transitive mitigations (Section V-E).
        Returns the refreshed rows.
        """
        model = self.banks[bank]
        if distance == 1:
            # The common (non-transitive) mitigation is exactly the
            # model's own victim refresh; the dense backend specializes
            # it, and this runs once per REF per bank.
            return model.mitigate(aggressor, time_ns)
        refreshed = []
        # A victim refresh covers every ring the device's blast radius
        # disturbs: rings ``distance .. distance + blast_radius - 1``.
        for ring in range(distance, distance + model.blast_radius):
            for offset in (aggressor - ring, aggressor + ring):
                if 0 <= offset < model.num_rows:
                    refreshed.append(offset)
        for victim in refreshed:
            model.refresh_row(victim, time_ns)
        # A victim refresh is itself an activation: it disturbs the
        # victim's neighbours (the transitive / Half-Double channel).
        for victim in refreshed:
            model.activate(victim, time_ns)
        for victim in refreshed:
            model.clear_row(victim)
        return refreshed

    def victim_refresh(self, bank: int, row: int, time_ns: float = 0.0) -> list[int]:
        """Victim-centric mitigation (ProTRR-style): refresh ``row``
        itself.

        The refresh is a full row cycle, so it disturbs the refreshed
        row's neighbours; the refreshed row ends the operation clean.
        Returns the refreshed rows (always just ``row``).
        """
        model = self.banks[bank]
        model.refresh_row(row, time_ns)
        model.activate(row, time_ns)
        model.clear_row(row)
        return [row]

    def auto_refresh(self, bank: int, time_ns: float = 0.0) -> tuple[int, int]:
        """Execute the rolling auto-refresh slice for one REF command.

        Returns the half-open row range that was restored.
        """
        model = self.banks[bank]
        refw = self.config.refi_per_refw
        i = self._ref_counter[bank] % refw
        lo = i * self._rows_per_slice
        hi = min(lo + self._rows_per_slice, model.num_rows)
        if i == refw - 1:
            hi = model.num_rows
        model.refresh_range(lo, hi, time_ns)
        self._ref_counter[bank] += 1
        return lo, hi

    def auto_refresh_slice(self) -> tuple[int, int]:
        """Advance every bank's auto-refresh counter by one REF and
        return the row slice restored, without touching row state.

        The fused channel kernel owns the packed disturbance arrays and
        performs the restore itself as one whole-device store; this hook
        keeps the device's rolling counters (and therefore any later
        per-bank :meth:`auto_refresh` calls) in step. All banks must be
        aligned on the same counter — always true under the rank engine,
        which auto-refreshes every bank at each REF.
        """
        counters = self._ref_counter
        if counters.count(counters[0]) != len(counters):
            raise RuntimeError(
                "auto_refresh_slice requires bank-aligned REF counters"
            )
        refw = self.config.refi_per_refw
        num_rows = self.config.rows_per_bank
        i = counters[0] % refw
        lo = i * self._rows_per_slice
        hi = min(lo + self._rows_per_slice, num_rows)
        if i == refw - 1:
            hi = num_rows
        # Counters are aligned (checked above), so one list-repeat
        # replaces the per-bank increment sweep.
        self._ref_counter = [counters[0] + 1] * len(counters)
        return lo, hi

    def flips(self, bank: int = 0):
        return self.banks[bank].flips

    @property
    def any_flip(self) -> bool:
        return any(bank.any_flip for bank in self.banks)
