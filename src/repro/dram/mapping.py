"""Logical-to-physical row address mapping.

DRAM vendors remap row addresses internally (Section II-D: "DRAM chips
internally use proprietary mapping"). In-DRAM trackers see physical rows;
memory-controller-side schemes see logical rows and must rely on DRFM.
We model the remap as a keyed bijective permutation so experiments can
show why MC-side victim refresh needs the device's help.
"""

from __future__ import annotations


class RowMapping:
    """Identity mapping: logical row == physical row."""

    def __init__(self, num_rows: int) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self.num_rows = num_rows

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return logical

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return physical

    def _check(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise ValueError(f"row {row} out of range [0, {self.num_rows})")


class ScrambledRowMapping(RowMapping):
    """A keyed bijective remap modelling proprietary internal topology.

    Uses a multiplicative permutation ``physical = (a * logical + b) mod N``
    with ``gcd(a, N) == 1``. This captures the property that matters for
    the experiments: logically adjacent rows are generally not physically
    adjacent, so an MC-side scheme refreshing ``logical ± 1`` misses the
    true victims.
    """

    def __init__(self, num_rows: int, key: int = 0x5DEECE66D) -> None:
        super().__init__(num_rows)
        # Choose an odd multiplier co-prime with num_rows.
        a = (key | 1) % num_rows
        while _gcd(a, num_rows) != 1:
            a = (a + 2) % num_rows or 1
        self._a = a
        self._b = (key >> 16) % num_rows
        self._a_inv = pow(self._a, -1, num_rows)

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return (self._a * logical + self._b) % self.num_rows

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return ((physical - self._b) * self._a_inv) % self.num_rows


class RankAddressMap:
    """Flat physical address ↔ ``(bank, row)`` decode for one rank.

    Memory controllers stripe consecutive addresses across banks to
    exploit bank-level parallelism, so the default policy is
    ``interleaved``: address ``a`` maps to bank ``a % num_banks``, row
    ``a // num_banks``. The ``row-major`` policy (whole banks of
    consecutive rows) models the degenerate mapping an attacker would
    prefer — contiguous addresses land in one bank, so one bank's
    tracker absorbs the whole stream.
    """

    POLICIES = ("interleaved", "row-major")

    def __init__(
        self,
        num_banks: int,
        rows_per_bank: int,
        policy: str = "interleaved",
    ) -> None:
        if num_banks <= 0:
            raise ValueError("num_banks must be positive")
        if rows_per_bank <= 0:
            raise ValueError("rows_per_bank must be positive")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; known: {self.POLICIES}"
            )
        self.num_banks = num_banks
        self.rows_per_bank = rows_per_bank
        self.policy = policy

    @property
    def num_addresses(self) -> int:
        return self.num_banks * self.rows_per_bank

    def decode(self, address: int) -> tuple[int, int]:
        """Split a flat physical address into ``(bank, row)``."""
        if not 0 <= address < self.num_addresses:
            raise ValueError(
                f"address {address} out of range [0, {self.num_addresses})"
            )
        if self.policy == "interleaved":
            return address % self.num_banks, address // self.num_banks
        return address // self.rows_per_bank, address % self.rows_per_bank

    def encode(self, bank: int, row: int) -> int:
        """Inverse of :meth:`decode`."""
        if not 0 <= bank < self.num_banks:
            raise ValueError(f"bank {bank} out of range [0, {self.num_banks})")
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(
                f"row {row} out of range [0, {self.rows_per_bank})"
            )
        if self.policy == "interleaved":
            return row * self.num_banks + bank
        return bank * self.rows_per_bank + row


class ChannelAddressMap:
    """Flat physical address ↔ ``(rank, bank, row)`` decode for a channel.

    The rank-bits layer above :class:`RankAddressMap`: memory
    controllers place the rank-select bits low (``interleaved`` —
    consecutive addresses alternate ranks, maximizing rank-level
    parallelism on the shared command bus) or high (``rank-major`` —
    each rank owns a contiguous address span, the layout an attacker
    prefers because one rank's trackers absorb a contiguous stream).
    The per-rank remainder decodes through an inner
    :class:`RankAddressMap` with its own bank policy.
    """

    POLICIES = ("interleaved", "rank-major")

    def __init__(
        self,
        num_ranks: int,
        num_banks: int,
        rows_per_bank: int,
        policy: str = "interleaved",
        bank_policy: str = "interleaved",
    ) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown policy {policy!r}; known: {self.POLICIES}"
            )
        self.num_ranks = num_ranks
        self.policy = policy
        self.rank_map = RankAddressMap(
            num_banks, rows_per_bank, policy=bank_policy
        )

    @property
    def num_banks(self) -> int:
        return self.rank_map.num_banks

    @property
    def rows_per_bank(self) -> int:
        return self.rank_map.rows_per_bank

    @property
    def num_addresses(self) -> int:
        return self.num_ranks * self.rank_map.num_addresses

    def decode(self, address: int) -> tuple[int, int, int]:
        """Split a flat physical address into ``(rank, bank, row)``."""
        if not 0 <= address < self.num_addresses:
            raise ValueError(
                f"address {address} out of range [0, {self.num_addresses})"
            )
        if self.policy == "interleaved":
            rank, rest = address % self.num_ranks, address // self.num_ranks
        else:
            rank, rest = divmod(address, self.rank_map.num_addresses)
        bank, row = self.rank_map.decode(rest)
        return rank, bank, row

    def encode(self, rank: int, bank: int, row: int) -> int:
        """Inverse of :meth:`decode`."""
        if not 0 <= rank < self.num_ranks:
            raise ValueError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )
        rest = self.rank_map.encode(bank, row)
        if self.policy == "interleaved":
            return rest * self.num_ranks + rank
        return rank * self.rank_map.num_addresses + rest


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
