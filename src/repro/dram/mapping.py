"""Logical-to-physical row address mapping.

DRAM vendors remap row addresses internally (Section II-D: "DRAM chips
internally use proprietary mapping"). In-DRAM trackers see physical rows;
memory-controller-side schemes see logical rows and must rely on DRFM.
We model the remap as a keyed bijective permutation so experiments can
show why MC-side victim refresh needs the device's help.
"""

from __future__ import annotations


class RowMapping:
    """Identity mapping: logical row == physical row."""

    def __init__(self, num_rows: int) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        self.num_rows = num_rows

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return logical

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return physical

    def _check(self, row: int) -> None:
        if not 0 <= row < self.num_rows:
            raise ValueError(f"row {row} out of range [0, {self.num_rows})")


class ScrambledRowMapping(RowMapping):
    """A keyed bijective remap modelling proprietary internal topology.

    Uses a multiplicative permutation ``physical = (a * logical + b) mod N``
    with ``gcd(a, N) == 1``. This captures the property that matters for
    the experiments: logically adjacent rows are generally not physically
    adjacent, so an MC-side scheme refreshing ``logical ± 1`` misses the
    true victims.
    """

    def __init__(self, num_rows: int, key: int = 0x5DEECE66D) -> None:
        super().__init__(num_rows)
        # Choose an odd multiplier co-prime with num_rows.
        a = (key | 1) % num_rows
        while _gcd(a, num_rows) != 1:
            a = (a + 2) % num_rows or 1
        self._a = a
        self._b = (key >> 16) % num_rows
        self._a_inv = pow(self._a, -1, num_rows)

    def to_physical(self, logical: int) -> int:
        self._check(logical)
        return (self._a * logical + self._b) % self.num_rows

    def to_logical(self, physical: int) -> int:
        self._check(physical)
        return ((physical - self._b) * self._a_inv) % self.num_rows


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a
