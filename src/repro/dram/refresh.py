"""Refresh scheduling with DDR5 postponement semantics (Section VI).

DDR5 issues one REF per tREFI and permits the memory controller to
postpone up to four REF commands; at most five are then batched and
executed back-to-back. Between a postponed REF and the batch, demand
activations keep flowing — which is exactly what breaks naive low-cost
trackers (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import MAX_POSTPONED_REFRESHES


@dataclass
class RefreshEvent:
    """A batch of back-to-back REF commands executed at one instant.

    ``count`` is 1 for a timely refresh and up to 5 when four postponed
    refreshes are flushed together.
    """

    count: int
    interval_index: int


class RefreshScheduler:
    """Tracks the refresh debt of one bank.

    The scheduler is driven once per tREFI boundary via :meth:`tick`.
    The caller decides whether it *wants* to postpone (modelling an
    adversarial or throughput-oriented memory controller); the scheduler
    enforces the DDR5 ceiling of four postponed refreshes.
    """

    def __init__(self, max_postponed: int = MAX_POSTPONED_REFRESHES) -> None:
        if max_postponed < 0:
            raise ValueError("max_postponed must be >= 0")
        self.max_postponed = max_postponed
        self.postponed = 0
        self.interval_index = 0
        self.total_refreshes = 0

    def tick(self, want_postpone: bool = False) -> RefreshEvent | None:
        """Advance one tREFI. Returns the refresh batch executed, if any.

        If ``want_postpone`` is True and headroom remains, the REF is
        deferred and ``None`` is returned. Otherwise all owed refreshes
        (the current one plus any postponed) execute as a single batch.
        """
        self.interval_index += 1
        if want_postpone and self.postponed < self.max_postponed:
            self.postponed += 1
            return None
        count = self.postponed + 1
        self.postponed = 0
        self.total_refreshes += count
        return RefreshEvent(count=count, interval_index=self.interval_index)

    def flush(self) -> RefreshEvent | None:
        """Execute all owed refreshes immediately (end of simulation)."""
        if self.postponed == 0:
            return None
        count = self.postponed
        self.postponed = 0
        self.total_refreshes += count
        return RefreshEvent(count=count, interval_index=self.interval_index)
