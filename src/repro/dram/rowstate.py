"""Per-row disturbance accounting: the Rowhammer failure oracle.

This module models the physical effect the trackers defend against. Every
activation of row ``r`` disturbs its neighbours within the blast radius;
a refresh of a row (auto-refresh or mitigative victim refresh) resets the
disturbance accumulated on that row. A row whose accumulated disturbance
reaches the device's Rowhammer threshold (TRH) is flagged as flipped.

The model is deliberately the same abstraction the paper analyses at:
activation counts versus a scalar threshold. Mitigative refreshes are
*silent activations* of the victim rows — they disturb the victims'
neighbours in turn, which is exactly the mechanism behind transitive
(Half-Double) attacks, so the oracle reproduces them for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class FlipEvent:
    """Record of a row crossing the Rowhammer threshold."""

    row: int
    disturbance: float
    time_ns: float


class RowDisturbanceModel:
    """Tracks disturbance per row and detects threshold crossings.

    Parameters
    ----------
    num_rows:
        Rows in the bank. Row indices outside ``[0, num_rows)`` are
        silently clipped (edge rows simply have fewer neighbours).
    trh:
        Rowhammer threshold: disturbances a row can absorb between
        refreshes before flipping. The paper's per-row double-sided
        threshold (TRH-D) corresponds to each neighbour contributing
        one disturbance per activation.
    blast_radius:
        How many rows on either side of an activated row are disturbed.
        The paper uses 1 for analysis; 2 is modelled for the ablation.
    decay:
        Disturbance contributed to a neighbour at distance ``d`` is
        ``decay ** (d - 1)``. The paper's analysis uses distance-1 only,
        i.e. within the blast radius every neighbour counts fully; keep
        ``decay=1.0`` to reproduce the paper.
    """

    def __init__(
        self,
        num_rows: int,
        trh: float,
        blast_radius: int = 1,
        decay: float = 1.0,
    ) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if trh <= 0:
            raise ValueError("trh must be positive")
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.num_rows = num_rows
        self.trh = float(trh)
        self.blast_radius = blast_radius
        self.decay = decay
        # Sparse map row -> accumulated disturbance. Attacks touch a
        # handful of rows out of 128K, so a dict beats a dense array.
        self._disturbance: dict[int, float] = {}
        # Historical per-row maxima (refreshes reset disturbance but
        # not the peak): the "max unmitigated hammers" metric.
        self._peak: dict[int, float] = {}
        self.flips: list[FlipEvent] = []
        self._flipped: set[int] = set()

    # ------------------------------------------------------------------
    # Disturbance events
    # ------------------------------------------------------------------
    def activate(self, row: int, time_ns: float = 0.0, weight: float = 1.0) -> None:
        """Record one activation of ``row`` and disturb its neighbours.

        An activation is a full row cycle (read + restore), so it also
        refreshes the activated row itself — without this, a hammered
        aggressor would spuriously accumulate disturbance from its own
        victims' mitigative refreshes.
        """
        self._disturbance.pop(row, None)
        for distance in range(1, self.blast_radius + 1):
            contribution = weight * self.decay ** (distance - 1)
            for victim in (row - distance, row + distance):
                if 0 <= victim < self.num_rows:
                    self._bump(victim, contribution, time_ns)

    def activate_many(self, rows: Iterable[int], time_ns: float = 0.0) -> None:
        """Record a batch of activations in order (hot-loop entry point).

        Semantically identical to calling :meth:`activate` once per row,
        but with the common case (blast radius 1, no decay) inlined so
        the per-activation cost is a few dict operations and no Python
        allocation. The simulation engine calls this once per tREFI
        interval instead of once per ACT.
        """
        if self.blast_radius != 1 or self.decay != 1.0:
            for row in rows:
                self.activate(row, time_ns)
            return
        disturbance = self._disturbance
        peak = self._peak
        flipped = self._flipped
        flips = self.flips
        pop = disturbance.pop
        get = disturbance.get
        peak_get = peak.get
        num_rows = self.num_rows
        trh = self.trh
        for row in rows:
            pop(row, None)
            victim = row - 1
            if victim >= 0:
                total = get(victim, 0.0) + 1.0
                disturbance[victim] = total
                if total > peak_get(victim, 0.0):
                    peak[victim] = total
                if total >= trh and victim not in flipped:
                    flipped.add(victim)
                    flips.append(FlipEvent(victim, total, time_ns))
            victim = row + 1
            if victim < num_rows:
                total = get(victim, 0.0) + 1.0
                disturbance[victim] = total
                if total > peak_get(victim, 0.0):
                    peak[victim] = total
                if total >= trh and victim not in flipped:
                    flipped.add(victim)
                    flips.append(FlipEvent(victim, total, time_ns))

    def refresh_row(self, row: int, time_ns: float = 0.0) -> None:
        """Refresh ``row``: resets its disturbance (charge restored).

        Note this does *not* disturb the refreshed row's neighbours; use
        :meth:`mitigate` for a victim refresh performed as a mitigative
        activation, which does disturb (the transitive-attack channel).
        """
        self._disturbance.pop(row, None)

    def clear_row(self, row: int) -> None:
        """Forget ``row``'s accumulated disturbance without charge-restore
        semantics.

        The mitigation paths use this to make a victim refresh
        self-consistent: the refresh restores the row, the refresh's own
        activation then deposits disturbance on its neighbours, and any
        disturbance a *sibling* victim's activation deposited back on
        the refreshed row within the same mitigation must be dropped.
        Unlike :meth:`refresh_row` it carries no timestamp because it is
        bookkeeping, not a DRAM command.
        """
        self._disturbance.pop(row, None)

    def disturbed_rows(self) -> list[int]:
        """Rows currently carrying non-zero disturbance (stable order)."""
        return list(self._disturbance)

    def mitigate(self, aggressor: int, time_ns: float = 0.0) -> list[int]:
        """Mitigative refresh of the victims of ``aggressor``.

        Every row within the blast radius of the aggressor is refreshed.
        Each such refresh is itself an activation of the victim row and
        disturbs *its* neighbours — the transitive channel exploited by
        Half-Double. Returns the list of refreshed rows.
        """
        refreshed = []
        for distance in range(1, self.blast_radius + 1):
            for victim in (aggressor - distance, aggressor + distance):
                if 0 <= victim < self.num_rows:
                    refreshed.append(victim)
        # Refresh first (restore charge), then account the disturbance
        # the refresh activations cause to rows beyond the refreshed set.
        for victim in refreshed:
            self.refresh_row(victim, time_ns)
        for victim in refreshed:
            self.activate(victim, time_ns)
        # Refreshing restores the refreshed rows regardless of what the
        # sibling victim's activation deposited on them during this same
        # mitigation; clear again so a single mitigation is self-consistent.
        for victim in refreshed:
            self._disturbance.pop(victim, None)
        return refreshed

    def auto_refresh_all(self, time_ns: float = 0.0) -> None:
        """tREFW rollover: every row has been refreshed once."""
        self._disturbance.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def disturbance(self, row: int) -> float:
        """Accumulated disturbance on ``row`` since its last refresh."""
        return self._disturbance.get(row, 0.0)

    def max_disturbance(self) -> float:
        """Largest disturbance currently accumulated on any row."""
        return max(self._disturbance.values(), default=0.0)

    def most_disturbed_row(self) -> int | None:
        """Row with the highest accumulated disturbance, if any."""
        if not self._disturbance:
            return None
        return max(self._disturbance, key=self._disturbance.__getitem__)

    @property
    def any_flip(self) -> bool:
        return bool(self.flips)

    def peak_disturbance(self, row: int) -> float:
        """Highest disturbance ``row`` ever reached between refreshes."""
        return self._peak.get(row, 0.0)

    def _bump(self, row: int, amount: float, time_ns: float) -> None:
        total = self._disturbance.get(row, 0.0) + amount
        self._disturbance[row] = total
        if total > self._peak.get(row, 0.0):
            self._peak[row] = total
        if total >= self.trh and row not in self._flipped:
            self._flipped.add(row)
            self.flips.append(FlipEvent(row=row, disturbance=total, time_ns=time_ns))
