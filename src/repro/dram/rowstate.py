"""Per-row disturbance accounting: the Rowhammer failure oracle.

This module models the physical effect the trackers defend against. Every
activation of row ``r`` disturbs its neighbours within the blast radius;
a refresh of a row (auto-refresh or mitigative victim refresh) resets the
disturbance accumulated on that row. A row whose accumulated disturbance
reaches the device's Rowhammer threshold (TRH) is flagged as flipped.

The model is deliberately the same abstraction the paper analyses at:
activation counts versus a scalar threshold. Mitigative refreshes are
*silent activations* of the victim rows — they disturb the victims'
neighbours in turn, which is exactly the mechanism behind transitive
(Half-Double) attacks, so the oracle reproduces them for free.

Two storage backends implement the same contract:

``sparse`` (:class:`RowDisturbanceModel` proper)
    A ``dict`` keyed by row. Attacks touch a handful of rows out of
    128K, so the dict wins for tiny banks and ad-hoc interactive use,
    and it works without NumPy.
``dense`` (:class:`DenseRowDisturbanceModel`)
    NumPy ``float64`` disturbance/peak vectors plus a flipped bitmap.
    ``activate_many`` pre-aggregates the batch (unique rows + counts),
    scatters the neighbour contributions in a handful of vector ops,
    and detects flips by diffing a threshold mask against the bitmap.
    Batches that interleave aggressors with their own victims (adjacent
    activated rows) or that produce new flips are replayed through an
    activation-exact scalar loop, so results are numerically identical
    to the sparse backend — bit for bit, including flip-event order.

Backend selection is automatic: constructing :class:`RowDisturbanceModel`
picks the dense backend when NumPy is importable and the bank has at
least :data:`DENSE_MIN_ROWS` rows, and the sparse dict otherwise. Pass
``backend="sparse"``/``"dense"`` to force one (forcing ``"dense"``
without NumPy raises).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

from ..cache import BoundedCache

try:  # NumPy is a declared dependency, but the sparse backend works
    import numpy as np  # without it so stripped-down installs degrade
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

#: Banks with at least this many rows get the dense backend under
#: ``backend="auto"``. Below it (unit-test sized models, ad-hoc use)
#: the dict backend's zero allocation cost wins.
DENSE_MIN_ROWS = 1024

#: Accepted row-batch types for ``activate_many``. Arrays are read,
#: never written: the kernel treats caller batches as immutable.
RowBatch = Union[Sequence[int], "np.ndarray"]


def _resolve_backend(backend: str, num_rows: int) -> str:
    if backend == "auto":
        if np is not None and num_rows >= DENSE_MIN_ROWS:
            return "dense"
        return "sparse"
    if backend == "dense" and np is None:
        raise RuntimeError("backend='dense' requires numpy")
    if backend not in ("sparse", "dense"):
        raise ValueError(f"unknown backend {backend!r}; use auto/sparse/dense")
    return backend


@dataclass
class FlipEvent:
    """Record of a row crossing the Rowhammer threshold."""

    row: int
    disturbance: float
    time_ns: float


class RowDisturbanceModel:
    """Tracks disturbance per row and detects threshold crossings.

    Parameters
    ----------
    num_rows:
        Rows in the bank. Row indices outside ``[0, num_rows)`` are
        silently clipped (edge rows simply have fewer neighbours).
    trh:
        Rowhammer threshold: disturbances a row can absorb between
        refreshes before flipping. The paper's per-row double-sided
        threshold (TRH-D) corresponds to each neighbour contributing
        one disturbance per activation.
    blast_radius:
        How many rows on either side of an activated row are disturbed.
        The paper uses 1 for analysis; 2 is modelled for the ablation.
    decay:
        Disturbance contributed to a neighbour at distance ``d`` is
        ``decay ** (d - 1)``. The paper's analysis uses distance-1 only,
        i.e. within the blast radius every neighbour counts fully; keep
        ``decay=1.0`` to reproduce the paper.
    backend:
        ``"auto"`` (default) picks the dense NumPy backend for banks of
        at least :data:`DENSE_MIN_ROWS` rows when NumPy is available,
        the sparse dict otherwise; ``"sparse"``/``"dense"`` force one.
    """

    #: Storage backend implemented by this class ("sparse" or "dense").
    backend = "sparse"

    def __new__(
        cls,
        num_rows: int = 0,
        trh: float = 0.0,
        blast_radius: int = 1,
        decay: float = 1.0,
        backend: str = "auto",
    ) -> "RowDisturbanceModel":
        # Dispatch on the resolved backend so plain
        # ``RowDisturbanceModel(...)`` transparently builds the dense
        # variant for production-sized banks.
        if cls is RowDisturbanceModel:
            if _resolve_backend(backend, num_rows) == "dense":
                return super().__new__(DenseRowDisturbanceModel)
        return super().__new__(cls)

    def __init__(
        self,
        num_rows: int,
        trh: float,
        blast_radius: int = 1,
        decay: float = 1.0,
        backend: str = "auto",
    ) -> None:
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        if trh <= 0:
            raise ValueError("trh must be positive")
        if blast_radius < 1:
            raise ValueError("blast_radius must be >= 1")
        self.num_rows = num_rows
        self.trh = float(trh)
        self.blast_radius = blast_radius
        self.decay = decay
        self.flips: list[FlipEvent] = []
        self._init_storage()

    def _init_storage(self) -> None:
        # Sparse map row -> accumulated disturbance. Attacks touch a
        # handful of rows out of 128K, so a dict beats a dense array
        # for small/ad-hoc models.
        self._disturbance: dict[int, float] = {}
        # Historical per-row maxima (refreshes reset disturbance but
        # not the peak): the "max unmitigated hammers" metric.
        self._peak: dict[int, float] = {}
        self._flipped: set[int] = set()

    # ------------------------------------------------------------------
    # Disturbance events
    # ------------------------------------------------------------------
    def activate(self, row: int, time_ns: float = 0.0, weight: float = 1.0) -> None:
        """Record one activation of ``row`` and disturb its neighbours.

        An activation is a full row cycle (read + restore), so it also
        refreshes the activated row itself — without this, a hammered
        aggressor would spuriously accumulate disturbance from its own
        victims' mitigative refreshes.
        """
        self._disturbance.pop(row, None)
        for distance in range(1, self.blast_radius + 1):
            contribution = weight * self.decay ** (distance - 1)
            for victim in (row - distance, row + distance):
                if 0 <= victim < self.num_rows:
                    self._bump(victim, contribution, time_ns)

    def activate_many(
        self,
        rows: RowBatch,
        time_ns: float = 0.0,
        agg: tuple["np.ndarray", "np.ndarray"] | None = None,
    ) -> None:
        """Record a batch of activations in order (hot-loop entry point).

        Semantically identical to calling :meth:`activate` once per row.
        ``rows`` may be any integer sequence or a NumPy array; it is
        never mutated. ``agg``, when given, is the batch's sorted
        ``(unique_rows, counts)`` pre-aggregation — the simulation
        engine computes it once per interval and shares it between the
        oracle and the tracker; the sparse backend ignores it.
        """
        if np is not None and isinstance(rows, np.ndarray):
            rows = rows.tolist()
        if self.blast_radius != 1 or self.decay != 1.0:
            for row in rows:
                self.activate(row, time_ns)
            return
        # Common case (blast radius 1, no decay) inlined so the
        # per-activation cost is a few dict operations and no Python
        # allocation.
        disturbance = self._disturbance
        peak = self._peak
        flipped = self._flipped
        flips = self.flips
        pop = disturbance.pop
        get = disturbance.get
        peak_get = peak.get
        num_rows = self.num_rows
        trh = self.trh
        for row in rows:
            pop(row, None)
            # Full bounds checks on both victims: out-of-range
            # *aggressors* are legal (clipped) inputs, so row±1 can
            # fall outside the bank on either side.
            victim = row - 1
            if 0 <= victim < num_rows:
                total = get(victim, 0.0) + 1.0
                disturbance[victim] = total
                if total > peak_get(victim, 0.0):
                    peak[victim] = total
                if total >= trh and victim not in flipped:
                    flipped.add(victim)
                    flips.append(FlipEvent(victim, total, time_ns))
            victim = row + 1
            if 0 <= victim < num_rows:
                total = get(victim, 0.0) + 1.0
                disturbance[victim] = total
                if total > peak_get(victim, 0.0):
                    peak[victim] = total
                if total >= trh and victim not in flipped:
                    flipped.add(victim)
                    flips.append(FlipEvent(victim, total, time_ns))

    def refresh_row(self, row: int, time_ns: float = 0.0) -> None:
        """Refresh ``row``: resets its disturbance (charge restored).

        Note this does *not* disturb the refreshed row's neighbours; use
        :meth:`mitigate` for a victim refresh performed as a mitigative
        activation, which does disturb (the transitive-attack channel).
        """
        self._disturbance.pop(row, None)

    def clear_row(self, row: int) -> None:
        """Forget ``row``'s accumulated disturbance without charge-restore
        semantics.

        The mitigation paths use this to make a victim refresh
        self-consistent: the refresh restores the row, the refresh's own
        activation then deposits disturbance on its neighbours, and any
        disturbance a *sibling* victim's activation deposited back on
        the refreshed row within the same mitigation must be dropped.
        Unlike :meth:`refresh_row` it carries no timestamp because it is
        bookkeeping, not a DRAM command.
        """
        self._disturbance.pop(row, None)

    def refresh_range(self, lo: int, hi: int, time_ns: float = 0.0) -> None:
        """Refresh every row in ``[lo, hi)`` — the rolling auto-refresh
        slice. One vector store on the dense backend."""
        for row in [r for r in self._disturbance if lo <= r < hi]:
            self._disturbance.pop(row, None)

    def disturbed_rows(self) -> list[int]:
        """Rows currently carrying non-zero disturbance.

        Sparse backend: first-disturbance order; dense: ascending. Use
        ``sorted()`` when the order matters across backends.
        """
        return list(self._disturbance)

    def mitigate(self, aggressor: int, time_ns: float = 0.0) -> list[int]:
        """Mitigative refresh of the victims of ``aggressor``.

        Every row within the blast radius of the aggressor is refreshed.
        Each such refresh is itself an activation of the victim row and
        disturbs *its* neighbours — the transitive channel exploited by
        Half-Double. Returns the list of refreshed rows.
        """
        refreshed = []
        for distance in range(1, self.blast_radius + 1):
            for victim in (aggressor - distance, aggressor + distance):
                if 0 <= victim < self.num_rows:
                    refreshed.append(victim)
        # Refresh first (restore charge), then account the disturbance
        # the refresh activations cause to rows beyond the refreshed set.
        for victim in refreshed:
            self.refresh_row(victim, time_ns)
        for victim in refreshed:
            self.activate(victim, time_ns)
        # Refreshing restores the refreshed rows regardless of what the
        # sibling victim's activation deposited on them during this same
        # mitigation; clear again so a single mitigation is self-consistent.
        for victim in refreshed:
            self.clear_row(victim)
        return refreshed

    def auto_refresh_all(self, time_ns: float = 0.0) -> None:
        """tREFW rollover: every row has been refreshed once."""
        self._disturbance.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def disturbance(self, row: int) -> float:
        """Accumulated disturbance on ``row`` since its last refresh."""
        return self._disturbance.get(row, 0.0)

    def max_disturbance(self) -> float:
        """Largest disturbance currently accumulated on any row."""
        return max(self._disturbance.values(), default=0.0)

    def most_disturbed_row(self) -> int | None:
        """Lowest-indexed row with the highest accumulated disturbance.

        The lowest-index tie-break is part of the contract: it makes the
        answer identical across the sparse and dense backends (a dict's
        insertion order would not be).
        """
        if not self._disturbance:
            return None
        best = max(self._disturbance.values())
        return min(r for r, v in self._disturbance.items() if v == best)

    def disturbance_summary(self) -> tuple[float, int | None]:
        """``(max_disturbance(), most_disturbed_row())`` in one call.

        Exists so result collection pays one storage scan instead of
        two on the dense backend; the sparse form just composes the two
        queries, so the pair is identical to calling them separately.
        """
        if not self._disturbance:
            return 0.0, None
        best = max(self._disturbance.values())
        return best, min(
            r for r, v in self._disturbance.items() if v == best
        )

    @property
    def any_flip(self) -> bool:
        return bool(self.flips)

    def peak_disturbance(self, row: int) -> float:
        """Highest disturbance ``row`` ever reached between refreshes."""
        return self._peak.get(row, 0.0)

    def _bump(self, row: int, amount: float, time_ns: float) -> None:
        total = self._disturbance.get(row, 0.0) + amount
        self._disturbance[row] = total
        if total > self._peak.get(row, 0.0):
            self._peak[row] = total
        if total >= self.trh and row not in self._flipped:
            self._flipped.add(row)
            self.flips.append(FlipEvent(row=row, disturbance=total, time_ns=time_ns))


class DenseRowDisturbanceModel(RowDisturbanceModel):
    """NumPy-backed oracle: dense vectors, batched neighbour scatter.

    State is three vectors over the bank's rows — ``float64``
    disturbance and peak, plus a flipped bitmap. The batched
    :meth:`activate_many` fast path aggregates the batch to unique rows,
    scatters both neighbours' contributions with one bincount, and
    compares the updated totals against TRH as a mask diffed with the
    bitmap. Two batch shapes are replayed through an exact scalar loop
    instead, keeping results bit-identical to the sparse backend:

    * *aggressor/victim interleaving* — two activated rows within the
      blast radius of each other, where the in-batch order of the
      self-refresh (an ACT restores its own row) is observable; and
    * *new flips* — the flip event must record the disturbance at the
      crossing activation and events must appear in crossing order.

    Batch geometry (unique rows, victim scatter indices and deltas) is
    memoized per batch-array identity: attack traces reuse one interval
    object for thousands of tREFIs, so the geometry is paid once. The
    memo relies on the documented contract that caller batches are
    immutable.
    """

    backend = "dense"

    #: Memo ceiling; LRU-style eviction keeps the hot shared-interval
    #: entries when a trace streams unboundedly many distinct batches.
    _BATCH_CACHE_LIMIT = 4096

    def _init_storage(self) -> None:
        self._dist = np.zeros(self.num_rows, dtype=np.float64)
        self._peak_arr = np.zeros(self.num_rows, dtype=np.float64)
        self._flipped_mask = np.zeros(self.num_rows, dtype=bool)
        # id(batch) -> (batch_ref, plan) — see _batch_plan.
        self._batch_cache: BoundedCache = BoundedCache(self._BATCH_CACHE_LIMIT)

    def adopt_storage(
        self,
        dist: "np.ndarray",
        peak: "np.ndarray",
        flipped: "np.ndarray",
    ) -> None:
        """Re-point the model's state at caller-owned array views.

        The fused channel kernel owns one packed ``(rank·bank, row)``
        array family and hands each bank's model a row view into it, so
        packed whole-channel scatters and the per-bank operations
        (mitigate, refresh_range, queries, the exact replay fallback)
        read and write the *same* memory — bit-identity between the
        fused and per-bank paths holds by construction rather than by
        mirroring state.

        The views must be float64/float64/bool 1-D arrays of
        ``num_rows`` entries. Existing state is copied into the views,
        so adoption is legal at any point, not just on a fresh model.
        """
        for view, current in (
            (dist, self._dist),
            (peak, self._peak_arr),
            (flipped, self._flipped_mask),
        ):
            if view.shape != (self.num_rows,):
                raise ValueError(
                    f"adopted view has shape {view.shape}; "
                    f"expected ({self.num_rows},)"
                )
            view[:] = current
        self._dist = dist
        self._peak_arr = peak
        self._flipped_mask = flipped

    # ------------------------------------------------------------------
    # Disturbance events
    # ------------------------------------------------------------------
    def activate(self, row: int, time_ns: float = 0.0, weight: float = 1.0) -> None:
        # Out-of-range rows are legal no-op targets in the sparse
        # backend (dict pop); clip them here too — and never let a
        # negative index wrap around the arrays.
        if 0 <= row < self.num_rows:
            self._dist[row] = 0.0
        for distance in range(1, self.blast_radius + 1):
            contribution = weight * self.decay ** (distance - 1)
            for victim in (row - distance, row + distance):
                if 0 <= victim < self.num_rows:
                    self._bump(victim, contribution, time_ns)

    def _bump(self, row: int, amount: float, time_ns: float) -> None:
        dist = self._dist
        total = dist[row] + amount
        dist[row] = total
        if total > self._peak_arr[row]:
            self._peak_arr[row] = total
        if total >= self.trh and not self._flipped_mask[row]:
            self._flipped_mask[row] = True
            self.flips.append(
                FlipEvent(row=int(row), disturbance=float(total), time_ns=time_ns)
            )

    def _batch_plan(self, rows: RowBatch, agg) -> tuple | None:
        """Resolve (and memoize) the batch's data-independent geometry.

        Returns ``(uniq, conflict, victims_unique, delta)`` where
        ``delta`` is the summed unit contribution each victim receives,
        or ``None`` for an empty batch. ``conflict`` marks batches whose
        activated rows fall within each other's blast radius.
        """
        # Memoize only on array identity (the engine's shared interval
        # aggregation or an ndarray batch): arrays are immutable by
        # contract, while a caller's plain list may be reused mutated.
        # An agg key covers *both* arrays — a caller may legally pair
        # one unique-rows array with different counts.
        key = None
        if agg is not None:
            key = (id(agg[0]), id(agg[1]))
        elif isinstance(rows, np.ndarray):
            key = id(rows)
        if key is not None:
            cached = self._batch_cache.get(key)
            if cached is not None:
                return cached[1]
        if agg is not None:
            uniq, counts = agg
        else:
            arr = np.asarray(rows, dtype=np.intp)
            if arr.size == 0:
                return None
            uniq, counts = np.unique(arr, return_counts=True)
        if uniq.size == 0:
            return None
        # uniq is sorted and strictly increasing, so adjacency (an
        # activated row being another's victim) shows as a diff of 1.
        conflict = bool(uniq.size > 1 and np.any(np.diff(uniq) == 1))
        victims_unique = delta = None
        # Activated rows outside the bank are legal no-ops (the sparse
        # dict clips them); only in-range rows get their self-reset.
        reset_rows = uniq[(uniq >= 0) & (uniq < self.num_rows)]
        if not conflict:
            victims = np.concatenate((uniq - 1, uniq + 1))
            weights = np.concatenate((counts, counts)).astype(np.float64)
            valid = (victims >= 0) & (victims < self.num_rows)
            victims = victims[valid]
            weights = weights[valid]
            victims_unique = np.unique(victims)
            if victims_unique.size:
                idx = np.searchsorted(victims_unique, victims)
                delta = np.bincount(
                    idx, weights=weights, minlength=victims_unique.size
                )
            else:
                delta = np.zeros(0, dtype=np.float64)
        plan = (reset_rows, conflict, victims_unique, delta)
        if key is not None:
            # The entry holds a reference to the keyed objects so their
            # ids cannot be recycled while the memo entry lives.
            self._batch_cache.put(key, (agg if agg is not None else rows, plan))
        return plan

    def activate_many(
        self,
        rows: RowBatch,
        time_ns: float = 0.0,
        agg: tuple["np.ndarray", "np.ndarray"] | None = None,
    ) -> None:
        if self.blast_radius != 1 or self.decay != 1.0:
            seq = rows.tolist() if isinstance(rows, np.ndarray) else rows
            for row in seq:
                self.activate(row, time_ns)
            return
        plan = self._batch_plan(rows, agg)
        if plan is None:
            return
        reset_rows, conflict, victims_unique, delta = plan
        if conflict:
            self._activate_many_exact(rows, time_ns)
            return
        dist = self._dist
        if victims_unique is None or not victims_unique.size:
            dist[reset_rows] = 0.0
            return
        old = dist[victims_unique]
        new = old + delta
        # Flip detection: threshold mask diffed against the bitmap. The
        # max() pre-check skips the mask work when no total is anywhere
        # near TRH (the overwhelmingly common batch). State is untouched
        # so far, so the exact replay (which must record per-crossing
        # disturbances in act order) starts clean.
        if new.max() >= self.trh and bool(
            ((new >= self.trh) & ~self._flipped_mask[victims_unique]).any()
        ):
            self._activate_many_exact(rows, time_ns)
            return
        dist[reset_rows] = 0.0
        dist[victims_unique] = new
        peak = self._peak_arr
        peak[victims_unique] = np.maximum(peak[victims_unique], new)

    def _activate_many_exact(self, rows: RowBatch, time_ns: float) -> None:
        """Activation-exact replay of a batch (the sparse loop on arrays).

        Used for batches the vector path cannot reproduce bit-identically:
        aggressor/victim interleavings and batches that flip rows (flip
        events must carry the crossing-time disturbance, in act order).
        """
        seq = rows.tolist() if isinstance(rows, np.ndarray) else rows
        dist = self._dist
        peak = self._peak_arr
        flipped = self._flipped_mask
        flips = self.flips
        num_rows = self.num_rows
        trh = self.trh
        for row in seq:
            if 0 <= row < num_rows:
                dist[row] = 0.0
            victim = row - 1
            if 0 <= victim < num_rows:
                total = dist[victim] + 1.0
                dist[victim] = total
                if total > peak[victim]:
                    peak[victim] = total
                if total >= trh and not flipped[victim]:
                    flipped[victim] = True
                    flips.append(FlipEvent(victim, float(total), time_ns))
            victim = row + 1
            if 0 <= victim < num_rows:
                total = dist[victim] + 1.0
                dist[victim] = total
                if total > peak[victim]:
                    peak[victim] = total
                if total >= trh and not flipped[victim]:
                    flipped[victim] = True
                    flips.append(FlipEvent(victim, float(total), time_ns))

    def mitigate(self, aggressor: int, time_ns: float = 0.0) -> list[int]:
        if self.blast_radius != 1 or self.decay != 1.0:
            return super().mitigate(aggressor, time_ns)
        # Radius-1 victim refresh, inlined: refresh aggressor±1, let each
        # refresh's activation disturb *its* neighbours (the transitive
        # channel), then restore the refreshed pair. Same op order as the
        # generic path, minus the per-victim method dispatch — this runs
        # once per REF per bank, right behind the hot loop.
        num_rows = self.num_rows
        refreshed = [
            victim
            for victim in (aggressor - 1, aggressor + 1)
            if 0 <= victim < num_rows
        ]
        dist = self._dist
        for victim in refreshed:
            dist[victim] = 0.0
        for victim in refreshed:
            dist[victim] = 0.0
            for neighbour in (victim - 1, victim + 1):
                if 0 <= neighbour < num_rows:
                    self._bump(neighbour, 1.0, time_ns)
        for victim in refreshed:
            dist[victim] = 0.0
        return refreshed

    def refresh_row(self, row: int, time_ns: float = 0.0) -> None:
        if 0 <= row < self.num_rows:
            self._dist[row] = 0.0

    def clear_row(self, row: int) -> None:
        if 0 <= row < self.num_rows:
            self._dist[row] = 0.0

    def refresh_range(self, lo: int, hi: int, time_ns: float = 0.0) -> None:
        self._dist[max(0, lo) : hi] = 0.0

    def disturbed_rows(self) -> list[int]:
        return np.nonzero(self._dist)[0].tolist()

    def auto_refresh_all(self, time_ns: float = 0.0) -> None:
        self._dist.fill(0.0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def disturbance(self, row: int) -> float:
        if not 0 <= row < self.num_rows:
            return 0.0
        return float(self._dist[row])

    def max_disturbance(self) -> float:
        return float(self._dist.max())

    def most_disturbed_row(self) -> int | None:
        row = int(self._dist.argmax())  # argmax: lowest index among ties
        if self._dist[row] <= 0.0:
            return None
        return row

    def disturbance_summary(self) -> tuple[float, int | None]:
        # One argmax scan serves both queries: dist[argmax] IS the max,
        # and argmax already takes the lowest index among ties. (No
        # touched-row windowing here: victim-refresh bumps chain — a
        # refreshed victim's neighbour can itself be mitigated later —
        # so disturbance travels arbitrarily far from activated rows.)
        row = int(self._dist.argmax())
        best = float(self._dist[row])
        return best, (row if best > 0.0 else None)

    def peak_disturbance(self, row: int) -> float:
        if not 0 <= row < self.num_rows:
            return 0.0
        return float(self._peak_arr[row])
