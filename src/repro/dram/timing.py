"""DDR5 timing parameters (paper Table I and Appendix A).

The two derived quantities that drive every security result in the paper
are ``max_act`` (the maximum number of activations that fit in one tREFI
window, M = 73 by default) and ``refi_per_refw`` (the number of refresh
commands per refresh window, 8192).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class DDR5Timing:
    """Timing parameters of a DDR5 device.

    All times are in nanoseconds unless the name says otherwise. Default
    values correspond to the paper's DDR5-5200B / 32 Gb configuration
    (Table I).
    """

    #: Refresh window: every row is refreshed once per tREFW.
    t_refw_ms: float = 32.0
    #: Interval between successive REF commands.
    t_refi_ns: float = 3900.0
    #: Execution time of a REF command (also the DRFM penalty).
    t_rfc_ns: float = 410.0
    #: Minimum time between successive ACTs to the same bank.
    t_rc_ns: float = 48.0
    #: Row-to-column delay (used by the performance model).
    t_rcd_ns: float = 16.0
    #: Column access latency.
    t_cl_ns: float = 16.0
    #: Precharge latency.
    t_rp_ns: float = 16.0
    #: Same-bank RFM penalty: half of tRFC per the paper (Section VIII-A).
    t_rfm_sb_ns: float = 205.0
    #: Same-bank DRFM penalty: equal to tRFC (Section VIII-A).
    t_drfm_sb_ns: float = 410.0

    @property
    def t_refw_ns(self) -> float:
        return self.t_refw_ms * 1e6

    @property
    def max_act(self) -> int:
        """Maximum ACTs per tREFI: M = (tREFI - tRFC) / tRC (Table I).

        The raw quotient for the default parameters is 72.7; the paper
        (and the JEDEC budget) round to the nearest integer, M = 73.
        """
        return round((self.t_refi_ns - self.t_rfc_ns) / self.t_rc_ns)

    @property
    def refi_per_refw(self) -> int:
        """Number of REF commands per refresh window (8192 for DDR5)."""
        return round(self.t_refw_ns / self.t_refi_ns)

    @property
    def acts_per_refw(self) -> int:
        """Maximum demand activations per tREFW window (73 * 8192)."""
        return self.max_act * self.refi_per_refw

    def with_max_act(self, max_act: int) -> "DDR5Timing":
        """Return a copy whose tRC is adjusted to yield ``max_act``.

        Used by the Appendix-A sweep (Fig 18), which varies MaxACT from
        65 to 80 across the JEDEC speed-bin envelope.
        """
        t_rc = (self.t_refi_ns - self.t_rfc_ns) / max_act
        return DDR5Timing(
            t_refw_ms=self.t_refw_ms,
            t_refi_ns=self.t_refi_ns,
            t_rfc_ns=self.t_rfc_ns,
            t_rc_ns=t_rc,
            t_rcd_ns=self.t_rcd_ns,
            t_cl_ns=self.t_cl_ns,
            t_rp_ns=self.t_rp_ns,
            t_rfm_sb_ns=self.t_rfm_sb_ns,
            t_drfm_sb_ns=self.t_drfm_sb_ns,
        )


#: JEDEC DDR5 speed-bin envelope discussed in Appendix A. The tuple holds
#: (transfer rate label, tRC in ns, tRFC in ns).
SPEED_BINS = {
    "DDR5-3200A": (3200, 46.0, 350.0),
    "DDR5-3200B": (3200, 48.0, 410.0),
    "DDR5-4800B": (4800, 48.0, 410.0),
    "DDR5-5200B": (5200, 48.0, 410.0),
    "DDR5-6400B": (6400, 49.5, 410.0),
    "DDR5-7200B": (7200, 49.5, 410.0),
}


def timing_for_bin(name: str) -> DDR5Timing:
    """Build a :class:`DDR5Timing` for a named JEDEC speed bin."""
    try:
        _rate, t_rc, t_rfc = SPEED_BINS[name]
    except KeyError:
        raise KeyError(
            f"unknown speed bin {name!r}; known bins: {sorted(SPEED_BINS)}"
        ) from None
    return DDR5Timing(t_rc_ns=t_rc, t_rfc_ns=t_rfc)


def maxact_range() -> tuple[int, int]:
    """The viable MaxACT range across all DDR5 speed bins (Appendix A)."""
    values = []
    for _rate, t_rc, t_rfc in SPEED_BINS.values():
        values.append(int((3900.0 - t_rfc) / t_rc))
    return min(values), max(values)


DEFAULT_TIMING = DDR5Timing()
