"""Batched, cached, parallel experiment sweeps (``repro.exp``).

The subsystem behind ``python -m repro exp``: declare a grid of
(tracker × attack × config) points, fan it out over a process pool
with deterministic per-task seeding, and collect the outcomes into a
fingerprint-keyed store so re-runs are incremental.

A grid point is a factored :class:`~repro.scenario.Scenario`: build
grids from a base scenario with
:meth:`Scenario.sweep <repro.scenario.Scenario.sweep>`, and the runner
executes every point through the :class:`~repro.scenario.Session`
facade.
"""

from .grid import (
    SCHEMA_VERSION,
    AttackSpec,
    ExperimentGrid,
    ExperimentPoint,
    PointConfig,
    TrackerSpec,
)
from .presets import (
    channel_shootout_grid,
    postponement_grid,
    preset_grid,
    rank_shootout_grid,
    shootout_grid,
)
from .result import (
    ExperimentResult,
    summarise_channel_result,
    summarise_rank_result,
    summarise_sim_result,
)
from .runner import RunReport, run_grid, run_point
from .store import ResultStore

__all__ = [
    "SCHEMA_VERSION",
    "AttackSpec",
    "ExperimentGrid",
    "ExperimentPoint",
    "ExperimentResult",
    "PointConfig",
    "ResultStore",
    "RunReport",
    "TrackerSpec",
    "channel_shootout_grid",
    "postponement_grid",
    "preset_grid",
    "rank_shootout_grid",
    "run_grid",
    "run_point",
    "shootout_grid",
    "summarise_channel_result",
    "summarise_rank_result",
    "summarise_sim_result",
]
