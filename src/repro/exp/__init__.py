"""The experiment service (``repro.exp``): sharded, resumable, cached.

The subsystem behind ``python -m repro exp`` and ``repro serve``:
declare a grid of (tracker × attack × config) points, let the sharded
scheduler fan the *missing* points out over a process pool (chunked,
journaled, resumable — see :mod:`repro.exp.runner`), collect the
outcomes into the fingerprint-sharded :class:`ResultStore`, and answer
sweep/point queries from it through the cached :class:`QueryAPI` read
path.

A grid point is a factored :class:`~repro.scenario.Scenario`: build
grids from a base scenario with
:meth:`Scenario.sweep <repro.scenario.Scenario.sweep>`, and the runner
executes every point through the :class:`~repro.scenario.Session`
facade.
"""

from .grid import (
    SCHEMA_VERSION,
    AttackSpec,
    ExperimentGrid,
    ExperimentPoint,
    PointConfig,
    TrackerSpec,
)
from .journal import JournalState, RunJournal, journal_for_store
from .presets import (
    channel_shootout_grid,
    postponement_grid,
    preset_grid,
    rank_shootout_grid,
    shootout_grid,
)
from .query import QueryAPI, sweep_csv_rows
from .result import (
    ExperimentResult,
    summarise_channel_result,
    summarise_rank_result,
    summarise_sim_result,
)
from .runner import RunReport, ShardReport, run_grid, run_point
from .serve import make_server, serve_store
from .shards import TaskShard, plan_shards
from .store import ResultStore, StoreFormatError, shard_key

__all__ = [
    "SCHEMA_VERSION",
    "AttackSpec",
    "ExperimentGrid",
    "ExperimentPoint",
    "ExperimentResult",
    "JournalState",
    "PointConfig",
    "QueryAPI",
    "ResultStore",
    "RunJournal",
    "RunReport",
    "ShardReport",
    "StoreFormatError",
    "TaskShard",
    "TrackerSpec",
    "channel_shootout_grid",
    "journal_for_store",
    "make_server",
    "plan_shards",
    "postponement_grid",
    "preset_grid",
    "rank_shootout_grid",
    "run_grid",
    "run_point",
    "serve_store",
    "shard_key",
    "shootout_grid",
    "summarise_channel_result",
    "summarise_rank_result",
    "summarise_sim_result",
    "sweep_csv_rows",
]
