"""Declarative experiment grids: (tracker × attack × config) as data.

A grid point names a tracker, an attack pattern, and the engine knobs —
all plain JSON-serialisable values, never live objects — so points can
be fingerprinted for the incremental result store, shipped to worker
processes, and re-derived bit-identically from a base seed. The specs
resolve through the two factory registries
(:func:`repro.trackers.registry.make_tracker`,
:func:`repro.attacks.registry.make_attack`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Any, Iterator, Mapping

from ..sim.seeding import stable_hash, stable_seed

#: Bump when the result schema or the seeding scheme changes, so stale
#: store entries are invalidated instead of silently reused.
#: v2: rank-level points (``PointConfig.num_banks``, per-bank metrics).
SCHEMA_VERSION = 2


def _frozen_params(params: Mapping[str, Any] | None) -> tuple:
    """Normalise a kwargs mapping into a hashable, ordered tuple."""
    if not params:
        return ()
    return tuple(
        (key, tuple(value) if isinstance(value, list) else value)
        for key, value in sorted(params.items())
    )


@dataclass(frozen=True)
class TrackerSpec:
    """A tracker by registry name plus factory kwargs."""

    name: str
    params: tuple = ()
    dmq: bool = False
    dmq_depth: int = 4

    @classmethod
    def of(cls, name: str, dmq: bool = False, dmq_depth: int = 4,
           **params: Any) -> "TrackerSpec":
        return cls(name, _frozen_params(params), dmq, dmq_depth)

    @property
    def label(self) -> str:
        """Human-readable identity, unique within a well-formed grid."""
        base = self.name
        if self.params:
            args = ",".join(f"{key}={value}" for key, value in self.params)
            base = f"{base}({args})"
        if self.dmq:
            base = f"{base}+dmq{self.dmq_depth}"
        return base

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "params": dict(self.params),
            "dmq": self.dmq,
            "dmq_depth": self.dmq_depth,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TrackerSpec":
        return cls(
            payload["name"],
            _frozen_params(payload.get("params")),
            payload.get("dmq", False),
            payload.get("dmq_depth", 4),
        )


@dataclass(frozen=True)
class AttackSpec:
    """An attack pattern by registry name plus factory kwargs."""

    name: str
    params: tuple = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "AttackSpec":
        return cls(name, _frozen_params(params))

    def to_payload(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "AttackSpec":
        return cls(payload["name"], _frozen_params(payload.get("params")))


@dataclass(frozen=True)
class PointConfig:
    """Engine and trace knobs for one grid point (JSON-safe).

    ``scaled_timing=True`` swaps the real DDR5 timing for the scaled
    Monte-Carlo device whose window holds ``max_act`` ACTs per tREFI —
    the fast regime used by tests and the speedup benchmark.

    ``num_banks > 1`` runs the point on the rank-level engine: the
    attack resolves through the rank registry (row-only attacks are
    auto-interleaved across the banks) and each bank gets its own
    tracker instance seeded from the task seed plus the bank index.
    """

    trh: float = 4800.0
    intervals: int = 2000
    max_act: int = 73
    base_row: int = 1000
    num_rows: int = 128 * 1024
    blast_radius: int = 1
    allow_postponement: bool = False
    max_postponed: int = 4
    refi_per_refw: int = 8192
    scaled_timing: bool = False
    num_banks: int = 1

    def to_payload(self) -> dict:
        return {
            "trh": self.trh,
            "intervals": self.intervals,
            "max_act": self.max_act,
            "base_row": self.base_row,
            "num_rows": self.num_rows,
            "blast_radius": self.blast_radius,
            "allow_postponement": self.allow_postponement,
            "max_postponed": self.max_postponed,
            "refi_per_refw": self.refi_per_refw,
            "scaled_timing": self.scaled_timing,
            "num_banks": self.num_banks,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PointConfig":
        return cls(**dict(payload))


@dataclass(frozen=True)
class ExperimentPoint:
    """One (tracker, attack, config) coordinate of a grid."""

    tracker: TrackerSpec
    attack: AttackSpec
    config: PointConfig

    def to_payload(self) -> dict:
        return {
            "tracker": self.tracker.to_payload(),
            "attack": self.attack.to_payload(),
            "config": self.config.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ExperimentPoint":
        return cls(
            TrackerSpec.from_payload(payload["tracker"]),
            AttackSpec.from_payload(payload["attack"]),
            PointConfig.from_payload(payload["config"]),
        )

    def fingerprint(self, base_seed: int) -> str:
        """Stable identity of this point's *result*.

        Any change to the tracker, attack, engine knobs, base seed, or
        schema version yields a new fingerprint — which is exactly the
        cache-invalidation rule of the result store.
        """
        return stable_hash(
            "exp-point", SCHEMA_VERSION, self.to_payload(), base_seed
        )

    def task_seed(self, base_seed: int) -> int:
        """The 64-bit seed this point's random streams derive from."""
        return stable_seed(
            "exp-task", SCHEMA_VERSION, self.to_payload(), base_seed
        )


@dataclass
class ExperimentGrid:
    """The cross product of tracker, attack, and config axes.

    ``extra_points`` holds coordinates outside the cross product, for
    sweeps that pair specific trackers with specific attacks instead of
    crossing every axis (they run first, in list order).
    """

    trackers: list[TrackerSpec] = field(default_factory=list)
    attacks: list[AttackSpec] = field(default_factory=list)
    configs: list[PointConfig] = field(default_factory=lambda: [PointConfig()])
    extra_points: list[ExperimentPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return (
            len(self.extra_points)
            + len(self.trackers) * len(self.attacks) * len(self.configs)
        )

    def points(self) -> list[ExperimentPoint]:
        """Expand the grid in a deterministic (row-major) order."""
        return list(self.extra_points) + [
            ExperimentPoint(tracker, attack, config)
            for tracker, attack, config in product(
                self.trackers, self.attacks, self.configs
            )
        ]

    def __iter__(self) -> Iterator[ExperimentPoint]:
        return iter(self.points())
