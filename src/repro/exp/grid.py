"""Declarative experiment grids: (tracker × attack × config) as data.

A grid point names a tracker, an attack pattern, and the engine knobs —
all plain JSON-serialisable values, never live objects — so points can
be fingerprinted for the incremental result store, shipped to worker
processes, and re-derived bit-identically from a base seed.

Since the Scenario API landed, a grid point is just a factored
:class:`~repro.scenario.Scenario`: the specs are re-exported from
:mod:`repro.scenario`, :class:`PointConfig` is the engine-knob slice of
a scenario, and :meth:`ExperimentPoint.scenario` recombines the three
coordinates with a base seed into the canonical object the runner
executes. :meth:`Scenario.sweep <repro.scenario.Scenario.sweep>` builds
grids from a base scenario plus axes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from itertools import product
from typing import Any, Iterator, Mapping

from ..scenario import AttackSpec, Scenario, TrackerSpec
from ..sim.seeding import stable_hash

__all__ = [
    "SCHEMA_VERSION",
    "AttackSpec",
    "ExperimentGrid",
    "ExperimentPoint",
    "PointConfig",
    "TrackerSpec",
]

#: Bump when the result schema or the seeding scheme changes, so stale
#: store entries are invalidated instead of silently reused.
#: v2: rank-level points (``PointConfig.num_banks``, per-bank metrics).
#: v3: points execute through the Scenario facade (seed streams derive
#: from ``Scenario.task_seed``; ``vectorized``/``concurrent_banks``
#: knobs). v4: channel-level points (``PointConfig.num_ranks``,
#: per-rank metrics for multi-rank points). Older stores still *load*
#: — :meth:`PointConfig.from_payload` is the tolerant shim (a v3
#: payload simply has no ``num_ranks`` key and takes the default of 1,
#: and unknown keys from newer stores are ignored) — but their
#: fingerprints no longer match, so their points re-execute on the
#: next run.
SCHEMA_VERSION = 4

#: The identity classification of :class:`PointConfig`'s fields,
#: enforced statically by ``repro lint`` (rule ``identity-manifest``).
#: A point's fingerprint delegates to the scenario it denotes, so this
#: mirrors the ``Scenario`` entry in
#: :data:`repro.scenario.IDENTITY_MANIFEST` field-for-field: the
#: ``excluded`` knobs (engine-path choices the engine pins
#: bit-identical) never reach the hash, which is why ``sweep`` refuses
#: them as axes. The runtime agreement between the two manifests is
#: pinned by ``tests/lint/test_manifest.py``.
#:
#: Fingerprints are also the store and scheduler *layout* (format v2,
#: PR 10): a result lives in the shard file named by its fingerprint
#: prefix (``store.shard_key``), pending points partition into
#: content-addressed task shards sorted by fingerprint
#: (``shards.plan_shards``), the run journal records
#: planned/running/done per fingerprint, and the ``QueryAPI`` read
#: cache keys on them. Re-keying a fingerprint (any identity-field or
#: SCHEMA_VERSION change) therefore moves the point to a new shard and
#: re-executes it — the single invalidation rule covering execution,
#: storage, and the read path.
IDENTITY_MANIFEST = {
    "PointConfig": {
        "identity": [
            "trh", "intervals", "max_act", "base_row", "num_rows",
            "blast_radius", "allow_postponement", "max_postponed",
            "refi_per_refw", "scaled_timing", "num_banks", "num_ranks",
            "concurrent_banks",
        ],
        "excluded": ["vectorized", "backend"],
    },
}


@dataclass(frozen=True)
class PointConfig:
    """Engine and trace knobs for one grid point (JSON-safe).

    This is exactly the grid-able engine-knob slice of a
    :class:`~repro.scenario.Scenario` — every field mirrors the
    scenario field of the same name, and the conversions
    (:meth:`from_scenario`, :meth:`scenario` on the enclosing
    :class:`ExperimentPoint`) are lossless for any scenario without a
    full custom-timing override.

    ``scaled_timing=True`` swaps the real DDR5 timing for the scaled
    Monte-Carlo device whose window holds ``max_act`` ACTs per tREFI —
    the fast regime used by tests and the speedup benchmark.

    ``num_banks > 1`` runs the point on the rank-level engine: the
    attack resolves through the rank registry (row-only attacks are
    auto-interleaved across the banks) and each bank gets its own
    tracker instance seeded from the task seed plus the bank index.
    ``num_ranks > 1`` lifts the point onto the channel engine (one
    rank of per-bank trackers per rank, per-rank derived seeds,
    metrics with a ``per_rank`` level).
    """

    trh: float = 4800.0
    intervals: int = 2000
    max_act: int = 73
    base_row: int = 1000
    num_rows: int = 128 * 1024
    blast_radius: int = 1
    allow_postponement: bool = False
    max_postponed: int = 4
    refi_per_refw: int = 8192
    scaled_timing: bool = False
    num_banks: int = 1
    num_ranks: int = 1
    concurrent_banks: int | None = None
    vectorized: bool | None = None
    backend: str | None = None

    def to_payload(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "PointConfig":
        """Rebuild from a payload of any schema generation.

        The loader shim for pre-v3 stores: missing fields (knobs that
        did not exist yet) take their defaults, and unknown fields from
        a newer store are ignored rather than fatal.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "PointConfig":
        """The engine-knob slice of ``scenario``.

        Raises ``ValueError`` for a scenario carrying a full custom
        :class:`~repro.dram.timing.DDR5Timing` override — grid points
        hold only JSON scalars; use ``scaled_timing`` or run such a
        scenario directly through the Session facade.
        """
        if scenario.timing is not None:
            raise ValueError(
                "grid points cannot carry a custom DDR5Timing override; "
                "use scaled_timing, or run the scenario via Session"
            )
        return cls(**{
            f.name: getattr(scenario, f.name) for f in fields(cls)
        })

    def scenario(
        self, tracker: TrackerSpec, attack: AttackSpec, seed: int = 0
    ) -> Scenario:
        """Recombine this config with specs and a base seed."""
        return Scenario(
            tracker=tracker, attack=attack, seed=seed, **self.to_payload()
        )


@dataclass(frozen=True)
class ExperimentPoint:
    """One (tracker, attack, config) coordinate of a grid."""

    tracker: TrackerSpec
    attack: AttackSpec
    config: PointConfig

    def to_payload(self) -> dict:
        return {
            "tracker": self.tracker.to_payload(),
            "attack": self.attack.to_payload(),
            "config": self.config.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ExperimentPoint":
        return cls(
            TrackerSpec.from_payload(payload["tracker"]),
            AttackSpec.from_payload(payload["attack"]),
            PointConfig.from_payload(payload["config"]),
        )

    def scenario(self, base_seed: int = 0) -> Scenario:
        """The canonical :class:`~repro.scenario.Scenario` this point
        denotes under ``base_seed`` (what the runner executes)."""
        return self.config.scenario(self.tracker, self.attack, seed=base_seed)

    @classmethod
    def from_scenario(cls, scenario: Scenario) -> "ExperimentPoint":
        """Factor a scenario into grid coordinates (drops the seed —
        grids re-key every point from the run's base seed)."""
        return cls(
            scenario.tracker,
            scenario.attack,
            PointConfig.from_scenario(scenario),
        )

    def fingerprint(self, base_seed: int) -> str:
        """Stable identity of this point's *result*.

        Any change to the tracker, attack, engine knobs, base seed, or
        schema version yields a new fingerprint — which is exactly the
        cache-invalidation rule of the result store. Delegates to the
        scenario fingerprint, wrapped with the exp schema version.
        """
        return stable_hash(
            "exp-point", SCHEMA_VERSION, self.scenario(base_seed).fingerprint()
        )

    def task_seed(self, base_seed: int) -> int:
        """The 64-bit seed this point's random streams derive from."""
        return self.scenario(base_seed).task_seed()


@dataclass
class ExperimentGrid:
    """The cross product of tracker, attack, and config axes.

    ``extra_points`` holds coordinates outside the cross product, for
    sweeps that pair specific trackers with specific attacks instead of
    crossing every axis (they run first, in list order).
    """

    trackers: list[TrackerSpec] = field(default_factory=list)
    attacks: list[AttackSpec] = field(default_factory=list)
    configs: list[PointConfig] = field(default_factory=lambda: [PointConfig()])
    extra_points: list[ExperimentPoint] = field(default_factory=list)

    def __len__(self) -> int:
        return (
            len(self.extra_points)
            + len(self.trackers) * len(self.attacks) * len(self.configs)
        )

    def points(self) -> list[ExperimentPoint]:
        """Expand the grid in a deterministic (row-major) order."""
        return list(self.extra_points) + [
            ExperimentPoint(tracker, attack, config)
            for tracker, attack, config in product(
                self.trackers, self.attacks, self.configs
            )
        ]

    def scenarios(self, base_seed: int = 0) -> list[Scenario]:
        """Every point as a full scenario under ``base_seed``."""
        return [point.scenario(base_seed) for point in self.points()]

    def __iter__(self) -> Iterator[ExperimentPoint]:
        return iter(self.points())
