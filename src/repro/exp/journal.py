"""Persistent run journal: what a grid run planned, started, and did.

The scheduler appends one JSON line per event to ``<store>.journal``:

* ``begin`` — the run key (a stable hash of the planned fingerprints
  and base seed) plus every *pending* fingerprint;
* ``shard-start`` — a shard was handed to a worker (running);
* ``shard-done`` — a shard's results were committed to the store,
  with its wall/exec telemetry;
* ``finish`` — the run completed.

Appends are atomic enough for this purpose (one ``write`` of one line,
flushed); a crash mid-append leaves at most one truncated final line,
which :meth:`RunJournal.load` tolerates by ignoring it. The journal is
*advisory*: the source of truth for resuming is the store itself (a
resumed run re-executes exactly the fingerprints missing from the
store), so journal loss never loses results — it loses the record of
which run was in flight, which ``repro exp status`` reports.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

JOURNAL_FORMAT = 1


@dataclass
class JournalState:
    """The replayed view of one journal file."""

    run_key: str = ""
    planned: set[str] = field(default_factory=set)
    running: set[str] = field(default_factory=set)
    done: set[str] = field(default_factory=set)
    finished: bool = False
    shards_done: int = 0

    @property
    def remaining(self) -> set[str]:
        return self.planned - self.done

    @property
    def interrupted(self) -> bool:
        """A run began, did not finish, and left work outstanding."""
        return bool(self.run_key) and not self.finished


class RunJournal:
    """Append-only JSONL journal of one store's grid runs.

    One journal holds at most one run: ``begin`` truncates. The file
    persists after ``finish`` so ``repro exp status`` can report the
    last completed run; an unfinished journal marks an interrupted run
    whose missing points the next ``run_grid`` re-executes.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------
    def _append(self, event: dict) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as handle:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
            handle.flush()

    def begin(self, run_key: str, planned: list[str]) -> None:
        """Start a new run record (truncates any previous one)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(
                {
                    "event": "begin",
                    "format": JOURNAL_FORMAT,
                    "run": run_key,
                    "planned": sorted(planned),
                },
                sort_keys=True,
            )
            + "\n"
        )

    def shard_started(self, shard_id: str, keys: tuple[str, ...]) -> None:
        self._append(
            {"event": "shard-start", "shard": shard_id, "keys": list(keys)}
        )

    def shard_done(
        self,
        shard_id: str,
        keys: tuple[str, ...],
        wall_seconds: float,
        exec_seconds: float,
    ) -> None:
        self._append(
            {
                "event": "shard-done",
                "shard": shard_id,
                "keys": list(keys),
                "wall_seconds": round(wall_seconds, 6),
                "exec_seconds": round(exec_seconds, 6),
            }
        )

    def finish(self, run_key: str) -> None:
        self._append({"event": "finish", "run": run_key})

    # ------------------------------------------------------------------
    def load(self) -> JournalState | None:
        """Replay the journal into a :class:`JournalState`.

        Returns ``None`` when there is no journal. Unparseable lines
        (a truncated final append from a crash) are ignored.
        """
        try:
            text = self.path.read_text()
        except OSError:
            return None
        state = JournalState()
        for line in text.splitlines():
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(event, dict):
                continue
            kind = event.get("event")
            if kind == "begin":
                state = JournalState(
                    run_key=str(event.get("run", "")),
                    planned=set(event.get("planned", [])),
                )
            elif kind == "shard-start":
                state.running.update(event.get("keys", []))
            elif kind == "shard-done":
                keys = event.get("keys", [])
                state.done.update(keys)
                state.running.difference_update(keys)
                state.shards_done += 1
            elif kind == "finish" and event.get("run") == state.run_key:
                state.finished = True
        return state

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


def journal_for_store(store) -> RunJournal | None:
    """The canonical journal sitting next to a file-backed store."""
    if store is None or store.path is None:
        return None
    return RunJournal(store.path.with_name(store.path.name + ".journal"))
