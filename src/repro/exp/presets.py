"""Canonical grids for the paper's headline sweeps.

These are the declarative versions of the hand-rolled loops the
examples used to carry: the tracker-shootout matrix (Sections II-F and
V-G) and the refresh-postponement study (Section VI). Examples and the
CLI both resolve presets from here so the sweep definitions live in
exactly one place.

Every preset is one base :class:`~repro.scenario.Scenario` crossed
with its axes via :meth:`~repro.scenario.Scenario.sweep` — the same
facade the runner executes each resulting point through.
"""

from __future__ import annotations

from dataclasses import replace

from ..scenario import AttackSpec, Scenario, TrackerSpec
from .grid import ExperimentGrid, ExperimentPoint

#: The trackers of the shootout table, in presentation order.
SHOOTOUT_TRACKERS = (
    "trr", "pride", "para", "parfm", "mithril", "prct", "prac", "mint",
)

#: The attack families of the shootout table, in presentation order.
SHOOTOUT_ATTACKS = (
    ("single-sided", {}),
    ("double-sided", {}),
    ("many-sided", {"sides": 12}),
    ("blacksmith", {"count": 16, "seed": 7}),
    ("half-double", {}),
)

#: The single decoy-attack target row of the postponement study.
POSTPONEMENT_TARGET = 60_000

#: Trackers of the rank-level shootout (a representative slice of the
#: zoo: deployed TRR, the sampling families, a counter design, MINT).
RANK_TRACKERS = ("trr", "para", "mithril", "mint")

#: The cross-bank attack families of the rank shootout.
RANK_ATTACKS = (
    ("bank-interleaved", {"base": "double-sided"}),
    ("bank-interleaved", {"base": "many-sided", "sides": 12, "scheme": "act"}),
    ("cross-bank-decoy", {"target": POSTPONEMENT_TARGET}),
    ("rank-stripe", {"sides": 12}),
)

#: The channel-level attack families of the channel shootout.
CHANNEL_ATTACKS = (
    ("rank-rotation", {"base": "double-sided"}),
    ("rank-synchronized", {"sides": 12}),
    ("channel-stripe-decoy", {"target": POSTPONEMENT_TARGET}),
)


def shootout_grid(
    trh: float = 1500.0,
    intervals: int = 1500,
    max_act: int = 73,
) -> ExperimentGrid:
    """Every shootout tracker × every classic attack family."""
    base = Scenario(
        tracker="mint",
        attack="single-sided",
        trh=trh,
        intervals=intervals,
        max_act=max_act,
    )
    return base.sweep(
        tracker=list(SHOOTOUT_TRACKERS),
        attack=[
            AttackSpec.of(name, **params) for name, params in SHOOTOUT_ATTACKS
        ],
    )


def rank_shootout_grid(
    banks: tuple[int, ...] = (2, 4),
    trh: float = 1500.0,
    intervals: int = 1000,
    max_act: int = 73,
) -> ExperimentGrid:
    """Rank-level study: trackers × cross-bank attacks × bank counts.

    Every point runs on the rank engine (one tracker instance per
    bank, shared refresh schedule). Postponement is allowed so the
    cross-bank decoy can play its REF-debt game; the non-postponing
    attacks simply never request it.
    """
    base = Scenario(
        tracker="mint",
        attack="rank-stripe",
        trh=trh,
        intervals=intervals,
        max_act=max_act,
        allow_postponement=True,
    )
    return base.sweep(
        tracker=list(RANK_TRACKERS),
        attack=[
            AttackSpec.of(name, **params) for name, params in RANK_ATTACKS
        ],
        num_banks=list(banks),
    )


def channel_shootout_grid(
    ranks: tuple[int, ...] = (2,),
    banks: tuple[int, ...] = (2,),
    trh: float = 1500.0,
    intervals: int = 1000,
    max_act: int = 73,
) -> ExperimentGrid:
    """Channel-level study: trackers × channel attacks × rank counts.

    The channel-scoped variant of :func:`rank_shootout_grid`: every
    point runs on the :class:`~repro.sim.engine.ChannelSimulator` (one
    full rank of per-bank trackers per rank, independent refresh
    schedules, per-rank derived seeds) against the channel attack
    families — rotation hammering, rank-synchronized many-sided, and
    the channel stripe decoy.
    """
    base = Scenario(
        tracker="mint",
        attack=AttackSpec.of("rank-synchronized", sides=12),
        trh=trh,
        intervals=intervals,
        max_act=max_act,
        allow_postponement=True,
    )
    return base.sweep(
        tracker=list(RANK_TRACKERS),
        attack=[
            AttackSpec.of(name, **params) for name, params in CHANNEL_ATTACKS
        ],
        num_ranks=list(ranks),
        num_banks=list(banks),
    )


def postponement_grid(
    intervals: int = 2000,
    max_act: int = 73,
    depths: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
) -> ExperimentGrid:
    """MINT with and without the DMQ against the decoy attacks.

    Exposure is measured rather than stopped at a flip (``trh=1e9``),
    matching the paper's unmitigated-ACT accounting for Table IV. The
    grid is *not* a full cross product: the headline pair (MINT ± DMQ)
    faces the single-target decoy, while only the depth sweep faces the
    multi-target variant — the exact point set the study consumes.
    """
    targets = [POSTPONEMENT_TARGET + 10 * i for i in range(4)]
    base = Scenario(
        tracker="mint",
        attack=AttackSpec.of("decoy", target=POSTPONEMENT_TARGET),
        trh=1e9,
        intervals=intervals,
        max_act=max_act,
        allow_postponement=True,
    )
    grid = base.sweep(
        tracker=[
            TrackerSpec.of("mint", dmq=True, dmq_depth=depth,
                           transitive=False)
            for depth in depths
        ],
        attack=[AttackSpec.of("decoy-multi", targets=targets)],
    )
    grid.extra_points = [
        ExperimentPoint.from_scenario(base),
        ExperimentPoint.from_scenario(
            replace(base, tracker=TrackerSpec.of("mint", dmq=True,
                                                 dmq_depth=4))
        ),
    ]
    return grid


def scaled_benchmark_grid(
    points: int = 4,
    windows: int = 3,
    max_act: int = 73,
    intervals_per_window: int = 8192,
) -> ExperimentGrid:
    """A synthetic ``points``-point grid sized for wall-clock benchmarks.

    ``points`` must be even and at most 8 (2 trackers × up to 4 attack
    families). Uses the scaled Monte-Carlo timing so each point is
    CPU-heavy but device-small; ``windows`` scales per-point cost
    linearly.
    """
    if points < 2 or points > 8 or points % 2:
        raise ValueError("points must be an even number in [2, 8]")
    attack_pool = [
        AttackSpec.of("pattern2"),
        AttackSpec.of("many-sided", sides=12),
        AttackSpec.of("one-location"),
        AttackSpec.of("double-sided"),
    ]
    base = Scenario(
        tracker="mint",
        attack="pattern2",
        trh=1e9,
        intervals=windows * intervals_per_window,
        max_act=max_act,
        num_rows=4096,
        refi_per_refw=intervals_per_window,
        scaled_timing=True,
    )
    return base.sweep(
        tracker=["mint", "para"],
        attack=attack_pool[: points // 2],
    )


PRESETS = {
    "shootout": shootout_grid,
    "postponement": postponement_grid,
    "rank-shootout": rank_shootout_grid,
    "channel-shootout": channel_shootout_grid,
}


def preset_grid(name: str, **kwargs) -> ExperimentGrid:
    """Resolve a named preset to a grid (raises ``KeyError`` if unknown).

    ``kwargs`` forward to the preset builder (e.g. ``banks=(4,)`` for
    ``rank-shootout``); passing a knob the preset does not take raises
    ``TypeError`` with the preset name in the message.
    """
    try:
        builder = PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; known: {sorted(PRESETS)}"
        ) from None
    try:
        return builder(**kwargs)
    except TypeError as error:
        raise TypeError(f"preset {name!r}: {error}") from None
