"""The read path of the experiment service: cached sweep/point queries.

:class:`QueryAPI` answers questions about a :class:`ResultStore`
without recomputation — the "millions of users" story is cheap reads
over an ever-growing store. Every answer is memoized in a
:class:`~repro.cache.BoundedCache` keyed by the query plus the store's
``generation`` counter, so repeated queries are dict lookups and any
store mutation (a new result, a reload picked up from disk) invalidates
exactly by re-keying. The CLI (``repro exp run --format csv``), the
HTTP front end (``repro serve``), and the tests all share this one
implementation.

CSV output reuses :func:`repro.sim.results.result_csv_rows` — the same
serializer every other result surface renders through — with the
experiment coordinates (key, tracker, attack, seed) prepended.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from ..cache import BoundedCache
from ..sim.results import RESULT_CSV_COLUMNS, result_csv_rows
from .result import ExperimentResult
from .store import ResultStore

#: Columns of a sweep CSV: the experiment coordinates, then the shared
#: result columns (``tracker`` is already among them — the row carries
#: the experiment's tracker label there).
SWEEP_CSV_COLUMNS = ("key", "attack", "seed", *RESULT_CSV_COLUMNS)


def sweep_csv_rows(results: Iterable[ExperimentResult]) -> list[dict]:
    """Flatten experiment results into CSV rows (one per scope level).

    Channel/rank results expand the same way ``repro run --format csv``
    renders them — channel, per-rank, and per-bank rows — via the
    shared :func:`result_csv_rows` serializer.
    """
    rows = []
    for result in results:
        for row in result_csv_rows(result.metrics):
            row["tracker"] = result.tracker
            rows.append({
                "key": result.key[:12],
                "attack": result.attack,
                "seed": result.seed,
                **row,
            })
    return rows


class QueryAPI:
    """Fingerprint-keyed cached reads over one result store.

    Thread-compatible for the threaded HTTP server's usage pattern
    (the GIL serialises the dict operations underneath); not designed
    for concurrent writers.
    """

    def __init__(
        self, store: ResultStore, cache_size: int = 4096
    ) -> None:
        self.store = store
        self._cache = BoundedCache(cache_size)
        self.hits = 0
        self.misses = 0

    @classmethod
    def open(cls, path: str | os.PathLike, **kwargs: Any) -> "QueryAPI":
        return cls(ResultStore(path), **kwargs)

    # ------------------------------------------------------------------
    def _cached(self, key: tuple, compute):
        self.store.reload_if_changed()
        full_key = (*key, self.store.generation)
        sentinel = _MISS
        value = self._cache.get(full_key, sentinel)
        if value is not sentinel:
            self.hits += 1
            return value
        self.misses += 1
        value = compute()
        self._cache.put(full_key, value)
        return value

    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Every stored fingerprint, sorted."""
        return self._cached(("keys",), self.store.keys)

    def point(self, fingerprint: str) -> ExperimentResult | None:
        """One result by full fingerprint (or unambiguous prefix)."""
        return self._cached(
            ("point", fingerprint), lambda: self._lookup(fingerprint)
        )

    def _lookup(self, fingerprint: str) -> ExperimentResult | None:
        exact = self.store.get(fingerprint)
        if exact is not None or not fingerprint:
            return exact
        matches = [
            key for key in self.store.keys()
            if key.startswith(fingerprint)
        ]
        if len(matches) == 1:
            return self.store.get(matches[0])
        return None

    def sweep(
        self,
        tracker: str | None = None,
        attack: str | None = None,
        failed: bool | None = None,
    ) -> list[ExperimentResult]:
        """Results filtered by coordinates, in fingerprint order."""
        return self._cached(
            ("sweep", tracker, attack, failed),
            lambda: [
                result
                for result in self.store.results()
                if (tracker is None or result.tracker == tracker)
                and (attack is None or result.attack == attack)
                and (failed is None or result.failed == failed)
            ],
        )

    def sweep_payloads(
        self,
        tracker: str | None = None,
        attack: str | None = None,
        failed: bool | None = None,
    ) -> list[dict]:
        """Like :meth:`sweep`, as JSON-safe payloads."""
        return [
            result.to_payload()
            for result in self.sweep(tracker, attack, failed)
        ]

    def sweep_csv(
        self,
        tracker: str | None = None,
        attack: str | None = None,
        failed: bool | None = None,
    ) -> list[dict]:
        """Like :meth:`sweep`, as CSV rows (see :data:`SWEEP_CSV_COLUMNS`)."""
        return self._cached(
            ("sweep-csv", tracker, attack, failed),
            lambda: sweep_csv_rows(self.sweep(tracker, attack, failed)),
        )

    def status(self) -> dict:
        """Store and cache statistics (the service health view)."""
        return {
            "results": len(self.store),
            "store_path": str(self.store.path) if self.store.path else None,
            "store_generation": self.store.generation,
            "store_disk_bytes": self.store.disk_bytes(),
            "cache_entries": len(self._cache),
            "cache_hits": self.hits,
            "cache_misses": self.misses,
            "trackers": sorted(
                {result.tracker for result in self.store.results()}
            ),
            "attacks": sorted(
                {result.attack for result in self.store.results()}
            ),
        }


class _Miss:
    __slots__ = ()


_MISS = _Miss()
