"""JSON-serialisable records produced by the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..sim.results import SimResult


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one grid point, flattened for storage and transport.

    Everything is a plain JSON value: the record crosses process
    boundaries (worker → pool parent) and lands verbatim in the result
    store, and the determinism guarantee is stated over its canonical
    JSON form. ``metrics`` carries the engine's :class:`SimResult`
    summary; ``tracker_stats`` captures tracker-side counters (storage
    bits, DMQ overflow drops) that the engine result does not expose.
    """

    key: str
    tracker: str
    attack: str
    trace: str
    seed: int
    point: dict
    metrics: dict
    tracker_stats: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.metrics.get("failed"))

    def max_unmitigated(self, row: int) -> float:
        """Peak unmitigated-run length observed on ``row`` (0 if unseen)."""
        return self.metrics.get("max_unmitigated", {}).get(str(row), 0)

    def to_payload(self) -> dict:
        return {
            "key": self.key,
            "tracker": self.tracker,
            "attack": self.attack,
            "trace": self.trace,
            "seed": self.seed,
            "point": self.point,
            "metrics": self.metrics,
            "tracker_stats": self.tracker_stats,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            key=payload["key"],
            tracker=payload["tracker"],
            attack=payload["attack"],
            trace=payload["trace"],
            seed=payload["seed"],
            point=dict(payload["point"]),
            metrics=dict(payload["metrics"]),
            tracker_stats=dict(payload.get("tracker_stats", {})),
        )


def summarise_sim_result(result: SimResult) -> dict:
    """Flatten a :class:`SimResult` into JSON-safe metrics."""
    return {
        "trace": result.trace,
        "intervals": result.intervals,
        "demand_acts": result.demand_acts,
        "refreshes": result.refreshes,
        "mitigations": result.mitigations,
        "transitive_mitigations": result.transitive_mitigations,
        "pseudo_mitigations": result.pseudo_mitigations,
        "failed": result.failed,
        "flips": [
            {"row": flip.row, "disturbance": flip.disturbance,
             "time_ns": flip.time_ns}
            for flip in result.flips
        ],
        "max_disturbance": result.max_disturbance,
        "most_disturbed_row": result.most_disturbed_row,
        "max_unmitigated": {
            str(row): value
            for row, value in sorted(result.max_unmitigated.items())
        },
    }
