"""JSON-serialisable records produced by the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..sim.results import RankSimResult, SimResult


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one grid point, flattened for storage and transport.

    Everything is a plain JSON value: the record crosses process
    boundaries (worker → pool parent) and lands verbatim in the result
    store, and the determinism guarantee is stated over its canonical
    JSON form. ``metrics`` carries the engine's :class:`SimResult`
    summary; ``tracker_stats`` captures tracker-side counters (storage
    bits, DMQ overflow drops) that the engine result does not expose.
    """

    key: str
    tracker: str
    attack: str
    trace: str
    seed: int
    point: dict
    metrics: dict
    tracker_stats: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.metrics.get("failed"))

    @property
    def num_banks(self) -> int:
        """Banks the point simulated (1 for classic single-bank points)."""
        return int(self.metrics.get("num_banks", 1))

    @property
    def per_bank_metrics(self) -> list[dict]:
        """Per-bank metric dicts for rank points ([] for single-bank)."""
        return list(self.metrics.get("per_bank", []))

    def max_unmitigated(self, row: int) -> float:
        """Peak unmitigated-run length observed on ``row`` (0 if unseen)."""
        return self.metrics.get("max_unmitigated", {}).get(str(row), 0)

    def to_payload(self) -> dict:
        return {
            "key": self.key,
            "tracker": self.tracker,
            "attack": self.attack,
            "trace": self.trace,
            "seed": self.seed,
            "point": self.point,
            "metrics": self.metrics,
            "tracker_stats": self.tracker_stats,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            key=payload["key"],
            tracker=payload["tracker"],
            attack=payload["attack"],
            trace=payload["trace"],
            seed=payload["seed"],
            point=dict(payload["point"]),
            metrics=dict(payload["metrics"]),
            tracker_stats=dict(payload.get("tracker_stats", {})),
        )


def summarise_sim_result(result: SimResult) -> dict:
    """Flatten a :class:`SimResult` into JSON-safe metrics."""
    return {
        "trace": result.trace,
        "intervals": result.intervals,
        "demand_acts": result.demand_acts,
        "refreshes": result.refreshes,
        "mitigations": result.mitigations,
        "transitive_mitigations": result.transitive_mitigations,
        "pseudo_mitigations": result.pseudo_mitigations,
        "failed": result.failed,
        "flips": [
            {"row": flip.row, "disturbance": flip.disturbance,
             "time_ns": flip.time_ns}
            for flip in result.flips
        ],
        "max_disturbance": result.max_disturbance,
        "most_disturbed_row": result.most_disturbed_row,
        "max_unmitigated": {
            str(row): value
            for row, value in sorted(result.max_unmitigated.items())
        },
    }


def summarise_rank_result(result: RankSimResult) -> dict:
    """Flatten a :class:`RankSimResult` into JSON-safe metrics.

    Rank-level aggregates at the top level (so single-bank consumers of
    ``demand_acts``/``mitigations``/``failed`` keep working), per-bank
    :func:`summarise_sim_result` dicts under ``per_bank``.
    """
    return {
        "trace": result.trace,
        "intervals": result.intervals,
        "num_banks": result.num_banks,
        "demand_acts": result.demand_acts,
        "refreshes": result.refreshes,
        "mitigations": result.mitigations,
        "transitive_mitigations": result.transitive_mitigations,
        "pseudo_mitigations": result.pseudo_mitigations,
        "failed": result.failed,
        "failed_banks": result.failed_banks,
        "max_disturbance": result.max_disturbance,
        # Row-wise maximum across banks, so the Table-IV accessor
        # (ExperimentResult.max_unmitigated) works on rank points too.
        "max_unmitigated": _merged_max_unmitigated(result),
        "per_bank": [summarise_sim_result(r) for r in result.per_bank],
    }


def _merged_max_unmitigated(result: RankSimResult) -> dict:
    merged: dict[int, float] = {}
    for bank_result in result.per_bank:
        for row, value in bank_result.max_unmitigated.items():
            if value > merged.get(row, 0):
                merged[row] = value
    return {str(row): value for row, value in sorted(merged.items())}
