"""JSON-serialisable records produced by the experiment runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..sim.results import ChannelSimResult, RankSimResult, SimResult


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one grid point, flattened for storage and transport.

    Everything is a plain JSON value: the record crosses process
    boundaries (worker → pool parent) and lands verbatim in the result
    store, and the determinism guarantee is stated over its canonical
    JSON form. ``metrics`` carries the engine's :class:`SimResult`
    summary; ``tracker_stats`` captures tracker-side counters (storage
    bits, DMQ overflow drops) that the engine result does not expose.
    """

    key: str
    tracker: str
    attack: str
    trace: str
    seed: int
    point: dict
    metrics: dict
    tracker_stats: dict = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return bool(self.metrics.get("failed"))

    @property
    def num_banks(self) -> int:
        """Banks the point simulated (1 for classic single-bank points)."""
        return int(self.metrics.get("num_banks", 1))

    @property
    def num_ranks(self) -> int:
        """Ranks the point simulated (1 for rank/bank-scoped points)."""
        return int(self.metrics.get("num_ranks", 1))

    @property
    def per_bank_metrics(self) -> list[dict]:
        """Per-bank metric dicts for rank points ([] for single-bank)."""
        return list(self.metrics.get("per_bank", []))

    @property
    def per_rank_metrics(self) -> list[dict]:
        """Per-rank metric dicts for channel points ([] otherwise)."""
        return list(self.metrics.get("per_rank", []))

    def max_unmitigated(self, row: int) -> float:
        """Peak unmitigated-run length observed on ``row`` (0 if unseen)."""
        return self.metrics.get("max_unmitigated", {}).get(str(row), 0)

    def to_payload(self) -> dict:
        return {
            "key": self.key,
            "tracker": self.tracker,
            "attack": self.attack,
            "trace": self.trace,
            "seed": self.seed,
            "point": self.point,
            "metrics": self.metrics,
            "tracker_stats": self.tracker_stats,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            key=payload["key"],
            tracker=payload["tracker"],
            attack=payload["attack"],
            trace=payload["trace"],
            seed=payload["seed"],
            point=dict(payload["point"]),
            metrics=dict(payload["metrics"]),
            tracker_stats=dict(payload.get("tracker_stats", {})),
        )


def summarise_sim_result(result: SimResult) -> dict:
    """Flatten a :class:`SimResult` into JSON-safe metrics.

    The canonical flattening now lives on the result class itself
    (:meth:`~repro.sim.results.SimResult.to_payload`); this name stays
    as the exp-layer alias every store record was written through.
    """
    return result.to_payload()


def summarise_rank_result(result: RankSimResult) -> dict:
    """Flatten a :class:`RankSimResult` into JSON-safe metrics.

    Rank-level aggregates at the top level (so single-bank consumers of
    ``demand_acts``/``mitigations``/``failed`` keep working), per-bank
    dicts under ``per_bank`` — see
    :meth:`~repro.sim.results.RankSimResult.to_payload`.
    """
    return result.to_payload()


def summarise_channel_result(result: ChannelSimResult) -> dict:
    """Flatten a :class:`ChannelSimResult` into JSON-safe metrics.

    Channel aggregates at the top level, per-rank dicts (each with its
    own ``per_bank`` level) under ``per_rank`` — see
    :meth:`~repro.sim.results.ChannelSimResult.to_payload`.
    """
    return result.to_payload()
