"""Sharded experiment scheduler: fan a grid out over a process pool.

Every (tracker × attack × config) point is a pure function of its
payload: the point recombines with the base seed into a
:class:`~repro.scenario.Scenario`, the worker executes it through the
:class:`~repro.scenario.Session` facade, and every random stream
derives from the scenario's stable task seed — so results are
bit-identical whether the grid runs on one worker or many, and a
point's fingerprint fully identifies its result.

The scheduler is a small job-queue service around that purity:

* **Plan** — diff the grid's fingerprints against the
  :class:`~repro.exp.store.ResultStore`; only missing points execute
  (re-runs are incremental, resumes are the same diff).
* **Shard** — partition the pending points into content-addressed
  :class:`~repro.exp.shards.TaskShard`\\ s and dispatch whole shards,
  amortizing per-task IPC/pickle (see :mod:`repro.exp.shards`).
* **Commit** — as each shard completes, its results land in the store,
  the dirty shards flush to disk, and the
  :class:`~repro.exp.journal.RunJournal` records it — so a killed run
  loses at most its in-flight shards and a resume is bit-identical to
  an uninterrupted run (store files included: shard-file content is
  sorted, independent of write order).

A pool is only built when it can win: one usable CPU, or a pending set
smaller than :data:`POOL_MIN_PENDING`, takes the inline fast path
(identical results, none of the fork/pickle overhead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..parallel import default_workers, effective_workers, fork_imap_unordered
from ..scenario import Session
from ..sim.seeding import stable_hash
from .grid import SCHEMA_VERSION, ExperimentGrid, ExperimentPoint
from .journal import RunJournal, journal_for_store
from .result import (
    ExperimentResult,
    summarise_channel_result,
    summarise_rank_result,
    summarise_sim_result,
)
from .shards import TaskShard, plan_shards
from .store import ResultStore

#: Pending grids smaller than this run inline even when workers were
#: requested: a pool cannot amortize its startup over a handful of
#: points (the ``exp_runner`` bench measured 0.68x for exactly that).
POOL_MIN_PENDING = 4


class _InjectedCrash(RuntimeError):
    """Raised by the fault-injection hook (crash/resume tests)."""


@dataclass
class ShardReport:
    """Telemetry for one committed shard."""

    shard_id: str
    tasks: int
    #: Parent-observed seconds from dispatch start to commit.
    wall_seconds: float
    #: Worker-measured seconds actually executing the shard's points.
    exec_seconds: float


@dataclass
class RunReport:
    """What one :func:`run_grid` invocation did."""

    results: list[ExperimentResult] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    n_workers: int = 1
    wall_seconds: float = 0.0
    #: Points recovered from a previous interrupted run of this store
    #: (they count toward ``cached`` as well — the store had them).
    resumed: int = 0
    #: ``"inline"`` (no-pool fast path) or ``"pool"``.
    dispatch: str = "inline"
    shards: list[ShardReport] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def exec_seconds(self) -> float:
        """Worker-side execution time summed over the run's shards."""
        return sum(shard.exec_seconds for shard in self.shards)

    def summary(self) -> str:
        text = (
            f"{self.total} points ({self.executed} executed, "
            f"{self.cached} cached) on {self.n_workers} worker(s) "
            f"in {self.wall_seconds:.2f}s"
        )
        if self.shards:
            text += f" [{len(self.shards)} shard(s), {self.dispatch}]"
        if self.resumed:
            text += f" (resumed {self.resumed} from interrupted run)"
        return text


def run_point(point: ExperimentPoint, base_seed: int = 0) -> ExperimentResult:
    """Execute one grid point (the worker body; also usable inline)."""
    return _execute_task(
        {
            "key": point.fingerprint(base_seed),
            "base_seed": base_seed,
            "point": point.to_payload(),
        }
    )


def _execute_task(task: dict) -> ExperimentResult:
    """Worker body: one point, executed through the Scenario facade.

    Single-bank points keep the classic flat :class:`SimResult` metric
    shape; rank points (``num_banks > 1`` or a dedicated rank attack)
    report rank aggregates plus ``per_bank`` metrics; channel points
    (``num_ranks > 1`` or a dedicated channel attack) add the
    ``per_rank`` level on top. Tracker-side counters always sum across
    every tracker instance of the scenario.
    """
    point = ExperimentPoint.from_payload(task["point"])
    scenario = point.scenario(task["base_seed"])
    session = Session(scenario)
    rank_result = session.run()
    if scenario.is_channel:
        metrics = summarise_channel_result(rank_result)
    elif scenario.is_rank:
        metrics = summarise_rank_result(rank_result)
    else:
        metrics = summarise_sim_result(rank_result.per_bank[0])
    return ExperimentResult(
        key=task["key"],
        tracker=point.tracker.label,
        attack=point.attack.name,
        trace=rank_result.trace,
        seed=scenario.task_seed(),
        point=task["point"],
        metrics=metrics,
        tracker_stats=_tracker_stats(session.trackers),
    )


def _execute_shard(shard: TaskShard) -> tuple[list[ExperimentResult], float]:
    """Worker body for one shard: every task, plus exec telemetry."""
    started = time.perf_counter()
    results = [_execute_task(task) for task in shard.tasks]
    return results, time.perf_counter() - started


def _tracker_stats(trackers) -> dict:
    """Tracker-side counters, summed across the rank's bank instances."""
    return {
        "entries": sum(t.entries for t in trackers),
        "storage_bits": sum(t.storage_bits for t in trackers),
        "overflow_drops": sum(
            getattr(t, "overflow_drops", 0) for t in trackers
        ),
        "pseudo_mitigations": sum(t.pseudo_mitigations for t in trackers),
    }


def run_key_for(keys: list[str], base_seed: int) -> str:
    """Stable identity of one planned run (grid contents + seed)."""
    return stable_hash("exp-run", SCHEMA_VERSION, base_seed, sorted(keys))[:16]


def run_grid(
    grid: ExperimentGrid,
    base_seed: int = 0,
    n_workers: int | None = None,
    store: ResultStore | None = None,
    journal: RunJournal | bool | None = None,
    fail_after_shards: int | None = None,
) -> RunReport:
    """Run every point of ``grid``, reusing cached results.

    Results come back in grid (row-major) order regardless of worker
    scheduling. With a file-backed store, results are flushed shard by
    shard as they complete (dirty-shard-only writes) and a run journal
    next to the store records planned/running/done fingerprints — kill
    the process at any moment and the next identical ``run_grid`` call
    resumes, executing only the missing points and producing
    bit-identical store files.

    ``journal=None`` journals automatically for file-backed stores;
    ``False`` disables; a :class:`RunJournal` overrides the location.
    ``fail_after_shards`` is the crash-injection hook the resume tests
    and the CI smoke use: the scheduler raises after committing that
    many shards, exactly as if the process had died there.
    """
    if n_workers is None:
        n_workers = default_workers()
    store = store if store is not None else ResultStore()
    if journal is None:
        journal = journal_for_store(store)
    elif journal is False:
        journal = None
    points = grid.points()
    keys = [point.fingerprint(base_seed) for point in points]

    pending: dict[str, dict] = {}
    for point, key in zip(points, keys):
        if key not in store and key not in pending:
            pending[key] = {
                "key": key,
                "base_seed": base_seed,
                "point": point.to_payload(),
            }

    resumed = 0
    if journal is not None:
        prior = journal.load()
        if prior is not None and prior.interrupted:
            recovered = prior.done & set(keys)
            resumed = sum(1 for key in recovered if key in store)

    run_key = run_key_for(keys, base_seed)
    tasks = list(pending.values())
    pool_workers = effective_workers(n_workers, len(tasks))
    use_pool = pool_workers > 1 and len(tasks) >= POOL_MIN_PENDING
    # Shards are planned for the worker count actually used: when the
    # pool guard collapses to inline, fewer shards means fewer commit
    # flushes, not just no pool (a 4-worker plan run inline would pay
    # 16 shard commits for nothing).
    shards = plan_shards(tasks, pool_workers if use_pool else 1)
    if journal is not None:
        journal.begin(run_key, list(pending))
    started = time.perf_counter()
    shard_reports: list[ShardReport] = []

    def commit(shard: TaskShard, results, exec_seconds, shard_started):
        for result in results:
            store.put(result)
        store.flush()
        wall = time.perf_counter() - shard_started
        if journal is not None:
            journal.shard_done(
                shard.shard_id, shard.keys, wall, exec_seconds
            )
        shard_reports.append(
            ShardReport(
                shard_id=shard.shard_id,
                tasks=len(shard),
                wall_seconds=wall,
                exec_seconds=exec_seconds,
            )
        )
        if (
            fail_after_shards is not None
            and len(shard_reports) >= fail_after_shards
            and len(shard_reports) < len(shards)
        ):
            raise _InjectedCrash(
                f"injected crash after {len(shard_reports)} shard(s)"
            )

    if use_pool:
        dispatch = "pool"
        if journal is not None:
            for shard in shards:
                journal.shard_started(shard.shard_id, shard.keys)
        dispatch_started = time.perf_counter()
        for index, (results, exec_seconds) in fork_imap_unordered(
            _execute_shard, shards, n_workers=pool_workers
        ):
            commit(shards[index], results, exec_seconds, dispatch_started)
    else:
        dispatch = "inline"
        for shard in shards:
            shard_started = time.perf_counter()
            if journal is not None:
                journal.shard_started(shard.shard_id, shard.keys)
            results, exec_seconds = _execute_shard(shard)
            commit(shard, results, exec_seconds, shard_started)

    store.flush()
    if journal is not None:
        journal.finish(run_key)

    return RunReport(
        results=[store.get(key) for key in keys],
        executed=len(pending),
        cached=len(points) - len(pending),
        n_workers=pool_workers if use_pool else 1,
        wall_seconds=time.perf_counter() - started,
        resumed=resumed,
        dispatch=dispatch,
        shards=shard_reports,
    )
