"""Batched experiment runner: fan a grid out over a process pool.

Every (tracker × attack × config) point becomes one task. A task is a
pure function of its payload — tracker/trace randomness derives from a
stable hash of the point's coordinates plus the base seed — so results
are bit-identical whether the grid runs on one worker or many, and a
point's fingerprint fully identifies its result. Fingerprints already
present in the :class:`~repro.exp.store.ResultStore` are served from
cache, making re-runs incremental: only new or edited coordinates
execute.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..attacks.base import AttackParams
from ..attacks.registry import is_rank_attack, make_attack, make_rank_attack
from ..dram.timing import DEFAULT_TIMING
from ..parallel import default_workers, fork_map
from ..sim.engine import BankSimulator, EngineConfig, RankSimulator
from ..sim.montecarlo import scaled_timing
from ..sim.seeding import stable_seed
from ..trackers.registry import make_tracker
from .grid import ExperimentGrid, ExperimentPoint
from .result import (
    ExperimentResult,
    summarise_rank_result,
    summarise_sim_result,
)
from .store import ResultStore


@dataclass
class RunReport:
    """What one :func:`run_grid` invocation did."""

    results: list[ExperimentResult] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    n_workers: int = 1
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        return (
            f"{self.total} points ({self.executed} executed, "
            f"{self.cached} cached) on {self.n_workers} worker(s) "
            f"in {self.wall_seconds:.2f}s"
        )


def run_point(point: ExperimentPoint, base_seed: int = 0) -> ExperimentResult:
    """Execute one grid point (the worker body; also usable inline)."""
    return _execute_task(
        {
            "key": point.fingerprint(base_seed),
            "seed": point.task_seed(base_seed),
            "point": point.to_payload(),
        }
    )


def _execute_task(task: dict) -> ExperimentResult:
    point = ExperimentPoint.from_payload(task["point"])
    seed = task["seed"]
    cfg = point.config
    if cfg.num_banks > 1 or is_rank_attack(point.attack.name):
        return _execute_rank_task(task, point)
    tracker = make_tracker(
        point.tracker.name,
        rng=random.Random(stable_seed(seed, "tracker")),
        dmq=point.tracker.dmq,
        dmq_depth=point.tracker.dmq_depth,
        max_act=cfg.max_act,
        **dict(point.tracker.params),
    )
    trace = make_attack(
        point.attack.name,
        AttackParams(
            max_act=cfg.max_act,
            intervals=cfg.intervals,
            base_row=cfg.base_row,
        ),
        rng=random.Random(stable_seed(seed, "trace")),
        **dict(point.attack.params),
    )
    sim_result = BankSimulator(tracker, _engine_config(cfg)).run(trace)
    return ExperimentResult(
        key=task["key"],
        tracker=point.tracker.label,
        attack=point.attack.name,
        trace=sim_result.trace,
        seed=seed,
        point=task["point"],
        metrics=summarise_sim_result(sim_result),
        tracker_stats=_tracker_stats([tracker]),
    )


def _execute_rank_task(task: dict, point: ExperimentPoint) -> ExperimentResult:
    """Worker body of a rank-level grid point.

    Each bank's tracker derives its randomness from the task seed plus
    the bank index, so rank points keep the runner's determinism
    guarantee: bit-identical results for any worker count.
    """
    seed = task["seed"]
    cfg = point.config
    num_banks = max(1, cfg.num_banks)

    def tracker_factory(bank: int):
        return make_tracker(
            point.tracker.name,
            rng=random.Random(stable_seed(seed, "tracker", bank)),
            dmq=point.tracker.dmq,
            dmq_depth=point.tracker.dmq_depth,
            max_act=cfg.max_act,
            **dict(point.tracker.params),
        )

    trace = make_rank_attack(
        point.attack.name,
        AttackParams(
            max_act=cfg.max_act,
            intervals=cfg.intervals,
            base_row=cfg.base_row,
        ),
        rng=random.Random(stable_seed(seed, "trace")),
        num_banks=num_banks,
        **dict(point.attack.params),
    )
    simulator = RankSimulator(tracker_factory, _engine_config(cfg))
    rank_result = simulator.run(trace)
    return ExperimentResult(
        key=task["key"],
        tracker=point.tracker.label,
        attack=point.attack.name,
        trace=rank_result.trace,
        seed=seed,
        point=task["point"],
        metrics=summarise_rank_result(rank_result),
        tracker_stats=_tracker_stats(simulator.trackers),
    )


def _engine_config(cfg) -> EngineConfig:
    timing = (
        scaled_timing(cfg.max_act, cfg.refi_per_refw)
        if cfg.scaled_timing
        else DEFAULT_TIMING
    )
    return EngineConfig(
        timing=timing,
        trh=cfg.trh,
        num_rows=cfg.num_rows,
        blast_radius=cfg.blast_radius,
        allow_postponement=cfg.allow_postponement,
        max_postponed=cfg.max_postponed,
        refi_per_refw=cfg.refi_per_refw,
        num_banks=max(1, cfg.num_banks),
    )


def _tracker_stats(trackers) -> dict:
    """Tracker-side counters, summed across the rank's bank instances."""
    return {
        "entries": sum(t.entries for t in trackers),
        "storage_bits": sum(t.storage_bits for t in trackers),
        "overflow_drops": sum(
            getattr(t, "overflow_drops", 0) for t in trackers
        ),
        "pseudo_mitigations": sum(t.pseudo_mitigations for t in trackers),
    }


def run_grid(
    grid: ExperimentGrid,
    base_seed: int = 0,
    n_workers: int | None = None,
    store: ResultStore | None = None,
) -> RunReport:
    """Run every point of ``grid``, reusing cached results.

    Results come back in grid (row-major) order regardless of worker
    scheduling. With a file-backed store the new results are flushed
    before returning.
    """
    if n_workers is None:
        n_workers = default_workers()
    store = store if store is not None else ResultStore()
    points = grid.points()
    keys = [point.fingerprint(base_seed) for point in points]

    pending: list[dict] = []
    for point, key in zip(points, keys):
        if key not in store:
            pending.append(
                {
                    "key": key,
                    "seed": point.task_seed(base_seed),
                    "point": point.to_payload(),
                }
            )

    started = time.perf_counter()
    # Each task is heavyweight (a full trace simulation), so hand them
    # out one at a time rather than in chunks.
    for result in fork_map(
        _execute_task, pending, n_workers=n_workers, chunksize=1
    ):
        store.put(result)
    store.flush()

    return RunReport(
        results=[store.get(key) for key in keys],
        executed=len(pending),
        cached=len(points) - len(pending),
        n_workers=n_workers,
        wall_seconds=time.perf_counter() - started,
    )
