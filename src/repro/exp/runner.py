"""Batched experiment runner: fan a grid out over a process pool.

Every (tracker × attack × config) point becomes one task. A task is a
pure function of its payload: the point recombines with the base seed
into a :class:`~repro.scenario.Scenario`, the worker executes it
through the :class:`~repro.scenario.Session` facade, and every random
stream derives from the scenario's stable task seed — so results are
bit-identical whether the grid runs on one worker or many, and a
point's fingerprint fully identifies its result. Fingerprints already
present in the :class:`~repro.exp.store.ResultStore` are served from
cache, making re-runs incremental: only new or edited coordinates
execute.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..parallel import default_workers, fork_map
from ..scenario import Session
from .grid import ExperimentGrid, ExperimentPoint
from .result import (
    ExperimentResult,
    summarise_channel_result,
    summarise_rank_result,
    summarise_sim_result,
)
from .store import ResultStore


@dataclass
class RunReport:
    """What one :func:`run_grid` invocation did."""

    results: list[ExperimentResult] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    n_workers: int = 1
    wall_seconds: float = 0.0

    @property
    def total(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        return (
            f"{self.total} points ({self.executed} executed, "
            f"{self.cached} cached) on {self.n_workers} worker(s) "
            f"in {self.wall_seconds:.2f}s"
        )


def run_point(point: ExperimentPoint, base_seed: int = 0) -> ExperimentResult:
    """Execute one grid point (the worker body; also usable inline)."""
    return _execute_task(
        {
            "key": point.fingerprint(base_seed),
            "base_seed": base_seed,
            "point": point.to_payload(),
        }
    )


def _execute_task(task: dict) -> ExperimentResult:
    """Worker body: one point, executed through the Scenario facade.

    Single-bank points keep the classic flat :class:`SimResult` metric
    shape; rank points (``num_banks > 1`` or a dedicated rank attack)
    report rank aggregates plus ``per_bank`` metrics; channel points
    (``num_ranks > 1`` or a dedicated channel attack) add the
    ``per_rank`` level on top. Tracker-side counters always sum across
    every tracker instance of the scenario.
    """
    point = ExperimentPoint.from_payload(task["point"])
    scenario = point.scenario(task["base_seed"])
    session = Session(scenario)
    rank_result = session.run()
    if scenario.is_channel:
        metrics = summarise_channel_result(rank_result)
    elif scenario.is_rank:
        metrics = summarise_rank_result(rank_result)
    else:
        metrics = summarise_sim_result(rank_result.per_bank[0])
    return ExperimentResult(
        key=task["key"],
        tracker=point.tracker.label,
        attack=point.attack.name,
        trace=rank_result.trace,
        seed=scenario.task_seed(),
        point=task["point"],
        metrics=metrics,
        tracker_stats=_tracker_stats(session.trackers),
    )


def _tracker_stats(trackers) -> dict:
    """Tracker-side counters, summed across the rank's bank instances."""
    return {
        "entries": sum(t.entries for t in trackers),
        "storage_bits": sum(t.storage_bits for t in trackers),
        "overflow_drops": sum(
            getattr(t, "overflow_drops", 0) for t in trackers
        ),
        "pseudo_mitigations": sum(t.pseudo_mitigations for t in trackers),
    }


def run_grid(
    grid: ExperimentGrid,
    base_seed: int = 0,
    n_workers: int | None = None,
    store: ResultStore | None = None,
) -> RunReport:
    """Run every point of ``grid``, reusing cached results.

    Results come back in grid (row-major) order regardless of worker
    scheduling. With a file-backed store the new results are flushed
    before returning.
    """
    if n_workers is None:
        n_workers = default_workers()
    store = store if store is not None else ResultStore()
    points = grid.points()
    keys = [point.fingerprint(base_seed) for point in points]

    pending: list[dict] = []
    for point, key in zip(points, keys):
        if key not in store:
            pending.append(
                {
                    "key": key,
                    "base_seed": base_seed,
                    "point": point.to_payload(),
                }
            )

    started = time.perf_counter()
    # Each task is heavyweight (a full trace simulation), so hand them
    # out one at a time rather than in chunks.
    for result in fork_map(
        _execute_task, pending, n_workers=n_workers, chunksize=1
    ):
        store.put(result)
    store.flush()

    return RunReport(
        results=[store.get(key) for key in keys],
        executed=len(pending),
        cached=len(points) - len(pending),
        n_workers=n_workers,
        wall_seconds=time.perf_counter() - started,
    )
