"""``repro serve`` — a stdlib HTTP front end over :class:`QueryAPI`.

A deliberately small read-only service: no third-party dependencies
(``http.server`` + threads), answering sweep/point queries straight
from the sharded result store through the fingerprint-keyed query
cache. Writes happen elsewhere (``repro exp run`` appends to the same
store; the server picks new results up via the store's cheap
change-detection stat on each request).

Routes (all ``GET``):

* ``/v1/status`` — store/cache statistics (JSON).
* ``/v1/points`` — index of stored results (key, tracker, attack,
  failed).
* ``/v1/point/<fingerprint>`` — one result payload; fingerprint may be
  any unambiguous prefix. ``?format=csv`` renders the shared CSV rows.
* ``/v1/sweep`` — results filtered by ``?tracker=&attack=&failed=``;
  ``?format=csv`` for CSV.

Errors are JSON: ``{"error": ...}`` with a 4xx status.
"""

from __future__ import annotations

import csv
import io
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from .query import SWEEP_CSV_COLUMNS, QueryAPI, sweep_csv_rows


def _csv_text(rows: list[dict], columns) -> str:
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=list(columns))
    writer.writeheader()
    writer.writerows(rows)
    return out.getvalue()


class ServeHandler(BaseHTTPRequestHandler):
    """Routes requests to the server's :class:`QueryAPI`."""

    server_version = "repro-serve/1"
    #: Silenced by default; ``make_server(verbose=True)`` re-enables.
    quiet = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_json(self, status: int, document) -> None:
        self._send(
            status,
            json.dumps(document, indent=1, sort_keys=True) + "\n",
            "application/json",
        )

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        api: QueryAPI = self.server.api  # type: ignore[attr-defined]
        url = urlsplit(self.path)
        query = parse_qs(url.query)
        fmt = query.get("format", ["json"])[0]
        if fmt not in ("json", "csv"):
            return self._send_error(400, f"unknown format {fmt!r}")
        parts = [part for part in url.path.split("/") if part]
        try:
            if parts == ["v1", "status"]:
                return self._send_json(200, api.status())
            if parts == ["v1", "points"]:
                return self._send_json(200, {
                    "points": [
                        {
                            "key": result.key,
                            "tracker": result.tracker,
                            "attack": result.attack,
                            "failed": result.failed,
                        }
                        for result in api.sweep()
                    ],
                })
            if len(parts) == 3 and parts[:2] == ["v1", "point"]:
                return self._point(api, unquote(parts[2]), fmt)
            if parts == ["v1", "sweep"]:
                return self._sweep(api, query, fmt)
        except Exception as error:  # pragma: no cover - defensive
            return self._send_error(500, f"{type(error).__name__}: {error}")
        return self._send_error(404, f"no route for {url.path!r}")

    def _point(self, api: QueryAPI, fingerprint: str, fmt: str) -> None:
        result = api.point(fingerprint)
        if result is None:
            return self._send_error(
                404, f"no result for fingerprint {fingerprint!r}"
            )
        if fmt == "csv":
            return self._send(
                200,
                _csv_text(sweep_csv_rows([result]), SWEEP_CSV_COLUMNS),
                "text/csv",
            )
        return self._send_json(200, result.to_payload())

    def _sweep(self, api: QueryAPI, query: dict, fmt: str) -> None:
        tracker = query.get("tracker", [None])[0]
        attack = query.get("attack", [None])[0]
        failed_raw = query.get("failed", [None])[0]
        failed: bool | None = None
        if failed_raw is not None:
            if failed_raw.lower() not in ("true", "false", "1", "0"):
                return self._send_error(
                    400, f"failed must be true/false, got {failed_raw!r}"
                )
            failed = failed_raw.lower() in ("true", "1")
        if fmt == "csv":
            rows = api.sweep_csv(tracker, attack, failed)
            return self._send(
                200, _csv_text(rows, SWEEP_CSV_COLUMNS), "text/csv"
            )
        return self._send_json(200, {
            "results": api.sweep_payloads(tracker, attack, failed),
        })


def make_server(
    api: QueryAPI,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a
    free port (read it back from ``server.server_address``)."""
    handler = type(
        "BoundServeHandler", (ServeHandler,), {"quiet": not verbose}
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.api = api  # type: ignore[attr-defined]
    return server


def serve_store(
    store_path: str,
    host: str = "127.0.0.1",
    port: int = 8731,
    verbose: bool = True,
) -> int:
    """The ``repro serve`` loop: serve ``store_path`` until Ctrl-C."""
    api = QueryAPI.open(store_path)
    server = make_server(api, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(
        f"serving {store_path} ({len(api.store)} result(s)) "
        f"on http://{bound_host}:{bound_port} — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0
