"""Content-addressed task shards: the dispatch unit of the scheduler.

A grid run used to hand every point to the pool as its own task, which
meant one pickle round-trip and one scheduler wakeup per point — pure
overhead when points are milliseconds each. The scheduler now
partitions the *pending* points (fingerprints missing from the store)
into shards and dispatches whole shards: per-task IPC amortizes across
the shard, and each shard commits atomically (store flush + journal
mark) the moment it completes, so a killed run loses at most its
in-flight shards.

Sharding is content-addressed: tasks are ordered by their scenario
fingerprint before being split, so the partition — and every shard's
``shard_id`` (a stable hash of its member fingerprints) — is a pure
function of *which points are pending*, never of grid declaration
order or worker count. Two runs with the same pending set plan the
same shards; a resumed run plans exactly the shards of the missing
points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..sim.seeding import stable_hash

#: Target shards per pool worker. More than one per worker keeps the
#: pool load-balanced when shards run at different speeds; keeping the
#: number small keeps the per-shard dispatch overhead amortized.
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class TaskShard:
    """One dispatch unit: an ordered slice of pending task payloads."""

    shard_id: str
    keys: tuple[str, ...]
    tasks: tuple[Mapping[str, Any], ...]

    def __len__(self) -> int:
        return len(self.tasks)


def plan_shards(
    tasks: Sequence[Mapping[str, Any]],
    n_workers: int,
    shards_per_worker: int = SHARDS_PER_WORKER,
) -> list[TaskShard]:
    """Partition task payloads (each carrying its fingerprint under
    ``"key"``) into content-addressed shards.

    The shard count is ``min(len(tasks), n_workers * shards_per_worker)``
    — enough shards to keep every worker fed and to bound how much work
    one crash can lose, few enough that dispatch overhead stays
    amortized. Tasks are fingerprint-sorted before the contiguous
    split, making the partition independent of input order.
    """
    if not tasks:
        return []
    ordered = sorted(tasks, key=lambda task: task["key"])
    shard_count = min(
        len(ordered), max(1, n_workers) * max(1, shards_per_worker)
    )
    base, extra = divmod(len(ordered), shard_count)
    shards: list[TaskShard] = []
    start = 0
    for index in range(shard_count):
        size = base + (1 if index < extra else 0)
        members = ordered[start:start + size]
        start += size
        keys = tuple(task["key"] for task in members)
        shards.append(
            TaskShard(
                shard_id=stable_hash("exp-shard", list(keys))[:16],
                keys=keys,
                tasks=tuple(members),
            )
        )
    return shards
