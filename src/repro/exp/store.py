"""Fingerprint-keyed, sharded JSON store for experiment results.

The store makes grid re-runs incremental: a point whose fingerprint is
already present is served from cache, so growing a sweep (more
trackers, more attacks) only executes the new coordinates, and editing
any knob of an existing coordinate re-runs just that one.

Format v2 (this module) splits the results across *shard files* keyed
by fingerprint prefix: ``<path>`` holds a small manifest
(``{"format": 2, "shard_width": W, "shards": {prefix: count}}``) and
each shard lives at ``<path>.shards/<prefix>.json``. Because a
result's shard is a pure function of its fingerprint, a flush only
rewrites the shards that actually changed since the last one —
store I/O is O(new results), not O(store) — and a store assembled by
a resumed run is byte-identical to one written in a single pass
(every file's content is sorted by fingerprint, independent of write
order). ``compact()`` rewrites everything and drops orphaned shard
files.

Format v1 (a single JSON blob with inline results) still *loads*
through a tolerant shim; the first flush migrates it to v2 in place
(the manifest atomically replaces the old blob). A corrupt file is
backed up to ``<path>.bak`` with a warning before the store starts
empty — a subsequent ``flush()`` can no longer clobber the only copy
— and a file claiming a *newer* format than this code understands
raises :class:`StoreFormatError` instead of being silently treated as
empty. Every file write is atomic (tempfile + rename), so a crashed
run never corrupts previous results.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import warnings
from pathlib import Path

from .result import ExperimentResult

STORE_FORMAT = 2

#: Fingerprint-prefix length (hex chars) keying the shard files. Two
#: chars give up to 256 shards — enough that any realistic sweep dirties
#: only a few shards per incremental run, while a full store stays a
#: handful of human-readable files. Recorded in the manifest, so a
#: store written with a different width still loads.
SHARD_WIDTH = 2


class StoreFormatError(RuntimeError):
    """The store file exists but cannot be safely used by this code."""


def shard_key(fingerprint: str, width: int = SHARD_WIDTH) -> str:
    """The shard a fingerprint's result lives in (its hex prefix)."""
    return fingerprint[:width]


def _atomic_write(path: Path, text: str) -> int:
    """Write ``text`` to ``path`` atomically; returns bytes written."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(text.encode("utf-8"))


class ResultStore:
    """A dict of fingerprint → :class:`ExperimentResult`, file-backed.

    ``path=None`` gives a purely in-memory store (used when the caller
    did not ask for persistence). ``generation`` counts mutations of
    the in-memory mapping — the read API keys its caches on it, so a
    reload or new result invalidates exactly the queries it should.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        shard_width: int = SHARD_WIDTH,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.shard_width = shard_width
        self.generation = 0
        #: Bytes and file count of the most recent ``flush()`` — the
        #: dirty-shard-only telemetry the bench records.
        self.last_flush_bytes = 0
        self.last_flush_files = 0
        self._results: dict[str, ExperimentResult] = {}
        self._dirty: set[str] = set()
        self._signature: tuple | None = None
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    @property
    def shards_dir(self) -> Path | None:
        """Directory holding the v2 shard files (None for in-memory)."""
        if self.path is None:
            return None
        return self.path.with_name(self.path.name + ".shards")

    def _shard_path(self, prefix: str) -> Path:
        return self.shards_dir / f"{prefix}.json"

    def _quarantine(self, reason: str) -> None:
        """Back the unusable file up to ``<path>.bak`` and warn.

        The store then starts empty, but a later ``flush()`` can no
        longer destroy the only copy of whatever was in the file.
        """
        backup = self.path.with_name(self.path.name + ".bak")
        shutil.copy2(self.path, backup)
        warnings.warn(
            f"{self.path}: {reason}; the file was backed up to "
            f"{backup.name} and the store starts empty",
            stacklevel=3,
        )

    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text())
        except OSError:
            return
        except json.JSONDecodeError:
            self._quarantine("not valid JSON (corrupt result store?)")
            return
        if not isinstance(document, dict) or "format" not in document:
            self._quarantine("not a result-store document")
            return
        version = document.get("format")
        if not isinstance(version, int) or version < 1:
            self._quarantine(f"unrecognised store format {version!r}")
            return
        if version > STORE_FORMAT:
            raise StoreFormatError(
                f"{self.path} is a format-{version} store, but this "
                f"code only understands up to format {STORE_FORMAT}; "
                "refusing to touch it (upgrade repro, or point at a "
                "different store path)"
            )
        if version == 1:
            # v1 shim: inline results in one blob. Loading marks every
            # shard dirty so the first flush migrates the store to v2.
            self._ingest(document.get("results", {}), mark_dirty=True)
        else:
            self.shard_width = int(
                document.get("shard_width", self.shard_width)
            )
            for prefix in sorted(document.get("shards", {})):
                self._load_shard(prefix)
        self.generation += 1
        self._signature = self._disk_signature()

    def _load_shard(self, prefix: str) -> None:
        path = self._shard_path(prefix)
        try:
            payloads = json.loads(path.read_text()).get("results", {})
        except OSError:
            warnings.warn(
                f"{path}: shard listed in the manifest is missing; "
                "its results are dropped (re-running the sweep "
                "recomputes them)",
                stacklevel=4,
            )
            return
        except (json.JSONDecodeError, AttributeError):
            shutil.copy2(path, path.with_name(path.name + ".bak"))
            warnings.warn(
                f"{path}: corrupt shard backed up to {path.name}.bak; "
                "its results are dropped",
                stacklevel=4,
            )
            self._dirty.add(prefix)
            return
        self._ingest(payloads, mark_dirty=False)

    def _ingest(self, payloads: dict, mark_dirty: bool) -> None:
        for key, payload in payloads.items():
            try:
                self._results[key] = ExperimentResult.from_payload(payload)
            except (KeyError, TypeError):
                continue
            if mark_dirty:
                self._dirty.add(shard_key(key, self.shard_width))

    # ------------------------------------------------------------------
    def _disk_signature(self) -> tuple | None:
        """A cheap change-detection stamp of the on-disk manifest."""
        if self.path is None:
            return None
        try:
            stat = self.path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def reload_if_changed(self) -> bool:
        """Re-read the store when another process rewrote it.

        The read API calls this before answering, so a long-lived
        ``repro serve`` picks up results from sweeps that finish while
        it is running. Returns True when a reload happened.
        """
        if self.path is None or self._disk_signature() == self._signature:
            return False
        self._results.clear()
        self._dirty.clear()
        if self.path.exists():
            self._load()
        else:
            self.generation += 1
            self._signature = None
        return True

    def flush(self) -> int:
        """Persist dirty shards atomically; returns bytes written.

        Only the shards touched since the last flush are rewritten
        (plus the manifest, which is O(shard count), not O(results)).
        A no-op for in-memory stores and when nothing changed.
        """
        self.last_flush_bytes = 0
        self.last_flush_files = 0
        if self.path is None:
            return 0
        if not self._dirty and self.path.exists():
            return 0
        counts: dict[str, int] = {}
        dirty_results: dict[str, dict] = {p: {} for p in self._dirty}
        for key in sorted(self._results):
            prefix = shard_key(key, self.shard_width)
            counts[prefix] = counts.get(prefix, 0) + 1
            if prefix in dirty_results:
                dirty_results[prefix][key] = self._results[key].to_payload()
        bytes_written = 0
        files = 0
        for prefix, shard_results in sorted(dirty_results.items()):
            path = self._shard_path(prefix)
            if not shard_results:
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            text = json.dumps(
                {
                    "format": STORE_FORMAT,
                    "shard": prefix,
                    "results": shard_results,
                },
                sort_keys=True,
                indent=1,
            )
            bytes_written += _atomic_write(path, text)
            files += 1
        manifest = {
            "format": STORE_FORMAT,
            "shard_width": self.shard_width,
            "shards": {prefix: counts[prefix] for prefix in sorted(counts)},
        }
        text = json.dumps(manifest, sort_keys=True, indent=1)
        bytes_written += _atomic_write(self.path, text)
        files += 1
        self._dirty.clear()
        self._signature = self._disk_signature()
        self.last_flush_bytes = bytes_written
        self.last_flush_files = files
        return bytes_written

    def compact(self) -> int:
        """Rewrite every live shard and drop orphaned shard files.

        Orphans appear when results are cleared or a crashed process
        left shards the manifest no longer references. Returns bytes
        written.
        """
        if self.path is None:
            return 0
        self._dirty = {
            shard_key(key, self.shard_width) for key in self._results
        }
        live = {f"{prefix}.json" for prefix in self._dirty}
        if self.shards_dir is not None and self.shards_dir.exists():
            for stray in self.shards_dir.iterdir():
                if stray.suffix == ".json" and stray.name not in live:
                    try:
                        stray.unlink()
                    except OSError:
                        pass
        written = self.flush()
        if (
            not self._results
            and self.shards_dir is not None
            and self.shards_dir.exists()
        ):
            try:
                self.shards_dir.rmdir()
            except OSError:
                pass
        return written

    def disk_bytes(self) -> int:
        """Total on-disk size of the manifest plus every shard file."""
        if self.path is None:
            return 0
        total = 0
        for path in [self.path, *(
            sorted(self.shards_dir.glob("*.json"))
            if self.shards_dir.exists()
            else []
        )]:
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def get(self, key: str) -> ExperimentResult | None:
        return self._results.get(key)

    def put(self, result: ExperimentResult) -> None:
        self._results[result.key] = result
        self._dirty.add(shard_key(result.key, self.shard_width))
        self.generation += 1

    def keys(self) -> list[str]:
        """All cached fingerprints, sorted."""
        return sorted(self._results)

    def results(self) -> list[ExperimentResult]:
        """All cached results, ordered by fingerprint."""
        return [self._results[key] for key in sorted(self._results)]

    def clear(self) -> None:
        self._dirty.update(
            shard_key(key, self.shard_width) for key in self._results
        )
        self._results.clear()
        self.generation += 1
