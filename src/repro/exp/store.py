"""Fingerprint-keyed JSON store for experiment results.

The store makes grid re-runs incremental: a point whose fingerprint is
already present is served from cache, so growing a sweep (more
trackers, more attacks) only executes the new coordinates, and editing
any knob of an existing coordinate re-runs just that one. The on-disk
format is a single human-readable JSON document, stable under
``sort_keys`` so diffs are meaningful and determinism tests can compare
files byte-for-byte.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from .result import ExperimentResult

STORE_FORMAT = 1


class ResultStore:
    """A dict of fingerprint → :class:`ExperimentResult`, file-backed.

    ``path=None`` gives a purely in-memory store (used when the caller
    did not ask for persistence). Writes are atomic (tempfile + rename)
    so a crashed run never corrupts previous results; an unreadable or
    foreign-format file is treated as empty rather than fatal.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._results: dict[str, ExperimentResult] = {}
        if self.path is not None and self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            document = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError):
            return
        if not isinstance(document, dict):
            return
        if document.get("format") != STORE_FORMAT:
            return
        for key, payload in document.get("results", {}).items():
            try:
                self._results[key] = ExperimentResult.from_payload(payload)
            except (KeyError, TypeError):
                continue

    def flush(self) -> None:
        """Persist to disk atomically (no-op for in-memory stores)."""
        if self.path is None:
            return
        document = {
            "format": STORE_FORMAT,
            "results": {
                key: result.to_payload()
                for key, result in sorted(self._results.items())
            },
        }
        text = json.dumps(document, sort_keys=True, indent=1)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __contains__(self, key: str) -> bool:
        return key in self._results

    def get(self, key: str) -> ExperimentResult | None:
        return self._results.get(key)

    def put(self, result: ExperimentResult) -> None:
        self._results[result.key] = result

    def results(self) -> list[ExperimentResult]:
        """All cached results, ordered by fingerprint."""
        return [self._results[key] for key in sorted(self._results)]

    def clear(self) -> None:
        self._results.clear()
