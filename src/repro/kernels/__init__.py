"""Compiled inner-loop backends for the fused channel kernel.

The fused channel tier still pays one Python dispatch per tREFI; this
package removes it for the steady state by marching K consecutive
same-plan steps inside one compiled call (:mod:`repro.kernels.march`).
Three interchangeable *providers* implement the identical march:

``numba``
    ``@njit``-compiled (nopython, cached) — the first choice when the
    ``compiled`` extra (``pip install .[compiled]``) is installed.
``cext``
    The same routine as a small C file, compiled on demand with any C
    compiler on PATH and bound via ctypes (:mod:`repro.kernels.cext`).
``interpreted``
    The very same Python function body, undecorated — never selected
    automatically (it is slower than the fused NumPy path) but always
    present as the reference implementation for the equivalence tests.

Selection is ``EngineConfig.backend``: ``"auto"`` uses the best
available compiled provider and falls back to the pure-NumPy fused
path when none exists, ``"compiled"`` requires one
(:func:`require_compiled`), ``"numpy"`` pins the fused path. The knob
is excluded from scenario identity — results are bit-identical across
every provider and the fallback, pinned by the property suite.
"""

from __future__ import annotations

import os

from ._compat import HAVE_NUMBA

__all__ = [
    "HAVE_NUMBA",
    "available",
    "forced_provider",
    "get_march",
    "provider",
    "require_compiled",
    "unavailable_reason",
]

#: Test/debug override: None = auto-resolve, otherwise one of
#: "numba", "cext", "interpreted", "none". Seeded from the
#: REPRO_KERNELS environment variable; tests use :func:`forced_provider`.
_FORCED: str | None = os.environ.get("REPRO_KERNELS") or None

_VALID_FORCES = {"numba", "cext", "interpreted", "none"}


class forced_provider:
    """Context manager pinning provider resolution (for tests).

    ``forced_provider("none")`` simulates a host with no compiled
    backend; ``forced_provider("interpreted")`` makes the compiled
    driver run the pure-Python reference march.
    """

    def __init__(self, name: str | None) -> None:
        if name is not None and name not in _VALID_FORCES:
            raise ValueError(
                f"unknown provider {name!r}; expected one of "
                f"{sorted(_VALID_FORCES)} or None"
            )
        self.name = name
        self._previous: str | None = None

    def __enter__(self) -> "forced_provider":
        global _FORCED
        self._previous = _FORCED
        _FORCED = self.name
        return self

    def __exit__(self, *exc_info) -> None:
        global _FORCED
        _FORCED = self._previous


def _cext_available() -> bool:
    from . import cext

    return cext.available()


def provider() -> str | None:
    """The compiled provider ``backend="auto"``/``"compiled"`` would
    use: ``"numba"``, ``"cext"``, ``"interpreted"`` (only when forced),
    or ``None`` when no compiled tier is available."""
    if _FORCED is not None:
        if _FORCED == "none":
            return None
        if _FORCED == "numba" and not HAVE_NUMBA:
            return None
        if _FORCED == "cext" and not _cext_available():
            return None
        return _FORCED
    if HAVE_NUMBA:
        return "numba"
    if _cext_available():
        return "cext"
    return None


def available() -> bool:
    """True when a compiled march provider can run on this host."""
    return provider() is not None


def unavailable_reason() -> str:
    """Human-readable reason :func:`available` is False."""
    if _FORCED == "none":
        return "provider resolution is forced off (test override)"
    from . import cext

    reason = cext.build_error() or "C provider unavailable"
    return f"numba is not importable and the {reason}"


def require_compiled() -> str:
    """The resolved provider name, or a clear error when none exists.

    This is the ``backend="compiled"`` contract: fail loudly at
    simulator construction instead of silently running the slower
    fallback.
    """
    name = provider()
    if name is None:
        raise RuntimeError(
            "backend='compiled' requires a compiled kernel provider, "
            "but none is available: "
            f"{unavailable_reason()}. Install the optional extra "
            "(pip install .[compiled]) for the Numba backend, make a C "
            "compiler available for the ctypes backend, or use "
            "backend='auto' / 'numpy' for the pure-NumPy fused path."
        )
    return name


def get_march():
    """The resolved provider's march callable (see march.py for the
    signature), or None when no provider is available."""
    name = provider()
    if name is None:
        return None
    if name == "cext":
        from . import cext

        return cext.march_steps
    from . import march

    if name == "interpreted":
        return march.march_steps_interpreted
    return march.march_steps
