"""Optional-Numba shim for the compiled kernels.

Numba is an optional extra (``pip install .[compiled]``); when it is
absent the ``@njit`` decorator degrades to an identity decorator so the
kernel module still imports and the very same function bodies run as
the interpreted reference implementation (used by the equivalence
tests and as the last-resort provider).
"""

from __future__ import annotations

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _numba_njit

    HAVE_NUMBA = True

    def njit(*args, **kwargs):
        return _numba_njit(*args, **kwargs)

except ImportError:
    HAVE_NUMBA = False

    def njit(*args, **kwargs):
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def decorate(func):
            return func

        return decorate
