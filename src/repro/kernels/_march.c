/* The multi-step channel march — C mirror of march.py.
 *
 * Compiled on demand by repro/kernels/cext.py (any C compiler on PATH)
 * and loaded through ctypes; this is the fallback compiled provider
 * for interpreters without Numba. The body must stay semantically
 * line-for-line with _march_steps_impl in march.py: the engine's
 * bit-identity pins run the same lowered plans through both and the
 * interpreted reference.
 *
 * All arrays are caller-owned, contiguous, and either int64 or double;
 * see march.py for the parameter contract. Returns the number of fully
 * executed steps (< num_steps when the flip-safety bound would be
 * violated by the next step) and writes the updated disturbance bound
 * through bound_io.
 */

#include <stdint.h>

#if defined(_WIN32)
#define MARCH_API __declspec(dllexport)
#else
#define MARCH_API
#endif

MARCH_API int64_t repro_march_steps(
    double *dist, double *peak, int64_t *since, int64_t *speak,
    int64_t *mitig, int64_t *transmit,
    const int64_t *reset_keys, int64_t n_reset,
    const int64_t *victims, const double *delta, int64_t n_victims,
    const int64_t *since_keys, const int64_t *since_counts, int64_t n_since,
    const int64_t *acts, const int64_t *acts_off,
    const int64_t *step_ranks, int64_t n_ranks,
    int64_t num_banks, int64_t num_rows,
    int64_t *ref_counts, int64_t refw, int64_t slice_rows,
    const int64_t *kind,
    int64_t *m_san, int64_t *m_sar, int64_t *m_valid, int64_t *m_dist,
    int64_t *m_sel,
    const int64_t *m_draw_off, const int64_t *draws,
    int64_t num_steps, double trh, double step_gain, double *bound_io)
{
    double bound = *bound_io;
    for (int64_t step = 0; step < num_steps; step++) {
        if (bound + step_gain >= trh) {
            *bound_io = bound;
            return step;
        }
        /* MINT captures (CAN == 0 at every step start). */
        for (int64_t rank_i = 0; rank_i < n_ranks; rank_i++) {
            int64_t rank = step_ranks[rank_i];
            for (int64_t bank = 0; bank < num_banks; bank++) {
                int64_t unit = rank * num_banks + bank;
                if (kind[unit] == 1) {
                    int64_t san = m_san[unit];
                    int64_t n = acts_off[unit + 1] - acts_off[unit];
                    if (san >= 1 && san <= n) {
                        m_sar[unit] = acts[acts_off[unit] + san - 1];
                        m_valid[unit] = 1;
                        m_sel[unit] += 1;
                    }
                }
            }
        }
        /* Unmitigated-run counters. */
        for (int64_t i = 0; i < n_since; i++) {
            int64_t key = since_keys[i];
            int64_t total = since[key] + since_counts[i];
            since[key] = total;
            if (total > speak[key])
                speak[key] = total;
        }
        /* Activation scatter: reset, add, peak (flip-free by bound). */
        for (int64_t i = 0; i < n_reset; i++)
            dist[reset_keys[i]] = 0.0;
        for (int64_t i = 0; i < n_victims; i++) {
            int64_t key = victims[i];
            double value = dist[key] + delta[i];
            dist[key] = value;
            if (value > peak[key])
                peak[key] = value;
            if (value > bound)
                bound = value;
        }
        /* REF: rolling auto-refresh slice per active rank. */
        for (int64_t rank_i = 0; rank_i < n_ranks; rank_i++) {
            int64_t rank = step_ranks[rank_i];
            int64_t index = ref_counts[rank] % refw;
            ref_counts[rank] += 1;
            int64_t lo = index * slice_rows;
            int64_t hi;
            if (index == refw - 1) {
                hi = num_rows;
            } else {
                hi = lo + slice_rows;
                if (hi > num_rows)
                    hi = num_rows;
            }
            if (hi > lo) {
                for (int64_t bank = 0; bank < num_banks; bank++) {
                    double *base =
                        dist + (rank * num_banks + bank) * num_rows;
                    for (int64_t row = lo; row < hi; row++)
                        base[row] = 0.0;
                }
            }
        }
        /* REF: per-unit MINT mitigation, then the pre-drawn SAN draw. */
        for (int64_t rank_i = 0; rank_i < n_ranks; rank_i++) {
            int64_t rank = step_ranks[rank_i];
            for (int64_t bank = 0; bank < num_banks; bank++) {
                int64_t unit = rank * num_banks + bank;
                if (kind[unit] != 1)
                    continue;
                int64_t base = unit * num_rows;
                if (m_valid[unit] == 1) {
                    int64_t row = m_sar[unit];
                    int64_t d = m_dist[unit];
                    mitig[unit] += 1;
                    if (d > 1)
                        transmit[unit] += 1;
                    for (int64_t pass = 0; pass < 2; pass++) {
                        int64_t victim = row + (pass == 0 ? -d : d);
                        if (victim >= 0 && victim < num_rows)
                            dist[base + victim] = 0.0;
                    }
                    for (int64_t pass = 0; pass < 2; pass++) {
                        int64_t victim = row + (pass == 0 ? -d : d);
                        if (victim < 0 || victim >= num_rows)
                            continue;
                        dist[base + victim] = 0.0;
                        for (int64_t np = 0; np < 2; np++) {
                            int64_t neighbour =
                                victim + (np == 0 ? -1 : 1);
                            if (neighbour >= 0 && neighbour < num_rows) {
                                double value =
                                    dist[base + neighbour] + 1.0;
                                dist[base + neighbour] = value;
                                if (value > peak[base + neighbour])
                                    peak[base + neighbour] = value;
                                if (value > bound)
                                    bound = value;
                            }
                        }
                    }
                    for (int64_t pass = 0; pass < 2; pass++) {
                        int64_t victim = row + (pass == 0 ? -d : d);
                        if (victim >= 0 && victim < num_rows)
                            dist[base + victim] = 0.0;
                    }
                    since[base + row] = 0;
                    for (int64_t pass = 0; pass < 2; pass++) {
                        int64_t victim = row + (pass == 0 ? -d : d);
                        if (victim >= 0 && victim < num_rows)
                            since[base + victim] = 0;
                    }
                }
                int64_t draw = draws[m_draw_off[unit] + step];
                if (draw == 0) {
                    if (m_valid[unit] == 1)
                        m_dist[unit] += 1;
                    m_san[unit] = -1;
                } else {
                    m_valid[unit] = 0;
                    m_sar[unit] = 0;
                    m_dist[unit] = 1;
                    m_san[unit] = draw;
                }
            }
        }
    }
    *bound_io = bound;
    return num_steps;
}
