"""On-demand C build of the march kernel (the no-Numba compiled tier).

Numba is the first-choice provider, but it is a heavyweight optional
dependency; a plain C compiler is far more commonly available. This
module compiles ``_march.c`` once per source revision into a private
build directory (``_build/`` next to the sources, gitignored;
override with ``REPRO_KERNELS_BUILD_DIR``) and binds the symbol
through :mod:`ctypes`. Everything degrades gracefully: no compiler, an
unwritable tree, or a failed build simply mark the provider
unavailable and the engine keeps using the pure-NumPy fused path.

The exported :func:`march_steps` presents the exact Python signature
of ``march.march_steps`` so the engine driver is provider-agnostic.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

__all__ = ["available", "march_steps", "build_error"]

_SOURCE = Path(__file__).with_name("_march.c")
_FUNC = None
_ERROR: str | None = None
_TRIED = False


def _build_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_BUILD_DIR")
    if override:
        return Path(override)
    return _SOURCE.parent / "_build"


def _compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _load() -> None:
    """Resolve the compiled symbol, building the shared object if this
    source revision has not been built yet. Runs at most once."""
    global _FUNC, _ERROR, _TRIED
    if _TRIED:
        return
    _TRIED = True
    try:
        source = _SOURCE.read_bytes()
    except OSError as exc:
        _ERROR = f"kernel source unreadable: {exc}"
        return
    compiler = _compiler()
    if compiler is None:
        _ERROR = "no C compiler (cc/gcc/clang) on PATH"
        return
    digest = hashlib.sha256(source).hexdigest()[:16]
    build = _build_dir()
    shared = build / f"march-{digest}.so"
    if not shared.exists():
        try:
            build.mkdir(parents=True, exist_ok=True)
            # Compile into a temp name and rename: concurrent test
            # workers may race the build, and rename is atomic.
            fd, tmp = tempfile.mkstemp(
                suffix=".so", prefix="march-", dir=build
            )
            os.close(fd)
            proc = subprocess.run(
                [
                    compiler,
                    "-O3",
                    "-fPIC",
                    "-shared",
                    "-o",
                    tmp,
                    str(_SOURCE),
                ],
                capture_output=True,
                text=True,
                timeout=120,
            )
            if proc.returncode != 0:
                os.unlink(tmp)
                _ERROR = (
                    f"C build failed ({compiler}): "
                    f"{proc.stderr.strip()[:500]}"
                )
                return
            os.replace(tmp, shared)
        except (OSError, subprocess.SubprocessError) as exc:
            _ERROR = f"C build failed: {exc}"
            return
    try:
        lib = ctypes.CDLL(str(shared))
        func = lib.repro_march_steps
    except (OSError, AttributeError) as exc:
        _ERROR = f"compiled kernel unloadable: {exc}"
        return
    i64 = ctypes.c_int64
    p_f64 = ctypes.POINTER(ctypes.c_double)
    p_i64 = ctypes.POINTER(i64)
    func.restype = i64
    func.argtypes = [
        p_f64, p_f64, p_i64, p_i64,  # dist, peak, since, speak
        p_i64, p_i64,  # mitig, transmit
        p_i64, i64,  # reset_keys, n_reset
        p_i64, p_f64, i64,  # victims, delta, n_victims
        p_i64, p_i64, i64,  # since_keys, since_counts, n_since
        p_i64, p_i64,  # acts, acts_off
        p_i64, i64,  # step_ranks, n_ranks
        i64, i64,  # num_banks, num_rows
        p_i64, i64, i64,  # ref_counts, refw, slice_rows
        p_i64,  # kind
        p_i64, p_i64, p_i64, p_i64,  # m_san, m_sar, m_valid, m_dist
        p_i64,  # m_sel
        p_i64, p_i64,  # m_draw_off, draws
        i64, ctypes.c_double, ctypes.c_double,  # num_steps, trh, step_gain
        p_f64,  # bound_io
    ]
    _FUNC = func


def available() -> bool:
    _load()
    return _FUNC is not None


def build_error() -> str | None:
    """Why the provider is unavailable (None when it is available)."""
    _load()
    return _ERROR


def _p_f64(array):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _p_i64(array):
    return array.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def march_steps(
    dist, peak, since, speak, mitig, transmit,
    reset_keys, victims, delta, since_keys, since_counts,
    acts, acts_off, step_ranks, num_banks, num_rows,
    ref_counts, refw, slice_rows,
    kind, m_san, m_sar, m_valid, m_dist, m_sel,
    m_draw_off, draws, num_steps, trh, step_gain, bound,
):
    """ctypes adapter with the signature of ``march.march_steps``.

    All array arguments must be C-contiguous with the dtypes the
    engine's plan lowering produces (int64/float64); the driver
    guarantees that.
    """
    _load()
    import numpy as np

    bound_io = np.array([bound], dtype=np.float64)
    done = _FUNC(
        _p_f64(dist), _p_f64(peak), _p_i64(since), _p_i64(speak),
        _p_i64(mitig), _p_i64(transmit),
        _p_i64(reset_keys), reset_keys.shape[0],
        _p_i64(victims), _p_f64(delta), victims.shape[0],
        _p_i64(since_keys), _p_i64(since_counts), since_keys.shape[0],
        _p_i64(acts), _p_i64(acts_off),
        _p_i64(step_ranks), step_ranks.shape[0],
        num_banks, num_rows,
        _p_i64(ref_counts), refw, slice_rows,
        _p_i64(kind),
        _p_i64(m_san), _p_i64(m_sar), _p_i64(m_valid), _p_i64(m_dist),
        _p_i64(m_sel),
        _p_i64(m_draw_off), _p_i64(draws),
        num_steps, float(trh), float(step_gain), _p_f64(bound_io),
    )
    return int(done), float(bound_io[0])
