"""The multi-step channel march, in nopython form.

One call executes up to ``num_steps`` consecutive tREFIs of a fused
channel plan — the steady state where every rank replays the same
cached interval — without returning to Python between steps. The body
is written against flat ``int64``/``float64`` arrays only (the plan
lowered by the engine driver), in constructs Numba's nopython mode
compiles directly; the very same function object doubles as the
interpreted reference implementation when Numba is absent.

Semantics mirror ``_FusedChannelKernel._step`` exactly for the shapes
the driver admits (see ``engine._CompiledMarch``): no order-sensitive
exact replays, no out-of-range activations, every tracker a MINT or a
null tracker, one REF per active rank per step. MINT's per-REF random
draw is pre-extracted into ``draws`` (:mod:`repro.kernels.mt`), so the
march itself is deterministic.

Flip safety is by construction rather than per-write checks: a step
begins only while ``bound + step_gain < trh``, where ``bound`` is a
running upper bound on every disturbance cell and ``step_gain`` the
largest single-step increase any cell can see (max activation delta
plus the worst mitigation bump). The march returns early the moment
the next step could cross the threshold, and the driver replays the
remainder through the per-step Python path, which records flip events
in exact order.
"""

from __future__ import annotations

from ._compat import njit

__all__ = ["march_steps", "march_steps_interpreted"]


def _march_steps_impl(
    dist,  # float64[units * num_rows] packed disturbance
    peak,  # float64[units * num_rows] running per-row peak
    since,  # int64[units * num_rows] unmitigated-run counters
    speak,  # int64[units * num_rows] unmitigated-run peaks
    mitig,  # int64[units] per-march mitigation tally (scratch, zeroed)
    transmit,  # int64[units] per-march transitive tally (scratch, zeroed)
    reset_keys,  # int64[:] activated in-range rows (self-reset)
    victims,  # int64[:] unique victim keys of the activation scatter
    delta,  # float64[:] per-victim summed disturbance
    since_keys,  # int64[:] activated in-range rows (counter scatter)
    since_counts,  # int64[:] per-row activation counts
    acts,  # int64[:] per-unit raw act rows, concatenated
    acts_off,  # int64[units + 1] unit u's acts = acts[off[u]:off[u+1]]
    step_ranks,  # int64[:] ranks active this step (ascending)
    num_banks,
    num_rows,
    ref_counts,  # int64[num_ranks] rolling auto-refresh counters
    refw,
    slice_rows,
    kind,  # int64[units] 0 = null tracker, 1 = MINT
    m_san,  # int64[units] selected activation number (-1 = none)
    m_sar,  # int64[units] selected address register
    m_valid,  # int64[units] SAR valid flag
    m_dist,  # int64[units] pending mitigation distance
    m_sel,  # int64[units] selections tally
    m_draw_off,  # int64[units] unit u's draws = draws[off[u] : off[u]+K]
    draws,  # int64[:] pre-extracted per-REF randint values
    num_steps,
    trh,
    step_gain,
    bound,
):
    n_reset = reset_keys.shape[0]
    n_victims = victims.shape[0]
    n_since = since_keys.shape[0]
    n_ranks = step_ranks.shape[0]
    for step in range(num_steps):
        if bound + step_gain >= trh:
            return step, bound
        # MINT captures: CAN is 0 at every step start (each step ends
        # with a REF), so the SAN-th activation is acts[san - 1].
        for rank_i in range(n_ranks):
            rank = step_ranks[rank_i]
            for bank in range(num_banks):
                unit = rank * num_banks + bank
                if kind[unit] == 1:
                    san = m_san[unit]
                    if san >= 1 and san <= acts_off[unit + 1] - acts_off[unit]:
                        m_sar[unit] = acts[acts_off[unit] + san - 1]
                        m_valid[unit] = 1
                        m_sel[unit] += 1
        # Unmitigated-run counters.
        for i in range(n_since):
            key = since_keys[i]
            total = since[key] + since_counts[i]
            since[key] = total
            if total > speak[key]:
                speak[key] = total
        # The activation scatter: reset activated rows, add victim
        # disturbance, track peaks (flip-free under the bound guard).
        for i in range(n_reset):
            dist[reset_keys[i]] = 0.0
        for i in range(n_victims):
            key = victims[i]
            value = dist[key] + delta[i]
            dist[key] = value
            if value > peak[key]:
                peak[key] = value
            if value > bound:
                bound = value
        # REF: rolling auto-refresh slice per active rank.
        for rank_i in range(n_ranks):
            rank = step_ranks[rank_i]
            index = ref_counts[rank] % refw
            ref_counts[rank] += 1
            lo = index * slice_rows
            if index == refw - 1:
                hi = num_rows
            else:
                hi = lo + slice_rows
                if hi > num_rows:
                    hi = num_rows
            if hi > lo:
                for bank in range(num_banks):
                    base = (rank * num_banks + bank) * num_rows
                    dist[base + lo : base + hi] = 0.0
        # REF: per-unit MINT mitigation, then the pre-drawn SAN draw.
        for rank_i in range(n_ranks):
            rank = step_ranks[rank_i]
            for bank in range(num_banks):
                unit = rank * num_banks + bank
                if kind[unit] != 1:
                    continue
                base = unit * num_rows
                if m_valid[unit] == 1:
                    row = m_sar[unit]
                    d = m_dist[unit]
                    mitig[unit] += 1
                    if d > 1:
                        transmit[unit] += 1
                    # Victim refresh at distance d: refresh row +/- d,
                    # each refresh activation bumps its own neighbours
                    # (the transitive channel), then the refreshed pair
                    # is restored — same op order as DramDevice.mitigate
                    # on the radius-1 dense model.
                    for off in (-d, d):
                        victim = row + off
                        if 0 <= victim < num_rows:
                            dist[base + victim] = 0.0
                    for off in (-d, d):
                        victim = row + off
                        if 0 <= victim < num_rows:
                            dist[base + victim] = 0.0
                            for noff in (-1, 1):
                                neighbour = victim + noff
                                if 0 <= neighbour < num_rows:
                                    value = dist[base + neighbour] + 1.0
                                    dist[base + neighbour] = value
                                    if value > peak[base + neighbour]:
                                        peak[base + neighbour] = value
                                    if value > bound:
                                        bound = value
                    for off in (-d, d):
                        victim = row + off
                        if 0 <= victim < num_rows:
                            dist[base + victim] = 0.0
                    # Unmitigated-run resets: the aggressor and every
                    # refreshed victim.
                    since[base + row] = 0
                    for off in (-d, d):
                        victim = row + off
                        if 0 <= victim < num_rows:
                            since[base + victim] = 0
                # CAN returns to 0 and the next interval's SAN is drawn
                # (pre-extracted; 0 only with the transitive slot).
                draw = draws[m_draw_off[unit] + step]
                if draw == 0:
                    if m_valid[unit] == 1:
                        m_dist[unit] += 1
                    m_san[unit] = -1
                else:
                    m_valid[unit] = 0
                    m_sar[unit] = 0
                    m_dist[unit] = 1
                    m_san[unit] = draw
    return num_steps, bound


#: Interpreted reference (always available; exercised by the tests).
march_steps_interpreted = _march_steps_impl

#: Numba-compiled entry point — identical body. With Numba installed
#: this lazily compiles (nopython, cached) on first call; without it,
#: this *is* the interpreted function.
march_steps = njit(cache=True)(_march_steps_impl)
