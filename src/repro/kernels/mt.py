"""Vectorized, bit-exact MT19937 ``randint`` streams.

The compiled channel march (:mod:`repro.kernels`) executes thousands of
tREFIs per call, and MINT consumes exactly one ``rng.randint(low, M)``
per REF. Re-implementing the Mersenne Twister *inside* each compiled
backend would triple the surface that has to stay bit-exact against
CPython; instead the driver pre-draws the whole march's selection
stream here — NumPy-vectorized over 624-word twister blocks, but word
for word identical to ``random.Random`` — and hands the compiled
kernel a plain integer array.

:func:`draw_exact` is the contract: given a live ``random.Random``, it
returns the next ``n`` values of ``rng.randint(low, high)`` *and*
leaves ``rng`` in exactly the state ``n`` scalar calls would have — so
a march that bails early simply restores the saved entry state and
re-draws the consumed prefix, and the Python fallback path continues
the very same stream.

The replicated pipeline (CPython ``_randommodule.c`` / ``random.py``):

``randint(a, b)`` → ``randrange(a, b + 1)`` →
``a + _randbelow(b - a + 1)``; ``_randbelow(n)`` draws
``getrandbits(k)`` with ``k = n.bit_length()`` and rejects until the
value is ``< n``; ``getrandbits(k)`` for ``k <= 32`` is one tempered
twister word right-shifted by ``32 - k``.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["draw_exact", "mt_state", "set_mt_state"]

_N = 624
_M = 397
_UPPER = np.uint32(0x80000000)
_LOWER = np.uint32(0x7FFFFFFF)
_MATRIX_A = np.uint32(0x9908B0DF)


def _twist(mt: np.ndarray) -> np.ndarray:
    """One full generator turnover (``genrand_uint32``'s block step).

    The reference updates in place, so entries ``i >= N - M`` read
    already-twisted words and entry ``N - 1`` reads the *new* word 0;
    staging the three regions reproduces that order exactly.
    """
    new = np.empty(_N, dtype=np.uint32)
    y = (mt[0 : _N - _M] & _UPPER) | (mt[1 : _N - _M + 1] & _LOWER)
    new[0 : _N - _M] = (
        mt[_M:_N] ^ (y >> np.uint32(1))
        ^ np.where(y & np.uint32(1), _MATRIX_A, np.uint32(0))
    )
    # Entries i >= N - M read new[i - (N - M)], their own stage's
    # outputs for i >= 2 (N - M) — chain the region in (N - M)-sized
    # chunks so every chunk reads only already-written words.
    start = _N - _M
    while start < _N - 1:
        end = min(start + (_N - _M), _N - 1)
        y = (mt[start:end] & _UPPER) | (mt[start + 1 : end + 1] & _LOWER)
        new[start:end] = (
            new[start - (_N - _M) : end - (_N - _M)]
            ^ (y >> np.uint32(1))
            ^ np.where(y & np.uint32(1), _MATRIX_A, np.uint32(0))
        )
        start = end
    y = (mt[_N - 1] & _UPPER) | (new[0] & _LOWER)
    new[_N - 1] = (
        new[_M - 1] ^ (y >> np.uint32(1))
        ^ (_MATRIX_A if y & np.uint32(1) else np.uint32(0))
    )
    return new


def _temper(words: np.ndarray) -> np.ndarray:
    y = words.copy()
    y ^= y >> np.uint32(11)
    y ^= (y << np.uint32(7)) & np.uint32(0x9D2C5680)
    y ^= (y << np.uint32(15)) & np.uint32(0xEFC60000)
    y ^= y >> np.uint32(18)
    return y


def mt_state(rng: random.Random) -> tuple[np.ndarray, int, object]:
    """``rng``'s twister state as ``(mt_words, pos, gauss_next)``."""
    version, internal, gauss_next = rng.getstate()
    if version != 3:  # pragma: no cover - CPython has used v3 since 2.6
        raise ValueError(f"unsupported random state version {version}")
    return np.array(internal[:_N], dtype=np.uint32), internal[_N], gauss_next


def set_mt_state(
    rng: random.Random, mt: np.ndarray, pos: int, gauss_next: object
) -> None:
    """Install ``(mt, pos)`` back into ``rng`` (inverse of mt_state)."""
    rng.setstate(
        (3, tuple(int(w) for w in mt) + (int(pos),), gauss_next)
    )


def draw_exact(
    rng: random.Random, n: int, low: int, high: int
) -> np.ndarray:
    """The next ``n`` values of ``rng.randint(low, high)``, vectorized.

    Advances ``rng`` to exactly the state ``n`` scalar ``randint``
    calls would leave (rejection sampling consumes a data-dependent
    number of twister words; the consumed count is replicated
    precisely). Only single-word draws are supported — ``high - low``
    must fit in 32 bits, which covers every tracker configuration.
    """
    if high < low:
        raise ValueError("empty randint range")
    width = high - low + 1
    k = width.bit_length()
    if k > 32:
        raise ValueError(
            f"randint width {width} needs {k}-bit draws; only "
            "single-word (<= 32 bit) streams can be vectorized"
        )
    out = np.empty(n, dtype=np.int64)
    if n == 0:
        return out
    mt, pos, gauss_next = mt_state(rng)
    shift = np.uint32(32 - k)
    filled = 0
    while filled < n:
        if pos >= _N:
            mt = _twist(mt)
            pos = 0
        candidates = _temper(mt[pos:]) >> shift
        accept = np.nonzero(candidates < width)[0]
        need = n - filled
        if accept.size >= need:
            consumed = int(accept[need - 1]) + 1
            out[filled : filled + need] = candidates[accept[:need]]
            pos += consumed
            filled = n
        else:
            out[filled : filled + accept.size] = candidates[accept]
            filled += accept.size
            pos = _N
    set_mt_state(rng, mt, pos, gauss_next)
    out += low
    return out
