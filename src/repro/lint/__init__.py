"""repro.lint — determinism & identity static analysis.

An AST-based lint pass that guards the contracts the rest of the
repository only *tests*: bit-exact RNG streams (every backend of one
scenario replays the same draws), fingerprint-keyed result stores, and
the pinned public API surface. The test suite catches violations of
these contracts probabilistically and after the fact; the lint pass
catches the code patterns that cause them, at the line that introduces
them.

Entry points::

    repro lint [paths ...] [--format text|json] [--rules id,id]
    python -m repro lint src scripts

or programmatically::

    from repro.lint import run_lint
    findings, files_scanned = run_lint(["src", "scripts"])

The rule battery and suppression syntax are documented in
:mod:`repro.lint.rules` (one module per rule); the engine and the
``# repro-lint: allow[rule-id]`` semantics in
:mod:`repro.lint.engine`.
"""

from .engine import (
    PARSE_RULE_ID,
    Project,
    SourceFile,
    iter_python_files,
    parse_suppressions,
    run_lint,
)
from .findings import Finding
from .reporters import (
    JSON_SCHEMA_VERSION,
    parse_json,
    render_json,
    render_text,
)
from .rules import RULE_REGISTRY, Rule, default_rules, register_rule

__all__ = [
    "JSON_SCHEMA_VERSION",
    "PARSE_RULE_ID",
    "Finding",
    "Project",
    "RULE_REGISTRY",
    "Rule",
    "SourceFile",
    "default_rules",
    "iter_python_files",
    "parse_json",
    "parse_suppressions",
    "register_rule",
    "render_json",
    "render_text",
    "run_lint",
]
