"""Small AST helpers shared by the lint rules.

The rules never execute the code they analyse; everything here works on
:mod:`ast` trees plus a per-module import-alias map, so ``from time
import perf_counter as pc; pc()`` resolves to the same dotted origin
(``time.perf_counter``) as a plain ``time.perf_counter()`` call.
"""

from __future__ import annotations

import ast


def dotted_parts(node: ast.expr) -> list[str] | None:
    """``["np", "random", "randint"]`` for ``np.random.randint``.

    Returns ``None`` for anything that is not a pure ``Name``-rooted
    attribute chain (calls, subscripts, literals, ...), which the rules
    treat as "not resolvable, skip".
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return parts


class ImportMap:
    """Alias → dotted-origin resolution for one module.

    ``import numpy as np`` maps ``np`` to ``numpy``; ``from datetime
    import datetime`` maps ``datetime`` to ``datetime.datetime``.
    Relative imports keep their textual module (they can never collide
    with the absolute stdlib origins the rules ban).
    """

    def __init__(self, tree: ast.AST) -> None:
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else name
                    self.aliases[name] = origin
            elif isinstance(node, ast.ImportFrom):
                module = "." * node.level + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.aliases[name] = f"{module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """The dotted origin a call target resolves to, or ``None``.

        ``None`` means the chain is rooted in something this module did
        not import (a local variable, ``self``, a builtin) — the rules
        skip those rather than guess.
        """
        parts = dotted_parts(node)
        if not parts:
            return None
        origin = self.aliases.get(parts[0])
        if origin is None:
            return None
        return ".".join([origin, *parts[1:]])


def class_base_names(node: ast.ClassDef) -> list[str]:
    """The textual base names of a class (``Tracker`` for both
    ``Tracker`` and ``base.Tracker``); unresolvable bases are skipped."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """True when the class carries a ``@dataclass`` decorator (bare,
    called, or attribute-qualified)."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def dataclass_field_names(node: ast.ClassDef) -> list[str]:
    """The field names a ``@dataclass`` body declares, in order.

    Exactly the names the dataclass machinery would turn into fields:
    annotated assignments at class-body level, minus ``ClassVar``
    annotations and private (``_``-prefixed) names.
    """
    fields = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        target = stmt.target
        if not isinstance(target, ast.Name) or target.id.startswith("_"):
            continue
        annotation = stmt.annotation
        if isinstance(annotation, ast.Subscript):
            annotation = annotation.value
        if isinstance(annotation, ast.Name) and annotation.id == "ClassVar":
            continue
        if isinstance(annotation, ast.Attribute) and annotation.attr == "ClassVar":
            continue
        fields.append(target.id)
    return fields


def literal_str_sequence(node: ast.expr) -> list[str] | None:
    """The string items of a literal list/tuple/set, or ``None`` when
    the node is anything else (comprehensions, names, calls, ...)."""
    if not isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return None
    items = []
    for element in node.elts:
        if not isinstance(element, ast.Constant) or not isinstance(
            element.value, str
        ):
            return None
        items.append(element.value)
    return items
