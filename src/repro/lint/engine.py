"""The lint runner: file discovery, suppressions, one pass per file.

``run_lint(paths)`` parses every Python file under ``paths`` once,
hands each ``(tree, source, path)`` to every active rule's ``check``
hook, then gives each rule one ``finalize(project)`` pass for
cross-file contracts (registry↔class resolution, ``__all__`` vs the
API snapshot). Findings on lines carrying a matching suppression
comment are dropped; everything else is deduplicated and sorted
deterministically.

Suppression syntax
------------------
Append a suppression comment to the offending line::

    self.rng = rng or random.Random()  # repro-lint: allow[seed-policy] ad-hoc default

A comment line that *only* carries a suppression applies to the next
line (for statements too long to share a line with the comment)::

    # repro-lint: allow[private-poke] kernel state sync, see _FusedChannelKernel
    sim.device._ref_counter = counters

Several rules can be listed: ``allow[seed-policy,private-poke]``.
``allow[all]`` silences every rule on that line. Text after the
closing bracket is the (encouraged) one-line justification.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover - avoids the rules import at
    # module load, so `repro.lint.engine` alone never half-registers
    from .rules.base import Rule

#: The rule id attached to files the parser rejects.
PARSE_RULE_ID = "parse"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*allow\[([^\]]+)\]")

#: Directory names never descended into (caches, build products, VCS).
SKIP_DIRS = frozenset({
    "__pycache__", ".git", "_build", "build", "dist", ".venv", "venv",
    ".hypothesis", ".pytest_cache", ".benchmarks", ".mypy_cache",
    ".ruff_cache", "node_modules",
})


@dataclass
class SourceFile:
    """One parsed module: path (posix form), raw source, tree, and the
    per-line suppression sets."""

    path: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]]


@dataclass
class Project:
    """Everything the per-file pass saw, for the rules' ``finalize``."""

    files: list[SourceFile] = field(default_factory=list)


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number → rule ids allowed on that line.

    A line consisting solely of a suppression comment also covers the
    following line (see the module docstring).
    """
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        rules = {part.strip() for part in match.group(1).split(",")}
        rules.discard("")
        suppressions.setdefault(lineno, set()).update(rules)
        if line.lstrip().startswith("#"):
            suppressions.setdefault(lineno + 1, set()).update(rules)
    return suppressions


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files taken verbatim,
    directories walked recursively, cache/build dirs skipped), sorted."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            found.add(path)
            continue
        for candidate in path.rglob("*.py"):
            if any(part in SKIP_DIRS for part in candidate.parts):
                continue
            found.add(candidate)
    return sorted(found)


def _is_suppressed(finding: Finding, project: Project) -> bool:
    for source_file in project.files:
        if source_file.path != finding.path:
            continue
        allowed = source_file.suppressions.get(finding.line, ())
        return finding.rule in allowed or "all" in allowed
    return False


def run_lint(
    paths: Sequence[str | Path],
    rules: Iterable["type[Rule]"] | None = None,
) -> tuple[list[Finding], int]:
    """Lint every Python file under ``paths``.

    Returns ``(findings, files_scanned)`` with findings deduplicated
    and sorted by (path, line, col, rule). ``rules`` selects a subset
    of rule classes; the default is every registered rule.
    """
    from .rules import default_rules

    rule_instances = [rule_cls() for rule_cls in (rules or default_rules())]
    project = Project()
    findings: list[Finding] = []
    files = iter_python_files(paths)
    for file_path in files:
        posix = file_path.as_posix()
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=posix)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            line = getattr(error, "lineno", None) or 1
            findings.append(Finding(
                path=posix, line=line, col=0, rule=PARSE_RULE_ID,
                message=f"cannot parse file: {error}",
            ))
            continue
        source_file = SourceFile(
            path=posix,
            source=source,
            tree=tree,
            suppressions=parse_suppressions(source),
        )
        project.files.append(source_file)
        for rule in rule_instances:
            findings.extend(rule.check(tree, source, posix))
    for rule in rule_instances:
        findings.extend(rule.finalize(project))
    kept = sorted({
        finding for finding in findings
        if not _is_suppressed(finding, project)
    })
    return kept, len(files)
