"""The :class:`Finding` record every lint rule reports.

A finding is one rule violation at one source location. Findings are
frozen, ordered, and hashable, so the runner can deduplicate and sort
them deterministically, and the JSON reporter round-trips them
losslessly (see :mod:`repro.lint.reporters`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation: where it is, which rule, and why."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The one-line human rendering (``path:line:col: [rule] msg``)."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_payload(self) -> dict[str, Any]:
        """Plain-JSON form (the JSON reporter's per-finding schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_payload` output."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
        )
