"""Finding reporters: human text and machine JSON.

The JSON document is versioned and round-trips through
:func:`parse_json` (pinned by the reporter schema test), so CI
tooling can consume ``repro lint --format json`` without scraping the
text rendering.
"""

from __future__ import annotations

import json
from typing import Sequence

from .findings import Finding

#: Bump on any breaking change to the JSON document shape.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files_scanned: int) -> str:
    """One line per finding plus a summary trailer."""
    lines = [finding.render() for finding in findings]
    noun = "file" if files_scanned == 1 else "files"
    if findings:
        count = len(findings)
        lines.append(
            f"{count} finding{'s' if count != 1 else ''} "
            f"in {files_scanned} {noun}"
        )
    else:
        lines.append(f"checked {files_scanned} {noun}: clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int) -> str:
    """The versioned JSON document (sorted keys, stable ordering)."""
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "findings": [finding.to_payload() for finding in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def parse_json(text: str) -> tuple[list[Finding], int]:
    """Invert :func:`render_json`: ``(findings, files_scanned)``."""
    document = json.loads(text)
    version = document.get("version")
    if version != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported repro-lint JSON schema version {version!r} "
            f"(this reader understands {JSON_SCHEMA_VERSION})"
        )
    findings = [
        Finding.from_payload(payload) for payload in document["findings"]
    ]
    return findings, int(document["files_scanned"])
