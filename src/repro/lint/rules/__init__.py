"""The rule battery. Importing this package registers every rule.

Rule IDs (each doubles as the suppression token —
``# repro-lint: allow[<id>] <justification>``; full behaviour is
documented in each rule's module docstring):

``seed-policy``
    R1 — randomness flows through :mod:`repro.sim.seeding` derived
    streams: no global ``random``/``numpy.random`` calls, no unseeded
    ``random.Random()``, no wall clock or OS entropy inside the
    simulation packages.
``identity-manifest``
    R2 — every ``Scenario``/``TrackerSpec``/``AttackSpec``/
    ``PointConfig`` dataclass field is explicitly classified
    identity-or-excluded in its module's ``IDENTITY_MANIFEST``.
``tracker-contract``
    R3 — registry trackers declare ``pseudo_mitigations``;
    ``on_activate_batch`` overrides never touch global RNG state.
``private-poke``
    R4 — no writes to another object's ``_private`` attributes.
``api-surface``
    R5 — ``__all__`` of the pinned modules matches
    ``tests/test_api_surface.py``.

New rules: add a module here, subclass :class:`~.base.Rule`, decorate
with :func:`~.base.register_rule`, and import the module below.
"""

from .base import RULE_REGISTRY, Rule, default_rules, register_rule
from . import (  # noqa: F401  (imported for rule registration)
    api_surface,
    identity_manifest,
    private_poke,
    seed_policy,
    tracker_contract,
)

__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "register_rule",
]
