"""R5 ``api-surface`` — ``__all__`` matches the pinned API snapshot.

``tests/test_api_surface.py`` pins the public surface of ``repro``,
``repro.sim``, ``repro.scenario``, and ``repro.exp`` as reviewed
frozenset snapshots: a surface change must be a deliberate, same-commit
snapshot update. The test catches drift at *test* time; this rule
catches it at *lint* time — same contract, earlier and with a
file:line pointing at the drifted ``__all__`` instead of a failed
parametrised assert.

The rule statically reads each target module's ``__all__`` literal and
the snapshot file's ``SNAPSHOTS = {module: FROZENSET_NAME}`` mapping
(located by walking up from a linted target to the directory holding
``tests/test_api_surface.py``), then reports added/removed names per
module.

Suppression: ``# repro-lint: allow[api-surface]`` on the ``__all__``
line — though the right fix is almost always updating the snapshot.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..astutil import literal_str_sequence
from ..findings import Finding
from .base import Rule, register_rule

#: path suffix -> dotted module name, as pinned by the snapshot file.
TARGET_MODULES = {
    "repro/__init__.py": "repro",
    "repro/sim/__init__.py": "repro.sim",
    "repro/scenario.py": "repro.scenario",
    "repro/exp/__init__.py": "repro.exp",
}

#: Located relative to an ancestor of the linted target modules.
SNAPSHOT_RELPATH = Path("tests") / "test_api_surface.py"


def _matches(path: str, suffix: str) -> bool:
    return path == suffix or path.endswith(f"/{suffix}")


@register_rule
class ApiSurfaceRule(Rule):
    """R5: exported names match tests/test_api_surface.py snapshots."""

    id = "api-surface"
    summary = (
        "__all__ of repro/repro.sim/repro.scenario/repro.exp must "
        "match the tests/test_api_surface.py snapshot"
    )

    def __init__(self) -> None:
        #: module name -> (exported names, __all__ node, path)
        self._surfaces: dict[str, tuple[set[str], ast.Assign, str]] = {}
        self._errors: list[Finding] = []

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Finding]:
        module = next(
            (
                name for suffix, name in TARGET_MODULES.items()
                if _matches(path, suffix)
            ),
            None,
        )
        if module is None:
            return []
        for node in tree.body:
            if not (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(target, ast.Name) and target.id == "__all__"
                    for target in node.targets
                )
            ):
                continue
            exported = literal_str_sequence(node.value)
            if exported is None:
                self._errors.append(self.finding(
                    path, node,
                    f"{module}.__all__ is not a literal list of "
                    "strings, so the surface cannot be checked "
                    "against the snapshot statically",
                ))
                return []
            self._surfaces[module] = (set(exported), node, path)
        return []

    def finalize(self, project: object) -> list[Finding]:
        findings = list(self._errors)
        if not self._surfaces:
            return findings
        snapshot_path = self._locate_snapshot()
        if snapshot_path is None:
            _exported, node, path = next(iter(self._surfaces.values()))
            findings.append(self.finding(
                path, node,
                f"cannot locate {SNAPSHOT_RELPATH.as_posix()} next to "
                "the linted tree to verify the public surface",
            ))
            return findings
        snapshots = self._parse_snapshots(snapshot_path)
        for module, (exported, node, path) in sorted(self._surfaces.items()):
            if module not in snapshots:
                findings.append(self.finding(
                    path, node,
                    f"{module} has no snapshot entry in "
                    f"{snapshot_path.as_posix()}",
                ))
                continue
            snapshot = snapshots[module]
            added = sorted(exported - snapshot)
            removed = sorted(snapshot - exported)
            if added or removed:
                findings.append(self.finding(
                    path, node,
                    f"{module} public surface drifted from the "
                    f"snapshot: added {added or 'nothing'}, removed "
                    f"{removed or 'nothing'} — update "
                    f"{snapshot_path.as_posix()} in the same commit "
                    "if this change is deliberate",
                ))
        return findings

    def _locate_snapshot(self) -> Path | None:
        for _exported, _node, path in self._surfaces.values():
            current = Path(path).resolve()
            for ancestor in current.parents:
                candidate = ancestor / SNAPSHOT_RELPATH
                if candidate.is_file():
                    return candidate
        return None

    def _parse_snapshots(self, snapshot_path: Path) -> dict[str, set[str]]:
        """``{"repro": {...names...}, ...}`` from the snapshot file.

        Reads the ``NAME = frozenset({...})`` assignments and the
        ``SNAPSHOTS = {"module": NAME}`` mapping, all statically.
        """
        tree = ast.parse(snapshot_path.read_text(encoding="utf-8"))
        sets: dict[str, set[str]] = {}
        mapping: dict[str, str] = {}
        for node in tree.body:
            if not isinstance(node, ast.Assign):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "frozenset"
                and len(value.args) == 1
            ):
                items = literal_str_sequence(value.args[0])
                if items is not None:
                    sets[target.id] = set(items)
            elif target.id == "SNAPSHOTS" and isinstance(value, ast.Dict):
                for key, entry in zip(value.keys, value.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(entry, ast.Name)
                    ):
                        mapping[key.value] = entry.id
        return {
            module: sets[var]
            for module, var in mapping.items()
            if var in sets
        }
