"""Rule base class and the rule registry.

Writing a rule
--------------
Subclass :class:`Rule`, set a stable kebab-case ``id`` (it doubles as
the suppression token: ``# repro-lint: allow[<id>]``) and a one-line
``summary``, implement ``check`` (per file) and/or ``finalize``
(cross-file, after every file was seen), and register it::

    @register_rule
    class NoSleepRule(Rule):
        id = "no-sleep"
        summary = "time.sleep has no place in a simulator"

        def check(self, tree, source, path):
            return [
                Finding(path, node.lineno, node.col_offset, self.id,
                        "sleeping in a deterministic simulation")
                for node in ast.walk(tree)
                if isinstance(node, ast.Call) and ...
            ]

``check`` hooks are pure functions of ``(tree, source, path)``, so a
rule is testable from a fixture snippet without touching the runner.
Rules that need the whole tree set (class-hierarchy resolution,
``__all__`` snapshots) accumulate state in ``check`` and report from
``finalize(project)``; the runner builds one fresh instance per run,
so instance state never leaks between runs.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, TypeVar

from ..findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> rules)
    from ..engine import Project

__all__ = ["RULE_REGISTRY", "Rule", "default_rules", "register_rule"]

#: Every registered rule, by id. Populated by :func:`register_rule`
#: when :mod:`repro.lint.rules` imports the rule modules.
RULE_REGISTRY: dict[str, type["Rule"]] = {}

_RuleT = TypeVar("_RuleT", bound="type[Rule]")


def register_rule(rule_cls: _RuleT) -> _RuleT:
    """Class decorator: add ``rule_cls`` to :data:`RULE_REGISTRY`."""
    if not rule_cls.id or rule_cls.id == Rule.id:
        raise ValueError(f"{rule_cls.__name__} needs a unique non-empty id")
    existing = RULE_REGISTRY.get(rule_cls.id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"rule id {rule_cls.id!r} already registered by "
            f"{existing.__name__}"
        )
    RULE_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def default_rules() -> list[type["Rule"]]:
    """Every registered rule class, in stable (id-sorted) order."""
    return [RULE_REGISTRY[rule_id] for rule_id in sorted(RULE_REGISTRY)]


class Rule:
    """One static contract; subclass and register (see module docs)."""

    #: Stable identifier; the suppression token and the JSON ``rule``.
    id: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Finding]:
        """Per-file hook: findings for one parsed module."""
        return []

    def finalize(self, project: "Project") -> list[Finding]:
        """Cross-file hook: called once after every file was checked."""
        return []

    def finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        """Convenience: a finding anchored at ``node``."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )
