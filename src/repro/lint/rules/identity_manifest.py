"""R2 ``identity-manifest`` — every spec field decides its fingerprint
status explicitly.

:meth:`repro.scenario.Scenario.fingerprint` keys caches, result
stores, and every derived RNG stream. A new field on ``Scenario`` (or
on the spec/config dataclasses that feed it) must make a deliberate
choice: either it is *identity* — hashed, so changing it re-keys every
stream — or it is *excluded* — an implementation knob like
``vectorized``/``backend`` whose values are pinned bit-identical.
Forgetting the choice corrupts silently in both directions: a field
that silently joins the payload re-keys fingerprints old stores rely
on; a field that silently skips it lets two semantically different
scenarios share cached results.

So the choice is a declaration: modules defining one of the
:data:`TARGET_CLASSES` carry a module-level ``IDENTITY_MANIFEST``
literal dict mapping class name → ``{"identity": [...], "excluded":
[...]}``, and this rule errors when a dataclass field is missing from
its manifest entry, listed twice, or listed but gone (the runtime
consumes the same manifest — ``Scenario.identity_payload`` drops
exactly the ``excluded`` names — so manifest and behaviour cannot
drift apart).

Suppression: ``# repro-lint: allow[identity-manifest] <justification>``
(on the class or manifest line the finding anchors to).
"""

from __future__ import annotations

import ast

from ..astutil import dataclass_field_names, is_dataclass_def
from ..findings import Finding
from .base import Rule, register_rule

#: Dataclasses that feed scenario identity and must be classified.
TARGET_CLASSES = frozenset({
    "Scenario", "TrackerSpec", "AttackSpec", "PointConfig",
})

#: The module-level declaration the rule (and the runtime) read.
MANIFEST_NAME = "IDENTITY_MANIFEST"

_ENTRY_KEYS = {"identity", "excluded"}


def _manifest_assignment(tree: ast.Module) -> ast.Assign | None:
    for node in tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(target, ast.Name) and target.id == MANIFEST_NAME
            for target in node.targets
        ):
            return node
    return None


@register_rule
class IdentityManifestRule(Rule):
    """R2: spec dataclass fields match their identity manifest."""

    id = "identity-manifest"
    summary = (
        "every Scenario/TrackerSpec/AttackSpec/PointConfig field must "
        "be classified identity-or-excluded in its module's "
        "IDENTITY_MANIFEST"
    )

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Finding]:
        findings: list[Finding] = []
        assignment = _manifest_assignment(tree)
        manifest: dict[str, dict[str, list[str]]] = {}
        if assignment is not None:
            try:
                raw = ast.literal_eval(assignment.value)
            except ValueError:
                return [self.finding(
                    path, assignment,
                    f"{MANIFEST_NAME} must be a literal dict so it can "
                    "be read statically",
                )]
            manifest, findings = self._validated(raw, assignment, path)

        classes = {
            node.name: node
            for node in tree.body
            if isinstance(node, ast.ClassDef)
        }
        for name, entry in manifest.items():
            if name not in classes:
                findings.append(self.finding(
                    path, assignment,
                    f"{MANIFEST_NAME} names {name!r}, which is not a "
                    "class in this module",
                ))
        for name, node in classes.items():
            if not is_dataclass_def(node):
                continue
            if name in manifest:
                findings.extend(
                    self._compare(node, manifest[name], assignment, path)
                )
            elif name in TARGET_CLASSES:
                findings.append(self.finding(
                    path, node,
                    f"dataclass {name} feeds scenario identity but has "
                    f"no {MANIFEST_NAME} entry in this module; classify "
                    "each field as identity or excluded",
                ))
        return findings

    def _validated(
        self, raw: object, assignment: ast.Assign, path: str
    ) -> tuple[dict[str, dict[str, list[str]]], list[Finding]]:
        """Shape-check the literal manifest; malformed entries are
        findings and dropped from the comparison."""
        findings = []
        manifest: dict[str, dict[str, list[str]]] = {}
        if not isinstance(raw, dict):
            return {}, [self.finding(
                path, assignment,
                f"{MANIFEST_NAME} must map class names to "
                "{'identity': [...], 'excluded': [...]} entries",
            )]
        for key, entry in raw.items():
            well_formed = (
                isinstance(key, str)
                and isinstance(entry, dict)
                and set(entry) <= _ENTRY_KEYS
                and all(
                    isinstance(bucket, (list, tuple))
                    and all(isinstance(item, str) for item in bucket)
                    for bucket in entry.values()
                )
            )
            if not well_formed:
                findings.append(self.finding(
                    path, assignment,
                    f"{MANIFEST_NAME} entry for {key!r} is malformed; "
                    "expected {'identity': [names...], 'excluded': "
                    "[names...]}",
                ))
                continue
            manifest[key] = {
                bucket: list(entry.get(bucket, []))
                for bucket in _ENTRY_KEYS
            }
        return manifest, findings

    def _compare(
        self,
        node: ast.ClassDef,
        entry: dict[str, list[str]],
        assignment: ast.Assign | None,
        path: str,
    ) -> list[Finding]:
        findings = []
        fields = dataclass_field_names(node)
        identity = set(entry["identity"])
        excluded = set(entry["excluded"])
        overlap = identity & excluded
        if overlap:
            findings.append(self.finding(
                path, assignment or node,
                f"{node.name}: field(s) {sorted(overlap)} listed as "
                "both identity and excluded",
            ))
        missing = [f for f in fields if f not in identity | excluded]
        if missing:
            findings.append(self.finding(
                path, node,
                f"{node.name}: field(s) {missing} not classified in "
                f"{MANIFEST_NAME}; decide whether each joins the "
                "fingerprint (identity) or is a pinned-bit-identical "
                "implementation knob (excluded)",
            ))
        stale = sorted((identity | excluded) - set(fields))
        if stale:
            findings.append(self.finding(
                path, assignment or node,
                f"{node.name}: {MANIFEST_NAME} lists {stale}, which "
                "is/are not dataclass fields (stale entry?)",
            ))
        return findings
