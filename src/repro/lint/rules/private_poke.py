"""R4 ``private-poke`` — no external writes to private state.

The fused channel kernel *adopts* per-bank oracle storage into packed
2-D arrays (``DenseRowDisturbanceModel.adopt_storage``): several
objects deliberately alias one buffer. In that world an external write
to somebody else's ``_private`` attribute — the old
``model._disturbance[row] = 0`` idiom that
``RowDisturbanceModel.clear_row`` replaced — is silently wrong: it can
desynchronise the packed twin, skip flip bookkeeping, or write through
a stale view, and nothing fails until a bit-identity pin trips miles
away.

This rule flags any assignment (``=``, augmented, annotated),
``del``, or ``object.__setattr__`` whose target is a ``_``-prefixed
(non-dunder) attribute of anything other than ``self``/``cls``. An
object's private state is written by its own methods only; if external
code needs the mutation, the owner grows a public method (exactly how
``clear_row``/``disturbed_rows`` replaced the ``_disturbance`` pokes).

The few deliberate cross-object syncs (the fused kernel restoring
engine-side counters it owns by construction) carry
``# repro-lint: allow[private-poke] <justification>`` suppressions.
"""

from __future__ import annotations

import ast

from ..findings import Finding
from .base import Rule, register_rule


def _attribute_targets(node: ast.AST) -> list[ast.Attribute]:
    """The attribute nodes an assignment/delete statement writes to or
    through: plain attribute targets, targets nested in tuple/list
    unpacking, and subscript targets (``model._disturbance[row] = x``
    writes *through* the private attribute — the exact idiom
    ``RowDisturbanceModel.clear_row`` was added to replace)."""
    if isinstance(node, ast.Attribute):
        return [node]
    if isinstance(node, (ast.Tuple, ast.List)):
        found = []
        for element in node.elts:
            found.extend(_attribute_targets(element))
        return found
    if isinstance(node, ast.Starred):
        return _attribute_targets(node.value)
    if isinstance(node, ast.Subscript):
        return _attribute_targets(node.value)
    return []


def _is_private(attr: str) -> bool:
    return attr.startswith("_") and not (
        attr.startswith("__") and attr.endswith("__")
    )


def _is_self_or_cls(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id in ("self", "cls")


@register_rule
class PrivatePokeRule(Rule):
    """R4: private attributes are written by their owner only."""

    id = "private-poke"
    summary = (
        "no writes to another object's _private attributes; extend the "
        "owner's public API instead (aliasing makes such pokes silent)"
    )

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Finding]:
        findings = []
        for node in ast.walk(tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            elif isinstance(node, ast.Call):
                findings.extend(self._check_setattr(node, path))
                continue
            for target in targets:
                for attribute in _attribute_targets(target):
                    if not _is_private(attribute.attr):
                        continue
                    if _is_self_or_cls(attribute.value):
                        continue
                    owner = ast.unparse(attribute.value)
                    findings.append(self.finding(
                        path, attribute,
                        f"write to private attribute "
                        f"'{owner}.{attribute.attr}' from outside the "
                        "owning class; private state must be mutated "
                        "through the owner's public API",
                    ))
        return findings

    def _check_setattr(self, node: ast.Call, path: str) -> list[Finding]:
        """``object.__setattr__(other, "_attr", value)`` counts too."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and len(node.args) >= 2
        ):
            return []
        target, name = node.args[0], node.args[1]
        if _is_self_or_cls(target):
            return []
        if not (
            isinstance(name, ast.Constant)
            and isinstance(name.value, str)
            and _is_private(name.value)
        ):
            return []
        return [self.finding(
            path, node,
            f"__setattr__ write to private attribute "
            f"'{ast.unparse(target)}.{name.value}' from outside the "
            "owning class; private state must be mutated through the "
            "owner's public API",
        )]
