"""R1 ``seed-policy`` — all randomness flows through derived streams.

Every bit-exactness claim in this repository (scalar == vectorized ==
fused == compiled, N-bank == rank == channel, worker-count-invariant
Monte-Carlo) holds because every random draw comes from a
``random.Random`` instance seeded through
:mod:`repro.sim.seeding` (``stable_seed`` / ``derive_rng``) off a
scenario's task seed. One draw from the *module-level* global RNG — or
from the wall clock — breaks that: the result stops being a pure
function of the scenario and starts depending on import order, test
order, or the time of day.

What this rule flags
--------------------
Everywhere in the linted tree:

* calls to the module-level ``random`` API (``random.random()``,
  ``random.randint``, ``random.seed``, ``random.getstate`` /
  ``setstate``, ...) — use a ``random.Random`` instance built from a
  derived seed instead;
* any call into ``numpy.random`` (legacy global state *and*
  ``default_rng``) — NumPy draws are not part of the repo's pinned RNG
  streams;
* ``random.Random()`` with no arguments and ``random.SystemRandom`` —
  both seed from OS entropy.

Additionally, inside the simulation packages (:data:`SIM_PACKAGES` —
``repro/sim``, ``repro/trackers``, ``repro/attacks``,
``repro/kernels``, ``repro/core``, ``repro/dram``):

* wall-clock and OS-entropy reads: ``time.time`` / ``perf_counter`` /
  ``monotonic`` (and ``_ns`` variants), ``datetime.now`` / ``utcnow``
  / ``today``, ``os.urandom``, ``uuid.uuid1`` / ``uuid4``, and the
  ``secrets`` module. Timing a *benchmark script* is fine; timing (or
  entropy) inside a simulation path is a determinism bug.

Suppress a deliberate exception with
``# repro-lint: allow[seed-policy] <one-line justification>``.
"""

from __future__ import annotations

import ast

from ..astutil import ImportMap
from ..findings import Finding
from .base import Rule, register_rule

#: Packages whose modules must be wall-clock- and OS-entropy-free.
SIM_PACKAGES = (
    "repro/sim",
    "repro/trackers",
    "repro/attacks",
    "repro/kernels",
    "repro/core",
    "repro/dram",
)

#: Module-level ``random`` functions that mutate or read global state.
GLOBAL_RANDOM_CALLS = frozenset(
    f"random.{name}" for name in (
        "betavariate", "binomialvariate", "choice", "choices",
        "expovariate", "gammavariate", "gauss", "getrandbits",
        "getstate", "lognormvariate", "normalvariate", "paretovariate",
        "randbytes", "randint", "random", "randrange", "sample", "seed",
        "setstate", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    )
)

#: Wall-clock / OS-entropy reads banned under :data:`SIM_PACKAGES`.
WALLCLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
})


def in_sim_packages(path: str) -> bool:
    """True when ``path`` lies under one of :data:`SIM_PACKAGES`."""
    slashed = f"/{path}"
    return any(f"/{package}/" in slashed for package in SIM_PACKAGES)


def global_rng_message(origin: str) -> str | None:
    """The violation message for a call to ``origin``, or ``None``.

    Shared with the tracker-contract rule, which applies the same
    matcher to ``on_activate_batch`` bodies.
    """
    if origin in GLOBAL_RANDOM_CALLS:
        return (
            f"module-level '{origin}()' uses the global RNG; draw from "
            "a random.Random seeded via repro.sim.seeding "
            "(stable_seed/derive_rng) instead"
        )
    if origin == "numpy.random" or origin.startswith("numpy.random."):
        return (
            f"'{origin}' is outside the repo's pinned RNG streams; all "
            "randomness must come from random.Random instances seeded "
            "via repro.sim.seeding"
        )
    if origin == "random.SystemRandom" or origin.startswith(
        "random.SystemRandom."
    ):
        return (
            "random.SystemRandom draws from OS entropy and can never "
            "be reproduced; use a derived random.Random stream"
        )
    return None


@register_rule
class SeedPolicyRule(Rule):
    """R1: no global-RNG, wall-clock, or OS-entropy randomness."""

    id = "seed-policy"
    summary = (
        "randomness must flow through repro.sim.seeding derived "
        "streams (no global random/np.random; no wall clock or OS "
        "entropy in simulation packages)"
    )

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Finding]:
        imports = ImportMap(tree)
        sim_scoped = in_sim_packages(path)
        findings = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve(node.func)
            if origin is None:
                continue
            message = global_rng_message(origin)
            if message is None and origin == "random.Random" and not (
                node.args or node.keywords
            ):
                message = (
                    "random.Random() with no seed draws its state from "
                    "OS entropy; seed it from a stream derived via "
                    "repro.sim.seeding"
                )
            if message is None and sim_scoped and (
                origin in WALLCLOCK_CALLS
                or origin == "secrets"
                or origin.startswith("secrets.")
            ):
                message = (
                    f"'{origin}()' reads the wall clock or OS entropy "
                    "inside a simulation package; simulation results "
                    "must be pure functions of the scenario"
                )
            if message is not None:
                findings.append(self.finding(path, node, message))
        return findings
