"""R3 ``tracker-contract`` — registered trackers honour the interface.

Two contracts, both established by earlier refactors and enforced only
by convention until now:

* ``pseudo_mitigations`` is a *declared* counter, read directly by the
  simulation engine when assembling results (no ``getattr``
  duck-typing). Every tracker the registry can build must declare it —
  in practice by deriving from :class:`repro.trackers.base.Tracker`,
  which carries the class default of 0.
* ``on_activate_batch`` overrides must be observably equivalent to the
  scalar ``on_activate`` loop — *including the RNG stream*. A batch
  override that touches global RNG state (module-level ``random.*``,
  ``numpy.random``) cannot preserve the tracker's own ``rng`` draws,
  so the scalar/vectorized bit-identity pins would only catch it
  probabilistically. This rule bans it statically, for every class
  that textually derives from ``Tracker`` anywhere in the linted tree.

The rule reads ``trackers/registry.py``'s ``register("name", factory)``
calls, follows each factory's ``return SomeTracker(...)`` to the class,
and resolves textual inheritance chains across all linted files.

Suppression: ``# repro-lint: allow[tracker-contract] <justification>``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..astutil import ImportMap, class_base_names
from ..findings import Finding
from .base import Rule, register_rule
from .seed_policy import global_rng_message

#: The registry module, matched by path suffix.
REGISTRY_PATH = "repro/trackers/registry.py"

#: The root interface class; chains ending here are well-formed.
TRACKER_BASE = "Tracker"


@dataclass
class _ClassInfo:
    name: str
    path: str
    node: ast.ClassDef
    bases: list[str]
    #: Names declared at class level (assignments and annotations).
    class_attrs: set[str] = field(default_factory=set)
    #: ``self.<name> = ...`` targets anywhere in the class body.
    instance_attrs: set[str] = field(default_factory=set)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)


def _collect_class(node: ast.ClassDef, path: str) -> _ClassInfo:
    info = _ClassInfo(
        name=node.name, path=path, node=node,
        bases=class_base_names(node),
    )
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.class_attrs.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            info.class_attrs.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(stmt, ast.FunctionDef):
                info.methods[stmt.name] = stmt
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Assign)
                    or isinstance(sub, ast.AnnAssign)
                ):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.instance_attrs.add(target.attr)
    return info


@register_rule
class TrackerContractRule(Rule):
    """R3: registry trackers declare the interface they are read by."""

    id = "tracker-contract"
    summary = (
        "registered trackers must declare pseudo_mitigations, and "
        "on_activate_batch overrides must not touch global RNG state"
    )

    def __init__(self) -> None:
        self._classes: dict[str, _ClassInfo] = {}
        self._imports: dict[str, ImportMap] = {}
        #: (attack name, factory name, register-call node, path)
        self._registered: list[tuple[str, str, ast.Call, str]] = []
        #: factory function name -> (returned class names, def node)
        self._factories: dict[str, tuple[list[str], ast.FunctionDef]] = {}

    # -- per-file collection -------------------------------------------
    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> list[Finding]:
        self._imports[path] = ImportMap(tree)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                info = _collect_class(node, path)
                self._classes.setdefault(info.name, info)
        if path == REGISTRY_PATH or path.endswith(f"/{REGISTRY_PATH}"):
            self._collect_registry(tree, path)
        return []

    def _collect_registry(self, tree: ast.Module, path: str) -> None:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "register"
                and len(node.args) == 2
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
                and isinstance(node.args[1], ast.Name)
            ):
                self._registered.append(
                    (node.args[0].value, node.args[1].id, node, path)
                )
            elif isinstance(node, ast.FunctionDef):
                returned = []
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Return) and isinstance(
                        sub.value, ast.Call
                    ):
                        func = sub.value.func
                        if isinstance(func, ast.Name):
                            returned.append(func.id)
                        elif isinstance(func, ast.Attribute):
                            returned.append(func.attr)
                self._factories[node.name] = (returned, node)

    # -- cross-file resolution -----------------------------------------
    def _chain(self, name: str) -> list[_ClassInfo]:
        """The textual MRO slice resolvable in the linted files."""
        chain, queue, seen = [], [name], set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self._classes.get(current)
            if info is None:
                continue
            chain.append(info)
            queue.extend(info.bases)
        return chain

    def _declares(self, chain: list[_ClassInfo], attr: str) -> bool:
        return any(
            attr in info.class_attrs or attr in info.instance_attrs
            for info in chain
        )

    def _is_tracker(self, chain: list[_ClassInfo]) -> bool:
        return any(info.name == TRACKER_BASE for info in chain)

    def finalize(self, project: object) -> list[Finding]:
        findings = []
        # (a) every registered factory resolves to a class declaring
        # pseudo_mitigations.
        for attack_name, factory_name, call, path in self._registered:
            if factory_name in self._factories:
                returned, _node = self._factories[factory_name]
            elif factory_name in self._classes:
                returned = [factory_name]
            else:
                findings.append(self.finding(
                    path, call,
                    f"register({attack_name!r}, ...) references "
                    f"{factory_name!r}, which is neither a factory "
                    "function nor a class in the linted files",
                ))
                continue
            if not returned:
                findings.append(self.finding(
                    path, call,
                    f"tracker factory {factory_name!r} (registered as "
                    f"{attack_name!r}) never returns a tracker "
                    "constructor call this rule can resolve",
                ))
            for class_name in returned:
                chain = self._chain(class_name)
                if not chain:
                    findings.append(self.finding(
                        path, call,
                        f"tracker factory {factory_name!r} returns "
                        f"{class_name}, which is not defined in the "
                        "linted files",
                    ))
                    continue
                if not self._declares(chain, "pseudo_mitigations"):
                    findings.append(self.finding(
                        chain[0].path, chain[0].node,
                        f"{class_name} (registered as {attack_name!r}) "
                        "does not declare pseudo_mitigations anywhere "
                        "in its class chain; the engine reads the "
                        "attribute directly — derive from "
                        "trackers.base.Tracker or declare the counter",
                    ))
        # (b) no Tracker subclass's on_activate_batch touches global RNG.
        for info in self._classes.values():
            chain = self._chain(info.name)
            if not self._is_tracker(chain):
                continue
            batch = info.methods.get("on_activate_batch")
            if batch is None:
                continue
            imports = self._imports.get(info.path)
            if imports is None:  # pragma: no cover - defensive
                continue
            for node in ast.walk(batch):
                if not isinstance(node, ast.Call):
                    continue
                origin = imports.resolve(node.func)
                if origin is None:
                    continue
                message = global_rng_message(origin)
                if message is not None:
                    findings.append(self.finding(
                        info.path, node,
                        f"{info.name}.on_activate_batch touches global "
                        "RNG state; batch overrides must preserve the "
                        f"tracker's own rng stream ({message})",
                    ))
        return findings
