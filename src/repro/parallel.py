"""Process-pool fan-out shared by the experiment and Monte-Carlo runners.

Two constraints shape this helper:

* Task *functions* are often closures (tracker/trace factories captured
  in a lambda), which ``pickle`` rejects. On platforms with ``fork``
  the children inherit the function through process memory instead, so
  only the per-task *arguments* and results cross the pipe.
* Fan-out must be an implementation detail: callers pass ``n_workers``
  and get back results in task order, identical to a serial map.

When ``fork`` is unavailable, or the pool cannot be built, the map
degrades to serial execution — correctness never depends on
parallelism being possible.

Pool creation is also *guarded against losing*: a pool is only built
when this process can actually use more than one CPU
(:func:`default_workers` respects cgroup/affinity limits) and the task
list is large enough to amortize worker startup. A 4-worker pool on a
1-CPU container used to run ~1.5x *slower* than serial (measured in
``BENCH_engine.json``'s ``exp_runner`` point); now it silently takes
the serial path instead.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Below this many tasks a pool cannot amortize its startup cost, so
#: the map runs serially no matter how many workers were requested.
MIN_POOL_TASKS = 2

#: Function handed to workers through fork-inherited memory. Only valid
#: between pool creation and teardown in :func:`fork_map`; the lock
#: serialises concurrent fork_map calls so two threads cannot
#: cross-wire each other's task functions into a shared global.
_TASK_FN: Callable | None = None
_TASK_LOCK = threading.Lock()


def _call_task(arg):
    return _TASK_FN(arg)


def _call_task_indexed(indexed_arg):
    index, arg = indexed_arg
    return index, _TASK_FN(arg)


def fork_available() -> bool:
    """True when ``fork``-based pools can be used on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Usable CPUs for this process (respects cgroup/affinity limits)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def effective_workers(n_workers: int, n_tasks: int) -> int:
    """The worker count a pool call will actually use.

    Collapses to 1 (the serial path, bit-identical by construction)
    whenever a pool could only lose: a single usable CPU, too few
    tasks to amortize worker startup (:data:`MIN_POOL_TASKS`), or no
    ``fork`` support. Never exceeds the task count.
    """
    if n_workers <= 1 or n_tasks < MIN_POOL_TASKS:
        return 1
    if not fork_available() or default_workers() == 1:
        return 1
    return min(n_workers, n_tasks)


def fork_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_workers: int = 1,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` across ``n_workers`` forked processes.

    ``fn`` may be any callable — including closures — because workers
    inherit it via fork rather than pickling it. ``items`` and the
    results must still be picklable. Results come back in input order,
    bit-identical to ``[fn(x) for x in items]`` provided ``fn`` is a
    pure function of its argument (use :mod:`repro.sim.seeding` to
    derive per-task randomness).

    Runs serially when :func:`effective_workers` collapses the request:
    ``n_workers <= 1``, fewer than :data:`MIN_POOL_TASKS` items, a
    single usable CPU, or no ``fork`` support.
    """
    work: Sequence[T] = list(items)
    workers = effective_workers(n_workers, len(work))
    if workers <= 1:
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = max(1, len(work) // (4 * workers))
    global _TASK_FN
    with _TASK_LOCK:
        _TASK_FN = fn
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=workers) as pool:
                return pool.map(_call_task, work, chunksize=chunksize)
        finally:
            _TASK_FN = None


def fork_imap_unordered(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_workers: int = 1,
) -> Iterator[tuple[int, R]]:
    """Yield ``(index, fn(item))`` pairs as tasks complete.

    The streaming variant of :func:`fork_map` used by the sharded
    experiment scheduler: the caller commits each result (store flush,
    journal mark) the moment its shard finishes instead of waiting for
    the whole map, so a killed run loses at most the in-flight shards.
    Completion order is scheduling-dependent; the index identifies the
    task. The serial fallback (same guards as :func:`fork_map`) yields
    in input order.

    Each item travels as its own pool task (``chunksize=1``) — callers
    amortize dispatch by making the items themselves chunky (shards of
    tasks, not single tasks).
    """
    work: Sequence[T] = list(items)
    workers = effective_workers(n_workers, len(work))
    if workers <= 1:
        for index, item in enumerate(work):
            yield index, fn(item)
        return
    global _TASK_FN
    with _TASK_LOCK:
        _TASK_FN = fn
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=workers) as pool:
                yield from pool.imap_unordered(
                    _call_task_indexed, enumerate(work), chunksize=1
                )
        finally:
            _TASK_FN = None
