"""Process-pool fan-out shared by the experiment and Monte-Carlo runners.

Two constraints shape this helper:

* Task *functions* are often closures (tracker/trace factories captured
  in a lambda), which ``pickle`` rejects. On platforms with ``fork``
  the children inherit the function through process memory instead, so
  only the per-task *arguments* and results cross the pipe.
* Fan-out must be an implementation detail: callers pass ``n_workers``
  and get back results in task order, identical to a serial map.

When ``fork`` is unavailable, or the pool cannot be built, the map
degrades to serial execution — correctness never depends on
parallelism being possible.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Function handed to workers through fork-inherited memory. Only valid
#: between pool creation and teardown in :func:`fork_map`; the lock
#: serialises concurrent fork_map calls so two threads cannot
#: cross-wire each other's task functions into a shared global.
_TASK_FN: Callable | None = None
_TASK_LOCK = threading.Lock()


def _call_task(arg):
    return _TASK_FN(arg)


def fork_available() -> bool:
    """True when ``fork``-based pools can be used on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def default_workers() -> int:
    """Usable CPUs for this process (respects cgroup/affinity limits)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def fork_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_workers: int = 1,
    chunksize: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` across ``n_workers`` forked processes.

    ``fn`` may be any callable — including closures — because workers
    inherit it via fork rather than pickling it. ``items`` and the
    results must still be picklable. Results come back in input order,
    bit-identical to ``[fn(x) for x in items]`` provided ``fn`` is a
    pure function of its argument (use :mod:`repro.sim.seeding` to
    derive per-task randomness).

    Runs serially when ``n_workers <= 1``, when there is at most one
    item, or when fork is unavailable.
    """
    work: Sequence[T] = list(items)
    if n_workers <= 1 or len(work) <= 1 or not fork_available():
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = max(1, len(work) // (4 * n_workers))
    global _TASK_FN
    with _TASK_LOCK:
        _TASK_FN = fn
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(processes=min(n_workers, len(work))) as pool:
                return pool.map(_call_task, work, chunksize=chunksize)
        finally:
            _TASK_FN = None
