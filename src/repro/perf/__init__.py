"""Performance substrate: the trace-driven Gem5 substitute."""

from .energy import (
    ACT_ENERGY_SHARE,
    DMQ_POWER_W,
    DRAM_POWER_W,
    TRNG_POWER_W,
    EnergyBreakdown,
    mitigation_act_overhead,
    scheme_energy,
    table8,
)
from .memctrl import MemorySystemSim, MitigationPolicy, PerfResult
from .runner import (
    NormalizedPerf,
    evaluate_scenario,
    evaluate_workload,
    figure16,
    figure17,
    geometric_mean,
)
from .workloads import (
    RATE_WORKLOADS,
    Workload,
    all_rate_names,
    mixed_workloads,
    rate_mix,
    workload_cores,
)

__all__ = [
    "ACT_ENERGY_SHARE",
    "DMQ_POWER_W",
    "DRAM_POWER_W",
    "EnergyBreakdown",
    "MemorySystemSim",
    "MitigationPolicy",
    "NormalizedPerf",
    "PerfResult",
    "RATE_WORKLOADS",
    "TRNG_POWER_W",
    "Workload",
    "all_rate_names",
    "evaluate_scenario",
    "evaluate_workload",
    "figure16",
    "figure17",
    "geometric_mean",
    "mitigation_act_overhead",
    "mixed_workloads",
    "rate_mix",
    "scheme_energy",
    "table8",
    "workload_cores",
]
