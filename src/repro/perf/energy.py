"""Memory energy accounting (paper Section VIII-D, Table VIII).

The paper's energy story has three parts: the TRNG (290 uW), the DMQ
(86 uW) — both four orders of magnitude below DRAM power — and the
extra activations from mitigative victim refreshes. Activation energy
is ~13% of total memory energy, so even a 25% ACT increase moves the
total by only ~3%.

We account energy from simulation statistics: every demand activation
costs one ACT; every mitigation refreshes ``2 * blast_radius`` victim
rows, each a silent ACT.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Share of total memory energy spent on activations (Section VIII-D).
ACT_ENERGY_SHARE = 0.13

#: Static + dynamic power of the 7-bit TRNG, in watts (Section VIII-D).
TRNG_POWER_W = 290e-6

#: Static + dynamic power of the DMQ, in watts (CACTI estimate, §VIII-D).
DMQ_POWER_W = 86e-6

#: Ballpark DRAM device power for the "four orders of magnitude" claim.
DRAM_POWER_W = 4.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Relative memory energy of a scheme vs the unprotected baseline."""

    scheme: str
    act_energy: float       # relative to baseline ACT energy
    non_act_energy: float   # relative to baseline non-ACT energy

    @property
    def total(self) -> float:
        return (
            ACT_ENERGY_SHARE * self.act_energy
            + (1.0 - ACT_ENERGY_SHARE) * self.non_act_energy
        )


def mitigation_act_overhead(
    demand_acts: int, mitigations: int, blast_radius: int = 1
) -> float:
    """Relative ACT energy: (demand + victim-refresh ACTs) / demand."""
    if demand_acts <= 0:
        raise ValueError("demand_acts must be positive")
    mitigative = mitigations * 2 * blast_radius
    return (demand_acts + mitigative) / demand_acts


def scheme_energy(
    scheme: str,
    demand_acts: int,
    mitigations: int,
    blast_radius: int = 1,
    auxiliary_power_w: float = TRNG_POWER_W + DMQ_POWER_W,
) -> EnergyBreakdown:
    """Energy breakdown from simulation counters.

    Auxiliary structures (TRNG, DMQ) contribute to the non-ACT bucket;
    at microwatts against watts the effect is ~1e-4 and the paper rounds
    it to 1.00x.
    """
    act = mitigation_act_overhead(demand_acts, mitigations, blast_radius)
    non_act = 1.0 + auxiliary_power_w / DRAM_POWER_W
    return EnergyBreakdown(scheme=scheme, act_energy=act, non_act_energy=non_act)


def table8(
    demand_acts_per_interval: float = 30.0,
    max_act: int = 73,
) -> list[EnergyBreakdown]:
    """Table VIII rows from first principles.

    ``demand_acts_per_interval`` is the average demand activation count
    per bank per tREFI across the workload suite (SPEC-like traffic
    keeps banks well below the MaxACT ceiling). MINT mitigates once per
    tREFI; RFM32/RFM16 add one mitigation per 32/16 activations.
    """
    demand = demand_acts_per_interval
    rows = [
        scheme_energy("Base (No Mitig)", int(demand * 1000), 0),
        scheme_energy("MINT", int(demand * 1000), 1000),
    ]
    for rfm_th in (32, 16):
        extra = demand * 1000 / rfm_th
        rows.append(
            scheme_energy(
                f"MINT+RFM{rfm_th}",
                int(demand * 1000),
                int(1000 + extra),
            )
        )
    return rows
