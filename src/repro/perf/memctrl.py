"""Discrete-event memory-system model (the Gem5 substitute).

A closed-loop queueing simulation: each core keeps a bounded number of
outstanding misses (MLP tokens). A token thinks for the time the core
needs to reach its next miss, then queues a DRAM request; the bank
serves requests in arrival order with row-buffer state and tRC
enforcement; REF blocks every bank each tREFI for tRFC.

Mitigation overheads are injected exactly as the paper describes
(Section VIII-A):

* **MINT** mitigations ride inside the REF's tRFC — zero added time.
* **RFM**: when a bank's RAA counter crosses RFMTH, a same-bank RFM
  blocks it for tRFM_sb = 205 ns.
* **MC-PARA**: each activation triggers, with probability p, a DRFM
  blocking the bank for tDRFM_sb = 410 ns.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field

from ..dram.bank import Bank
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from .workloads import Workload


@dataclass
class MitigationPolicy:
    """Which mitigation overhead the memory system pays.

    ``kind`` is one of ``"none"`` (baseline / MINT: both add zero bank
    time), ``"rfm"`` (RAA counters + same-bank RFM), or ``"mc-para"``
    (probabilistic DRFM per activation).
    """

    kind: str = "none"
    rfm_th: int = 32
    para_probability: float = 1.0 / 74.0
    #: JEDEC rate limit: at most one DRFM per this many tREFI per bank
    #: (Section VIII-A notes the paper lifts the limit; 0 disables it).
    drfm_per_trefi: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("none", "rfm", "mc-para"):
            raise ValueError(f"unknown policy kind {self.kind!r}")
        if self.drfm_per_trefi < 0:
            raise ValueError("drfm_per_trefi must be non-negative")


@dataclass
class PerfResult:
    """Outcome of one simulation run."""

    policy: str
    sim_time_ns: float
    instructions: list[int]
    requests: list[int]
    demand_activations: int
    rfm_commands: int
    drfm_commands: int
    refreshes: int

    @property
    def total_instructions(self) -> int:
        return sum(self.instructions)

    @property
    def ipc(self) -> float:
        """Aggregate instructions per nanosecond (arbitrary clock)."""
        if self.sim_time_ns <= 0:
            return 0.0
        return self.total_instructions / self.sim_time_ns


class MemorySystemSim:
    """Closed-loop DES over banks, cores, REF/RFM/DRFM events.

    ``cores`` is a list of workloads (one per core). Each core has
    ``mlp`` tokens cycling between think time and memory service.
    """

    #: Core clock used to convert CPI into nanoseconds (3 GHz, Table VI).
    CORE_GHZ = 3.0

    def __init__(
        self,
        cores: list[Workload],
        policy: MitigationPolicy | None = None,
        timing: DDR5Timing = DEFAULT_TIMING,
        num_banks: int = 32,
        rows_per_bank: int = 1 << 17,
        seed: int = 99,
    ) -> None:
        if not cores:
            raise ValueError("at least one core required")
        self.cores = cores
        self.policy = policy or MitigationPolicy()
        self.timing = timing
        self.banks = [Bank(timing) for _ in range(num_banks)]
        self.rows_per_bank = rows_per_bank
        self.rng = random.Random(seed)
        # Separate stream for mitigation decisions so every policy sees
        # an identical demand-address sequence (run-to-run comparability).
        self.policy_rng = random.Random(seed ^ 0xC0FFEE)
        self._raa = [0] * num_banks
        self._rfm_owed = [0] * num_banks
        self._last_drfm_ns = [-1e18] * num_banks
        self.drfm_suppressed = 0
        #: JEDEC lets the controller defer RFMs; beyond this many owed
        #: commands the next one issues immediately (blocking).
        self.max_deferred_rfm = 4
        self._last_row: dict[tuple[int, int], int] = {}
        self.instructions = [0] * len(cores)
        self.requests = [0] * len(cores)
        self.demand_activations = 0
        self.rfm_commands = 0
        self.drfm_commands = 0
        self.refreshes = 0

    # ------------------------------------------------------------------
    def _think_time_ns(self, core: int) -> float:
        """Time for a core to produce its next miss (1000/MPKI instrs)."""
        workload = self.cores[core]
        if workload.mpki <= 0:
            return float("inf")
        instructions = 1000.0 / workload.mpki
        cycles = instructions * workload.base_cpi
        return cycles / self.CORE_GHZ

    def _choose_address(self, core: int) -> tuple[int, int, bool]:
        """(bank, row, is_row_hit) for the next request of ``core``."""
        workload = self.cores[core]
        bank = self.rng.randrange(len(self.banks))
        key = (core, bank)
        if key in self._last_row and self.rng.random() < workload.row_hit_rate:
            return bank, self._last_row[key], True
        row = self.rng.randrange(self.rows_per_bank)
        self._last_row[key] = row
        return bank, row, False

    # ------------------------------------------------------------------
    def run(self, sim_time_ns: float = 2_000_000.0) -> PerfResult:
        """Simulate ``sim_time_ns`` of wall-clock DRAM time."""
        events: list[tuple[float, int, int]] = []  # (time, seq, core)
        seq = 0
        for core in range(len(self.cores)):
            for _ in range(self.cores[core].mlp):
                heapq.heappush(events, (self._think_time_ns(core), seq, core))
                seq += 1
        next_ref = self.timing.t_refi_ns
        instructions_per_miss = [
            1000.0 / w.mpki if w.mpki > 0 else 0.0 for w in self.cores
        ]
        while events:
            time_ns, _, core = heapq.heappop(events)
            if time_ns > sim_time_ns:
                break
            # All-bank refresh boundaries that elapsed before this event.
            while next_ref <= time_ns:
                for bank in self.banks:
                    bank.refresh(next_ref)
                self.refreshes += 1
                next_ref += self.timing.t_refi_ns
            bank_index, row, expect_hit = self._choose_address(core)
            bank = self.banks[bank_index]
            self._drain_deferred_rfm(bank_index, time_ns)
            was_open = bank.open_row == row
            done = bank.access(row, time_ns)
            if not was_open:
                self.demand_activations += 1
                # The mitigation command is scheduled behind the demand
                # access: it blocks the bank for *subsequent* requests
                # but does not delay the request that triggered it.
                self._mitigation_overhead(bank_index, done)
            self.requests[core] += 1
            self.instructions[core] += int(instructions_per_miss[core])
            heapq.heappush(
                events, (done + self._think_time_ns(core), seq, core)
            )
            seq += 1
        return PerfResult(
            policy=self.policy.kind,
            sim_time_ns=sim_time_ns,
            instructions=list(self.instructions),
            requests=list(self.requests),
            demand_activations=self.demand_activations,
            rfm_commands=self.rfm_commands,
            drfm_commands=self.drfm_commands,
            refreshes=self.refreshes,
        )

    # ------------------------------------------------------------------
    def _drain_deferred_rfm(self, bank_index: int, now_ns: float) -> None:
        """Execute owed RFMs inside bank-idle gaps (free), or force one
        blocking RFM when the deferral ceiling is hit.

        This models the memory controller's latitude to schedule RFM
        commands opportunistically, which is why the paper measures
        RFM32 at ~0.1% slowdown despite each RFM costing 205 ns.
        """
        bank = self.banks[bank_index]
        owed = self._rfm_owed[bank_index]
        t = self.timing
        while owed > 0 and now_ns - bank.free_at_ns >= t.t_rfm_sb_ns:
            # The RFM fits entirely in elapsed idle time: no delay.
            bank.rfm(bank.free_at_ns)
            self.rfm_commands += 1
            owed -= 1
        if owed > self.max_deferred_rfm:
            bank.rfm(now_ns)
            self.rfm_commands += 1
            owed -= 1
        self._rfm_owed[bank_index] = owed

    def _mitigation_overhead(self, bank_index: int, now_ns: float) -> None:
        """Queue the policy's per-activation cost on the bank."""
        policy = self.policy
        bank = self.banks[bank_index]
        if policy.kind == "rfm":
            self._raa[bank_index] += 1
            if self._raa[bank_index] >= policy.rfm_th:
                self._raa[bank_index] = 0
                self._rfm_owed[bank_index] += 1
        elif policy.kind == "mc-para":
            # DRFM cannot be deferred: it must capture the aggressor
            # address in-flight, so every mitigation blocks the bank
            # (Section VIII-E: "all mitigations block the bank").
            if self.policy_rng.random() < policy.para_probability:
                if policy.drfm_per_trefi > 0:
                    # JEDEC rate limit: drop mitigations that arrive
                    # inside the per-bank exclusion window. This is the
                    # security-relevant cost of the limit (Section II-D:
                    # it "places a high limit on the TRH tolerated").
                    window = (
                        policy.drfm_per_trefi * self.timing.t_refi_ns
                    )
                    if now_ns - self._last_drfm_ns[bank_index] < window:
                        self.drfm_suppressed += 1
                        return
                    self._last_drfm_ns[bank_index] = now_ns
                self.drfm_commands += 1
                bank.drfm(now_ns)
