"""Experiment runner for the performance figures (Fig 16, Fig 17).

For each workload the runner simulates the baseline (no mitigation,
which also represents MINT: its mitigations ride inside tRFC and cost
nothing — Section VIII-A), the RFM co-designs, and MC-PARA, then
reports performance normalised to the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..parallel import fork_map
from .memctrl import MemorySystemSim, MitigationPolicy, PerfResult
from .workloads import (
    RATE_WORKLOADS,
    Workload,
    mixed_workloads,
    rate_mix,
    workload_cores,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard (scenario -> here)
    from ..scenario import Scenario


@dataclass
class NormalizedPerf:
    """Relative performance of each scheme on one workload."""

    workload: str
    mint: float
    rfm32: float
    rfm16: float
    mc_para: float | None = None


def _run(
    cores: list[Workload],
    policy: MitigationPolicy,
    sim_time_ns: float,
    seed: int,
    timing: DDR5Timing,
) -> PerfResult:
    sim = MemorySystemSim(cores, policy, timing=timing, seed=seed)
    return sim.run(sim_time_ns)


def evaluate_workload(
    name: str,
    cores: list[Workload],
    sim_time_ns: float = 2_000_000.0,
    seed: int = 99,
    timing: DDR5Timing = DEFAULT_TIMING,
    include_mc_para: bool = False,
    mc_para_probability: float = 1.0 / 74.0,
) -> NormalizedPerf:
    """Relative performance of MINT / RFM32 / RFM16 (and MC-PARA)."""
    base = _run(cores, MitigationPolicy("none"), sim_time_ns, seed, timing)
    base_ipc = max(base.ipc, 1e-12)
    rfm32 = _run(
        cores, MitigationPolicy("rfm", rfm_th=32), sim_time_ns, seed, timing
    )
    rfm16 = _run(
        cores, MitigationPolicy("rfm", rfm_th=16), sim_time_ns, seed, timing
    )
    mc_para = None
    if include_mc_para:
        para = _run(
            cores,
            MitigationPolicy("mc-para", para_probability=mc_para_probability),
            sim_time_ns,
            seed,
            timing,
        )
        mc_para = para.ipc / base_ipc
    return NormalizedPerf(
        workload=name,
        mint=1.0,  # MINT's mitigations are free by construction (§VIII-A).
        rfm32=rfm32.ipc / base_ipc,
        rfm16=rfm16.ipc / base_ipc,
        mc_para=mc_para,
    )


def evaluate_scenario(
    scenario: "Scenario",
    workload: str = "mcf_r",
    sim_time_ns: float = 2_000_000.0,
    include_mc_para: bool = False,
    mc_para_probability: float = 1.0 / 74.0,
) -> NormalizedPerf:
    """Relative performance of the schemes under a declarative scenario.

    The scenario contributes the device timing (including any custom
    :class:`~repro.dram.timing.DDR5Timing` override) and the seed
    policy — the perf simulator's RNG derives from the scenario's
    stable task seed, so the figure is reproducible from the scenario
    alone. ``workload`` names a rate workload or ``mixN`` (see
    :func:`repro.perf.workloads.workload_cores`).
    """
    return evaluate_workload(
        workload,
        workload_cores(workload),
        sim_time_ns=sim_time_ns,
        seed=scenario.task_seed(),
        timing=scenario.resolved_timing(),
        include_mc_para=include_mc_para,
        mc_para_probability=mc_para_probability,
    )


def figure16(
    sim_time_ns: float = 2_000_000.0,
    include_mixes: bool = True,
    seed: int = 99,
    n_workers: int = 1,
) -> list[NormalizedPerf]:
    """The Fig 16 bars: every rate workload (and mixes) x every scheme.

    Workloads are independent, so they fan out over ``n_workers``
    processes; each workload's seed is fixed by the caller, so results
    are identical to the serial sweep.
    """
    jobs: list[tuple[str, list[Workload]]] = [
        (workload.name, rate_mix(workload)) for workload in RATE_WORKLOADS
    ]
    if include_mixes:
        jobs.extend(
            (f"mix{index + 1}", mix)
            for index, mix in enumerate(mixed_workloads())
        )
    return fork_map(
        lambda job: evaluate_workload(job[0], job[1], sim_time_ns, seed),
        jobs,
        n_workers=n_workers,
        chunksize=1,
    )


def figure17(
    sim_time_ns: float = 2_000_000.0,
    seed: int = 99,
    mc_para_probability: float = 1.0 / 74.0,
    n_workers: int = 1,
) -> list[NormalizedPerf]:
    """The Fig 17 comparison: MINT vs MC-PARA at similar MinTRH."""
    return fork_map(
        lambda workload: evaluate_workload(
            workload.name,
            rate_mix(workload),
            sim_time_ns,
            seed,
            include_mc_para=True,
            mc_para_probability=mc_para_probability,
        ),
        RATE_WORKLOADS,
        n_workers=n_workers,
        chunksize=1,
    )


def geometric_mean(values: list[float]) -> float:
    """Geomean used for the "average slowdown" summaries."""
    if not values:
        raise ValueError("values must be non-empty")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError("values must be positive")
        product *= value
    return product ** (1.0 / len(values))
