"""Synthetic SPEC2017-like workloads (substitute for the paper's traces).

The paper evaluates 17 SPEC2017 *rate* workloads plus 17 mixes in Gem5.
Slowdown from Rowhammer mitigation is a function of just two workload
properties: memory intensity (misses per kilo-instruction at the LLC)
and row-buffer locality. We therefore model each workload as an
(MPKI, row-buffer-hit-rate, base-CPI) triple chosen to span the same
range SPEC2017 does — memory-bound workloads like mcf/lbm at tens of
MPKI, compute-bound ones like leela/exchange2 below 1.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass


@dataclass(frozen=True)
class Workload:
    """A synthetic workload's memory behaviour.

    ``mpki``: LLC misses per 1000 instructions (each miss is one DRAM
    request). ``row_hit_rate``: probability a request hits the open row
    of its bank. ``base_cpi``: CPI with a perfect memory system.
    """

    name: str
    mpki: float
    row_hit_rate: float
    base_cpi: float = 1.0
    mlp: int = 4

    def __post_init__(self) -> None:
        if self.mpki < 0:
            raise ValueError("mpki must be non-negative")
        if not 0.0 <= self.row_hit_rate <= 1.0:
            raise ValueError("row_hit_rate must be in [0, 1]")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")
        if self.mlp < 1:
            raise ValueError("mlp must be >= 1")

    @property
    def memory_bound(self) -> bool:
        return self.mpki >= 10.0


#: The 17 rate workloads, MPKI values patterned on published SPEC2017
#: characterisation (memory-bound suite members first).
RATE_WORKLOADS = [
    Workload("mcf_r", 38.0, 0.30, mlp=2),        # pointer chasing
    Workload("lbm_r", 32.0, 0.75, mlp=8),        # streaming
    Workload("omnetpp_r", 21.0, 0.25, mlp=2),
    Workload("gcc_r", 16.0, 0.45, mlp=3),
    Workload("bwaves_r", 15.0, 0.80, mlp=8),
    Workload("cactuBSSN_r", 12.0, 0.60, mlp=6),
    Workload("fotonik3d_r", 12.0, 0.85, mlp=8),
    Workload("roms_r", 10.0, 0.70, mlp=6),
    Workload("xalancbmk_r", 9.0, 0.35, mlp=2),
    Workload("cam4_r", 7.0, 0.55, mlp=4),
    Workload("wrf_r", 6.0, 0.65, mlp=4),
    Workload("blender_r", 4.0, 0.50, mlp=4),
    Workload("perlbench_r", 2.0, 0.40, mlp=2),
    Workload("x264_r", 1.5, 0.60, mlp=4),
    Workload("deepsjeng_r", 1.2, 0.30, mlp=2),
    Workload("leela_r", 0.8, 0.35, mlp=2),
    Workload("exchange2_r", 0.2, 0.50, mlp=2),
]


def mixed_workloads(count: int = 17) -> list[list[Workload]]:
    """17 four-way mixes pairing memory-bound and compute-bound cores.

    Deterministic round-robin over the rate list so experiments are
    reproducible without a seed.
    """
    mixes = []
    n = len(RATE_WORKLOADS)
    for i in range(count):
        mix = [
            RATE_WORKLOADS[(i * 4 + j * 5) % n]
            for j in range(4)
        ]
        mixes.append(mix)
    return mixes


def rate_mix(workload: Workload, cores: int = 4) -> list[Workload]:
    """A rate workload: the same program on every core."""
    return [workload] * cores


def all_rate_names() -> list[str]:
    return [w.name for w in RATE_WORKLOADS]


def workload_cores(name: str, cores: int = 4) -> list[Workload]:
    """Resolve a workload *name* to its core list.

    Accepts any rate workload name (a ``cores``-way rate mix of that
    program) or ``mixN`` for the N-th deterministic four-way mix
    (1-based, as the figures label them). The name-based entry point
    the Scenario facade resolves through.
    """
    for workload in RATE_WORKLOADS:
        if workload.name == name:
            return rate_mix(workload, cores=cores)
    if name.startswith("mix"):
        try:
            index = int(name[3:])
        except ValueError:
            index = 0
        mixes = mixed_workloads()
        if 1 <= index <= len(mixes):
            return mixes[index - 1]
    raise KeyError(
        f"unknown workload {name!r}; known: {all_rate_names()} "
        f"plus mix1..mix{len(mixed_workloads())}"
    )
