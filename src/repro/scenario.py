"""The declarative Scenario API: one object for "run tracker T against
attack A on geometry G with timing X at threshold TRH under seed S".

Every entry point of the reproduction — the CLI, the parallel
experiment runner, the Monte-Carlo layer, the perf layer — used to
spell that object its own way (``run_attack`` kwargs, ``RankSimulator``
factory closures, ``exp.PointConfig`` payloads, ``montecarlo`` window
kwargs). :class:`Scenario` is the canonical spelling: a frozen, fully
JSON-serialisable description of one evaluation, with a stable
:meth:`~Scenario.fingerprint` built on
:func:`repro.sim.seeding.stable_hash` so a scenario is also a cache
key, a task payload for a worker pool, and a file on disk
(``repro run scenario.json``).

:class:`Session` is the facade that executes one:

* :meth:`Session.run` — one full trace simulation
  (:class:`~repro.sim.results.RankSimResult`);
* :meth:`Session.run_many` — repeated independent tREFW windows, the
  Monte-Carlo estimate (:class:`~repro.sim.montecarlo.MonteCarloResult`),
  bit-identical across worker counts;
* :meth:`Session.sweep` — cross the scenario with axes of variations
  into an :class:`~repro.exp.grid.ExperimentGrid` for the parallel
  runner;
* :meth:`Session.perf` — the performance figures for the scenario's
  device timing (:class:`~repro.perf.runner.NormalizedPerf`).

Seed policy: ``Scenario.seed`` is the only entropy root. Every random
stream derives from :meth:`Scenario.task_seed` — a stable hash of the
*whole* payload — via labelled :func:`~repro.sim.seeding.stable_seed`
calls (``tracker_seed(bank)``, ``trace_seed()``, Monte-Carlo window
seeds), so results are pure functions of the scenario no matter how
the work is partitioned, and any knob change re-keys every stream.

The legacy free functions (:func:`repro.sim.engine.run_attack`,
:func:`repro.sim.engine.run_rank_attack`,
:func:`repro.sim.montecarlo.estimate_failure_probability`) remain as
shims whose results are pinned bit-identical to this facade by
``tests/scenario/test_scenario.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Mapping, TYPE_CHECKING

from .attacks.base import AttackParams
from .attacks.registry import (
    is_channel_attack,
    is_rank_attack,
    make_attack,
    make_channel_attack,
    make_rank_attack,
)
from .dram.timing import DDR5Timing, DEFAULT_TIMING
from .sim.engine import ChannelSimulator, EngineConfig, RankSimulator
from .sim.montecarlo import MonteCarloResult, scaled_timing
from .sim.results import ChannelSimResult, RankSimResult
from .sim.seeding import stable_hash, stable_seed
from .trackers.base import Tracker
from .trackers.registry import make_tracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (exp -> scenario)
    from .exp.grid import ExperimentGrid
    from .perf.runner import NormalizedPerf

#: Bump when the payload schema or the seed-derivation scheme changes;
#: hashed into every fingerprint and task seed so stale cached results
#: are re-keyed instead of silently reused.
SCENARIO_VERSION = 1

#: The identity classification of every spec dataclass field in this
#: module, enforced statically by ``repro lint`` (rule
#: ``identity-manifest``) and consumed at runtime by
#: :meth:`Scenario.identity_payload`. ``identity`` fields are hashed
#: into fingerprints and task seeds — changing one re-keys every
#: random stream and cache entry. ``excluded`` fields are pure
#: implementation knobs whose values the engine pins bit-identical
#: (scalar/vectorized/fused/compiled runs of one scenario share every
#: stream), so they must *never* join the hash. Adding a field without
#: classifying it here is a lint error: deciding its fingerprint
#: status is part of adding the field.
IDENTITY_MANIFEST = {
    "TrackerSpec": {
        "identity": ["name", "params", "dmq", "dmq_depth"],
        "excluded": [],
    },
    "AttackSpec": {
        "identity": ["name", "params"],
        "excluded": [],
    },
    "Scenario": {
        "identity": [
            "tracker", "attack", "trh", "intervals", "max_act",
            "base_row", "num_rows", "blast_radius",
            "allow_postponement", "max_postponed", "refi_per_refw",
            "scaled_timing", "num_banks", "num_ranks",
            "concurrent_banks", "timing", "seed",
        ],
        "excluded": ["vectorized", "backend"],
    },
}


def _frozen_params(params: Mapping[str, Any] | None) -> tuple:
    """Normalise a kwargs mapping into a hashable, ordered tuple."""
    if not params:
        return ()
    return tuple(
        (key, tuple(value) if isinstance(value, list) else value)
        for key, value in sorted(params.items())
    )


@dataclass(frozen=True)
class TrackerSpec:
    """A tracker by registry name plus factory kwargs (JSON-safe)."""

    name: str
    params: tuple = ()
    dmq: bool = False
    dmq_depth: int = 4

    @classmethod
    def of(cls, name: str, dmq: bool = False, dmq_depth: int = 4,
           **params: Any) -> "TrackerSpec":
        return cls(name, _frozen_params(params), dmq, dmq_depth)

    @property
    def label(self) -> str:
        """Human-readable identity, unique within a well-formed grid."""
        base = self.name
        if self.params:
            args = ",".join(f"{key}={value}" for key, value in self.params)
            base = f"{base}({args})"
        if self.dmq:
            base = f"{base}+dmq{self.dmq_depth}"
        return base

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "params": dict(self.params),
            "dmq": self.dmq,
            "dmq_depth": self.dmq_depth,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "TrackerSpec":
        return cls(
            payload["name"],
            _frozen_params(payload.get("params")),
            payload.get("dmq", False),
            payload.get("dmq_depth", 4),
        )


@dataclass(frozen=True)
class AttackSpec:
    """An attack pattern by registry name plus factory kwargs."""

    name: str
    params: tuple = ()

    @classmethod
    def of(cls, name: str, **params: Any) -> "AttackSpec":
        return cls(name, _frozen_params(params))

    def to_payload(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "AttackSpec":
        return cls(payload["name"], _frozen_params(payload.get("params")))


@dataclass(frozen=True)
class Scenario:
    """One fully-described evaluation: who, what, where, and with which
    randomness.

    All fields are plain JSON-serialisable values (the specs and the
    optional :class:`~repro.dram.timing.DDR5Timing` override are frozen
    dataclasses with payload conversions), so a scenario round-trips
    losslessly through :meth:`to_payload`/:meth:`from_payload` and can
    be shipped to worker processes, stored on disk, or fingerprinted.

    ``timing`` overrides the DDR5 timing outright; ``scaled_timing``
    instead selects the scaled Monte-Carlo device whose window holds
    ``max_act`` ACTs per tREFI (the fast regime used by tests and the
    statistical validation). The two are mutually exclusive.

    ``num_banks > 1`` — or an attack with a dedicated rank factory —
    runs the scenario on the rank engine: the attack resolves through
    :func:`repro.attacks.registry.make_rank_attack` (row-only attacks
    are auto-interleaved) and each bank gets its own tracker instance
    with an independent derived seed. ``num_ranks > 1`` — or a
    dedicated channel attack — lifts once more, onto the
    :class:`~repro.sim.engine.ChannelSimulator`: the attack resolves
    through :func:`repro.attacks.registry.make_channel_attack`
    (rank-scoped attacks replicate across the ranks) and every
    ``(rank, bank)`` tracker draws an independent derived stream.
    """

    tracker: TrackerSpec
    attack: AttackSpec
    trh: float = 4800.0
    intervals: int = 2000
    max_act: int = 73
    base_row: int = 1000
    num_rows: int = 128 * 1024
    blast_radius: int = 1
    allow_postponement: bool = False
    max_postponed: int = 4
    refi_per_refw: int = 8192
    scaled_timing: bool = False
    num_banks: int = 1
    num_ranks: int = 1
    concurrent_banks: int | None = None
    vectorized: bool | None = None
    backend: str | None = None
    timing: DDR5Timing | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if isinstance(self.tracker, str):
            object.__setattr__(self, "tracker", TrackerSpec.of(self.tracker))
        if isinstance(self.attack, str):
            object.__setattr__(self, "attack", AttackSpec.of(self.attack))
        if self.num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if self.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        if self.intervals < 0:
            raise ValueError("intervals must be >= 0")
        if self.max_act < 1:
            raise ValueError("max_act must be >= 1")
        if self.scaled_timing and self.timing is not None:
            raise ValueError(
                "scaled_timing and an explicit timing override are "
                "mutually exclusive"
            )
        if self.backend not in (None, "auto", "compiled", "numpy"):
            raise ValueError(
                f"backend must be 'auto', 'compiled', or 'numpy', "
                f"got {self.backend!r}"
            )

    # -- identity ------------------------------------------------------
    def to_payload(self) -> dict:
        """Plain-JSON form; the canonical serialisation of the scenario."""
        return {
            "tracker": self.tracker.to_payload(),
            "attack": self.attack.to_payload(),
            "trh": self.trh,
            "intervals": self.intervals,
            "max_act": self.max_act,
            "base_row": self.base_row,
            "num_rows": self.num_rows,
            "blast_radius": self.blast_radius,
            "allow_postponement": self.allow_postponement,
            "max_postponed": self.max_postponed,
            "refi_per_refw": self.refi_per_refw,
            "scaled_timing": self.scaled_timing,
            "num_banks": self.num_banks,
            "num_ranks": self.num_ranks,
            "concurrent_banks": self.concurrent_banks,
            "vectorized": self.vectorized,
            "backend": self.backend,
            "timing": None if self.timing is None else {
                f.name: getattr(self.timing, f.name)
                for f in fields(DDR5Timing)
            },
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from :meth:`to_payload` output (or a
        hand-written ``scenario.json``). Missing fields take their
        defaults; unknown keys (other than an informational
        ``version``) are rejected so typos fail loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known - {"version"}
        if unknown:
            raise ValueError(
                f"unknown scenario field(s) {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        data = {
            key: value for key, value in payload.items() if key in known
        }
        for key, spec_type in (("tracker", TrackerSpec),
                               ("attack", AttackSpec)):
            if key not in data:
                raise ValueError(f"scenario payload needs a {key!r} spec")
            value = data[key]
            if isinstance(value, str):
                # The string shorthand the constructor also accepts:
                # "tracker": "mint" means the registry default spec.
                data[key] = spec_type.of(value)
            elif isinstance(value, Mapping):
                data[key] = spec_type.from_payload(value)
            else:
                raise ValueError(
                    f"{key!r} must be a registry name or a "
                    f"{{\"name\": ..., \"params\": ...}} object, "
                    f"got {type(value).__name__}"
                )
        if data.get("timing") is not None:
            data["timing"] = DDR5Timing(**dict(data["timing"]))
        return cls(**data)

    def identity_payload(self) -> dict:
        """The payload slice that determines the scenario's *result*.

        Exactly :meth:`to_payload` minus ``vectorized`` and
        ``backend``: the kernel and compiled-provider choices are pure
        implementation knobs — the engine pins every combination
        bit-identical — so two scenarios differing only in them must
        share every random stream and every fingerprint (scalar,
        vectorized, and compiled runs of one scenario are the same
        result, and a store serves any from another's cache entry).

        ``num_ranks`` is semantic (it *is* hashed when above 1), but
        the default of 1 — the pre-channel geometry — is elided, so
        every scenario written before the knob existed keeps its
        fingerprint, its task seed, and therefore all of its random
        streams and cached results bit-for-bit. Lifting to more ranks
        re-keys everything, as any knob change must.
        """
        payload = self.to_payload()
        for name in IDENTITY_MANIFEST["Scenario"]["excluded"]:
            del payload[name]
        if payload["num_ranks"] == 1:
            del payload["num_ranks"]
        return payload

    def fingerprint(self) -> str:
        """Stable identity of this scenario's *result*.

        Any change to any semantic field — specs, engine knobs, timing,
        seed — or to :data:`SCENARIO_VERSION` yields a new fingerprint,
        which is exactly the cache-invalidation rule downstream stores
        rely on (``vectorized`` alone does not: see
        :meth:`identity_payload`). Stable across processes, platforms,
        and worker counts.
        """
        return stable_hash(
            "scenario", SCENARIO_VERSION, self.identity_payload()
        )

    def task_seed(self) -> int:
        """The 64-bit root every random stream of this scenario derives
        from (a stable hash of the identity payload plus the version).

        Memoized on the instance: per-bank tracker seeds, the trace
        seed, and Monte-Carlo window seeds all branch off this value,
        and the scenario is frozen, so the payload hash is paid once.
        """
        cached = self.__dict__.get("_task_seed")
        if cached is None:
            cached = stable_seed(
                "scenario-task", SCENARIO_VERSION, self.identity_payload()
            )
            object.__setattr__(self, "_task_seed", cached)
        return cached

    def tracker_seed(self, bank: int = 0, rank: int = 0) -> int:
        """Seed of ``(rank, bank)``'s tracker RNG stream.

        Rank 0 keeps the pre-channel derivation, so a 1-rank channel
        scenario draws exactly the streams the rank engine always drew;
        sibling ranks branch through a ``"channel-rank"`` label so each
        rank's streams are independent and reproducible. (This is the
        scenario-side analogue of — but a different derivation from —
        :func:`repro.trackers.registry.channel_tracker_factory`; to
        reproduce one rank of a Session channel run standalone, build
        trackers with ``scenario.build_tracker(bank, rank=rank)``, not
        with that factory.)
        """
        if rank == 0:
            return stable_seed(self.task_seed(), "tracker", bank)
        return stable_seed(
            self.task_seed(), "channel-rank", rank, "tracker", bank
        )

    def trace_seed(self) -> int:
        """Seed of the attack-trace RNG stream."""
        return stable_seed(self.task_seed(), "trace")

    # -- resolution ----------------------------------------------------
    @property
    def is_rank(self) -> bool:
        """True when the scenario runs on the rank path (multi-bank or
        a dedicated bank-addressed attack factory)."""
        return self.num_banks > 1 or is_rank_attack(self.attack.name)

    @property
    def is_channel(self) -> bool:
        """True when the scenario runs on the channel path (multi-rank
        or a dedicated channel attack factory): ``Session.run`` builds
        a :class:`~repro.sim.engine.ChannelSimulator` and reports a
        :class:`~repro.sim.results.ChannelSimResult`."""
        return self.num_ranks > 1 or is_channel_attack(self.attack.name)

    @property
    def label(self) -> str:
        base = f"{self.tracker.label} vs {self.attack.name}"
        if self.num_ranks > 1:
            base = f"{base}@{self.num_ranks}r{self.num_banks}b"
        elif self.num_banks > 1:
            base = f"{base}@{self.num_banks}b"
        return base

    def resolved_timing(self) -> DDR5Timing:
        """The DDR5 timing this scenario simulates."""
        if self.timing is not None:
            return self.timing
        if self.scaled_timing:
            return scaled_timing(self.max_act, self.refi_per_refw)
        return DEFAULT_TIMING

    def engine_config(self) -> EngineConfig:
        """The :class:`~repro.sim.engine.EngineConfig` this scenario
        resolves to (the only way any layer should build one from a
        scenario)."""
        return EngineConfig(
            timing=self.resolved_timing(),
            trh=self.trh,
            num_rows=self.num_rows,
            blast_radius=self.blast_radius,
            allow_postponement=self.allow_postponement,
            max_postponed=self.max_postponed,
            refi_per_refw=self.refi_per_refw,
            num_banks=self.num_banks,
            num_ranks=self.num_ranks,
            concurrent_banks=self.concurrent_banks,
            vectorized=self.vectorized,
            backend=self.backend or "auto",
        )

    def attack_params(self) -> AttackParams:
        return AttackParams(
            max_act=self.max_act,
            intervals=self.intervals,
            base_row=self.base_row,
        )

    # -- builders ------------------------------------------------------
    def build_tracker(
        self,
        bank: int = 0,
        rng: random.Random | None = None,
        rank: int = 0,
    ) -> Tracker:
        """A fresh tracker instance for ``(rank, bank)``.

        ``rng`` overrides the derived per-bank stream (the Monte-Carlo
        window loop threads one shared window RNG through tracker and
        trace construction, mirroring the legacy
        ``estimate_failure_probability`` contract).
        """
        if rng is None:
            rng = random.Random(self.tracker_seed(bank, rank))
        return make_tracker(
            self.tracker.name,
            rng=rng,
            dmq=self.tracker.dmq,
            dmq_depth=self.tracker.dmq_depth,
            max_act=self.max_act,
            **dict(self.tracker.params),
        )

    def tracker_factory(self) -> Callable[[int], Tracker]:
        """A per-bank factory for :class:`~repro.sim.engine.RankSimulator`
        (each bank's randomness derives from the task seed plus the
        bank index)."""
        return self.build_tracker

    def channel_tracker_factory(self) -> Callable[[int, int], Tracker]:
        """A per-(rank, bank) factory for
        :class:`~repro.sim.engine.ChannelSimulator` (rank 0 draws the
        classic per-bank streams; sibling ranks branch independently —
        see :meth:`tracker_seed`)."""

        def factory(rank: int, bank: int) -> Tracker:
            return self.build_tracker(bank, rank=rank)

        return factory

    def build_trace(self, rng: random.Random | None = None) -> Any:
        """The attack schedule: a :class:`~repro.sim.trace.ChannelTrace`
        on the channel path, bank-addressed on the rank path, row-only
        otherwise."""
        if rng is None:
            rng = random.Random(self.trace_seed())
        if self.is_channel:
            return make_channel_attack(
                self.attack.name,
                self.attack_params(),
                rng=rng,
                num_ranks=self.num_ranks,
                num_banks=self.num_banks,
                **dict(self.attack.params),
            )
        if self.is_rank:
            return make_rank_attack(
                self.attack.name,
                self.attack_params(),
                rng=rng,
                num_banks=self.num_banks,
                **dict(self.attack.params),
            )
        return make_attack(
            self.attack.name,
            self.attack_params(),
            rng=rng,
            **dict(self.attack.params),
        )

    # -- composition ---------------------------------------------------
    def sweep(self, **axes: Any) -> "ExperimentGrid":
        """Cross this scenario with axes of variations into a grid.

        ``tracker=`` and ``attack=`` take lists of specs (or registry
        names); every other axis must name a grid-able engine knob (a
        :class:`~repro.exp.grid.PointConfig` field) with a list of
        values. Scalars count as one-element axes. The base scenario
        supplies every un-swept knob::

            grid = Scenario(tracker="mint", attack="double-sided",
                            trh=1500).sweep(
                tracker=["mint", "para", "graphene"],
                num_banks=[1, 4],
            )
            report = run_grid(grid, base_seed=1)
        """
        # Imported lazily: repro.exp.grid imports the specs from this
        # module at import time.
        from itertools import product

        from .exp.grid import ExperimentGrid, PointConfig

        def axis(
            value: Any, base: Any, coerce: Callable[[Any], Any]
        ) -> list[Any]:
            if value is None:
                return [base]
            values = list(value) if isinstance(value, (list, tuple)) else [value]
            return [coerce(v) for v in values]

        trackers = axis(
            axes.pop("tracker", None), self.tracker,
            lambda v: TrackerSpec.of(v) if isinstance(v, str) else v,
        )
        attacks = axis(
            axes.pop("attack", None), self.attack,
            lambda v: AttackSpec.of(v) if isinstance(v, str) else v,
        )
        base_config = PointConfig.from_scenario(self)
        knob_names = {f.name for f in fields(PointConfig)}
        for knob in ("vectorized", "backend"):
            if knob in axes:
                # Excluded from the identity hash (see identity_payload):
                # all values would fingerprint — and cache — as one point.
                raise ValueError(
                    f"'{knob}' cannot be a sweep axis: the engine-path "
                    "choice is excluded from scenario identity (every "
                    "engine path is bit-identical), so its points would "
                    "collide in the result store; set it on the base "
                    "scenario instead"
                )
        unknown = set(axes) - knob_names
        if unknown:
            raise ValueError(
                f"unknown sweep axis(es) {sorted(unknown)}; valid axes: "
                f"'tracker', 'attack', and the grid knobs "
                f"{sorted(knob_names - {'vectorized', 'backend'})}"
            )
        keys = list(axes)
        value_lists = [
            list(axes[key]) if isinstance(axes[key], (list, tuple))
            else [axes[key]]
            for key in keys
        ]
        configs = [
            replace(base_config, **dict(zip(keys, combo)))
            for combo in product(*value_lists)
        ] if keys else [base_config]
        return ExperimentGrid(
            trackers=trackers, attacks=attacks, configs=configs
        )

    def describe(self) -> str:
        """Human-readable rendering (``repro scenario show``)."""
        lines = [
            f"scenario: {self.label}",
            f"  tracker          {self.tracker.label}",
            f"  attack           {self.attack.name}"
            + (f" {dict(self.attack.params)}" if self.attack.params else ""),
            f"  trh              {self.trh:g}",
            f"  intervals        {self.intervals}",
            f"  max_act          {self.max_act}",
            f"  geometry         {self.num_ranks} rank(s) x "
            f"{self.num_banks} bank(s) x "
            f"{self.num_rows} rows (blast radius {self.blast_radius})",
            f"  timing           "
            + ("scaled" if self.scaled_timing
               else "custom" if self.timing is not None else "DDR5 default"),
            f"  postponement     "
            + (f"allowed (max {self.max_postponed})"
               if self.allow_postponement else "off"),
            f"  engine           "
            + ("auto" if self.vectorized is None
               else "vectorized" if self.vectorized else "scalar")
            + f", backend {self.backend or 'auto'}",
            f"  seed             {self.seed}",
            f"  task seed        {self.task_seed()}",
            f"  fingerprint      {self.fingerprint()}",
        ]
        return "\n".join(lines)


class Session:
    """Executes one :class:`Scenario` through every evaluation mode.

    A session is cheap to build and holds no device state between
    calls; each :meth:`run` constructs fresh trackers, a fresh trace,
    and a fresh :class:`~repro.sim.engine.RankSimulator` from the
    scenario's derived seeds, so repeated runs are bit-identical. The
    most recent simulator is kept on :attr:`last_simulator` for callers
    that need tracker-side counters (storage bits, overflow drops).
    """

    def __init__(self, scenario: Scenario) -> None:
        if not isinstance(scenario, Scenario):
            raise TypeError(
                f"Session needs a Scenario, got {type(scenario).__name__}"
            )
        self.scenario = scenario
        #: The simulator of the most recent :meth:`run` (None before).
        self.last_simulator: RankSimulator | ChannelSimulator | None = None

    # ------------------------------------------------------------------
    def run(self) -> RankSimResult | ChannelSimResult:
        """Execute the scenario's trace once, to completion.

        Channel scenarios (``num_ranks > 1`` or a dedicated channel
        attack) run on the :class:`~repro.sim.engine.ChannelSimulator`
        and report a :class:`~repro.sim.results.ChannelSimResult`;
        everything else reports a rank-level result as always —
        single-bank scenarios carry their classic
        :class:`~repro.sim.results.SimResult` as
        ``result.per_bank[0]``, bit-identical to the legacy
        :func:`~repro.sim.engine.run_attack` shim.
        """
        scenario = self.scenario
        if scenario.is_channel:
            simulator = ChannelSimulator(
                scenario.channel_tracker_factory(), scenario.engine_config()
            )
        else:
            simulator = RankSimulator(
                scenario.tracker_factory(), scenario.engine_config()
            )
        result = simulator.run(scenario.build_trace())
        self.last_simulator = simulator
        return result

    @property
    def trackers(self) -> list[Tracker]:
        """The tracker instances of the most recent :meth:`run`, as one
        flat list (rank-major on the channel path)."""
        if self.last_simulator is None:
            raise RuntimeError("no run yet: call Session.run() first")
        if isinstance(self.last_simulator, ChannelSimulator):
            return [
                tracker
                for rank in self.last_simulator.ranks
                for tracker in rank.trackers
            ]
        return self.last_simulator.trackers

    def run_many(self, windows: int, n_workers: int = 1) -> MonteCarloResult:
        """Monte-Carlo: ``windows`` independent tREFW windows.

        Each window rebuilds trackers and trace from a stable per-window
        seed, so the estimate is a pure function of the scenario —
        bit-identical for any ``n_workers`` — and matches the legacy
        :func:`~repro.sim.montecarlo.estimate_failure_probability` shim
        seeded with this scenario's :meth:`~Scenario.task_seed`.
        """
        from .sim.montecarlo import scenario_failure_probability

        return scenario_failure_probability(
            self.scenario, windows=windows, n_workers=n_workers
        )

    def sweep(self, **axes: Any) -> "ExperimentGrid":
        """See :meth:`Scenario.sweep`."""
        return self.scenario.sweep(**axes)

    def perf(
        self,
        workload: str = "mcf_r",
        sim_time_ns: float = 2_000_000.0,
        include_mc_para: bool = False,
        mc_para_probability: float = 1.0 / 74.0,
    ) -> "NormalizedPerf":
        """Performance figures for ``workload`` on this scenario's
        device timing (see :func:`repro.perf.runner.evaluate_scenario`)."""
        from .perf.runner import evaluate_scenario

        return evaluate_scenario(
            self.scenario,
            workload=workload,
            sim_time_ns=sim_time_ns,
            include_mc_para=include_mc_para,
            mc_para_probability=mc_para_probability,
        )


def run_scenario(
    scenario: Scenario | Mapping[str, Any],
) -> RankSimResult | ChannelSimResult:
    """One-call convenience: execute a scenario (or its payload)."""
    if not isinstance(scenario, Scenario):
        scenario = Scenario.from_payload(scenario)
    return Session(scenario).run()


__all__ = [
    "SCENARIO_VERSION",
    "AttackSpec",
    "Scenario",
    "Session",
    "TrackerSpec",
    "run_scenario",
]
