"""Security simulation: trace-driven rank-level Rowhammer engine."""

from .engine import (
    BankSimulator,
    ChannelSimulator,
    EngineConfig,
    RankSimulator,
    run_attack,
    run_channel_attack,
    run_rank_attack,
    with_dmq,
)
from .montecarlo import (
    MonteCarloResult,
    estimate_failure_probability,
    scenario_failure_probability,
    scaled_timing,
)
from .results import (
    ChannelSimResult,
    RankSimResult,
    SimResult,
    result_csv_rows,
    system_mttf_years,
)

#: Legacy alias from the retired per-bank fan-out API (kept importable
#: here without the ``repro.sim.rank`` deprecation warning).
RankResult = RankSimResult
from .seeding import canonical_json, derive_rng, stable_hash, stable_seed
from .trace import (
    ChannelTrace,
    CycleStream,
    GeneratorStream,
    Interval,
    MaterializedStream,
    RankInterval,
    RankTrace,
    Trace,
    TraceStream,
    as_trace_stream,
    lift_trace,
    repeat_interval,
    repeat_rank_interval,
)

__all__ = [
    "BankSimulator",
    "ChannelSimResult",
    "ChannelSimulator",
    "ChannelTrace",
    "CycleStream",
    "EngineConfig",
    "GeneratorStream",
    "Interval",
    "MaterializedStream",
    "MonteCarloResult",
    "RankInterval",
    "RankResult",
    "RankSimResult",
    "RankSimulator",
    "RankTrace",
    "SimResult",
    "Trace",
    "TraceStream",
    "as_trace_stream",
    "canonical_json",
    "derive_rng",
    "estimate_failure_probability",
    "lift_trace",
    "repeat_interval",
    "repeat_rank_interval",
    "result_csv_rows",
    "run_attack",
    "run_channel_attack",
    "run_rank_attack",
    "scaled_timing",
    "scenario_failure_probability",
    "stable_hash",
    "stable_seed",
    "system_mttf_years",
    "with_dmq",
]
