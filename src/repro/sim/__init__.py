"""Security simulation: trace-driven bank-level Rowhammer engine."""

from .engine import BankSimulator, EngineConfig, run_attack, with_dmq
from .rank import RankResult, RankSimulator, system_mttf_years
from .montecarlo import (
    MonteCarloResult,
    estimate_failure_probability,
    scaled_timing,
)
from .results import SimResult
from .seeding import canonical_json, derive_rng, stable_hash, stable_seed
from .trace import Interval, Trace, repeat_interval

__all__ = [
    "BankSimulator",
    "EngineConfig",
    "Interval",
    "MonteCarloResult",
    "RankResult",
    "RankSimulator",
    "SimResult",
    "Trace",
    "canonical_json",
    "derive_rng",
    "estimate_failure_probability",
    "repeat_interval",
    "run_attack",
    "scaled_timing",
    "stable_hash",
    "stable_seed",
    "system_mttf_years",
    "with_dmq",
]
