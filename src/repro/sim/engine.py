"""Event-level security simulator: channel → ranks → trackers → oracle.

Two engine tiers share one streaming core. :class:`RankSimulator`
drives a DDR5 *rank* — ``num_banks`` independent banks behind one
refresh schedule — through an attack schedule chunk by chunk: the
schedule may be a materialized trace or a lazy
:class:`~repro.sim.trace.TraceStream`, and either way the per-interval
work is identical (streamed runs are bit-identical to materialized
ones, at bounded memory). :class:`ChannelSimulator` stacks
``num_ranks`` rank simulators under one shared tREFI clock — the DDR5
*channel*, where a memory controller interleaves activations across
ranks sharing a command bus — and reports a
:class:`~repro.sim.results.ChannelSimResult` of per-rank results.

The rank engine processes each interval as follows. Each bank owns its own tracker instance (in-DRAM trackers are
per-bank structures; the paper's storage numbers scale ×32 per rank)
and its own row-disturbance oracle. Per interval, the demand ACT batch
is split by bank and fed through the vectorized activation kernel: the
interval's cached array view supplies each bank's batch, the engine
computes the per-unique-row aggregation once and shares it between the
tracker's ``on_activate_batch`` and the oracle's ``activate_many``
neighbour scatter (``EngineConfig.vectorized=False`` falls back to the
scalar per-ACT dispatch, bit-identically). At each tREFI boundary the
shared :class:`RefreshScheduler` decides whether the rank's REF
executes or is postponed (DDR5 allows four), and every executed REF
performs each bank's rolling auto-refresh plus at most one
tracker-directed mitigation per bank.

:class:`RankSimulator` is the canonical *engine* entry point — the
canonical way to *describe and launch* an evaluation is the declarative
:class:`repro.scenario.Scenario` / :class:`repro.scenario.Session`
facade, which builds the simulator from a serializable payload and
drives every other layer (CLI, experiment grids, Monte-Carlo, perf)
through the same object. The simulator accepts
bank-addressed :class:`~repro.sim.trace.RankTrace` streams, row-only
:class:`~repro.sim.trace.Trace` streams (auto-lifted to bank 0), or a
legacy list of per-bank traces (merged, with the tFAW concurrency
ceiling enforced), and reports a :class:`~repro.sim.results.RankSimResult`
carrying one per-bank :class:`~repro.sim.results.SimResult` each plus
rank-level aggregates. :class:`BankSimulator` and :func:`run_attack`
remain as thin single-bank shims whose results are bit-identical to the
pre-rank engine.

This is the machinery behind the paper's guaranteed-protection claims
(classic single/double-sided attacks bounded at M activations, §V-C),
the decoy blow-up under postponement (§VI-B), the rank-level MTTF
accounting (§VIII-B), and the Monte-Carlo validation of the analytical
MinTRH model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from ..constants import CONCURRENT_BANKS
from ..core.dmq import DelayedMitigationQueue
from ..dram.device import DeviceConfig, DramDevice
from ..dram.refresh import RefreshScheduler
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..trackers.base import MitigationRequest, Tracker
from ..trackers.protrr import VictimRefreshRequest
from .results import ChannelSimResult, RankSimResult, SimResult
from .trace import (
    ChannelTrace,
    MaterializedStream,
    RankTrace,
    Trace,
    TraceStream,
    as_trace_stream,
    validate_rank_intervals,
)


@dataclass
class EngineConfig:
    """Knobs of the security simulation."""

    timing: DDR5Timing = DEFAULT_TIMING
    trh: float = 4800.0
    num_rows: int = 128 * 1024
    blast_radius: int = 1
    allow_postponement: bool = False
    max_postponed: int = 4
    refi_per_refw: int = 8192
    #: Enforce the per-interval activation budget of the timing model.
    validate_budget: bool = True
    #: Banks in the simulated rank (1 == the classic single-bank setup).
    num_banks: int = 1
    #: tFAW ceiling on banks sustaining full-rate ACTs concurrently;
    #: ``None`` means min(CONCURRENT_BANKS, num_banks).
    concurrent_banks: int | None = None
    #: Ranks in the simulated channel. ``num_banks`` is *per rank*; a
    #: value above 1 selects :class:`ChannelSimulator` (a
    #: :class:`RankSimulator` rejects multi-rank configs).
    num_ranks: int = 1
    #: Activation-kernel selection. ``None`` (auto) uses the vectorized
    #: kernel — array-backed interval views, one shared per-unique-row
    #: aggregation feeding batched oracle and tracker updates — whenever
    #: NumPy is available; ``False`` forces the scalar per-ACT path with
    #: the sparse dict oracle (the pre-vectorization engine). Both
    #: produce bit-identical :class:`~repro.sim.results.RankSimResult`s;
    #: the benchmark suite asserts it.
    vectorized: bool | None = None


class _BankView:
    """Read-only per-bank facade over a :class:`RankSimulator`.

    Exists for the legacy ``rank_sim.simulators[i]`` access pattern from
    the pre-rank fan-out API; exposes the bank's tracker and counters.
    """

    __slots__ = ("_sim", "bank")

    def __init__(self, sim: "RankSimulator", bank: int) -> None:
        self._sim = sim
        self.bank = bank

    @property
    def tracker(self) -> Tracker:
        return self._sim.trackers[self.bank]

    @property
    def mitigations(self) -> int:
        return self._sim.bank_mitigations[self.bank]

    @property
    def demand_acts(self) -> int:
        return self._sim.bank_demand_acts[self.bank]


class RankSimulator:
    """Runs traces against one tracker instance per bank of a rank.

    Parameters
    ----------
    tracker_factory:
        Called once per bank (with the bank index) to build that bank's
        tracker. Each bank must get an independent instance — sharing
        one tracker across banks would be both unrealistic and insecure.
        :func:`repro.trackers.registry.bank_tracker_factory` builds a
        suitable factory from a registry name plus a base seed.
    config:
        Engine knobs (:class:`EngineConfig`); ``num_banks`` selects the
        rank width. The keyword arguments mirror the legacy rank API and
        override the corresponding config fields when given.
    """

    def __init__(
        self,
        tracker_factory: Callable[[int], Tracker],
        config: EngineConfig | None = None,
        *,
        num_banks: int | None = None,
        timing: DDR5Timing | None = None,
        trh: float | None = None,
        num_rows: int | None = None,
        blast_radius: int | None = None,
        allow_postponement: bool | None = None,
        concurrent_banks: int | None = None,
    ) -> None:
        if config is not None and not isinstance(config, EngineConfig):
            raise TypeError(
                "the second positional argument must be an EngineConfig; "
                "the legacy rank API's positional num_banks moved to a "
                "keyword: RankSimulator(factory, num_banks=N)"
            )
        c = config or EngineConfig()
        overrides = {
            key: value
            for key, value in (
                ("num_banks", num_banks),
                ("timing", timing),
                ("trh", trh),
                ("num_rows", num_rows),
                ("blast_radius", blast_radius),
                ("allow_postponement", allow_postponement),
                ("concurrent_banks", concurrent_banks),
            )
            if value is not None
        }
        if overrides:
            c = replace(c, **overrides)
        if c.num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if c.num_ranks != 1:
            raise ValueError(
                "RankSimulator drives exactly one rank; a config with "
                f"num_ranks={c.num_ranks} belongs to ChannelSimulator"
            )
        self.config = c
        self.num_banks = c.num_banks
        self.concurrent_banks = min(
            CONCURRENT_BANKS if c.concurrent_banks is None else c.concurrent_banks,
            c.num_banks,
        )
        if c.vectorized and np is None:
            raise RuntimeError("EngineConfig.vectorized=True requires numpy")
        #: Resolved kernel choice: vectorized unless disabled or no NumPy.
        self.vectorized = (
            c.vectorized if c.vectorized is not None else np is not None
        )
        self.device = DramDevice(
            DeviceConfig(
                timing=c.timing,
                num_banks=c.num_banks,
                rows_per_bank=c.num_rows,
                trh=c.trh,
                blast_radius=c.blast_radius,
                refi_per_refw=c.refi_per_refw,
                # The scalar engine is pinned to the sparse dict oracle
                # (the pre-vectorization hot path); the vectorized
                # engine lets the oracle pick per bank size.
                backend="sparse" if not self.vectorized else "auto",
            )
        )
        self.trackers = [tracker_factory(bank) for bank in range(c.num_banks)]
        self.scheduler = RefreshScheduler(max_postponed=c.max_postponed)
        # Per-bank activations a row received since it was last the
        # *target* of a mitigation; the unmitigated-run metric (Table IV).
        self._bank_since = [dict() for _ in range(c.num_banks)]
        self._bank_peak = [dict() for _ in range(c.num_banks)]
        self._counts: Counter[int] = Counter()
        # Per-batch aggregation memo for the vectorized kernel, keyed by
        # batch-array identity: attack traces reuse one interval object
        # (and hence one per-bank array) for thousands of tREFIs, so the
        # unique/count/first-occurrence work is paid once per distinct
        # interval. Entries hold the array ref, keeping ids stable.
        self._agg_cache: dict[int, tuple] = {}
        self.bank_mitigations = [0] * c.num_banks
        self.bank_transitive_mitigations = [0] * c.num_banks
        self.bank_demand_acts = [0] * c.num_banks
        self.simulators = [_BankView(self, bank) for bank in range(c.num_banks)]
        self.intervals = 0

    # ------------------------------------------------------------------
    def run(
        self, trace: Trace | RankTrace | TraceStream | Sequence[Trace]
    ) -> RankSimResult:
        """Execute ``trace`` to completion and report the outcome.

        ``trace`` may be bank-addressed (:class:`RankTrace`), row-only
        (:class:`Trace`, lifted onto bank 0), a lazily produced
        :class:`~repro.sim.trace.TraceStream` (consumed chunk by chunk,
        never materialized — memory stays bounded no matter the
        horizon), or a legacy sequence of per-bank row traces (trace
        ``i`` drives bank ``i``; the tFAW ceiling rejects more
        concurrent traces than the rank sustains). Materialized traces
        are budget-validated upfront as always; a stream declares its
        act budget for the same fail-fast check and is then validated
        chunk by chunk under identical rules, and the per-interval work
        is the same either way, so streamed and materialized runs of
        one schedule are bit-identical (pinned by the
        stream-equivalence tests).

        The interval loop is the simulator's hot path: a full-grid
        experiment pushes hundreds of millions of ACTs through it. The
        vectorized kernel (the default, see
        :attr:`EngineConfig.vectorized`) walks each interval's cached
        array view, computes the per-unique-row aggregation once, and
        shares it between the batched tracker update and the oracle's
        neighbour scatter; the scalar kernel is the per-ACT dispatch it
        replaced, kept as the equivalence baseline.
        """
        c = self.config
        if isinstance(trace, (list, tuple)):
            trace = self._merge_bank_traces(trace)
        if isinstance(trace, TraceStream):
            budget = trace.act_budget
            if (
                c.validate_budget
                and budget is not None
                and budget > c.timing.max_act
            ):
                raise ValueError(
                    f"stream {trace.name!r} declares up to {budget} ACTs "
                    f"on one bank per tREFI, but at most "
                    f"{c.timing.max_act} fit"
                )
            self.intervals = 0
            self.consume(trace)
            return self.collect(trace.name)
        if c.validate_budget:
            if isinstance(trace, RankTrace):
                trace.validate(
                    c.timing.max_act,
                    num_banks=self.num_banks,
                    concurrent_banks=self.concurrent_banks,
                )
            else:
                trace.validate(c.timing.max_act)
        self.intervals = 0
        self._feed(trace.intervals)
        return self.collect(trace.name)

    def consume(self, stream: TraceStream) -> None:
        """Drive one stream through the engine, chunk by chunk.

        Each chunk is budget-validated (same rules and messages as the
        materialized path, with the running interval offset) and fed to
        the hot loop, then dropped — peak memory is one chunk plus the
        bounded per-interval caches, independent of the horizon. Used
        by :meth:`run` and, per rank, by :class:`ChannelSimulator`.
        """
        for chunk in stream.chunks():
            self.feed(chunk)

    def feed(self, intervals: Sequence["RankInterval"]) -> None:
        """Advance the rank through ``intervals`` (one stream chunk).

        Incremental: the interval clock continues from where the last
        chunk left off, and budget validation (when configured) reports
        stream-global interval indices. :meth:`collect` reports the
        state accumulated so far.
        """
        if self.config.validate_budget:
            validate_rank_intervals(
                intervals,
                self.config.timing.max_act,
                num_banks=self.num_banks,
                concurrent_banks=self.concurrent_banks,
                start=self.intervals,
            )
        self._feed(intervals)

    def _feed(self, intervals) -> None:
        """The hot loop: absorb a run of intervals, tick the scheduler."""
        c = self.config
        vectorized = self.vectorized
        absorb_acts = self._absorb_acts_vec if vectorized else self._absorb_acts
        scheduler_tick = self.scheduler.tick
        t_refi_ns = c.timing.t_refi_ns
        allow_postponement = c.allow_postponement
        count = self.intervals
        for interval in intervals:
            count += 1
            time_ns = count * t_refi_ns
            split = interval.per_bank_arrays if vectorized else interval.per_bank
            for bank, acts in split:
                absorb_acts(bank, acts, time_ns)
            want_postpone = interval.postpone and allow_postponement
            event = scheduler_tick(want_postpone=want_postpone)
            if event is not None:
                for _ in range(event.count):
                    self._refresh(time_ns)
        self.intervals = count

    def _merge_bank_traces(self, traces: Sequence[Trace]) -> RankTrace:
        """Legacy input format: one row-only trace per bank."""
        if len(traces) > self.concurrent_banks:
            raise ValueError(
                f"tFAW limits concurrent full-rate banks to "
                f"{self.concurrent_banks}; got {len(traces)} traces"
            )
        names = list(dict.fromkeys(trace.name for trace in traces))
        name = names[0] if len(names) == 1 else "rank(" + ",".join(names) + ")"
        return RankTrace.from_bank_traces(name, list(traces))

    def collect(self, trace_name: str) -> RankSimResult:
        """Report the state accumulated so far as a
        :class:`~repro.sim.results.RankSimResult` (what :meth:`run`
        returns; also called per rank by :class:`ChannelSimulator`)."""
        per_bank = []
        refreshes = self.scheduler.total_refreshes
        for bank in range(self.num_banks):
            model = self.device.banks[bank]
            tracker = self.trackers[bank]
            per_bank.append(
                SimResult(
                    tracker=tracker.name,
                    trace=trace_name,
                    intervals=self.intervals,
                    demand_acts=self.bank_demand_acts[bank],
                    refreshes=refreshes,
                    mitigations=self.bank_mitigations[bank],
                    transitive_mitigations=self.bank_transitive_mitigations[bank],
                    pseudo_mitigations=tracker.pseudo_mitigations,
                    flips=list(model.flips),
                    max_disturbance=model.max_disturbance(),
                    most_disturbed_row=model.most_disturbed_row(),
                    max_unmitigated=dict(self._bank_peak[bank]),
                )
            )
        return RankSimResult(
            trace=trace_name,
            intervals=self.intervals,
            refreshes=refreshes,
            per_bank=per_bank,
        )

    # ------------------------------------------------------------------
    def _absorb_acts(
        self, bank: int, acts: tuple[int, ...], time_ns: float
    ) -> None:
        """Feed one bank's share of an interval to tracker, oracle,
        counters.

        The single source of the per-ACT bookkeeping. No mitigation
        lands mid-interval, so the oracle and the unmitigated-run
        counters absorb the whole batch in one pass each.
        """
        self.bank_demand_acts[bank] += len(acts)
        tracker_on_activate = self.trackers[bank].on_activate
        for row in acts:
            tracker_on_activate(row)
        self.device.activate_many(bank, acts, time_ns)
        since = self._bank_since[bank]
        peak = self._bank_peak[bank]
        counts = self._counts
        counts.clear()
        counts.update(acts)
        for row, count in counts.items():
            total = since.get(row, 0) + count
            since[row] = total
            if total > peak.get(row, 0):
                peak[row] = total

    #: Memo ceiling; traces with unbounded distinct intervals flush it.
    _AGG_CACHE_LIMIT = 4096

    def _absorb_acts_vec(
        self, bank: int, acts: "np.ndarray", time_ns: float
    ) -> None:
        """Vectorized twin of :meth:`_absorb_acts` (one interval batch).

        Computes the batch's per-unique-row aggregation once and shares
        it: sorted ``(unique, counts)`` feeds the oracle's neighbour
        scatter, the first-occurrence ordering feeds the tracker batch
        update and the unmitigated-run counters (first-occurrence order
        is what repeated scalar processing would produce, which the
        tracker equivalence contract requires).
        """
        n = len(acts)
        if n == 0:
            return
        self.bank_demand_acts[bank] += n
        key = id(acts)
        cached = self._agg_cache.get(key)
        if cached is None:
            uniq, first, counts = np.unique(
                acts, return_index=True, return_counts=True
            )
            order = np.argsort(first, kind="stable")
            tracker_agg = (uniq[order], counts[order])
            items = list(zip(tracker_agg[0].tolist(), tracker_agg[1].tolist()))
            if len(self._agg_cache) >= self._AGG_CACHE_LIMIT:
                self._agg_cache.clear()
            cached = (acts, (uniq, counts), tracker_agg, items)
            self._agg_cache[key] = cached
        _, oracle_agg, tracker_agg, items = cached
        self.trackers[bank].on_activate_batch(acts, tracker_agg)
        self.device.activate_many(bank, acts, time_ns, agg=oracle_agg)
        since = self._bank_since[bank]
        peak = self._bank_peak[bank]
        for row, count in items:
            total = since.get(row, 0) + count
            since[row] = total
            if total > peak.get(row, 0):
                peak[row] = total

    def _refresh(self, time_ns: float) -> None:
        """One rank-level REF: every bank sweeps its auto-refresh slice
        and may land one tracker-directed mitigation."""
        for bank in range(self.num_banks):
            self.device.auto_refresh(bank, time_ns)
            for request in self.trackers[bank].on_refresh():
                self._apply(bank, request, time_ns)

    def _apply(
        self, bank: int, request: MitigationRequest, time_ns: float
    ) -> None:
        self.bank_mitigations[bank] += 1
        if request.distance > 1:
            self.bank_transitive_mitigations[bank] += 1
        since = self._bank_since[bank]
        if isinstance(request, VictimRefreshRequest):
            # Victim-centric mitigation (ProTRR): refresh the named row;
            # the refresh itself disturbs that row's neighbours.
            refreshed = self.device.victim_refresh(bank, request.row, time_ns)
        else:
            refreshed = self.device.mitigate(
                bank, request.row, request.distance, time_ns
            )
            since[request.row] = 0
        tracker = self.trackers[bank]
        for victim in refreshed:
            since[victim] = 0
            if tracker.observes_mitigations:
                tracker.on_mitigation_activate(victim)

    # ------------------------------------------------------------------
    @property
    def any_flip(self) -> bool:
        return self.device.any_flip


class ChannelSimulator:
    """Runs per-rank schedules against a DDR5 channel of N ranks.

    The channel is the top of the simulation stack: ``num_ranks``
    :class:`RankSimulator`\\ s — each a full rank of per-bank trackers
    behind its own refresh schedule — marched through one shared tREFI
    clock, the way a memory controller interleaves activations across
    the ranks sharing a command bus. Rank simulations are independent
    by construction (DDR5 REF, and hence postponement, is per rank), so
    a channel run decomposes exactly: rank ``r``'s
    :class:`~repro.sim.results.RankSimResult` is bit-identical to
    running ``r``'s schedule alone on a :class:`RankSimulator` built
    from the same per-rank tracker factory — the channel-equivalence
    property the tests pin, and what makes the paper's per-tracker
    security claims composable into channel-level MTTF accounting.

    Parameters
    ----------
    tracker_factory:
        Called with ``(rank, bank)`` for every bank of every rank; each
        call must return an independent tracker instance.
        :func:`repro.trackers.registry.channel_tracker_factory` builds a
        suitable factory from a registry name plus a base seed (ranks
        derive independent seed streams).
    config:
        Per-rank engine knobs; ``num_ranks`` selects the channel width
        (the keyword overrides the config field when given).
    """

    def __init__(
        self,
        tracker_factory: Callable[[int, int], Tracker],
        config: EngineConfig | None = None,
        *,
        num_ranks: int | None = None,
        num_banks: int | None = None,
    ) -> None:
        c = config or EngineConfig()
        overrides = {
            key: value
            for key, value in (
                ("num_ranks", num_ranks),
                ("num_banks", num_banks),
            )
            if value is not None
        }
        if overrides:
            c = replace(c, **overrides)
        if c.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.config = c
        self.num_ranks = c.num_ranks
        self.num_banks = c.num_banks
        rank_config = replace(c, num_ranks=1)
        self.ranks = [
            RankSimulator(
                (lambda bank, _rank=rank: tracker_factory(_rank, bank)),
                rank_config,
            )
            for rank in range(c.num_ranks)
        ]

    def run(
        self, trace: "ChannelTrace | Trace | RankTrace | TraceStream"
    ) -> ChannelSimResult:
        """Execute a channel schedule to completion.

        ``trace`` is normally a :class:`~repro.sim.trace.ChannelTrace`
        (one schedule per rank, materialized or streaming); a rank- or
        row-scoped input is accepted as rank 0's schedule with the
        sibling ranks idle, so a 1-rank channel run of any existing
        trace is bit-identical to today's :class:`RankSimulator` run
        (pinned by the channel-equivalence tests).

        The march is chunk-granular lockstep: each round advances every
        still-active rank by one chunk of its stream, so all ranks stay
        within one chunk of the shared clock and peak memory is one
        chunk per rank. Because REF scheduling — the only cross-bank
        coupling inside a rank — is per rank, the interleaving order
        cannot affect any rank's bits.
        """
        channel = self._coerce(trace)
        if channel.num_ranks > self.num_ranks:
            raise ValueError(
                f"trace {channel.name!r} addresses rank "
                f"{channel.num_ranks - 1}, but the channel has "
                f"{self.num_ranks} ranks"
            )
        streams = {
            rank: channel.rank_stream(rank) for rank in range(self.num_ranks)
        }
        c = self.config
        if c.validate_budget:
            for rank, stream in streams.items():
                budget = stream.act_budget
                if budget is not None and budget > c.timing.max_act:
                    raise ValueError(
                        f"rank {rank} stream {stream.name!r} declares up "
                        f"to {budget} ACTs on one bank per tREFI, but at "
                        f"most {c.timing.max_act} fit"
                    )
                # Materialized schedules keep the rank engine's
                # validate-before-execute contract: the whole trace is
                # checked here, before any rank absorbs an interval (a
                # lazy stream can only be checked chunk by chunk as it
                # is produced).
                if isinstance(stream, MaterializedStream):
                    rank_sim = self.ranks[rank]
                    stream.trace.validate(
                        c.timing.max_act,
                        num_banks=rank_sim.num_banks,
                        concurrent_banks=rank_sim.concurrent_banks,
                    )
        active = {rank: stream.chunks() for rank, stream in streams.items()}
        while active:
            for rank in sorted(active):
                chunk = next(active[rank], None)
                if chunk is None:
                    del active[rank]
                    continue
                self.ranks[rank].feed(chunk)
        per_rank = [
            self.ranks[rank].collect(streams[rank].name)
            for rank in range(self.num_ranks)
        ]
        return ChannelSimResult(
            trace=channel.name,
            intervals=max(
                (sim.intervals for sim in self.ranks), default=0
            ),
            per_rank=per_rank,
        )

    def _coerce(self, trace) -> ChannelTrace:
        if isinstance(trace, ChannelTrace):
            return trace
        if isinstance(trace, (Trace, RankTrace, TraceStream)):
            stream = as_trace_stream(trace)
            return ChannelTrace(name=stream.name, per_rank={0: stream})
        raise TypeError(
            f"cannot run {type(trace).__name__} on a channel; expected "
            f"ChannelTrace, Trace, RankTrace, or TraceStream"
        )

    def rank(self, index: int) -> RankSimulator:
        """The rank-``index`` simulator (trackers, per-bank counters)."""
        return self.ranks[index]

    @property
    def trackers(self) -> list[list[Tracker]]:
        """Tracker instances as ``trackers[rank][bank]``."""
        return [sim.trackers for sim in self.ranks]

    @property
    def any_flip(self) -> bool:
        return any(sim.any_flip for sim in self.ranks)


class BankSimulator(RankSimulator):
    """Runs traces against one tracker on one bank.

    The classic single-bank entry point, now a thin shim over
    :class:`RankSimulator` with ``num_banks=1``; results are
    bit-identical to the pre-rank engine (pinned by the
    rank-equivalence tests). :meth:`run` unwraps bank 0's
    :class:`SimResult`.
    """

    def __init__(self, tracker: Tracker, config: EngineConfig | None = None) -> None:
        c = config or EngineConfig()
        if c.num_banks != 1:
            c = replace(c, num_banks=1)
        super().__init__(lambda _bank: tracker, c)
        self.tracker = tracker

    def run(self, trace: Trace) -> SimResult:  # type: ignore[override]
        return super().run(trace).per_bank[0]

    # Single-bank views kept for the feinting driver and older callers.
    @property
    def _since_mitigation(self) -> dict:
        return self._bank_since[0]

    @property
    def mitigations(self) -> int:
        return self.bank_mitigations[0]

    @property
    def transitive_mitigations(self) -> int:
        return self.bank_transitive_mitigations[0]

    @property
    def demand_acts(self) -> int:
        return self.bank_demand_acts[0]

    def _activate(self, row: int, time_ns: float) -> None:
        """Single-ACT entry point (used by the feinting attack driver)."""
        self._absorb_acts(0, (row,), time_ns)


def run_attack(
    tracker: Tracker,
    trace: Trace,
    trh: float,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> SimResult:
    """One-call convenience wrapper around :class:`BankSimulator`.

    Legacy shim: takes live tracker/trace objects. New code should
    describe the evaluation declaratively and run it through
    ``Session(scenario).run()`` — the shim-equivalence tests pin this
    function bit-identical to that facade for every registry tracker.
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
    )
    return BankSimulator(tracker, config).run(trace)


def run_rank_attack(
    tracker_factory: Callable[[int], Tracker],
    trace: Trace | RankTrace,
    trh: float,
    num_banks: int,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> RankSimResult:
    """One-call convenience wrapper around :class:`RankSimulator`.

    Legacy shim (see :func:`run_attack`): pinned bit-identical to the
    ``Session`` facade by the shim-equivalence tests.
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
        num_banks=num_banks,
    )
    return RankSimulator(tracker_factory, config).run(trace)


def run_channel_attack(
    tracker_factory: Callable[[int, int], Tracker],
    trace: "ChannelTrace | Trace | RankTrace | TraceStream",
    trh: float,
    num_ranks: int,
    num_banks: int = 1,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> ChannelSimResult:
    """One-call convenience wrapper around :class:`ChannelSimulator`.

    ``tracker_factory`` takes ``(rank, bank)``; see
    :func:`run_rank_attack` for the declarative alternative
    (``Session(Scenario(..., num_ranks=N)).run()``).
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
        num_banks=num_banks,
        num_ranks=num_ranks,
    )
    return ChannelSimulator(tracker_factory, config).run(trace)


def with_dmq(tracker: Tracker, timing: DDR5Timing = DEFAULT_TIMING) -> Tracker:
    """Wrap ``tracker`` in a DDR5-sized Delayed Mitigation Queue."""
    return DelayedMitigationQueue(tracker, max_act=timing.max_act, depth=4)
