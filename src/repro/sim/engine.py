"""Event-level security simulator: trace -> tracker -> mitigations -> oracle.

The engine drives one bank through an attack trace interval by
interval: demand activations are fed to both the row-disturbance oracle
and the tracker; at each tREFI boundary the refresh scheduler decides
whether the REF executes or is postponed (DDR5 allows four), and every
executed REF performs the rolling auto-refresh plus at most one
tracker-directed mitigation.

This is the machinery behind the paper's guaranteed-protection claims
(classic single/double-sided attacks bounded at M activations, §V-C),
the decoy blow-up under postponement (§VI-B), and the Monte-Carlo
validation of the analytical MinTRH model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.dmq import DelayedMitigationQueue
from ..dram.device import DeviceConfig, DramDevice
from ..dram.refresh import RefreshScheduler
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..trackers.base import MitigationRequest, Tracker
from ..trackers.protrr import VictimRefreshRequest
from .results import SimResult
from .trace import Trace


@dataclass
class EngineConfig:
    """Knobs of the security simulation."""

    timing: DDR5Timing = DEFAULT_TIMING
    trh: float = 4800.0
    num_rows: int = 128 * 1024
    blast_radius: int = 1
    allow_postponement: bool = False
    max_postponed: int = 4
    refi_per_refw: int = 8192
    #: Enforce the per-interval activation budget of the timing model.
    validate_budget: bool = True


class BankSimulator:
    """Runs traces against one tracker on one bank."""

    def __init__(self, tracker: Tracker, config: EngineConfig | None = None) -> None:
        self.tracker = tracker
        self.config = config or EngineConfig()
        c = self.config
        self.device = DramDevice(
            DeviceConfig(
                timing=c.timing,
                num_banks=1,
                rows_per_bank=c.num_rows,
                trh=c.trh,
                blast_radius=c.blast_radius,
                refi_per_refw=c.refi_per_refw,
            )
        )
        self.scheduler = RefreshScheduler(max_postponed=c.max_postponed)
        # Activations a row received since it was last the *target* of a
        # mitigation; exposes the unmitigated-run metric of Table IV.
        self._since_mitigation: dict[int, int] = {}
        self._peak_unmitigated: dict[int, int] = {}
        self._counts: Counter[int] = Counter()
        self.mitigations = 0
        self.transitive_mitigations = 0
        self.demand_acts = 0

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> SimResult:
        """Execute ``trace`` to completion and report the outcome.

        The interval loop is the simulator's hot path: a full-grid
        experiment pushes hundreds of millions of ACTs through it, so
        bound methods are hoisted out of the loop and the per-ACT work
        is reduced to one tracker callback plus batched oracle and
        unmitigated-run updates (no per-ACT allocation).
        """
        c = self.config
        if c.validate_budget:
            trace.validate(c.timing.max_act)
        absorb_acts = self._absorb_acts
        scheduler_tick = self.scheduler.tick
        t_refi_ns = c.timing.t_refi_ns
        allow_postponement = c.allow_postponement
        intervals = 0
        for interval in trace:
            intervals += 1
            time_ns = intervals * t_refi_ns
            absorb_acts(interval.acts, time_ns)
            want_postpone = interval.postpone and allow_postponement
            event = scheduler_tick(want_postpone=want_postpone)
            if event is not None:
                for _ in range(event.count):
                    self._refresh(time_ns)
        model = self.device.banks[0]
        return SimResult(
            tracker=self.tracker.name,
            trace=trace.name,
            intervals=intervals,
            demand_acts=self.demand_acts,
            refreshes=self.scheduler.total_refreshes,
            mitigations=self.mitigations,
            transitive_mitigations=self.transitive_mitigations,
            pseudo_mitigations=getattr(self.tracker, "pseudo_mitigations", 0),
            flips=list(model.flips),
            max_disturbance=model.max_disturbance(),
            most_disturbed_row=model.most_disturbed_row(),
            max_unmitigated=dict(self._peak_unmitigated),
        )

    # ------------------------------------------------------------------
    def _absorb_acts(self, acts: tuple[int, ...], time_ns: float) -> None:
        """Feed one interval's demand ACTs to tracker, oracle, counters.

        The single source of the per-ACT bookkeeping. No mitigation
        lands mid-interval, so the oracle and the unmitigated-run
        counters absorb the whole batch in one pass each.
        """
        self.demand_acts += len(acts)
        tracker_on_activate = self.tracker.on_activate
        for row in acts:
            tracker_on_activate(row)
        self.device.banks[0].activate_many(acts, time_ns)
        since = self._since_mitigation
        peak = self._peak_unmitigated
        counts = self._counts
        counts.clear()
        counts.update(acts)
        for row, count in counts.items():
            total = since.get(row, 0) + count
            since[row] = total
            if total > peak.get(row, 0):
                peak[row] = total

    def _activate(self, row: int, time_ns: float) -> None:
        """Single-ACT entry point (used by the feinting attack driver)."""
        self._absorb_acts((row,), time_ns)

    def _refresh(self, time_ns: float) -> None:
        self.device.auto_refresh(0, time_ns)
        for request in self.tracker.on_refresh():
            self._apply(request, time_ns)

    def _apply(self, request: MitigationRequest, time_ns: float) -> None:
        self.mitigations += 1
        if request.distance > 1:
            self.transitive_mitigations += 1
        if isinstance(request, VictimRefreshRequest):
            # Victim-centric mitigation (ProTRR): refresh the named row;
            # the refresh itself disturbs that row's neighbours.
            model = self.device.banks[0]
            model.refresh_row(request.row, time_ns)
            model.activate(request.row, time_ns)
            model._disturbance.pop(request.row, None)
            refreshed = [request.row]
        else:
            refreshed = self.device.mitigate(
                0, request.row, request.distance, time_ns
            )
            self._since_mitigation[request.row] = 0
        for victim in refreshed:
            self._since_mitigation[victim] = 0
            if self.tracker.observes_mitigations:
                self.tracker.on_mitigation_activate(victim)

    # ------------------------------------------------------------------
    @property
    def any_flip(self) -> bool:
        return self.device.any_flip


def run_attack(
    tracker: Tracker,
    trace: Trace,
    trh: float,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> SimResult:
    """One-call convenience wrapper around :class:`BankSimulator`."""
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
    )
    return BankSimulator(tracker, config).run(trace)


def with_dmq(tracker: Tracker, timing: DDR5Timing = DEFAULT_TIMING) -> Tracker:
    """Wrap ``tracker`` in a DDR5-sized Delayed Mitigation Queue."""
    return DelayedMitigationQueue(tracker, max_act=timing.max_act, depth=4)
