"""Event-level security simulator: channel → ranks → trackers → oracle.

Two engine tiers share one streaming core. :class:`RankSimulator`
drives a DDR5 *rank* — ``num_banks`` independent banks behind one
refresh schedule — through an attack schedule chunk by chunk: the
schedule may be a materialized trace or a lazy
:class:`~repro.sim.trace.TraceStream`, and either way the per-interval
work is identical (streamed runs are bit-identical to materialized
ones, at bounded memory). :class:`ChannelSimulator` stacks
``num_ranks`` rank simulators under one shared tREFI clock — the DDR5
*channel*, where a memory controller interleaves activations across
ranks sharing a command bus — and reports a
:class:`~repro.sim.results.ChannelSimResult` of per-rank results.

The rank engine processes each interval as follows. Each bank owns
its own tracker instance (in-DRAM trackers are
per-bank structures; the paper's storage numbers scale ×32 per rank)
and its own row-disturbance oracle. Per interval, the demand ACT batch
is split by bank and fed through the vectorized activation kernel: the
interval's cached array view supplies each bank's batch, the engine
computes the per-unique-row aggregation once and shares it between the
tracker's ``on_activate_batch`` and the oracle's ``activate_many``
neighbour scatter (``EngineConfig.vectorized=False`` falls back to the
scalar per-ACT dispatch, bit-identically). At each tREFI boundary the
shared :class:`RefreshScheduler` decides whether the rank's REF
executes or is postponed (DDR5 allows four), and every executed REF
performs each bank's rolling auto-refresh plus at most one
tracker-directed mitigation per bank.

:class:`RankSimulator` is the canonical *engine* entry point — the
canonical way to *describe and launch* an evaluation is the declarative
:class:`repro.scenario.Scenario` / :class:`repro.scenario.Session`
facade, which builds the simulator from a serializable payload and
drives every other layer (CLI, experiment grids, Monte-Carlo, perf)
through the same object. The simulator accepts
bank-addressed :class:`~repro.sim.trace.RankTrace` streams, row-only
:class:`~repro.sim.trace.Trace` streams (auto-lifted to bank 0), or a
legacy list of per-bank traces (merged, with the tFAW concurrency
ceiling enforced), and reports a :class:`~repro.sim.results.RankSimResult`
carrying one per-bank :class:`~repro.sim.results.SimResult` each plus
rank-level aggregates. :class:`BankSimulator` and :func:`run_attack`
remain as thin single-bank shims whose results are bit-identical to the
pre-rank engine.

This is the machinery behind the paper's guaranteed-protection claims
(classic single/double-sided attacks bounded at M activations, §V-C),
the decoy blow-up under postponement (§VI-B), the rank-level MTTF
accounting (§VIII-B), and the Monte-Carlo validation of the analytical
MinTRH model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from itertools import groupby, islice
from typing import Callable, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from ..cache import BoundedCache
from ..constants import CONCURRENT_BANKS
from ..core.dmq import DelayedMitigationQueue
from ..dram.device import DeviceConfig, DramDevice
from ..dram.refresh import RefreshScheduler
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..trackers.base import MitigationRequest, Tracker
from ..trackers.protrr import VictimRefreshRequest
from .results import ChannelSimResult, RankSimResult, SimResult
from .trace import (
    ChannelTrace,
    CycleStream,
    MaterializedStream,
    RankTrace,
    Trace,
    TraceStream,
    as_trace_stream,
    validate_rank_intervals,
)


@dataclass
class EngineConfig:
    """Knobs of the security simulation."""

    timing: DDR5Timing = DEFAULT_TIMING
    trh: float = 4800.0
    num_rows: int = 128 * 1024
    blast_radius: int = 1
    allow_postponement: bool = False
    max_postponed: int = 4
    refi_per_refw: int = 8192
    #: Enforce the per-interval activation budget of the timing model.
    validate_budget: bool = True
    #: Banks in the simulated rank (1 == the classic single-bank setup).
    num_banks: int = 1
    #: tFAW ceiling on banks sustaining full-rate ACTs concurrently;
    #: ``None`` means min(CONCURRENT_BANKS, num_banks).
    concurrent_banks: int | None = None
    #: Ranks in the simulated channel. ``num_banks`` is *per rank*; a
    #: value above 1 selects :class:`ChannelSimulator` (a
    #: :class:`RankSimulator` rejects multi-rank configs).
    num_ranks: int = 1
    #: Activation-kernel selection. ``None`` (auto) uses the vectorized
    #: kernel — array-backed interval views, one shared per-unique-row
    #: aggregation feeding batched oracle and tracker updates — whenever
    #: NumPy is available; ``False`` forces the scalar per-ACT path with
    #: the sparse dict oracle (the pre-vectorization engine). Both
    #: produce bit-identical :class:`~repro.sim.results.RankSimResult`s;
    #: the benchmark suite asserts it.
    vectorized: bool | None = None
    #: Channel-kernel selection (read by :class:`ChannelSimulator`;
    #: rank-level simulators ignore it). ``None`` (auto) runs the fused
    #: multi-rank kernel — one packed ``(rank·bank, row)`` array family,
    #: one whole-channel scatter per tREFI — whenever it applies (NumPy
    #: present, ``vectorized`` not disabled, ``blast_radius == 1``, and
    #: an ``oracle_backend`` compatible with dense storage); ``True``
    #: requires it (raises when it cannot apply); ``False`` forces the
    #: chunk-lockstep march of per-rank kernels. All three produce
    #: bit-identical :class:`~repro.sim.results.ChannelSimResult`\ s
    #: (pinned by the fused-equivalence property suite).
    fused: bool | None = None
    #: Per-bank disturbance-oracle storage override: ``"auto"``,
    #: ``"sparse"`` or ``"dense"`` (see :mod:`repro.dram.rowstate`).
    #: ``None`` keeps the kernel-derived default — sparse for the scalar
    #: engine, auto-by-size for the vectorized one; the fused channel
    #: kernel forces dense so bank oracles can adopt views into its
    #: packed arrays.
    oracle_backend: str | None = None
    #: Compiled-tier selection under the fused channel kernel (see
    #: :mod:`repro.kernels`). ``"auto"`` marches steady-state step runs
    #: through the best available compiled provider (Numba when the
    #: ``compiled`` extra is installed, the on-demand C build
    #: otherwise) and falls back to the pure-NumPy fused path when none
    #: exists or a step does not qualify; ``"compiled"`` requires a
    #: provider (raises at construction when none is available);
    #: ``"numpy"`` pins today's fused path. Excluded from scenario
    #: identity, like ``vectorized``/``fused`` — all three settings
    #: produce bit-identical results (pinned by the property suite).
    backend: str = "auto"


class _BankView:
    """Read-only per-bank facade over a :class:`RankSimulator`.

    Exists for the legacy ``rank_sim.simulators[i]`` access pattern from
    the pre-rank fan-out API; exposes the bank's tracker and counters.
    """

    __slots__ = ("_sim", "bank")

    def __init__(self, sim: "RankSimulator", bank: int) -> None:
        self._sim = sim
        self.bank = bank

    @property
    def tracker(self) -> Tracker:
        return self._sim.trackers[self.bank]

    @property
    def mitigations(self) -> int:
        return self._sim.bank_mitigations[self.bank]

    @property
    def demand_acts(self) -> int:
        return self._sim.bank_demand_acts[self.bank]


class RankSimulator:
    """Runs traces against one tracker instance per bank of a rank.

    Parameters
    ----------
    tracker_factory:
        Called once per bank (with the bank index) to build that bank's
        tracker. Each bank must get an independent instance — sharing
        one tracker across banks would be both unrealistic and insecure.
        :func:`repro.trackers.registry.bank_tracker_factory` builds a
        suitable factory from a registry name plus a base seed.
    config:
        Engine knobs (:class:`EngineConfig`); ``num_banks`` selects the
        rank width. The keyword arguments mirror the legacy rank API and
        override the corresponding config fields when given.
    """

    def __init__(
        self,
        tracker_factory: Callable[[int], Tracker],
        config: EngineConfig | None = None,
        *,
        num_banks: int | None = None,
        timing: DDR5Timing | None = None,
        trh: float | None = None,
        num_rows: int | None = None,
        blast_radius: int | None = None,
        allow_postponement: bool | None = None,
        concurrent_banks: int | None = None,
    ) -> None:
        if config is not None and not isinstance(config, EngineConfig):
            raise TypeError(
                "the second positional argument must be an EngineConfig; "
                "the legacy rank API's positional num_banks moved to a "
                "keyword: RankSimulator(factory, num_banks=N)"
            )
        c = config or EngineConfig()
        overrides = {
            key: value
            for key, value in (
                ("num_banks", num_banks),
                ("timing", timing),
                ("trh", trh),
                ("num_rows", num_rows),
                ("blast_radius", blast_radius),
                ("allow_postponement", allow_postponement),
                ("concurrent_banks", concurrent_banks),
            )
            if value is not None
        }
        if overrides:
            c = replace(c, **overrides)
        if c.num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        if c.num_ranks != 1:
            raise ValueError(
                "RankSimulator drives exactly one rank; a config with "
                f"num_ranks={c.num_ranks} belongs to ChannelSimulator"
            )
        self.config = c
        self.num_banks = c.num_banks
        self.concurrent_banks = min(
            CONCURRENT_BANKS if c.concurrent_banks is None else c.concurrent_banks,
            c.num_banks,
        )
        if c.vectorized and np is None:
            raise RuntimeError("EngineConfig.vectorized=True requires numpy")
        if c.backend not in ("auto", "compiled", "numpy"):
            raise ValueError(
                "EngineConfig.backend must be 'auto', 'compiled', or "
                f"'numpy', not {c.backend!r}"
            )
        if c.backend == "compiled":
            # Fail loudly at construction when no compiled provider
            # exists — the whole point of pinning "compiled" over
            # "auto" (the compiled tier itself runs only under the
            # fused channel kernel; a plain rank simulator accepts the
            # pin but has no compiled path).
            from ..kernels import require_compiled

            require_compiled()
        #: Resolved kernel choice: vectorized unless disabled or no NumPy.
        self.vectorized = (
            c.vectorized if c.vectorized is not None else np is not None
        )
        self.device = DramDevice(
            DeviceConfig(
                timing=c.timing,
                num_banks=c.num_banks,
                rows_per_bank=c.num_rows,
                trh=c.trh,
                blast_radius=c.blast_radius,
                refi_per_refw=c.refi_per_refw,
                # The scalar engine is pinned to the sparse dict oracle
                # (the pre-vectorization hot path); the vectorized
                # engine lets the oracle pick per bank size. An explicit
                # ``oracle_backend`` (e.g. the fused channel kernel's
                # dense requirement) overrides both.
                backend=(
                    c.oracle_backend
                    if c.oracle_backend is not None
                    else ("sparse" if not self.vectorized else "auto")
                ),
            )
        )
        self.trackers = [tracker_factory(bank) for bank in range(c.num_banks)]
        self.scheduler = RefreshScheduler(max_postponed=c.max_postponed)
        # Per-bank activations a row received since it was last the
        # *target* of a mitigation; the unmitigated-run metric (Table IV).
        self._bank_since = [dict() for _ in range(c.num_banks)]
        self._bank_peak = [dict() for _ in range(c.num_banks)]
        self._counts: Counter[int] = Counter()
        # Per-batch aggregation memo for the vectorized kernel, keyed by
        # batch-array identity: attack traces reuse one interval object
        # (and hence one per-bank array) for thousands of tREFIs, so the
        # unique/count/first-occurrence work is paid once per distinct
        # interval. Entries hold the array ref, keeping ids stable;
        # LRU-style eviction keeps the hot shared-interval entries when
        # a trace streams unboundedly many distinct batches.
        self._agg_cache: BoundedCache = BoundedCache(self._AGG_CACHE_LIMIT)
        self.bank_mitigations = [0] * c.num_banks
        self.bank_transitive_mitigations = [0] * c.num_banks
        self.bank_demand_acts = [0] * c.num_banks
        self.simulators = [_BankView(self, bank) for bank in range(c.num_banks)]
        self.intervals = 0
        self._consumed = False

    # ------------------------------------------------------------------
    def run(
        self, trace: Trace | RankTrace | TraceStream | Sequence[Trace]
    ) -> RankSimResult:
        """Execute ``trace`` to completion and report the outcome.

        ``trace`` may be bank-addressed (:class:`RankTrace`), row-only
        (:class:`Trace`, lifted onto bank 0), a lazily produced
        :class:`~repro.sim.trace.TraceStream` (consumed chunk by chunk,
        never materialized — memory stays bounded no matter the
        horizon), or a legacy sequence of per-bank row traces (trace
        ``i`` drives bank ``i``; the tFAW ceiling rejects more
        concurrent traces than the rank sustains). Materialized traces
        are budget-validated upfront as always; a stream declares its
        act budget for the same fail-fast check and is then validated
        chunk by chunk under identical rules, and the per-interval work
        is the same either way, so streamed and materialized runs of
        one schedule are bit-identical (pinned by the
        stream-equivalence tests).

        The interval loop is the simulator's hot path: a full-grid
        experiment pushes hundreds of millions of ACTs through it. The
        vectorized kernel (the default, see
        :attr:`EngineConfig.vectorized`) walks each interval's cached
        array view, computes the per-unique-row aggregation once, and
        shares it between the batched tracker update and the oracle's
        neighbour scatter; the scalar kernel is the per-ACT dispatch it
        replaced, kept as the equivalence baseline.

        A simulator instance runs exactly one schedule: trackers, the
        oracle, and every counter accumulate monotonically, so a second
        ``run()`` on the same instance would silently mix windows.
        Reuse raises ``RuntimeError``; build a fresh simulator (or
        ``Session``) per run.
        """
        self._guard_reuse()
        c = self.config
        if isinstance(trace, (list, tuple)):
            trace = self._merge_bank_traces(trace)
        if isinstance(trace, TraceStream):
            budget = trace.act_budget
            if (
                c.validate_budget
                and budget is not None
                and budget > c.timing.max_act
            ):
                raise ValueError(
                    f"stream {trace.name!r} declares up to {budget} ACTs "
                    f"on one bank per tREFI, but at most "
                    f"{c.timing.max_act} fit"
                )
            # A materialized schedule keeps the validate-before-execute
            # contract — the whole trace is checked here, once, and the
            # chunk loop skips the per-chunk re-validation (a lazy
            # stream can only be checked chunk by chunk as produced).
            prevalidated = False
            if c.validate_budget and isinstance(trace, MaterializedStream):
                trace.trace.validate(
                    c.timing.max_act,
                    num_banks=self.num_banks,
                    concurrent_banks=self.concurrent_banks,
                )
                prevalidated = True
            elif c.validate_budget and isinstance(trace, CycleStream):
                # A cycle produces only its pattern's interval objects:
                # validating the (truncated) pattern once is equivalent
                # to checking every produced interval, and the first
                # offence sits at its pattern index, so the message
                # matches the chunk-wise check too.
                validate_rank_intervals(
                    trace.pattern[: trace.count],
                    c.timing.max_act,
                    num_banks=self.num_banks,
                    concurrent_banks=self.concurrent_banks,
                )
                prevalidated = True
            self.intervals = 0
            for chunk in trace.chunks():
                if prevalidated:
                    self._feed(chunk)
                else:
                    self.feed(chunk)
            return self.collect(trace.name)
        if c.validate_budget:
            if isinstance(trace, RankTrace):
                trace.validate(
                    c.timing.max_act,
                    num_banks=self.num_banks,
                    concurrent_banks=self.concurrent_banks,
                )
            else:
                trace.validate(c.timing.max_act)
        self.intervals = 0
        self._feed(trace.intervals)
        return self.collect(trace.name)

    def _guard_reuse(self) -> None:
        if self._consumed:
            raise RuntimeError(
                "this simulator has already consumed a schedule; "
                "trackers, oracle state, and counters accumulate across "
                "runs, so reusing it would silently mix windows — build "
                "a fresh simulator (or Session) per run"
            )
        self._consumed = True

    def consume(self, stream: TraceStream) -> None:
        """Drive one stream through the engine, chunk by chunk.

        Each chunk is budget-validated (same rules and messages as the
        materialized path, with the running interval offset) and fed to
        the hot loop, then dropped — peak memory is one chunk plus the
        bounded per-interval caches, independent of the horizon. Used
        by :meth:`run` and, per rank, by :class:`ChannelSimulator`.
        """
        for chunk in stream.chunks():
            self.feed(chunk)

    def feed(self, intervals: Sequence["RankInterval"]) -> None:
        """Advance the rank through ``intervals`` (one stream chunk).

        Incremental: the interval clock continues from where the last
        chunk left off, and budget validation (when configured) reports
        stream-global interval indices. :meth:`collect` reports the
        state accumulated so far.
        """
        if self.config.validate_budget:
            validate_rank_intervals(
                intervals,
                self.config.timing.max_act,
                num_banks=self.num_banks,
                concurrent_banks=self.concurrent_banks,
                start=self.intervals,
            )
        self._feed(intervals)

    def _feed(self, intervals) -> None:
        """The hot loop: absorb a run of intervals, tick the scheduler."""
        self._consumed = True
        c = self.config
        vectorized = self.vectorized
        absorb_acts = self._absorb_acts_vec if vectorized else self._absorb_acts
        scheduler_tick = self.scheduler.tick
        t_refi_ns = c.timing.t_refi_ns
        allow_postponement = c.allow_postponement
        count = self.intervals
        for interval in intervals:
            count += 1
            time_ns = count * t_refi_ns
            split = interval.per_bank_arrays if vectorized else interval.per_bank
            for bank, acts in split:
                absorb_acts(bank, acts, time_ns)
            want_postpone = interval.postpone and allow_postponement
            event = scheduler_tick(want_postpone=want_postpone)
            if event is not None:
                for _ in range(event.count):
                    self._refresh(time_ns)
        self.intervals = count

    def _merge_bank_traces(self, traces: Sequence[Trace]) -> RankTrace:
        """Legacy input format: one row-only trace per bank."""
        if len(traces) > self.concurrent_banks:
            raise ValueError(
                f"tFAW limits concurrent full-rate banks to "
                f"{self.concurrent_banks}; got {len(traces)} traces"
            )
        names = list(dict.fromkeys(trace.name for trace in traces))
        name = names[0] if len(names) == 1 else "rank(" + ",".join(names) + ")"
        return RankTrace.from_bank_traces(name, list(traces))

    def collect(self, trace_name: str) -> RankSimResult:
        """Report the state accumulated so far as a
        :class:`~repro.sim.results.RankSimResult` (what :meth:`run`
        returns; also called per rank by :class:`ChannelSimulator`)."""
        per_bank = []
        refreshes = self.scheduler.total_refreshes
        for bank in range(self.num_banks):
            model = self.device.banks[bank]
            tracker = self.trackers[bank]
            max_disturbance, most_disturbed_row = (
                model.disturbance_summary()
            )
            per_bank.append(
                SimResult(
                    tracker=tracker.name,
                    trace=trace_name,
                    intervals=self.intervals,
                    demand_acts=self.bank_demand_acts[bank],
                    refreshes=refreshes,
                    mitigations=self.bank_mitigations[bank],
                    transitive_mitigations=self.bank_transitive_mitigations[bank],
                    pseudo_mitigations=tracker.pseudo_mitigations,
                    flips=list(model.flips),
                    max_disturbance=max_disturbance,
                    most_disturbed_row=most_disturbed_row,
                    max_unmitigated=dict(self._bank_peak[bank]),
                )
            )
        return RankSimResult(
            trace=trace_name,
            intervals=self.intervals,
            refreshes=refreshes,
            per_bank=per_bank,
        )

    # ------------------------------------------------------------------
    def _absorb_acts(
        self, bank: int, acts: tuple[int, ...], time_ns: float
    ) -> None:
        """Feed one bank's share of an interval to tracker, oracle,
        counters.

        The single source of the per-ACT bookkeeping. No mitigation
        lands mid-interval, so the oracle and the unmitigated-run
        counters absorb the whole batch in one pass each.
        """
        self.bank_demand_acts[bank] += len(acts)
        tracker_on_activate = self.trackers[bank].on_activate
        for row in acts:
            tracker_on_activate(row)
        self.device.activate_many(bank, acts, time_ns)
        since = self._bank_since[bank]
        peak = self._bank_peak[bank]
        counts = self._counts
        counts.clear()
        counts.update(acts)
        for row, count in counts.items():
            total = since.get(row, 0) + count
            since[row] = total
            if total > peak.get(row, 0):
                peak[row] = total

    #: Memo ceiling; LRU-style eviction keeps the hot shared-interval
    #: entries when a trace streams unboundedly many distinct batches.
    _AGG_CACHE_LIMIT = 4096

    def _absorb_acts_vec(
        self, bank: int, acts: "np.ndarray", time_ns: float
    ) -> None:
        """Vectorized twin of :meth:`_absorb_acts` (one interval batch).

        Computes the batch's per-unique-row aggregation once and shares
        it: sorted ``(unique, counts)`` feeds the oracle's neighbour
        scatter, the first-occurrence ordering feeds the tracker batch
        update and the unmitigated-run counters (first-occurrence order
        is what repeated scalar processing would produce, which the
        tracker equivalence contract requires).
        """
        n = len(acts)
        if n == 0:
            return
        self.bank_demand_acts[bank] += n
        key = id(acts)
        cached = self._agg_cache.get(key)
        if cached is None:
            uniq, first, counts = np.unique(
                acts, return_index=True, return_counts=True
            )
            order = np.argsort(first, kind="stable")
            tracker_agg = (uniq[order], counts[order])
            items = list(zip(tracker_agg[0].tolist(), tracker_agg[1].tolist()))
            cached = (acts, (uniq, counts), tracker_agg, items)
            self._agg_cache.put(key, cached)
        _, oracle_agg, tracker_agg, items = cached
        self.trackers[bank].on_activate_batch(acts, tracker_agg)
        self.device.activate_many(bank, acts, time_ns, agg=oracle_agg)
        since = self._bank_since[bank]
        peak = self._bank_peak[bank]
        for row, count in items:
            total = since.get(row, 0) + count
            since[row] = total
            if total > peak.get(row, 0):
                peak[row] = total

    def _refresh(self, time_ns: float) -> None:
        """One rank-level REF: every bank sweeps its auto-refresh slice
        and may land one tracker-directed mitigation."""
        for bank in range(self.num_banks):
            self.device.auto_refresh(bank, time_ns)
            for request in self.trackers[bank].on_refresh():
                self._apply(bank, request, time_ns)

    def _apply(
        self, bank: int, request: MitigationRequest, time_ns: float
    ) -> None:
        self.bank_mitigations[bank] += 1
        if request.distance > 1:
            self.bank_transitive_mitigations[bank] += 1
        since = self._bank_since[bank]
        if isinstance(request, VictimRefreshRequest):
            # Victim-centric mitigation (ProTRR): refresh the named row;
            # the refresh itself disturbs that row's neighbours.
            refreshed = self.device.victim_refresh(bank, request.row, time_ns)
        else:
            refreshed = self.device.mitigate(
                bank, request.row, request.distance, time_ns
            )
            since[request.row] = 0
        tracker = self.trackers[bank]
        for victim in refreshed:
            since[victim] = 0
            if tracker.observes_mitigations:
                tracker.on_mitigation_activate(victim)

    # ------------------------------------------------------------------
    @property
    def any_flip(self) -> bool:
        return self.device.any_flip


#: Private miss sentinel for the plan memos (a cached value can never
#: be this object, so hits and misses are always distinguishable).
_CACHE_MISS = object()


class _FusedChannelKernel:
    """One flat multi-rank activation kernel — the fused channel tier.

    The lockstep march pays one Python call per (rank, bank) per tREFI;
    on an 8-bank/4-rank channel that is 32 tracker/oracle/counter
    dispatches per interval, and per-rank throughput stays flat as
    ranks are added. This kernel owns a single packed ``(unit, row)``
    array family — ``unit = rank * num_banks + bank`` — and marches
    every rank interval-by-interval under the shared tREFI clock:

    * Each bank's :class:`~repro.dram.rowstate.DenseRowDisturbanceModel`
      *adopts* a row view into the packed arrays (``adopt_storage``), so
      packed whole-channel stores and every per-bank operation
      (mitigate, exact replay, queries, ``collect``) read and write the
      same memory — bit-identity holds by construction, not by
      mirroring.
    * Per step, the per-unique-row aggregation is computed once across
      the whole channel (one ``np.unique`` over a packed
      rank×bank×row key) and dispatched three ways: per-unit tracker
      batch updates, the unmitigated-run counters, and ONE packed
      disturbance scatter (reset + bincount + fancy-index store) with a
      packed flip pre-check.
    * REF rounds fuse the rolling auto-refresh into one 2-D slice store
      across every refreshing rank, and the common mitigation shape
      (a single distance-1 request per bank) into one packed
      victims-reset + neighbour-bump scatter.

    Anything order-sensitive *within* a bank falls back to the per-bank
    code paths operating on the very same adopted arrays: intervals
    with aggressor/victim adjacency or new flips replay through
    ``activate_many`` (which replays exactly), and victim-centric /
    transitive / multi-request REFs go through ``RankSimulator._apply``
    unchanged. Reordering *across* units is unobservable — ranks and
    banks are independent by construction, and every fused sum is
    integer-valued float64 far below 2**53, so addition order cannot
    change a bit.

    Per-step plans (aggregations, packed keys, tracker dispatch tuples)
    are memoized per distinct step in a bounded LRU cache keyed by the
    step's interval-object identities — attack traces replay a few
    shared interval objects for thousands of tREFIs, so the Python plan
    cost is paid once per distinct step.
    """

    #: Plan-memo ceiling (same LRU-eviction policy as the rank caches).
    _PLAN_CACHE_LIMIT = 4096

    def __init__(self, channel: "ChannelSimulator") -> None:
        c = channel.config
        self.channel = channel
        self.num_banks = c.num_banks
        self.num_ranks = channel.num_ranks
        self.num_rows = c.num_rows
        self.units = self.num_ranks * self.num_banks
        self.trh = float(c.trh)
        self.t_refi_ns = c.timing.t_refi_ns
        self.allow_postponement = c.allow_postponement
        self.dist = np.zeros((self.units, self.num_rows), dtype=np.float64)
        self.peak = np.zeros((self.units, self.num_rows), dtype=np.float64)
        self.flipped = np.zeros((self.units, self.num_rows), dtype=bool)
        self.dist_flat = self.dist.reshape(-1)
        self.peak_flat = self.peak.reshape(-1)
        self.flipped_flat = self.flipped.reshape(-1)
        # Packed twins of the per-bank unmitigated-run counters
        # (``_bank_since``/``_bank_peak``): in-range rows live here and
        # update as one scatter per step; the rare out-of-range
        # activated rows stay in the rank dicts, and ``materialize``
        # merges both back into the dicts before ``collect``.
        self.since = np.zeros((self.units, self.num_rows), dtype=np.int64)
        self.speak = np.zeros((self.units, self.num_rows), dtype=np.int64)
        self.since_flat = self.since.reshape(-1)
        self.speak_flat = self.speak.reshape(-1)
        # Activated-row envelope, per unit: the packed unmitigated-run
        # counters (``since``/``speak``) are only ever written at
        # in-range *activated* rows — mitigations merely zero them — so
        # ``materialize`` can scan [lo, hi) instead of the whole row
        # space. (The disturbance arrays get no such envelope:
        # victim-refresh bumps chain arbitrarily far from the
        # activations.) Widened at plan build; empty (lo >= hi) until a
        # unit first activates.
        self._row_lo = [self.num_rows] * self.units
        self._row_hi = [0] * self.units
        for rank, sim in enumerate(channel.ranks):
            for bank in range(self.num_banks):
                unit = rank * self.num_banks + bank
                sim.device.banks[bank].adopt_storage(
                    self.dist[unit], self.peak[unit], self.flipped[unit]
                )
        self._plan_cache = BoundedCache(self._PLAN_CACHE_LIMIT)
        # Per-size [1, 2, 1]-pattern bump vectors for the fused
        # mitigation scatter (each aggressor's two victim refreshes bump
        # a-2 once, a twice, a+2 once).
        self._bump_patterns: dict[int, "np.ndarray"] = {}
        self._all_units = np.arange(self.units, dtype=np.intp)
        self._unit_bases = self._all_units * self.num_rows
        # Offsets of every row a distance-1 mitigation touches, relative
        # to the aggressor: victims {a±1} then bump targets {a-2, a, a+2}.
        # One broadcast add against the packed aggressor keys yields all
        # five blocks at once; the blocks are then sliced as views.
        self._mit_offsets = np.array(
            [[-1], [1], [-2], [0], [2]], dtype=np.intp
        )
        # Packed per-unit mitigation tally. When no tracker observes
        # mitigation activations and every fused aggressor is interior,
        # the per-request bookkeeping sweep collapses to one increment
        # here; ``materialize`` folds it back into the per-rank
        # ``bank_mitigations`` lists (addition commutes with the direct
        # bumps from the slow paths).
        self.mitig = np.zeros(self.units, dtype=np.int64)
        self._any_observing = any(
            sim.trackers[bank].observes_mitigations
            for sim in channel.ranks
            for bank in range(self.num_banks)
        )
        # Packed per-unit demand tally (same fold-at-materialize deal as
        # ``mitig``): one fancy increment per step replaces the per-unit
        # Python sweep over ``bank_demand_acts``.
        self.demand_acc = np.zeros(self.units, dtype=np.int64)
        # Pre-bound REF dispatch rows: (sim, bank, unit, on_refresh) per
        # unit, grouped by rank, so each REF round walks a prebuilt list
        # instead of re-binding tracker methods.
        self._ref_handlers = [
            [
                (
                    sim,
                    bank,
                    rank * self.num_banks + bank,
                    sim.trackers[bank].on_refresh,
                )
                for bank in range(self.num_banks)
            ]
            for rank, sim in enumerate(channel.ranks)
        ]
        # Rolling auto-refresh bookkeeping, kept kernel-side: the slice
        # math is inlined per round and the device counters (untouched
        # during a fused run) are synced back in ``materialize``.
        dev = channel.ranks[0].device
        self._refw = dev.config.refi_per_refw
        self._slice_rows = dev._rows_per_slice
        self._ref_counts = [
            sim.device._ref_counter[0] for sim in channel.ranks
        ]
        self.steps = 0
        # Kernel-path telemetry (exposed via ``stats()``): fused
        # fast-path steps vs order-sensitive slow-path steps vs steps
        # executed inside a compiled march, plus plan-cache traffic —
        # a workload silently degrading to 100% slow path is invisible
        # without these.
        self.fast_steps = 0
        self.slow_steps = 0
        self.compiled_steps = 0
        self.compiled_calls = 0
        self.compiled_bails = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self._step_slow = False
        # Running upper bound on every packed disturbance cell, or None
        # after a write the fused paths cannot see (exact replays, slow
        # mitigations). The compiled march uses it for flip safety: a
        # step runs compiled only while bound + step_gain < trh, so the
        # compiled loop needs no per-write flip checks.
        self._bound = 0.0
        # Compiled-tier state (see repro.kernels). The march function
        # is resolved once; a run/plan that cannot lower disables the
        # tier for this kernel (sticky — the Python paths then own the
        # arrays and the bound may go stale near the threshold).
        self._march_fn = None
        self._provider = None
        if channel.backend == "compiled":
            from ..kernels import get_march

            self._march_fn = get_march()
            self._provider = channel._provider
        self._compiled_off = self._march_fn is None
        self._min_compiled_run = 16
        self._max_compiled_chunk = 4096
        self._lowered_cache = BoundedCache(self._PLAN_CACHE_LIMIT)
        self._cstate = None

    # ------------------------------------------------------------------
    def march(self, iterators: dict[int, "Iterator"]) -> None:
        """Drain per-rank interval iterators in interval lockstep.

        Every still-active rank advances by exactly one interval per
        step, so the shared tREFI clock is common to all active ranks;
        a rank drops out when its schedule ends (ranks may have
        different horizons).

        Consecutive steps replaying the same interval objects — the
        dominant case, attack traces reuse a few shared intervals for
        thousands of tREFIs — accumulate into *runs* and flush
        together, so the compiled tier can execute a whole run in one
        call instead of one Python dispatch per tREFI. Run detection is
        per rank via ``itertools.groupby`` keyed on object identity, so
        a thousand-step replay costs one C-speed group consumption, not
        a thousand Python-loop iterations; the composed channel run is
        the minimum of the active ranks' run lengths. Lookahead per
        rank never exceeds ``_max_compiled_chunk`` intervals (matching
        the accumulate-then-flush window the per-step detector had).
        """
        self._run_state = {
            rank: [groupby(it, key=id), None]
            for rank, it in iterators.items()
        }
        current: dict[int, list] = {}
        for rank in sorted(self._run_state):
            run = self._next_run(rank)
            if run is not None:
                current[rank] = [run[0], run[1]]
        while current:
            ranks = sorted(current)
            step = [(rank, current[rank][0]) for rank in ranks]
            n = min(current[rank][1] for rank in ranks)
            key = tuple((rank, id(interval)) for rank, interval in step)
            self._flush(step, key, n)
            for rank in ranks:
                state = current[rank]
                state[1] -= n
                if state[1] == 0:
                    run = self._next_run(rank)
                    if run is None:
                        del current[rank]
                    else:
                        state[0], state[1] = run

    def _next_run(self, rank: int):
        """Pull one rank's next ``(interval, count)`` replay run.

        A run is a maximal stretch of consecutive identical interval
        objects, capped at ``_max_compiled_chunk``; a capped group's
        remainder carries over to the next pull. Identity grouping is
        sound against id reuse because ``groupby`` keeps the previous
        item alive while keying the next one, and the returned interval
        pins its whole run (every grouped item IS that object).
        """
        grouper, group = self._run_state[rank]
        cap = self._max_compiled_chunk
        while True:
            if group is not None:
                first = next(group, _CACHE_MISS)
                if first is not _CACHE_MISS:
                    n = 1 + sum(1 for _ in islice(group, cap - 1))
                    self._run_state[rank][1] = group if n == cap else None
                    return first, n
                self._run_state[rank][1] = None
            pulled = next(grouper, _CACHE_MISS)
            if pulled is _CACHE_MISS:
                return None
            group = pulled[1]

    def _flush(self, step: list, key: tuple, n: int) -> None:
        """Execute ``n`` identical consecutive steps.

        Long enough runs go through the compiled march when the plan
        qualifies; whatever it does not execute (no provider, an
        unqualified plan, a flip-safety bail) replays through the
        per-step fused path below.
        """
        plan = self._plan_cache.get(key, _CACHE_MISS)
        if plan is _CACHE_MISS:
            plan = self._build_plan(step)
            self._plan_cache.put(key, plan)
            self.plan_misses += 1
            self.plan_hits += n - 1
        else:
            self.plan_hits += n
        done = 0
        if not self._compiled_off and n >= self._min_compiled_run:
            done = self._compiled_march(step, plan, n)
        for _ in range(n - done):
            self._step(step, plan)

    def _step(self, step: list, plan: tuple | None = None) -> None:
        """One shared tREFI: absorb every rank's interval, tick REFs."""
        self.steps += 1
        time_ns = self.steps * self.t_refi_ns
        self._step_slow = False
        if plan is None:
            key = tuple((rank, id(interval)) for rank, interval in step)
            plan = self._plan_cache.get(key, _CACHE_MISS)
            if plan is _CACHE_MISS:
                plan = self._build_plan(step)
                self._plan_cache.put(key, plan)
        (
            absorb,
            exact_units,
            scatter_units,
            reset_keys,
            victims,
            delta,
            since_keys,
            since_counts,
            overflow,
            demand_keys,
            demand_counts,
        ) = plan[:11]
        # Trackers, one pre-bound dispatch per active unit (no
        # mitigation lands mid-interval, so batch order across units is
        # unobservable).
        for batch, acts, tracker_agg in absorb:
            batch(acts, tracker_agg)
        if demand_keys.size:
            self.demand_acc[demand_keys] += demand_counts
        # Unmitigated-run counters: one packed scatter for every
        # in-range activated row channel-wide (keys are unique per unit
        # and cannot collide across units), dict fallback for the rare
        # out-of-range rows.
        if since_keys.size:
            since_flat = self.since_flat
            totals = since_flat[since_keys] + since_counts
            since_flat[since_keys] = totals
            speak_flat = self.speak_flat
            speak_flat[since_keys] = np.maximum(speak_flat[since_keys], totals)
        for since, peak, items in overflow:
            for row, count in items:
                total = since.get(row, 0) + count
                since[row] = total
                if total > peak.get(row, 0):
                    peak[row] = total
        # Units whose activated rows fall within each other's blast
        # radius replay through their bank's exact path (same adopted
        # arrays, per-bank flip/order semantics preserved).
        if exact_units:
            self._step_slow = True
            self._bound = None
            for model, acts, agg in exact_units:
                model.activate_many(acts, time_ns, agg=agg)
        # The fused scatter: one whole-channel read + flip pre-check +
        # reset + write + peak max over packed unit*num_rows+row keys.
        if victims.size:
            dist_flat = self.dist_flat
            old = dist_flat[victims]
            new = old + delta
            mx = new.max()
            if mx >= self.trh and bool(
                ((new >= self.trh) & ~self.flipped_flat[victims]).any()
            ):
                # Rare: some unit crosses TRH this interval. Replay each
                # scatter-eligible unit through its own bank path, which
                # records per-crossing flip events in act order.
                self._step_slow = True
                self._bound = None
                for model, acts, agg in scatter_units:
                    model.activate_many(acts, time_ns, agg=agg)
            else:
                dist_flat[reset_keys] = 0.0
                dist_flat[victims] = new
                peak_flat = self.peak_flat
                peak_flat[victims] = np.maximum(peak_flat[victims], new)
                if self._bound is not None and mx > self._bound:
                    self._bound = float(mx)
        elif reset_keys.size:
            self.dist_flat[reset_keys] = 0.0
        # Shared tREFI boundary: every active rank's scheduler ticks.
        ranks = self.channel.ranks
        allow = self.allow_postponement
        ref_ranks = []
        counts = []
        mx = 0
        for rank, interval in step:
            sim = ranks[rank]
            sim.intervals += 1
            event = sim.scheduler.tick(
                want_postpone=interval.postpone and allow
            )
            if event is not None:
                ref_ranks.append(rank)
                c = event.count
                counts.append(c)
                if c > mx:
                    mx = c
        if mx == 1:
            # Common shape: one REF on every refreshing rank.
            self._fused_refresh(ref_ranks, time_ns)
        elif mx:
            for i in range(mx):
                self._fused_refresh(
                    [
                        rank
                        for rank, count in zip(ref_ranks, counts)
                        if count > i
                    ],
                    time_ns,
                )
        if self._step_slow:
            self.slow_steps += 1
        else:
            self.fast_steps += 1

    def _build_plan(self, step: list) -> tuple:
        """Aggregate one channel step into packed dispatch plans.

        Returns ``(absorb, exact_units, scatter_units, reset_keys,
        victims_unique, delta, since_keys, since_counts, overflow,
        demand_keys, demand_counts, step)``; the trailing ``step``
        reference pins the keyed interval objects so their ids cannot
        be recycled while the memo entry lives.
        """
        B = self.num_banks
        rows_n = self.num_rows
        ranks = self.channel.ranks
        unit_cols = []
        row_cols = []
        acts_by_unit: dict[int, "np.ndarray"] = {}
        for rank, interval in step:
            base = rank * B
            for bank, acts in interval.per_bank_arrays:
                acts_by_unit[base + bank] = acts
            banks_col, rows_col = interval.column_arrays
            if banks_col.size:
                unit_cols.append(banks_col + base)
                row_cols.append(rows_col)
        # One aggregation for the whole channel: np.unique over a packed
        # unit×row key (rows biased to non-negative). Unique pairs come
        # out sorted by (unit, row), so per-unit segments are contiguous
        # runs and each segment is that bank's sorted unique-row
        # aggregation — exactly what the per-bank kernel would compute.
        segments = []  # (unit, uniq_rows, counts, first_occurrence)
        if unit_cols:
            units_col = np.concatenate(unit_cols)
            rows_all = np.concatenate(row_cols)
            rmin = int(rows_all.min())
            span = int(rows_all.max()) - rmin + 1
            if span <= (2 ** 61) // max(self.units, 1):
                keys = units_col * span + (rows_all - rmin)
                uniq_keys, first, counts = np.unique(
                    keys, return_index=True, return_counts=True
                )
                uniq_units = uniq_keys // span
                uniq_rows = uniq_keys - uniq_units * span + rmin
                seg_units, seg_starts = np.unique(
                    uniq_units, return_index=True
                )
                bounds = seg_starts.tolist() + [uniq_keys.size]
                for i, unit in enumerate(seg_units.tolist()):
                    s, e = bounds[i], bounds[i + 1]
                    segments.append(
                        (unit, uniq_rows[s:e], counts[s:e], first[s:e])
                    )
            else:  # pragma: no cover - astronomical row indices only
                # The packed key would overflow int64; aggregate each
                # unit separately (same downstream plan).
                for unit in sorted(acts_by_unit):
                    uniq, first, counts = np.unique(
                        acts_by_unit[unit],
                        return_index=True,
                        return_counts=True,
                    )
                    segments.append((unit, uniq, counts, first))
        absorb = []
        demand_units: list[int] = []
        demand_ns: list[int] = []
        exact_units = []
        scatter_units = []
        reset_parts = []
        vkey_parts = []
        vweight_parts = []
        since_parts = []
        since_count_parts = []
        overflow = []
        for unit, uniq, counts, first in segments:
            # Within a unit all acts come from one contiguous slice of
            # the packed columns in issue order, so sorting the global
            # first-occurrence indices reproduces the per-bank
            # first-occurrence order the tracker contract requires.
            order = np.argsort(first, kind="stable")
            tracker_agg = (uniq[order], counts[order])
            rank, bank = divmod(unit, B)
            sim = ranks[rank]
            acts = acts_by_unit[unit]
            absorb.append(
                (sim.trackers[bank].on_activate_batch, acts, tracker_agg)
            )
            demand_units.append(unit)
            demand_ns.append(len(acts))
            # Activated rows outside the bank are legal no-ops on the
            # oracle; in-range rows update the packed unmitigated-run
            # counters, out-of-range ones stay in the rank dicts.
            in_range = (uniq >= 0) & (uniq < rows_n)
            since_parts.append(unit * rows_n + uniq[in_range])
            since_count_parts.append(counts[in_range].astype(np.int64))
            if not bool(in_range.all()):
                oob = ~in_range
                overflow.append(
                    (
                        sim._bank_since[bank],
                        sim._bank_peak[bank],
                        list(
                            zip(uniq[oob].tolist(), counts[oob].tolist())
                        ),
                    )
                )
            agg = (uniq, counts)
            model = sim.device.banks[bank]
            if uniq.size:
                # Widen the unit's activated-row envelope (uniq is
                # sorted; only its in-range part can reach the packed
                # unmitigated-run counters).
                lo = int(uniq[0])
                hi = int(uniq[-1]) + 1
                if lo < 0:
                    lo = 0
                if hi > rows_n:
                    hi = rows_n
                if lo < self._row_lo[unit]:
                    self._row_lo[unit] = lo
                if hi > self._row_hi[unit]:
                    self._row_hi[unit] = hi
            if uniq.size > 1 and bool(np.any(np.diff(uniq) == 1)):
                # Aggressor/victim interleaving within the bank: the
                # in-batch order of self-refreshes is observable.
                exact_units.append((model, acts, agg))
                continue
            scatter_units.append((model, acts, agg))
            # Only in-range rows get their self-reset, but even
            # out-of-range aggressors can have in-range victims.
            reset_parts.append(unit * rows_n + uniq[in_range])
            victims = np.concatenate((uniq - 1, uniq + 1))
            weights = np.concatenate((counts, counts)).astype(np.float64)
            valid = (victims >= 0) & (victims < rows_n)
            vkey_parts.append(unit * rows_n + victims[valid])
            vweight_parts.append(weights[valid])
        if since_parts:
            since_keys = np.concatenate(since_parts)
            since_counts = np.concatenate(since_count_parts)
        else:
            since_keys = np.empty(0, dtype=np.intp)
            since_counts = np.empty(0, dtype=np.int64)
        if reset_parts:
            reset_keys = np.concatenate(reset_parts)
        else:
            reset_keys = np.empty(0, dtype=np.intp)
        if vkey_parts:
            vkeys = np.concatenate(vkey_parts)
            vweights = np.concatenate(vweight_parts)
            victims_unique = np.unique(vkeys)
            idx = np.searchsorted(victims_unique, vkeys)
            delta = np.bincount(
                idx, weights=vweights, minlength=victims_unique.size
            )
        else:
            victims_unique = np.empty(0, dtype=np.intp)
            delta = np.empty(0, dtype=np.float64)
        if demand_units:
            demand_keys = np.array(demand_units, dtype=np.intp)
            demand_counts = np.array(demand_ns, dtype=np.int64)
        else:
            demand_keys = np.empty(0, dtype=np.intp)
            demand_counts = np.empty(0, dtype=np.int64)
        return (
            absorb,
            exact_units,
            scatter_units,
            reset_keys,
            victims_unique,
            delta,
            since_keys,
            since_counts,
            overflow,
            demand_keys,
            demand_counts,
            step,
        )

    def _fused_refresh(self, round_ranks: list[int], time_ns: float) -> None:
        """One REF round across every rank whose REF executes now.

        Equivalent to calling ``RankSimulator._refresh`` on each rank:
        banks (and ranks) are independent, so fusing the per-bank
        auto-refresh sweeps and the common mitigation shape across
        units is an unobservable reordering.
        """
        B = self.num_banks
        rows_n = self.num_rows
        # Rolling auto-refresh, slice math inlined from
        # ``DramDevice.auto_refresh_slice`` against kernel-side per-rank
        # counters (the idle device counters sync back in
        # ``materialize``). The overwhelmingly common round — every rank
        # refreshing the same slice — is one basic 2-D slice store;
        # slices differ across ranks only under uneven postponement.
        refw = self._refw
        slice_rows = self._slice_rows
        ref_counts = self._ref_counts
        slices = []
        for rank in round_ranks:
            i = ref_counts[rank] % refw
            ref_counts[rank] += 1
            lo = i * slice_rows
            if i == refw - 1:
                hi = rows_n
            else:
                hi = min(lo + slice_rows, rows_n)
            slices.append((lo, hi))
        lo, hi = slices[0]
        if (
            len(round_ranks) == self.num_ranks
            and slices.count(slices[0]) == len(slices)
        ):
            if hi > lo:
                self.dist[:, lo:hi] = 0.0
        else:
            slice_units: dict[tuple[int, int], list[int]] = {}
            for rank, span in zip(round_ranks, slices):
                slice_units.setdefault(span, []).extend(
                    range(rank * B, (rank + 1) * B)
                )
            for (lo, hi), units in slice_units.items():
                if hi > lo:
                    self.dist[units, lo:hi] = 0.0
        # Collect this round's mitigation requests. The common shape —
        # one plain distance-1 request for the bank — fuses; anything
        # else (victim-centric, transitive, multi-request) goes through
        # the per-bank applier unchanged. Units are independent, so the
        # split cannot reorder anything observable.
        fused = []
        reqs = []
        rows_list: list[int] = []
        handlers = self._ref_handlers
        for rank in round_ranks:
            for entry in handlers[rank]:
                requests = entry[3]()
                if not requests:
                    continue
                if (
                    len(requests) == 1
                    and type(requests[0]) is MitigationRequest
                    and requests[0].distance == 1
                ):
                    request = requests[0]
                    fused.append(entry)
                    reqs.append(request)
                    rows_list.append(request.row)
                else:
                    sim, bank, unit, _ = entry
                    for request in requests:
                        self._apply_slow(sim, bank, unit, request, time_ns)
        m = len(fused)
        if m == 0:
            return
        if m == 1:
            sim, bank, unit, _ = fused[0]
            self._apply_slow(sim, bank, unit, reqs[0], time_ns)
            return
        # round_ranks ascends and banks are swept in order, so when
        # every unit fused exactly one request this round the packed
        # unit bases are the cached arange * num_rows verbatim.
        units_arr = None
        if m != self.units:
            units_arr = np.fromiter(
                (entry[2] for entry in fused), dtype=np.intp, count=m
            )
        # Refreshed victims (aggressor±1, clipped) and the neighbour
        # bumps their refresh-activations cause (victim±1, clipped).
        # Within a unit the two sets are disjoint ({a±1} vs {a-2,a,a+2})
        # and across units the packed keys cannot collide, so reset
        # order versus bump order is unobservable.
        akeys = None
        interior = min(rows_list) >= 2 and max(rows_list) <= rows_n - 3
        rows_arr = np.array(rows_list, dtype=np.intp)
        if interior:
            # Interior fast shape: no clipping anywhere, so victims are
            # exactly {a±1} and bumps land on {a-2, a, a+2} with the
            # fixed [1, 2, 1] pattern (at most one fused request per
            # unit, so no key can repeat). One broadcast add produces
            # all five key blocks; the slices below are views into it.
            if units_arr is None:
                base_keys = self._unit_bases + rows_arr
            else:
                base_keys = units_arr * rows_n + rows_arr
            all_keys = (self._mit_offsets + base_keys).reshape(-1)
            vkeys = all_keys[:2 * m]
            nunique = all_keys[2 * m:]
            akeys = all_keys[3 * m:4 * m]
            bump = self._bump_patterns.get(m)
            if bump is None:
                bump = np.empty(3 * m, dtype=np.float64)
                bump[:m] = 1.0
                bump[m:2 * m] = 2.0
                bump[2 * m:] = 1.0
                self._bump_patterns[m] = bump
            new = self.dist_flat[nunique] + bump
        else:
            if units_arr is None:
                units_arr = self._all_units
            vrows = np.concatenate((rows_arr - 1, rows_arr + 1))
            vunits = np.concatenate((units_arr, units_arr))
            valid = (vrows >= 0) & (vrows < rows_n)
            vrows = vrows[valid]
            vunits = vunits[valid]
            vkeys = vunits * rows_n + vrows
            nrows = np.concatenate((vrows - 1, vrows + 1))
            nunits = np.concatenate((vunits, vunits))
            nvalid = (nrows >= 0) & (nrows < rows_n)
            nkeys = nunits[nvalid] * rows_n + nrows[nvalid]
            new = None
            if nkeys.size:
                nunique = np.unique(nkeys)
                bump = np.bincount(
                    np.searchsorted(nunique, nkeys), minlength=nunique.size
                ).astype(np.float64)
                new = self.dist_flat[nunique] + bump
        if new is not None:
            bump_mx = new.max()
            if bump_mx >= self.trh and bool(
                ((new >= self.trh) & ~self.flipped_flat[nunique]).any()
            ):
                # Rare: a mitigation bump crosses TRH — replay through
                # the per-bank appliers (exact per-crossing flips).
                for (sim, bank, unit, _), request in zip(fused, reqs):
                    self._apply_slow(sim, bank, unit, request, time_ns)
                return
            if self._bound is not None and bump_mx > self._bound:
                self._bound = float(bump_mx)
        self.dist_flat[vkeys] = 0.0
        self.since_flat[vkeys] = 0
        if akeys is None:
            a_in = (rows_arr >= 0) & (rows_arr < rows_n)
            if bool(a_in.any()):
                akeys = units_arr[a_in] * rows_n + rows_arr[a_in]
        if akeys is not None:
            self.since_flat[akeys] = 0
        if new is not None:
            self.dist_flat[nunique] = new
            self.peak_flat[nunique] = np.maximum(
                self.peak_flat[nunique], new
            )
        # Engine bookkeeping, per request (bumps are monotone, so the
        # single packed peak max equals the sequential per-bump maxes).
        if interior and not self._any_observing:
            # Interior rows are always in range and no tracker wants
            # the mitigation-activate callbacks, so the sweep is one
            # packed tally increment.
            if units_arr is None:
                self.mitig += 1
            else:
                self.mitig[units_arr] += 1
            return
        for (sim, bank, _, _), request in zip(fused, reqs):
            sim.bank_mitigations[bank] += 1
            row = request.row
            if not 0 <= row < rows_n:
                # Out-of-range aggressor: its reset lives in the dict
                # overflow, like its activations.
                # kernel/simulator pair: the kernel owns the packed twins
                # repro-lint: allow[private-poke] dict-overflow counter sync
                sim._bank_since[bank][row] = 0
            tracker = sim.trackers[bank]
            if tracker.observes_mitigations:
                for victim in (row - 1, row + 1):
                    if 0 <= victim < rows_n:
                        tracker.on_mitigation_activate(victim)

    def _apply_slow(
        self,
        sim: "RankSimulator",
        bank: int,
        unit: int,
        request: MitigationRequest,
        time_ns: float,
    ) -> None:
        """Per-bank mitigation applier for fused runs.

        Mirrors :meth:`RankSimulator._apply` exactly, except the
        unmitigated-run resets land in the kernel's packed counters
        (dict overflow for out-of-range rows) so both representations
        stay consistent during a fused run.
        """
        self._step_slow = True
        self._bound = None
        sim.bank_mitigations[bank] += 1
        if request.distance > 1:
            sim.bank_transitive_mitigations[bank] += 1
        rows_n = self.num_rows
        base = unit * rows_n
        since_flat = self.since_flat
        if isinstance(request, VictimRefreshRequest):
            refreshed = sim.device.victim_refresh(bank, request.row, time_ns)
        else:
            refreshed = sim.device.mitigate(
                bank, request.row, request.distance, time_ns
            )
            row = request.row
            if 0 <= row < rows_n:
                since_flat[base + row] = 0
            else:
                # repro-lint: allow[private-poke] dict-overflow counter sync
                sim._bank_since[bank][row] = 0
        tracker = sim.trackers[bank]
        observes = tracker.observes_mitigations
        for victim in refreshed:
            if 0 <= victim < rows_n:
                since_flat[base + victim] = 0
            else:
                # repro-lint: allow[private-poke] dict-overflow counter sync
                sim._bank_since[bank][victim] = 0
            if observes:
                tracker.on_mitigation_activate(victim)

    # -- compiled tier -------------------------------------------------
    def _compiled_state(self) -> dict | None:
        """Per-kernel state arrays for the compiled march, built once.

        Every tracker in the channel must be exactly a null tracker or
        a plain-RNG :class:`~repro.core.mint.MintTracker` (the pure-
        tally shapes the compiled REF logic implements); anything else
        — or any tracker observing mitigation activations — disables
        the tier for this kernel and the fused Python paths carry on.
        """
        state = self._cstate
        if state is not None:
            return state
        if self._any_observing:
            self._compiled_off = True
            return None
        import random as random_mod

        from ..core.mint import MintTracker
        from ..trackers.base import NullTracker

        kind = np.zeros(self.units, dtype=np.int64)
        mints: list = [None] * self.units
        for rank, sim in enumerate(self.channel.ranks):
            for bank in range(self.num_banks):
                unit = rank * self.num_banks + bank
                tracker = sim.trackers[bank]
                if type(tracker) is NullTracker:
                    continue
                low = 0 if getattr(tracker, "transitive", True) else 1
                if (
                    type(tracker) is MintTracker
                    and type(tracker.rng) is random_mod.Random
                    and (tracker.max_act - low + 1).bit_length() <= 32
                ):
                    kind[unit] = 1
                    mints[unit] = tracker
                else:
                    self._compiled_off = True
                    return None
        units = self.units
        state = {
            "kind": kind,
            "mints": mints,
            "m_san": np.zeros(units, dtype=np.int64),
            "m_sar": np.zeros(units, dtype=np.int64),
            "m_valid": np.zeros(units, dtype=np.int64),
            "m_dist": np.zeros(units, dtype=np.int64),
            "m_sel": np.zeros(units, dtype=np.int64),
            "mitig": np.zeros(units, dtype=np.int64),
            "transmit": np.zeros(units, dtype=np.int64),
            "draw_off": np.zeros(units, dtype=np.int64),
            "ref_counts": np.zeros(self.num_ranks, dtype=np.int64),
        }
        self._cstate = state
        return state

    def _lower(self, plan: tuple):
        """The plan's flat-array form for the compiled march (memoized
        per plan object; ``None`` when the plan cannot lower)."""
        entry = self._lowered_cache.get(id(plan), _CACHE_MISS)
        if entry is not _CACHE_MISS:
            return entry[1]
        lowered = self._build_lowered(plan)
        # The entry pins the plan so its id cannot be recycled.
        self._lowered_cache.put(id(plan), (plan, lowered))
        return lowered

    def _build_lowered(self, plan: tuple):
        (
            absorb,
            exact_units,
            _scatter_units,
            reset_keys,
            victims,
            delta,
            since_keys,
            since_counts,
            overflow,
            demand_keys,
            demand_counts,
            step,
        ) = plan
        # Order-sensitive shapes (aggressor/victim adjacency) and
        # out-of-range activations keep their per-step handling.
        if exact_units or overflow:
            return None
        lengths = np.zeros(self.units, dtype=np.int64)
        parts = []
        # ``absorb`` entries parallel ``demand_keys`` (both are built
        # per segment, unit-ascending), so this pairs each unit with
        # its raw act rows.
        for (_, acts, _), unit in zip(absorb, demand_keys.tolist()):
            arr = np.ascontiguousarray(acts, dtype=np.int64)
            lengths[unit] = arr.shape[0]
            parts.append(arr)
        acts_off = np.zeros(self.units + 1, dtype=np.int64)
        np.cumsum(lengths, out=acts_off[1:])
        acts_concat = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        )
        step_ranks = np.array(
            sorted(rank for rank, _ in step), dtype=np.int64
        )
        postpone_any = any(interval.postpone for _, interval in step)
        max_delta = float(delta.max()) if delta.size else 0.0
        return (
            step_ranks,
            postpone_any,
            np.ascontiguousarray(reset_keys, dtype=np.int64),
            np.ascontiguousarray(victims, dtype=np.int64),
            np.ascontiguousarray(delta, dtype=np.float64),
            np.ascontiguousarray(since_keys, dtype=np.int64),
            np.ascontiguousarray(since_counts, dtype=np.int64),
            acts_concat,
            acts_off,
            demand_keys,
            demand_counts,
            # Flip-safety step gain: the largest one-step increase any
            # cell can see — its activation-scatter delta plus the
            # worst mitigation bump (2.0: a distance-1 aggressor is
            # bumped by both of its victims' refresh activations).
            max_delta + 2.0,
        )

    def _compiled_march(self, step: list, plan: tuple, n: int) -> int:
        """March up to ``n`` identical steps inside one compiled call.

        Returns the number of steps executed (0 when the plan or the
        current tracker/scheduler state does not qualify); the caller
        replays the remainder through the per-step path. On a
        flip-safety bail the tier switches off for the rest of this
        kernel — from there on the run is threshold-bound and needs
        per-step flip ordering anyway.
        """
        lowered = self._lower(plan)
        if lowered is None:
            return 0
        state = self._compiled_state()
        if state is None:
            return 0
        (
            step_ranks,
            postpone_any,
            reset_keys,
            victims,
            delta,
            since_keys,
            since_counts,
            acts_concat,
            acts_off,
            demand_keys,
            demand_counts,
            step_gain,
        ) = lowered
        ranks = self.channel.ranks
        # Postponement makes REF counts per step data-dependent; the
        # compiled march assumes exactly one REF per active rank.
        if self.allow_postponement and postpone_any:
            return 0
        rank_list = step_ranks.tolist()
        for rank in rank_list:
            if ranks[rank].scheduler.postponed:
                return 0
        trh = self.trh
        bound = self._bound
        if bound is None:
            bound = float(self.dist.max()) if self.dist.size else 0.0
            self._bound = bound
        if bound + step_gain >= trh:
            # Threshold territory: every step can flip and needs exact
            # event ordering — permanently the per-step path's job.
            self.compiled_bails += 1
            self._compiled_off = True
            return 0
        from ..kernels.mt import draw_exact

        kind = state["kind"]
        mints = state["mints"]
        m_san = state["m_san"]
        m_sar = state["m_sar"]
        m_valid = state["m_valid"]
        m_dist = state["m_dist"]
        m_sel = state["m_sel"]
        mitig = state["mitig"]
        transmit = state["transmit"]
        draw_off = state["draw_off"]
        num_rows = self.num_rows
        B = self.num_banks
        # MINT sync-in. CAN must be 0 (every fused step ends on a REF)
        # and a pending SAR in range (out-of-range resets live in the
        # dict overflow, a per-step concern).
        active_mints = []
        for rank in rank_list:
            base = rank * B
            for bank in range(B):
                unit = base + bank
                if kind[unit] != 1:
                    continue
                tracker = mints[unit]
                if tracker.can != 0:
                    return 0
                sar = tracker.sar
                if sar is not None and not 0 <= sar < num_rows:
                    return 0
                active_mints.append((unit, tracker))
        draws = np.empty(len(active_mints) * n, dtype=np.int64)
        saved = []
        for i, (unit, tracker) in enumerate(active_mints):
            sar = tracker.sar
            m_san[unit] = -1 if tracker.san is None else tracker.san
            m_valid[unit] = 0 if sar is None else 1
            m_sar[unit] = 0 if sar is None else sar
            m_dist[unit] = tracker._distance
            m_sel[unit] = tracker.selections
            mitig[unit] = 0
            transmit[unit] = 0
            draw_off[unit] = i * n
            low = 0 if tracker.transitive else 1
            # One REF per step consumes exactly one randint; pre-draw
            # the whole march (bit-exact, see repro.kernels.mt) and
            # rewind to the consumed prefix on an early bail.
            saved.append((tracker, tracker.rng.getstate(), low))
            draws[i * n : (i + 1) * n] = draw_exact(
                tracker.rng, n, low, tracker.max_act
            )
        ref_counts = state["ref_counts"]
        for rank in range(self.num_ranks):
            ref_counts[rank] = self._ref_counts[rank]
        try:
            done, bound_out = self._march_fn(
                self.dist_flat,
                self.peak_flat,
                self.since_flat,
                self.speak_flat,
                mitig,
                transmit,
                reset_keys,
                victims,
                delta,
                since_keys,
                since_counts,
                acts_concat,
                acts_off,
                step_ranks,
                B,
                num_rows,
                ref_counts,
                self._refw,
                self._slice_rows,
                kind,
                m_san,
                m_sar,
                m_valid,
                m_dist,
                m_sel,
                draw_off,
                draws,
                n,
                trh,
                step_gain,
                bound,
            )
        except Exception:
            # A provider that cannot compile this call (e.g. a Numba
            # typing failure) raises before the body executes; undo the
            # pre-draws and stay on the per-step path.
            for tracker, rng_state, _ in saved:
                tracker.rng.setstate(rng_state)
            self._compiled_off = True
            return 0
        self.compiled_calls += 1
        if done < n:
            self.compiled_bails += 1
            self._compiled_off = True
            for tracker, rng_state, low in saved:
                tracker.rng.setstate(rng_state)
                if done:
                    draw_exact(tracker.rng, done, low, tracker.max_act)
            if done == 0:
                return 0
        self.compiled_steps += done
        self.steps += done
        self._bound = float(bound_out)
        # Sync the marched state back to its Python-side owners.
        for unit, tracker in active_mints:
            tracker.san = None if m_san[unit] == -1 else int(m_san[unit])
            tracker.sar = int(m_sar[unit]) if m_valid[unit] else None
            # compiled march mirrors MintTracker's own bookkeeping
            # repro-lint: allow[private-poke] synced back verbatim
            tracker._distance = int(m_dist[unit])
            tracker.selections = int(m_sel[unit])
            issued = int(mitig[unit])
            if issued:
                tracker.mitigations_issued += issued
                # Engine-side tally: same fold-at-materialize deal as
                # the fused Python path.
                self.mitig[unit] += issued
            trans = int(transmit[unit])
            if trans:
                tracker.transitive_mitigations += trans
                ranks[unit // B].bank_transitive_mitigations[
                    unit % B
                ] += trans
        if demand_keys.size:
            self.demand_acc[demand_keys] += demand_counts * done
        for rank in rank_list:
            sim = ranks[rank]
            sim.intervals += done
            sim.scheduler.interval_index += done
            sim.scheduler.total_refreshes += done
            self._ref_counts[rank] = int(ref_counts[rank])
        return done

    def stats(self) -> dict:
        """Kernel-path telemetry for this run (see ``__init__``)."""
        return {
            "backend": (
                "compiled" if self._march_fn is not None else "numpy"
            ),
            "provider": self._provider,
            "steps": self.steps,
            "fast_path_steps": self.fast_steps,
            "slow_path_steps": self.slow_steps,
            "compiled_steps": self.compiled_steps,
            "compiled_calls": self.compiled_calls,
            "compiled_bails": self.compiled_bails,
            "plan_cache_hits": self.plan_hits,
            "plan_cache_misses": self.plan_misses,
        }

    def materialize(self) -> None:
        """Merge the packed unmitigated-run peaks back into the rank
        dicts that :meth:`RankSimulator.collect` reads.

        The packed array holds every in-range row's peak; the dicts
        hold only the out-of-range overflow, so the merge is a disjoint
        union. Values come back as Python ints, matching what the
        scalar path accumulates (dict ordering may differ, which
        neither equality nor the canonical sorted-JSON form observes).
        """
        for rank, sim in enumerate(self.channel.ranks):
            for bank in range(self.num_banks):
                unit = rank * self.num_banks + bank
                # speak only ever gets written at in-range activated
                # rows, all inside the unit's touched-row envelope —
                # scan the window, not the whole row space.
                lo = self._row_lo[unit]
                hi = self._row_hi[unit]
                if lo < hi:
                    window = self.speak[unit, lo:hi]
                    rows = np.flatnonzero(window)
                    merged = dict(
                        zip(
                            (rows + lo).tolist(),
                            window[rows].tolist(),
                        )
                    )
                else:
                    merged = {}
                merged.update(sim._bank_peak[bank])
                # repro-lint: allow[private-poke] folds packed peaks back
                sim._bank_peak[bank] = merged
                tally = int(self.mitig[unit])
                if tally:
                    sim.bank_mitigations[bank] += tally
                demand = int(self.demand_acc[unit])
                if demand:
                    sim.bank_demand_acts[bank] += demand
            # REFs ran against the kernel-side counters; bring the idle
            # device counters up to date (idempotent assignment).
            # repro-lint: allow[private-poke] kernel ran the REF rounds
            sim.device._ref_counter = [self._ref_counts[rank]] * self.num_banks
        # Zeroed after folding so a second materialize is a no-op.
        self.mitig[:] = 0
        self.demand_acc[:] = 0


class ChannelSimulator:
    """Runs per-rank schedules against a DDR5 channel of N ranks.

    The channel is the top of the simulation stack: ``num_ranks``
    :class:`RankSimulator`\\ s — each a full rank of per-bank trackers
    behind its own refresh schedule — marched through one shared tREFI
    clock, the way a memory controller interleaves activations across
    the ranks sharing a command bus. Rank simulations are independent
    by construction (DDR5 REF, and hence postponement, is per rank), so
    a channel run decomposes exactly: rank ``r``'s
    :class:`~repro.sim.results.RankSimResult` is bit-identical to
    running ``r``'s schedule alone on a :class:`RankSimulator` built
    from the same per-rank tracker factory — the channel-equivalence
    property the tests pin, and what makes the paper's per-tracker
    security claims composable into channel-level MTTF accounting.

    Two marches implement that contract. The default is the *fused*
    kernel (:class:`_FusedChannelKernel`): one packed
    ``(rank·bank, row)`` array family, one whole-channel scatter per
    tREFI, adopted by every bank oracle as views — selected per
    :attr:`EngineConfig.fused` whenever it applies. The fallback is the
    chunk-granular lockstep march of independent per-rank kernels.
    Both produce bit-identical results (pinned by the fused-equivalence
    property suite).

    Parameters
    ----------
    tracker_factory:
        Called with ``(rank, bank)`` for every bank of every rank; each
        call must return an independent tracker instance.
        :func:`repro.trackers.registry.channel_tracker_factory` builds a
        suitable factory from a registry name plus a base seed (ranks
        derive independent seed streams).
    config:
        Per-rank engine knobs; ``num_ranks`` selects the channel width
        (the keyword overrides the config field when given).
    """

    def __init__(
        self,
        tracker_factory: Callable[[int, int], Tracker],
        config: EngineConfig | None = None,
        *,
        num_ranks: int | None = None,
        num_banks: int | None = None,
    ) -> None:
        c = config or EngineConfig()
        overrides = {
            key: value
            for key, value in (
                ("num_ranks", num_ranks),
                ("num_banks", num_banks),
            )
            if value is not None
        }
        if overrides:
            c = replace(c, **overrides)
        if c.num_ranks < 1:
            raise ValueError("num_ranks must be >= 1")
        self.config = c
        self.num_ranks = c.num_ranks
        self.num_banks = c.num_banks
        # Resolve the channel kernel. The fused kernel needs NumPy (it
        # is a vectorized tier), radius-1 disturbance (its packed
        # scatter math), and dense per-bank oracles (it hands each bank
        # a view into its packed arrays).
        fused_possible = (
            np is not None
            and c.vectorized is not False
            and c.blast_radius == 1
            and c.oracle_backend in (None, "dense")
        )
        if c.fused and not fused_possible:
            raise RuntimeError(
                "EngineConfig.fused=True requires numpy, a vectorized "
                "kernel (vectorized must not be False), blast_radius == 1, "
                "and oracle_backend None or 'dense'"
            )
        #: Resolved channel-kernel choice (see :attr:`EngineConfig.fused`).
        self.fused = fused_possible if c.fused is None else bool(c.fused)
        # Resolve the compiled tier (see EngineConfig.backend): it runs
        # under the fused kernel only, through the best available
        # provider. "compiled" asserts both; "auto" quietly falls back
        # to the pure-NumPy fused path.
        if c.backend == "compiled":
            from ..kernels import provider, require_compiled

            require_compiled()
            if not self.fused:
                raise RuntimeError(
                    "EngineConfig.backend='compiled' runs under the "
                    "fused channel kernel, which this config disables "
                    "or cannot apply (see EngineConfig.fused); use "
                    "backend='auto' or re-enable the fused kernel"
                )
            self.backend = "compiled"
            self._provider = provider()
        elif c.backend == "auto" and self.fused:
            from ..kernels import available, provider

            self.backend = "compiled" if available() else "numpy"
            self._provider = provider()
        else:
            self.backend = "numpy"
            self._provider = None
        rank_config = replace(c, num_ranks=1, fused=False)
        if self.fused:
            # Dense everywhere (sparse == dense is pinned by the oracle
            # backend tests) so every bank can adopt packed views, and
            # the vectorized per-rank kernels as the fallback paths.
            rank_config = replace(
                rank_config, vectorized=True, oracle_backend="dense"
            )
        self.ranks = [
            RankSimulator(
                (lambda bank, _rank=rank: tracker_factory(_rank, bank)),
                rank_config,
            )
            for rank in range(c.num_ranks)
        ]
        self._kernel = _FusedChannelKernel(self) if self.fused else None
        self._consumed = False

    def run(
        self, trace: "ChannelTrace | Trace | RankTrace | TraceStream"
    ) -> ChannelSimResult:
        """Execute a channel schedule to completion.

        ``trace`` is normally a :class:`~repro.sim.trace.ChannelTrace`
        (one schedule per rank, materialized or streaming); a rank- or
        row-scoped input is accepted as rank 0's schedule with the
        sibling ranks idle, so a 1-rank channel run of any existing
        trace is bit-identical to today's :class:`RankSimulator` run
        (pinned by the channel-equivalence tests).

        Materialized per-rank schedules are fully validated before any
        rank absorbs an interval — once; the march does not re-validate
        them chunk by chunk. Lazy streams are validated chunk by chunk
        as produced, under identical rules and messages.

        The fused kernel marches all ranks interval-by-interval through
        one packed array family; the lockstep fallback advances every
        still-active rank by one chunk per round. Either way peak
        memory is one chunk per rank, and because REF scheduling — the
        only cross-bank coupling inside a rank — is per rank, the
        interleaving order cannot affect any rank's bits.

        Like :meth:`RankSimulator.run`, a channel instance runs exactly
        one schedule; reuse raises ``RuntimeError``.
        """
        if self._consumed:
            raise RuntimeError(
                "this ChannelSimulator has already run a schedule; "
                "trackers, oracle state, and counters accumulate across "
                "runs, so reusing it would silently mix windows — build "
                "a fresh simulator (or Session) per run"
            )
        self._consumed = True
        channel = self._coerce(trace)
        if channel.num_ranks > self.num_ranks:
            raise ValueError(
                f"trace {channel.name!r} addresses rank "
                f"{channel.num_ranks - 1}, but the channel has "
                f"{self.num_ranks} ranks"
            )
        streams = {
            rank: channel.rank_stream(rank) for rank in range(self.num_ranks)
        }
        c = self.config
        prevalidated: set[int] = set()
        if c.validate_budget:
            for rank, stream in streams.items():
                budget = stream.act_budget
                if budget is not None and budget > c.timing.max_act:
                    raise ValueError(
                        f"rank {rank} stream {stream.name!r} declares up "
                        f"to {budget} ACTs on one bank per tREFI, but at "
                        f"most {c.timing.max_act} fit"
                    )
                # Materialized schedules keep the rank engine's
                # validate-before-execute contract: the whole trace is
                # checked here, once, before any rank absorbs an
                # interval, and the march skips the per-chunk
                # re-validation (a lazy stream can only be checked
                # chunk by chunk as it is produced).
                if isinstance(stream, MaterializedStream):
                    rank_sim = self.ranks[rank]
                    stream.trace.validate(
                        c.timing.max_act,
                        num_banks=rank_sim.num_banks,
                        concurrent_banks=rank_sim.concurrent_banks,
                    )
                    prevalidated.add(rank)
                elif isinstance(stream, CycleStream):
                    # A cycle produces only its pattern's interval
                    # objects, so validating the (truncated) pattern once
                    # is exactly equivalent to checking every produced
                    # interval — and the first offending occurrence sits
                    # at its pattern index, so the message matches too.
                    rank_sim = self.ranks[rank]
                    validate_rank_intervals(
                        stream.pattern[: stream.count],
                        c.timing.max_act,
                        num_banks=rank_sim.num_banks,
                        concurrent_banks=rank_sim.concurrent_banks,
                    )
                    prevalidated.add(rank)
        for sim in self.ranks:
            # the channel marches its member rank simulators itself
            # repro-lint: allow[private-poke] marks members spent
            sim._consumed = True
        if self._kernel is not None:
            self._kernel.march(
                {
                    rank: self._validated_intervals(
                        rank, stream, rank in prevalidated
                    )
                    for rank, stream in streams.items()
                }
            )
            self._kernel.materialize()
        else:
            active = {
                rank: stream.chunks() for rank, stream in streams.items()
            }
            while active:
                for rank in sorted(active):
                    chunk = next(active[rank], None)
                    if chunk is None:
                        del active[rank]
                        continue
                    if rank in prevalidated or not c.validate_budget:
                        self.ranks[rank]._feed(chunk)
                    else:
                        self.ranks[rank].feed(chunk)
        per_rank = [
            self.ranks[rank].collect(streams[rank].name)
            for rank in range(self.num_ranks)
        ]
        result = ChannelSimResult(
            trace=channel.name,
            intervals=max(
                (sim.intervals for sim in self.ranks), default=0
            ),
            per_rank=per_rank,
        )
        if self._kernel is not None:
            # Diagnostic side channel, deliberately not a dataclass
            # field: results stay bit-identical across backends.
            result.kernel_stats = self._kernel.stats()
        return result

    def _validated_intervals(
        self, rank: int, stream: TraceStream, prevalidated: bool
    ):
        """Flatten one rank's stream into intervals for the fused march,
        budget-validating each chunk as produced unless the whole
        schedule was already validated upfront."""
        sim = self.ranks[rank]
        c = self.config
        validate = c.validate_budget and not prevalidated
        offset = 0
        for chunk in stream.chunks():
            if validate:
                validate_rank_intervals(
                    chunk,
                    c.timing.max_act,
                    num_banks=sim.num_banks,
                    concurrent_banks=sim.concurrent_banks,
                    start=offset,
                )
            offset += len(chunk)
            yield from chunk

    def _coerce(self, trace) -> ChannelTrace:
        if isinstance(trace, ChannelTrace):
            return trace
        if isinstance(trace, (Trace, RankTrace, TraceStream)):
            stream = as_trace_stream(trace)
            return ChannelTrace(name=stream.name, per_rank={0: stream})
        raise TypeError(
            f"cannot run {type(trace).__name__} on a channel; expected "
            f"ChannelTrace, Trace, RankTrace, or TraceStream"
        )

    def rank(self, index: int) -> RankSimulator:
        """The rank-``index`` simulator (trackers, per-bank counters)."""
        return self.ranks[index]

    @property
    def trackers(self) -> list[list[Tracker]]:
        """Tracker instances as ``trackers[rank][bank]``."""
        return [sim.trackers for sim in self.ranks]

    @property
    def any_flip(self) -> bool:
        return any(sim.any_flip for sim in self.ranks)


class BankSimulator(RankSimulator):
    """Runs traces against one tracker on one bank.

    The classic single-bank entry point, now a thin shim over
    :class:`RankSimulator` with ``num_banks=1``; results are
    bit-identical to the pre-rank engine (pinned by the
    rank-equivalence tests). :meth:`run` unwraps bank 0's
    :class:`SimResult`.
    """

    def __init__(self, tracker: Tracker, config: EngineConfig | None = None) -> None:
        c = config or EngineConfig()
        if c.num_banks != 1:
            c = replace(c, num_banks=1)
        super().__init__(lambda _bank: tracker, c)
        self.tracker = tracker

    def run(self, trace: Trace) -> SimResult:  # type: ignore[override]
        return super().run(trace).per_bank[0]

    # Single-bank views kept for the feinting driver and older callers.
    @property
    def _since_mitigation(self) -> dict:
        return self._bank_since[0]

    @property
    def mitigations(self) -> int:
        return self.bank_mitigations[0]

    @property
    def transitive_mitigations(self) -> int:
        return self.bank_transitive_mitigations[0]

    @property
    def demand_acts(self) -> int:
        return self.bank_demand_acts[0]

    def _activate(self, row: int, time_ns: float) -> None:
        """Single-ACT entry point (used by the feinting attack driver)."""
        self._absorb_acts(0, (row,), time_ns)


def run_attack(
    tracker: Tracker,
    trace: Trace,
    trh: float,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> SimResult:
    """One-call convenience wrapper around :class:`BankSimulator`.

    Legacy shim: takes live tracker/trace objects. New code should
    describe the evaluation declaratively and run it through
    ``Session(scenario).run()`` — the shim-equivalence tests pin this
    function bit-identical to that facade for every registry tracker.
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
    )
    return BankSimulator(tracker, config).run(trace)


def run_rank_attack(
    tracker_factory: Callable[[int], Tracker],
    trace: Trace | RankTrace,
    trh: float,
    num_banks: int,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> RankSimResult:
    """One-call convenience wrapper around :class:`RankSimulator`.

    Legacy shim (see :func:`run_attack`): pinned bit-identical to the
    ``Session`` facade by the shim-equivalence tests.
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
        num_banks=num_banks,
    )
    return RankSimulator(tracker_factory, config).run(trace)


def run_channel_attack(
    tracker_factory: Callable[[int, int], Tracker],
    trace: "ChannelTrace | Trace | RankTrace | TraceStream",
    trh: float,
    num_ranks: int,
    num_banks: int = 1,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> ChannelSimResult:
    """One-call convenience wrapper around :class:`ChannelSimulator`.

    ``tracker_factory`` takes ``(rank, bank)``; see
    :func:`run_rank_attack` for the declarative alternative
    (``Session(Scenario(..., num_ranks=N)).run()``).
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
        num_banks=num_banks,
        num_ranks=num_ranks,
    )
    return ChannelSimulator(tracker_factory, config).run(trace)


def with_dmq(tracker: Tracker, timing: DDR5Timing = DEFAULT_TIMING) -> Tracker:
    """Wrap ``tracker`` in a DDR5-sized Delayed Mitigation Queue."""
    return DelayedMitigationQueue(tracker, max_act=timing.max_act, depth=4)
