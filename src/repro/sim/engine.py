"""Event-level security simulator: rank-scoped trace → trackers → oracle.

The engine drives a DDR5 *rank* — ``num_banks`` independent banks
behind one refresh schedule — through an attack trace interval by
interval. Each bank owns its own tracker instance (in-DRAM trackers are
per-bank structures; the paper's storage numbers scale ×32 per rank)
and its own row-disturbance oracle. Per interval, the demand ACT batch
is split by bank and fed through the vectorized activation kernel: the
interval's cached array view supplies each bank's batch, the engine
computes the per-unique-row aggregation once and shares it between the
tracker's ``on_activate_batch`` and the oracle's ``activate_many``
neighbour scatter (``EngineConfig.vectorized=False`` falls back to the
scalar per-ACT dispatch, bit-identically). At each tREFI boundary the
shared :class:`RefreshScheduler` decides whether the rank's REF
executes or is postponed (DDR5 allows four), and every executed REF
performs each bank's rolling auto-refresh plus at most one
tracker-directed mitigation per bank.

:class:`RankSimulator` is the canonical *engine* entry point — the
canonical way to *describe and launch* an evaluation is the declarative
:class:`repro.scenario.Scenario` / :class:`repro.scenario.Session`
facade, which builds the simulator from a serializable payload and
drives every other layer (CLI, experiment grids, Monte-Carlo, perf)
through the same object. The simulator accepts
bank-addressed :class:`~repro.sim.trace.RankTrace` streams, row-only
:class:`~repro.sim.trace.Trace` streams (auto-lifted to bank 0), or a
legacy list of per-bank traces (merged, with the tFAW concurrency
ceiling enforced), and reports a :class:`~repro.sim.results.RankSimResult`
carrying one per-bank :class:`~repro.sim.results.SimResult` each plus
rank-level aggregates. :class:`BankSimulator` and :func:`run_attack`
remain as thin single-bank shims whose results are bit-identical to the
pre-rank engine.

This is the machinery behind the paper's guaranteed-protection claims
(classic single/double-sided attacks bounded at M activations, §V-C),
the decoy blow-up under postponement (§VI-B), the rank-level MTTF
accounting (§VIII-B), and the Monte-Carlo validation of the analytical
MinTRH model.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Callable, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

from ..constants import CONCURRENT_BANKS
from ..core.dmq import DelayedMitigationQueue
from ..dram.device import DeviceConfig, DramDevice
from ..dram.refresh import RefreshScheduler
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..trackers.base import MitigationRequest, Tracker
from ..trackers.protrr import VictimRefreshRequest
from .results import RankSimResult, SimResult
from .trace import RankTrace, Trace


@dataclass
class EngineConfig:
    """Knobs of the security simulation."""

    timing: DDR5Timing = DEFAULT_TIMING
    trh: float = 4800.0
    num_rows: int = 128 * 1024
    blast_radius: int = 1
    allow_postponement: bool = False
    max_postponed: int = 4
    refi_per_refw: int = 8192
    #: Enforce the per-interval activation budget of the timing model.
    validate_budget: bool = True
    #: Banks in the simulated rank (1 == the classic single-bank setup).
    num_banks: int = 1
    #: tFAW ceiling on banks sustaining full-rate ACTs concurrently;
    #: ``None`` means min(CONCURRENT_BANKS, num_banks).
    concurrent_banks: int | None = None
    #: Activation-kernel selection. ``None`` (auto) uses the vectorized
    #: kernel — array-backed interval views, one shared per-unique-row
    #: aggregation feeding batched oracle and tracker updates — whenever
    #: NumPy is available; ``False`` forces the scalar per-ACT path with
    #: the sparse dict oracle (the pre-vectorization engine). Both
    #: produce bit-identical :class:`~repro.sim.results.RankSimResult`s;
    #: the benchmark suite asserts it.
    vectorized: bool | None = None


class _BankView:
    """Read-only per-bank facade over a :class:`RankSimulator`.

    Exists for the legacy ``rank_sim.simulators[i]`` access pattern from
    the pre-rank fan-out API; exposes the bank's tracker and counters.
    """

    __slots__ = ("_sim", "bank")

    def __init__(self, sim: "RankSimulator", bank: int) -> None:
        self._sim = sim
        self.bank = bank

    @property
    def tracker(self) -> Tracker:
        return self._sim.trackers[self.bank]

    @property
    def mitigations(self) -> int:
        return self._sim.bank_mitigations[self.bank]

    @property
    def demand_acts(self) -> int:
        return self._sim.bank_demand_acts[self.bank]


class RankSimulator:
    """Runs traces against one tracker instance per bank of a rank.

    Parameters
    ----------
    tracker_factory:
        Called once per bank (with the bank index) to build that bank's
        tracker. Each bank must get an independent instance — sharing
        one tracker across banks would be both unrealistic and insecure.
        :func:`repro.trackers.registry.bank_tracker_factory` builds a
        suitable factory from a registry name plus a base seed.
    config:
        Engine knobs (:class:`EngineConfig`); ``num_banks`` selects the
        rank width. The keyword arguments mirror the legacy rank API and
        override the corresponding config fields when given.
    """

    def __init__(
        self,
        tracker_factory: Callable[[int], Tracker],
        config: EngineConfig | None = None,
        *,
        num_banks: int | None = None,
        timing: DDR5Timing | None = None,
        trh: float | None = None,
        num_rows: int | None = None,
        blast_radius: int | None = None,
        allow_postponement: bool | None = None,
        concurrent_banks: int | None = None,
    ) -> None:
        if config is not None and not isinstance(config, EngineConfig):
            raise TypeError(
                "the second positional argument must be an EngineConfig; "
                "the legacy rank API's positional num_banks moved to a "
                "keyword: RankSimulator(factory, num_banks=N)"
            )
        c = config or EngineConfig()
        overrides = {
            key: value
            for key, value in (
                ("num_banks", num_banks),
                ("timing", timing),
                ("trh", trh),
                ("num_rows", num_rows),
                ("blast_radius", blast_radius),
                ("allow_postponement", allow_postponement),
                ("concurrent_banks", concurrent_banks),
            )
            if value is not None
        }
        if overrides:
            c = replace(c, **overrides)
        if c.num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self.config = c
        self.num_banks = c.num_banks
        self.concurrent_banks = min(
            CONCURRENT_BANKS if c.concurrent_banks is None else c.concurrent_banks,
            c.num_banks,
        )
        if c.vectorized and np is None:
            raise RuntimeError("EngineConfig.vectorized=True requires numpy")
        #: Resolved kernel choice: vectorized unless disabled or no NumPy.
        self.vectorized = (
            c.vectorized if c.vectorized is not None else np is not None
        )
        self.device = DramDevice(
            DeviceConfig(
                timing=c.timing,
                num_banks=c.num_banks,
                rows_per_bank=c.num_rows,
                trh=c.trh,
                blast_radius=c.blast_radius,
                refi_per_refw=c.refi_per_refw,
                # The scalar engine is pinned to the sparse dict oracle
                # (the pre-vectorization hot path); the vectorized
                # engine lets the oracle pick per bank size.
                backend="sparse" if not self.vectorized else "auto",
            )
        )
        self.trackers = [tracker_factory(bank) for bank in range(c.num_banks)]
        self.scheduler = RefreshScheduler(max_postponed=c.max_postponed)
        # Per-bank activations a row received since it was last the
        # *target* of a mitigation; the unmitigated-run metric (Table IV).
        self._bank_since = [dict() for _ in range(c.num_banks)]
        self._bank_peak = [dict() for _ in range(c.num_banks)]
        self._counts: Counter[int] = Counter()
        # Per-batch aggregation memo for the vectorized kernel, keyed by
        # batch-array identity: attack traces reuse one interval object
        # (and hence one per-bank array) for thousands of tREFIs, so the
        # unique/count/first-occurrence work is paid once per distinct
        # interval. Entries hold the array ref, keeping ids stable.
        self._agg_cache: dict[int, tuple] = {}
        self.bank_mitigations = [0] * c.num_banks
        self.bank_transitive_mitigations = [0] * c.num_banks
        self.bank_demand_acts = [0] * c.num_banks
        self.simulators = [_BankView(self, bank) for bank in range(c.num_banks)]
        self.intervals = 0

    # ------------------------------------------------------------------
    def run(
        self, trace: Trace | RankTrace | Sequence[Trace]
    ) -> RankSimResult:
        """Execute ``trace`` to completion and report the outcome.

        ``trace`` may be bank-addressed (:class:`RankTrace`), row-only
        (:class:`Trace`, lifted onto bank 0), or a legacy sequence of
        per-bank row traces (trace ``i`` drives bank ``i``; the tFAW
        ceiling rejects more concurrent traces than the rank sustains).

        The interval loop is the simulator's hot path: a full-grid
        experiment pushes hundreds of millions of ACTs through it. The
        vectorized kernel (the default, see
        :attr:`EngineConfig.vectorized`) walks each interval's cached
        array view, computes the per-unique-row aggregation once, and
        shares it between the batched tracker update and the oracle's
        neighbour scatter; the scalar kernel is the per-ACT dispatch it
        replaced, kept as the equivalence baseline.
        """
        c = self.config
        if isinstance(trace, (list, tuple)):
            trace = self._merge_bank_traces(trace)
        if c.validate_budget:
            if isinstance(trace, RankTrace):
                trace.validate(
                    c.timing.max_act,
                    num_banks=self.num_banks,
                    concurrent_banks=self.concurrent_banks,
                )
            else:
                trace.validate(c.timing.max_act)
        vectorized = self.vectorized
        absorb_acts = self._absorb_acts_vec if vectorized else self._absorb_acts
        scheduler_tick = self.scheduler.tick
        t_refi_ns = c.timing.t_refi_ns
        allow_postponement = c.allow_postponement
        intervals = 0
        for interval in trace:
            intervals += 1
            time_ns = intervals * t_refi_ns
            split = interval.per_bank_arrays if vectorized else interval.per_bank
            for bank, acts in split:
                absorb_acts(bank, acts, time_ns)
            want_postpone = interval.postpone and allow_postponement
            event = scheduler_tick(want_postpone=want_postpone)
            if event is not None:
                for _ in range(event.count):
                    self._refresh(time_ns)
        self.intervals = intervals
        return self._collect(trace.name)

    def _merge_bank_traces(self, traces: Sequence[Trace]) -> RankTrace:
        """Legacy input format: one row-only trace per bank."""
        if len(traces) > self.concurrent_banks:
            raise ValueError(
                f"tFAW limits concurrent full-rate banks to "
                f"{self.concurrent_banks}; got {len(traces)} traces"
            )
        names = list(dict.fromkeys(trace.name for trace in traces))
        name = names[0] if len(names) == 1 else "rank(" + ",".join(names) + ")"
        return RankTrace.from_bank_traces(name, list(traces))

    def _collect(self, trace_name: str) -> RankSimResult:
        per_bank = []
        refreshes = self.scheduler.total_refreshes
        for bank in range(self.num_banks):
            model = self.device.banks[bank]
            tracker = self.trackers[bank]
            per_bank.append(
                SimResult(
                    tracker=tracker.name,
                    trace=trace_name,
                    intervals=self.intervals,
                    demand_acts=self.bank_demand_acts[bank],
                    refreshes=refreshes,
                    mitigations=self.bank_mitigations[bank],
                    transitive_mitigations=self.bank_transitive_mitigations[bank],
                    pseudo_mitigations=tracker.pseudo_mitigations,
                    flips=list(model.flips),
                    max_disturbance=model.max_disturbance(),
                    most_disturbed_row=model.most_disturbed_row(),
                    max_unmitigated=dict(self._bank_peak[bank]),
                )
            )
        return RankSimResult(
            trace=trace_name,
            intervals=self.intervals,
            refreshes=refreshes,
            per_bank=per_bank,
        )

    # ------------------------------------------------------------------
    def _absorb_acts(
        self, bank: int, acts: tuple[int, ...], time_ns: float
    ) -> None:
        """Feed one bank's share of an interval to tracker, oracle,
        counters.

        The single source of the per-ACT bookkeeping. No mitigation
        lands mid-interval, so the oracle and the unmitigated-run
        counters absorb the whole batch in one pass each.
        """
        self.bank_demand_acts[bank] += len(acts)
        tracker_on_activate = self.trackers[bank].on_activate
        for row in acts:
            tracker_on_activate(row)
        self.device.activate_many(bank, acts, time_ns)
        since = self._bank_since[bank]
        peak = self._bank_peak[bank]
        counts = self._counts
        counts.clear()
        counts.update(acts)
        for row, count in counts.items():
            total = since.get(row, 0) + count
            since[row] = total
            if total > peak.get(row, 0):
                peak[row] = total

    #: Memo ceiling; traces with unbounded distinct intervals flush it.
    _AGG_CACHE_LIMIT = 4096

    def _absorb_acts_vec(
        self, bank: int, acts: "np.ndarray", time_ns: float
    ) -> None:
        """Vectorized twin of :meth:`_absorb_acts` (one interval batch).

        Computes the batch's per-unique-row aggregation once and shares
        it: sorted ``(unique, counts)`` feeds the oracle's neighbour
        scatter, the first-occurrence ordering feeds the tracker batch
        update and the unmitigated-run counters (first-occurrence order
        is what repeated scalar processing would produce, which the
        tracker equivalence contract requires).
        """
        n = len(acts)
        if n == 0:
            return
        self.bank_demand_acts[bank] += n
        key = id(acts)
        cached = self._agg_cache.get(key)
        if cached is None:
            uniq, first, counts = np.unique(
                acts, return_index=True, return_counts=True
            )
            order = np.argsort(first, kind="stable")
            tracker_agg = (uniq[order], counts[order])
            items = list(zip(tracker_agg[0].tolist(), tracker_agg[1].tolist()))
            if len(self._agg_cache) >= self._AGG_CACHE_LIMIT:
                self._agg_cache.clear()
            cached = (acts, (uniq, counts), tracker_agg, items)
            self._agg_cache[key] = cached
        _, oracle_agg, tracker_agg, items = cached
        self.trackers[bank].on_activate_batch(acts, tracker_agg)
        self.device.activate_many(bank, acts, time_ns, agg=oracle_agg)
        since = self._bank_since[bank]
        peak = self._bank_peak[bank]
        for row, count in items:
            total = since.get(row, 0) + count
            since[row] = total
            if total > peak.get(row, 0):
                peak[row] = total

    def _refresh(self, time_ns: float) -> None:
        """One rank-level REF: every bank sweeps its auto-refresh slice
        and may land one tracker-directed mitigation."""
        for bank in range(self.num_banks):
            self.device.auto_refresh(bank, time_ns)
            for request in self.trackers[bank].on_refresh():
                self._apply(bank, request, time_ns)

    def _apply(
        self, bank: int, request: MitigationRequest, time_ns: float
    ) -> None:
        self.bank_mitigations[bank] += 1
        if request.distance > 1:
            self.bank_transitive_mitigations[bank] += 1
        since = self._bank_since[bank]
        if isinstance(request, VictimRefreshRequest):
            # Victim-centric mitigation (ProTRR): refresh the named row;
            # the refresh itself disturbs that row's neighbours.
            refreshed = self.device.victim_refresh(bank, request.row, time_ns)
        else:
            refreshed = self.device.mitigate(
                bank, request.row, request.distance, time_ns
            )
            since[request.row] = 0
        tracker = self.trackers[bank]
        for victim in refreshed:
            since[victim] = 0
            if tracker.observes_mitigations:
                tracker.on_mitigation_activate(victim)

    # ------------------------------------------------------------------
    @property
    def any_flip(self) -> bool:
        return self.device.any_flip


class BankSimulator(RankSimulator):
    """Runs traces against one tracker on one bank.

    The classic single-bank entry point, now a thin shim over
    :class:`RankSimulator` with ``num_banks=1``; results are
    bit-identical to the pre-rank engine (pinned by the
    rank-equivalence tests). :meth:`run` unwraps bank 0's
    :class:`SimResult`.
    """

    def __init__(self, tracker: Tracker, config: EngineConfig | None = None) -> None:
        c = config or EngineConfig()
        if c.num_banks != 1:
            c = replace(c, num_banks=1)
        super().__init__(lambda _bank: tracker, c)
        self.tracker = tracker

    def run(self, trace: Trace) -> SimResult:  # type: ignore[override]
        return super().run(trace).per_bank[0]

    # Single-bank views kept for the feinting driver and older callers.
    @property
    def _since_mitigation(self) -> dict:
        return self._bank_since[0]

    @property
    def mitigations(self) -> int:
        return self.bank_mitigations[0]

    @property
    def transitive_mitigations(self) -> int:
        return self.bank_transitive_mitigations[0]

    @property
    def demand_acts(self) -> int:
        return self.bank_demand_acts[0]

    def _activate(self, row: int, time_ns: float) -> None:
        """Single-ACT entry point (used by the feinting attack driver)."""
        self._absorb_acts(0, (row,), time_ns)


def run_attack(
    tracker: Tracker,
    trace: Trace,
    trh: float,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> SimResult:
    """One-call convenience wrapper around :class:`BankSimulator`.

    Legacy shim: takes live tracker/trace objects. New code should
    describe the evaluation declaratively and run it through
    ``Session(scenario).run()`` — the shim-equivalence tests pin this
    function bit-identical to that facade for every registry tracker.
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
    )
    return BankSimulator(tracker, config).run(trace)


def run_rank_attack(
    tracker_factory: Callable[[int], Tracker],
    trace: Trace | RankTrace,
    trh: float,
    num_banks: int,
    timing: DDR5Timing = DEFAULT_TIMING,
    num_rows: int = 128 * 1024,
    blast_radius: int = 1,
    allow_postponement: bool = False,
    refi_per_refw: int = 8192,
) -> RankSimResult:
    """One-call convenience wrapper around :class:`RankSimulator`.

    Legacy shim (see :func:`run_attack`): pinned bit-identical to the
    ``Session`` facade by the shim-equivalence tests.
    """
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        blast_radius=blast_radius,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
        num_banks=num_banks,
    )
    return RankSimulator(tracker_factory, config).run(trace)


def with_dmq(tracker: Tracker, timing: DDR5Timing = DEFAULT_TIMING) -> Tracker:
    """Wrap ``tracker`` in a DDR5-sized Delayed Mitigation Queue."""
    return DelayedMitigationQueue(tracker, max_act=timing.max_act, depth=4)
