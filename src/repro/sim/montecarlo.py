"""Monte-Carlo cross-validation of the analytical security model.

The analytical MinTRH numbers rest on the Saroiu-Wolman recurrence; at
realistic parameters (p ~ 1/74, failure probability ~ 1e-13) no
simulation can observe failures directly. Instead we validate the model
in a scaled-down regime — small M, small tREFW, aggressive thresholds —
where failures are frequent enough to measure, and check the empirical
failure rate against the same formulas evaluated at the scaled
parameters. The test suite pins the agreement.

Two entry points share one window loop:
:func:`scenario_failure_probability` consumes a declarative
:class:`repro.scenario.Scenario` (the path behind
``Session.run_many``), and :func:`estimate_failure_probability` is the
legacy factory-based shim, kept bit-identical to the facade (pinned by
``tests/scenario/test_scenario.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from ..dram.timing import DDR5Timing
from ..parallel import fork_map
from ..trackers.base import Tracker
from .engine import BankSimulator, ChannelSimulator, EngineConfig, RankSimulator
from .seeding import stable_seed
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover - cycle guard (scenario -> here)
    from ..scenario import Scenario


@dataclass
class MonteCarloResult:
    """Empirical failure statistics over repeated tREFW windows."""

    windows: int
    failures: int
    total_mitigations: int

    @property
    def failure_probability(self) -> float:
        if self.windows == 0:
            return 0.0
        return self.failures / self.windows

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval for the failure probability.

        The Wald normal approximation previously used here degenerates
        to ``(0.0, 0.0)`` whenever zero failures are observed — a claim
        of certainty exactly in the rare-event regime this module
        targets (and symmetrically ``(1.0, 1.0)`` at all failures). The
        Wilson score interval stays informative at the boundaries: with
        ``n`` windows and no failures the upper bound is
        ``z²/(n+z²)`` ≈ 3.84/n, the usual rule-of-three-style bound.
        """
        n = self.windows
        if n == 0:
            return (0.0, 1.0)
        p = self.failure_probability
        z2 = z * z
        denom = 1.0 + z2 / n
        centre = (p + z2 / (2.0 * n)) / denom
        half = (z / denom) * (
            (p * (1.0 - p) / n + z2 / (4.0 * n * n)) ** 0.5
        )
        return (max(0.0, centre - half), min(1.0, centre + half))

    def to_payload(self) -> dict:
        """JSON-safe form (the ``repro run --windows`` export format)."""
        low, high = self.confidence_interval()
        return {
            "windows": self.windows,
            "failures": self.failures,
            "total_mitigations": self.total_mitigations,
            "failure_probability": self.failure_probability,
            "ci95_low": low,
            "ci95_high": high,
        }


def scaled_timing(max_act: int, refi_per_refw: int) -> DDR5Timing:
    """A toy DDR5 whose window holds ``max_act`` ACTs per tREFI."""
    t_refi = 3900.0
    t_rfc = 410.0
    t_rc = (t_refi - t_rfc) / max_act
    t_refw_ms = refi_per_refw * t_refi * 1e-6
    return DDR5Timing(
        t_refw_ms=t_refw_ms, t_refi_ns=t_refi, t_rfc_ns=t_rfc, t_rc_ns=t_rc
    )


def _collect_windows(
    run_window: Callable[[int], tuple[bool, int]],
    windows: int,
    n_workers: int,
) -> MonteCarloResult:
    """Fan ``run_window`` out and aggregate (the shared loop body)."""
    outcomes = fork_map(run_window, range(windows), n_workers=n_workers)
    failures = sum(1 for failed, _ in outcomes if failed)
    mitigations = sum(count for _, count in outcomes)
    return MonteCarloResult(
        windows=windows, failures=failures, total_mitigations=mitigations
    )


def scenario_failure_probability(
    scenario: "Scenario",
    windows: int = 2000,
    n_workers: int = 1,
) -> MonteCarloResult:
    """Run ``windows`` independent tREFW windows of ``scenario``.

    Each window gets fresh trackers, fresh device state, and a fresh
    trace, all derived from one window RNG seeded by a stable hash of
    ``(scenario.task_seed(), "mc-window", index)`` — the same
    derivation the legacy shim uses — threaded through tracker
    construction first, then trace construction (patterns with
    randomised placement can vary per window). The estimate is a pure
    function of the scenario: bit-identical counts for any worker
    count or scheduling.

    On a multi-bank scenario a window fails when *any* bank flips, and
    mitigations sum across the rank's banks; a channel scenario lifts
    the same rule across its ranks (any rank's flip fails the window,
    mitigations sum channel-wide). The window RNG threads through
    tracker construction rank-major first, then trace construction —
    the per-rank generalisation of the legacy contract, and exactly it
    at ``num_ranks=1``.
    """
    config = scenario.engine_config()
    task_seed = scenario.task_seed()
    num_banks = scenario.num_banks

    if scenario.is_channel:
        num_ranks = scenario.num_ranks

        def run_window(index: int) -> tuple[bool, int]:
            window_rng = random.Random(
                stable_seed(task_seed, "mc-window", index)
            )
            trackers = {
                (rank, bank): scenario.build_tracker(
                    bank, rng=window_rng, rank=rank
                )
                for rank in range(num_ranks)
                for bank in range(num_banks)
            }
            trace = scenario.build_trace(rng=window_rng)
            result = ChannelSimulator(
                lambda rank, bank: trackers[(rank, bank)], config
            ).run(trace)
            return result.failed, result.mitigations

        return _collect_windows(run_window, windows, n_workers)

    def run_window(index: int) -> tuple[bool, int]:
        window_rng = random.Random(stable_seed(task_seed, "mc-window", index))
        trackers = [
            scenario.build_tracker(bank, rng=window_rng)
            for bank in range(num_banks)
        ]
        trace = scenario.build_trace(rng=window_rng)
        result = RankSimulator(lambda bank: trackers[bank], config).run(trace)
        return result.failed, result.mitigations

    return _collect_windows(run_window, windows, n_workers)


def estimate_failure_probability(
    tracker_factory: Callable[[random.Random], Tracker],
    trace_factory: Callable[[random.Random], Trace],
    trh: float,
    max_act: int,
    refi_per_refw: int,
    windows: int = 2000,
    num_rows: int = 1024,
    seed: int = 7,
    allow_postponement: bool = False,
    n_workers: int = 1,
) -> MonteCarloResult:
    """Run ``windows`` independent tREFW windows; count flip events.

    The legacy factory-based entry point, kept for callers whose
    tracker or trace is not registry-describable; registry-describable
    evaluations should prefer ``Session(scenario).run_many`` — with
    ``seed`` set to the scenario's ``task_seed()`` the two are
    bit-identical (pinned by the shim-equivalence tests).

    Each window's RNG is seeded by a stable hash of ``(seed, index)``,
    not by a sequential draw, so the estimate is a pure function of the
    inputs: fanning the windows out over ``n_workers`` processes
    (fork-based; falls back to serial where unavailable) returns
    bit-identical counts regardless of worker count or scheduling.
    """
    timing = scaled_timing(max_act, refi_per_refw)
    config = EngineConfig(
        timing=timing,
        trh=trh,
        num_rows=num_rows,
        allow_postponement=allow_postponement,
        refi_per_refw=refi_per_refw,
    )

    def run_window(index: int) -> tuple[bool, int]:
        window_rng = random.Random(stable_seed(seed, "mc-window", index))
        tracker = tracker_factory(window_rng)
        trace = trace_factory(window_rng)
        result = BankSimulator(tracker, config).run(trace)
        return result.failed, result.mitigations

    return _collect_windows(run_window, windows, n_workers)
