"""Rank-level simulation: per-bank trackers plus system-level MTTF.

Each bank of a DDR5 rank carries an independent tracker instance (the
paper's storage numbers are all per-bank, scaled x32 per rank), and the
attacker can hammer banks concurrently — but tFAW limits how many banks
can sustain full activation rates at once (22 of 64 in the paper's
system, Section VIII-B). The rank simulator runs per-bank attack traces
against per-bank trackers and aggregates failures; the companion
helpers convert per-bank MTTF into system MTTF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..constants import CONCURRENT_BANKS
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..trackers.base import Tracker
from .engine import BankSimulator, EngineConfig
from .results import SimResult
from .trace import Trace


@dataclass
class RankResult:
    """Aggregated outcome of a rank-level run."""

    per_bank: list[SimResult]

    @property
    def failed_banks(self) -> list[int]:
        return [i for i, result in enumerate(self.per_bank) if result.failed]

    @property
    def any_flip(self) -> bool:
        return bool(self.failed_banks)

    @property
    def total_mitigations(self) -> int:
        return sum(result.mitigations for result in self.per_bank)


class RankSimulator:
    """Run per-bank traces against per-bank tracker instances.

    Parameters
    ----------
    tracker_factory:
        Called once per bank (with the bank index) to build that bank's
        tracker. Each bank must get an independent instance — sharing
        one tracker across banks would be both unrealistic and insecure.
    concurrent_banks:
        How many banks can be attacked at full rate simultaneously
        (tFAW limit; 22 in the paper's system).
    """

    def __init__(
        self,
        tracker_factory: Callable[[int], Tracker],
        num_banks: int = CONCURRENT_BANKS,
        timing: DDR5Timing = DEFAULT_TIMING,
        trh: float = 4800.0,
        num_rows: int = 128 * 1024,
        blast_radius: int = 1,
        allow_postponement: bool = False,
        concurrent_banks: int = CONCURRENT_BANKS,
    ) -> None:
        if num_banks < 1:
            raise ValueError("num_banks must be >= 1")
        self.concurrent_banks = min(concurrent_banks, num_banks)
        config = EngineConfig(
            timing=timing,
            trh=trh,
            num_rows=num_rows,
            blast_radius=blast_radius,
            allow_postponement=allow_postponement,
        )
        self.simulators = [
            BankSimulator(tracker_factory(bank), config)
            for bank in range(num_banks)
        ]

    def run(self, traces: list[Trace]) -> RankResult:
        """Run one trace per bank; excess traces beyond the tFAW limit
        are rejected (the attacker cannot sustain them)."""
        if len(traces) > self.concurrent_banks:
            raise ValueError(
                f"tFAW limits concurrent full-rate banks to "
                f"{self.concurrent_banks}; got {len(traces)} traces"
            )
        results = []
        for simulator, trace in zip(self.simulators, traces):
            results.append(simulator.run(trace))
        return RankResult(per_bank=results)


def system_mttf_years(
    per_bank_mttf_years: float, banks: int = CONCURRENT_BANKS
) -> float:
    """System MTTF given independent per-bank failure rates (§VIII-B).

    The paper: 64 banks, of which 22 can be attacked concurrently due
    to tFAW, so the system failure rate is 22x the per-bank rate
    (e.g. 10,000-year banks => 450-year system).
    """
    if per_bank_mttf_years <= 0:
        raise ValueError("per_bank_mttf_years must be positive")
    if banks < 1:
        raise ValueError("banks must be >= 1")
    return per_bank_mttf_years / banks
