"""Rank-level compatibility facade plus system-level MTTF helpers.

The rank engine itself now lives in :mod:`repro.sim.engine`:
:class:`~repro.sim.engine.RankSimulator` owns one tracker instance per
bank, drives the shared refresh scheduler, and accepts bank-addressed
traces as well as the legacy one-row-trace-per-bank input format (with
the tFAW concurrency ceiling enforced — 22 of 64 banks in the paper's
system, Section VIII-B). This module re-exports it under its historical
import path and keeps the MTTF conversion helpers: the paper's storage
numbers are all per-bank (scaled ×32 per rank), and per-bank MTTF
converts to system MTTF through the number of concurrently attackable
banks.

One deliberate behaviour change from the pre-rank class: the old
``num_banks`` default of ``CONCURRENT_BANKS`` (22) is gone — the merged
engine defaults to one bank, so pass ``num_banks`` explicitly (every
in-repo caller always did).
"""

from __future__ import annotations

from ..constants import CONCURRENT_BANKS
from .engine import RankSimulator
from .results import RankSimResult

#: Legacy name for the aggregated outcome of a rank-level run.
RankResult = RankSimResult

__all__ = ["RankResult", "RankSimResult", "RankSimulator", "system_mttf_years"]


def system_mttf_years(
    per_bank_mttf_years: float, banks: int = CONCURRENT_BANKS
) -> float:
    """System MTTF given independent per-bank failure rates (§VIII-B).

    The paper: 64 banks, of which 22 can be attacked concurrently due
    to tFAW, so the system failure rate is 22x the per-bank rate
    (e.g. 10,000-year banks => 450-year system).
    """
    if per_bank_mttf_years <= 0:
        raise ValueError("per_bank_mttf_years must be positive")
    if banks < 1:
        raise ValueError("banks must be >= 1")
    return per_bank_mttf_years / banks
