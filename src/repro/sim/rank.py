"""Deprecated compatibility import path for the rank-level API.

Everything that used to live here has been folded into the modern
stack: the engine is :class:`repro.sim.engine.RankSimulator`, the
result type is :class:`repro.sim.results.RankSimResult`, the MTTF
conversion is :func:`repro.sim.results.system_mttf_years`, and the
canonical way to *construct and run* a rank evaluation is the
declarative :class:`repro.scenario.Scenario` /
:class:`repro.scenario.Session` facade.

``system_mttf_years`` stays re-exported here without complaint (it has
long-standing callers); importing the engine or result classes through
this module still works but emits a :class:`DeprecationWarning` naming
the modern home.
"""

from __future__ import annotations

import warnings

from .engine import RankSimulator as _RankSimulator
from .results import RankSimResult as _RankSimResult
from .results import system_mttf_years

__all__ = ["RankResult", "RankSimResult", "RankSimulator", "system_mttf_years"]

#: Deprecated name -> (replacement object, modern import path).
_DEPRECATED = {
    "RankResult": (_RankSimResult, "repro.sim.results.RankSimResult"),
    "RankSimResult": (_RankSimResult, "repro.sim.results.RankSimResult"),
    "RankSimulator": (_RankSimulator, "repro.sim.engine.RankSimulator"),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        replacement, path = _DEPRECATED[name]
        warnings.warn(
            f"repro.sim.rank.{name} is deprecated; import {path} (or use "
            f"the repro.scenario.Scenario/Session facade to build and "
            f"run rank evaluations)",
            DeprecationWarning,
            stacklevel=2,
        )
        return replacement
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
