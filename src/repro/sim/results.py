"""Result records produced by the security simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.rowstate import FlipEvent


@dataclass
class SimResult:
    """Outcome of running one trace against one tracker."""

    tracker: str
    trace: str
    intervals: int
    demand_acts: int
    refreshes: int
    mitigations: int
    transitive_mitigations: int
    pseudo_mitigations: int
    flips: list[FlipEvent]
    max_disturbance: float
    most_disturbed_row: int | None
    max_unmitigated: dict[int, float] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """True if any row crossed the Rowhammer threshold."""
        return bool(self.flips)

    @property
    def mitigation_rate(self) -> float:
        """Mitigations per refresh (at most 1 for in-DRAM trackers)."""
        if self.refreshes == 0:
            return 0.0
        return self.mitigations / self.refreshes

    def summary(self) -> str:
        status = "FLIP" if self.failed else "ok"
        return (
            f"[{status}] {self.tracker} vs {self.trace}: "
            f"{self.demand_acts} ACTs / {self.intervals} tREFI, "
            f"{self.mitigations} mitigations "
            f"({self.transitive_mitigations} transitive), "
            f"max disturbance {self.max_disturbance:.0f}"
        )


@dataclass
class RankSimResult:
    """Outcome of running one trace against a rank of per-bank trackers.

    Carries one :class:`SimResult` per bank plus the rank-level
    aggregates; also serves as the result type of the legacy per-bank
    fan-out API (``RankResult`` is an alias, and the legacy
    ``RankResult(per_bank=...)`` construction still works — the
    rank-level fields default to empty and derive nothing from it).
    """

    trace: str = ""
    intervals: int = 0
    refreshes: int = 0
    per_bank: list[SimResult] = field(default_factory=list)

    @property
    def num_banks(self) -> int:
        return len(self.per_bank)

    @property
    def tracker(self) -> str:
        """The tracker family (per-bank instances share the name)."""
        names = list(dict.fromkeys(r.tracker for r in self.per_bank))
        return names[0] if len(names) == 1 else ",".join(names)

    @property
    def demand_acts(self) -> int:
        return sum(r.demand_acts for r in self.per_bank)

    @property
    def mitigations(self) -> int:
        return sum(r.mitigations for r in self.per_bank)

    #: Legacy name from the per-bank fan-out API.
    total_mitigations = mitigations

    @property
    def transitive_mitigations(self) -> int:
        return sum(r.transitive_mitigations for r in self.per_bank)

    @property
    def pseudo_mitigations(self) -> int:
        return sum(r.pseudo_mitigations for r in self.per_bank)

    @property
    def flips(self) -> list[FlipEvent]:
        return [flip for r in self.per_bank for flip in r.flips]

    @property
    def failed_banks(self) -> list[int]:
        return [bank for bank, r in enumerate(self.per_bank) if r.failed]

    @property
    def failed(self) -> bool:
        return bool(self.failed_banks)

    @property
    def any_flip(self) -> bool:
        return self.failed

    @property
    def max_disturbance(self) -> float:
        return max((r.max_disturbance for r in self.per_bank), default=0.0)

    def bank(self, index: int) -> SimResult:
        return self.per_bank[index]

    def summary(self) -> str:
        status = "FLIP" if self.failed else "ok"
        lines = [
            f"[{status}] {self.tracker} vs {self.trace} "
            f"({self.num_banks} banks): {self.demand_acts} ACTs / "
            f"{self.intervals} tREFI, {self.mitigations} mitigations, "
            f"failed banks {self.failed_banks or 'none'}"
        ]
        for bank, result in enumerate(self.per_bank):
            bank_status = "FLIP" if result.failed else "ok"
            lines.append(
                f"  bank {bank}: [{bank_status}] "
                f"{result.demand_acts} ACTs, "
                f"{result.mitigations} mitigations, "
                f"max disturbance {result.max_disturbance:.0f}"
            )
        return "\n".join(lines)
