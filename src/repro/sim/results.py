"""Result records produced by the security simulation engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.rowstate import FlipEvent


@dataclass
class SimResult:
    """Outcome of running one trace against one tracker."""

    tracker: str
    trace: str
    intervals: int
    demand_acts: int
    refreshes: int
    mitigations: int
    transitive_mitigations: int
    pseudo_mitigations: int
    flips: list[FlipEvent]
    max_disturbance: float
    most_disturbed_row: int | None
    max_unmitigated: dict[int, float] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """True if any row crossed the Rowhammer threshold."""
        return bool(self.flips)

    @property
    def mitigation_rate(self) -> float:
        """Mitigations per refresh (at most 1 for in-DRAM trackers)."""
        if self.refreshes == 0:
            return 0.0
        return self.mitigations / self.refreshes

    def summary(self) -> str:
        status = "FLIP" if self.failed else "ok"
        return (
            f"[{status}] {self.tracker} vs {self.trace}: "
            f"{self.demand_acts} ACTs / {self.intervals} tREFI, "
            f"{self.mitigations} mitigations "
            f"({self.transitive_mitigations} transitive), "
            f"max disturbance {self.max_disturbance:.0f}"
        )
