"""Result records produced by the security simulation engine.

The records nest like the hardware: :class:`SimResult` (one bank),
:class:`RankSimResult` (one rank of banks), :class:`ChannelSimResult`
(one channel of ranks). All carry their own canonical JSON serialisation
(:meth:`SimResult.to_payload`, :meth:`RankSimResult.to_payload`) — the
single source the experiment store, the CLI's ``--format json`` export,
and the determinism tests all read from — plus a shared flat CSV
rendering (:func:`result_csv_rows`). The system-level MTTF conversion
(:func:`system_mttf_years`) lives here too, folded in from the retired
``repro.sim.rank`` compatibility module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..constants import CONCURRENT_BANKS
from ..dram.rowstate import FlipEvent


@dataclass
class SimResult:
    """Outcome of running one trace against one tracker."""

    tracker: str
    trace: str
    intervals: int
    demand_acts: int
    refreshes: int
    mitigations: int
    transitive_mitigations: int
    pseudo_mitigations: int
    flips: list[FlipEvent]
    max_disturbance: float
    most_disturbed_row: int | None
    max_unmitigated: dict[int, float] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """True if any row crossed the Rowhammer threshold."""
        return bool(self.flips)

    @property
    def mitigation_rate(self) -> float:
        """Mitigations per refresh (at most 1 for in-DRAM trackers)."""
        if self.refreshes == 0:
            return 0.0
        return self.mitigations / self.refreshes

    def summary(self) -> str:
        status = "FLIP" if self.failed else "ok"
        return (
            f"[{status}] {self.tracker} vs {self.trace}: "
            f"{self.demand_acts} ACTs / {self.intervals} tREFI, "
            f"{self.mitigations} mitigations "
            f"({self.transitive_mitigations} transitive), "
            f"max disturbance {self.max_disturbance:.0f}"
        )

    def to_payload(self) -> dict:
        """Flatten into JSON-safe metrics (the store/export format)."""
        return {
            "tracker": self.tracker,
            "trace": self.trace,
            "intervals": self.intervals,
            "demand_acts": self.demand_acts,
            "refreshes": self.refreshes,
            "mitigations": self.mitigations,
            "transitive_mitigations": self.transitive_mitigations,
            "pseudo_mitigations": self.pseudo_mitigations,
            "failed": self.failed,
            "flips": [
                {"row": flip.row, "disturbance": flip.disturbance,
                 "time_ns": flip.time_ns}
                for flip in self.flips
            ],
            "max_disturbance": self.max_disturbance,
            "most_disturbed_row": self.most_disturbed_row,
            "max_unmitigated": {
                str(row): value
                for row, value in sorted(self.max_unmitigated.items())
            },
        }


@dataclass
class RankSimResult:
    """Outcome of running one trace against a rank of per-bank trackers.

    Carries one :class:`SimResult` per bank plus the rank-level
    aggregates; also serves as the result type of the legacy per-bank
    fan-out API (``RankResult`` is an alias, and the legacy
    ``RankResult(per_bank=...)`` construction still works — the
    rank-level fields default to empty and derive nothing from it).
    """

    trace: str = ""
    intervals: int = 0
    refreshes: int = 0
    per_bank: list[SimResult] = field(default_factory=list)

    @property
    def num_banks(self) -> int:
        return len(self.per_bank)

    @property
    def tracker(self) -> str:
        """The tracker family (per-bank instances share the name)."""
        names = list(dict.fromkeys(r.tracker for r in self.per_bank))
        return names[0] if len(names) == 1 else ",".join(names)

    @property
    def demand_acts(self) -> int:
        return sum(r.demand_acts for r in self.per_bank)

    @property
    def mitigations(self) -> int:
        return sum(r.mitigations for r in self.per_bank)

    #: Legacy name from the per-bank fan-out API.
    total_mitigations = mitigations

    @property
    def transitive_mitigations(self) -> int:
        return sum(r.transitive_mitigations for r in self.per_bank)

    @property
    def pseudo_mitigations(self) -> int:
        return sum(r.pseudo_mitigations for r in self.per_bank)

    @property
    def flips(self) -> list[FlipEvent]:
        return [flip for r in self.per_bank for flip in r.flips]

    @property
    def failed_banks(self) -> list[int]:
        return [bank for bank, r in enumerate(self.per_bank) if r.failed]

    @property
    def failed(self) -> bool:
        return bool(self.failed_banks)

    @property
    def any_flip(self) -> bool:
        return self.failed

    @property
    def max_disturbance(self) -> float:
        return max((r.max_disturbance for r in self.per_bank), default=0.0)

    def bank(self, index: int) -> SimResult:
        return self.per_bank[index]

    def summary(self) -> str:
        status = "FLIP" if self.failed else "ok"
        lines = [
            f"[{status}] {self.tracker} vs {self.trace} "
            f"({self.num_banks} banks): {self.demand_acts} ACTs / "
            f"{self.intervals} tREFI, {self.mitigations} mitigations, "
            f"failed banks {self.failed_banks or 'none'}"
        ]
        for bank, result in enumerate(self.per_bank):
            bank_status = "FLIP" if result.failed else "ok"
            lines.append(
                f"  bank {bank}: [{bank_status}] "
                f"{result.demand_acts} ACTs, "
                f"{result.mitigations} mitigations, "
                f"max disturbance {result.max_disturbance:.0f}"
            )
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """Flatten into JSON-safe metrics.

        Rank-level aggregates at the top level (so single-bank
        consumers of ``demand_acts``/``mitigations``/``failed`` keep
        working), per-bank :meth:`SimResult.to_payload` dicts under
        ``per_bank``, and a row-wise maximum of the unmitigated-run
        counters so the Table-IV accessor works on rank results too.
        """
        merged: dict[int, float] = {}
        for bank_result in self.per_bank:
            for row, value in bank_result.max_unmitigated.items():
                if value > merged.get(row, 0):
                    merged[row] = value
        return {
            "tracker": self.tracker,
            "trace": self.trace,
            "intervals": self.intervals,
            "num_banks": self.num_banks,
            "demand_acts": self.demand_acts,
            "refreshes": self.refreshes,
            "mitigations": self.mitigations,
            "transitive_mitigations": self.transitive_mitigations,
            "pseudo_mitigations": self.pseudo_mitigations,
            "failed": self.failed,
            "failed_banks": self.failed_banks,
            # Rank-wide flip events, each attributed to its bank (the
            # per-bank payloads carry the same events without the bank
            # key; the aggregate CSV row counts these).
            "flips": [
                {"bank": bank, "row": flip.row,
                 "disturbance": flip.disturbance, "time_ns": flip.time_ns}
                for bank, result in enumerate(self.per_bank)
                for flip in result.flips
            ],
            "max_disturbance": self.max_disturbance,
            "max_unmitigated": {
                str(row): value for row, value in sorted(merged.items())
            },
            "per_bank": [r.to_payload() for r in self.per_bank],
        }


@dataclass
class ChannelSimResult:
    """Outcome of running a channel schedule against N ranks of trackers.

    Carries one :class:`RankSimResult` per rank plus channel-level
    aggregates. ``intervals`` is the shared channel clock (the longest
    rank's interval count); per-rank counters live on the nested
    results, and every aggregate here is a plain sum/merge over them —
    the channel introduces no coupling of its own (ranks refresh
    independently), which is what lets per-rank results compose into
    channel-level MTTF accounting.
    """

    trace: str = ""
    intervals: int = 0
    per_rank: list[RankSimResult] = field(default_factory=list)

    #: Kernel-path telemetry attached by fused channel runs (see
    #: ``_FusedChannelKernel.stats``): fast/slow/compiled step counts
    #: and plan-cache traffic. Deliberately a class attribute, NOT a
    #: dataclass field — ``dataclasses.asdict`` and ``to_payload`` stay
    #: backend-independent, which is what the bit-identity pins compare.
    kernel_stats = None

    @property
    def num_ranks(self) -> int:
        return len(self.per_rank)

    @property
    def num_banks(self) -> int:
        """Banks per rank (ranks are homogeneous)."""
        return max((r.num_banks for r in self.per_rank), default=0)

    @property
    def tracker(self) -> str:
        """The tracker family (per-rank instances share the name)."""
        names = list(dict.fromkeys(r.tracker for r in self.per_rank))
        return names[0] if len(names) == 1 else ",".join(names)

    @property
    def demand_acts(self) -> int:
        return sum(r.demand_acts for r in self.per_rank)

    @property
    def refreshes(self) -> int:
        return sum(r.refreshes for r in self.per_rank)

    @property
    def mitigations(self) -> int:
        return sum(r.mitigations for r in self.per_rank)

    @property
    def transitive_mitigations(self) -> int:
        return sum(r.transitive_mitigations for r in self.per_rank)

    @property
    def pseudo_mitigations(self) -> int:
        return sum(r.pseudo_mitigations for r in self.per_rank)

    @property
    def flips(self) -> list[FlipEvent]:
        return [flip for r in self.per_rank for flip in r.flips]

    @property
    def failed_ranks(self) -> list[int]:
        return [rank for rank, r in enumerate(self.per_rank) if r.failed]

    @property
    def failed_banks(self) -> list[tuple[int, int]]:
        """Failed ``(rank, bank)`` coordinates across the channel."""
        return [
            (rank, bank)
            for rank, r in enumerate(self.per_rank)
            for bank in r.failed_banks
        ]

    @property
    def failed(self) -> bool:
        return bool(self.failed_ranks)

    @property
    def any_flip(self) -> bool:
        return self.failed

    @property
    def max_disturbance(self) -> float:
        return max((r.max_disturbance for r in self.per_rank), default=0.0)

    def rank(self, index: int) -> RankSimResult:
        return self.per_rank[index]

    def bank(self, rank: int, bank: int) -> SimResult:
        return self.per_rank[rank].per_bank[bank]

    def summary(self) -> str:
        status = "FLIP" if self.failed else "ok"
        lines = [
            f"[{status}] {self.tracker} vs {self.trace} "
            f"({self.num_ranks} ranks x {self.num_banks} banks): "
            f"{self.demand_acts} ACTs / {self.intervals} tREFI, "
            f"{self.mitigations} mitigations, "
            f"failed ranks {self.failed_ranks or 'none'}"
        ]
        for rank, result in enumerate(self.per_rank):
            rank_status = "FLIP" if result.failed else "ok"
            lines.append(
                f"  rank {rank}: [{rank_status}] "
                f"{result.demand_acts} ACTs, "
                f"{result.mitigations} mitigations, "
                f"failed banks {result.failed_banks or 'none'}"
            )
        return "\n".join(lines)

    def to_payload(self, include_kernel_stats: bool = False) -> dict:
        """Flatten into JSON-safe metrics.

        Channel-level aggregates at the top level (so consumers of
        ``demand_acts``/``mitigations``/``failed`` keep working
        unchanged on channel results), per-rank
        :meth:`RankSimResult.to_payload` dicts under ``per_rank``, and
        the rank-attributed flip events plus a row-wise maximum of the
        unmitigated-run counters, mirroring the rank payload shape one
        level up.

        ``include_kernel_stats=True`` appends the fused kernel's path
        telemetry (when the run attached any) under ``kernel_stats`` —
        opt-in because the default payload is the canonical form the
        determinism and backend bit-identity pins compare.
        """
        merged: dict[int, float] = {}
        for rank_result in self.per_rank:
            for bank_result in rank_result.per_bank:
                for row, value in bank_result.max_unmitigated.items():
                    if value > merged.get(row, 0):
                        merged[row] = value
        payload = {
            "tracker": self.tracker,
            "trace": self.trace,
            "intervals": self.intervals,
            "num_ranks": self.num_ranks,
            "num_banks": self.num_banks,
            "demand_acts": self.demand_acts,
            "refreshes": self.refreshes,
            "mitigations": self.mitigations,
            "transitive_mitigations": self.transitive_mitigations,
            "pseudo_mitigations": self.pseudo_mitigations,
            "failed": self.failed,
            "failed_ranks": self.failed_ranks,
            "failed_banks": [list(pair) for pair in self.failed_banks],
            "flips": [
                {"rank": rank, "bank": bank, "row": flip.row,
                 "disturbance": flip.disturbance, "time_ns": flip.time_ns}
                for rank, rank_result in enumerate(self.per_rank)
                for bank, bank_result in enumerate(rank_result.per_bank)
                for flip in bank_result.flips
            ],
            "max_disturbance": self.max_disturbance,
            "max_unmitigated": {
                str(row): value for row, value in sorted(merged.items())
            },
            "per_rank": [r.to_payload() for r in self.per_rank],
        }
        if include_kernel_stats and self.kernel_stats is not None:
            payload["kernel_stats"] = dict(self.kernel_stats)
        return payload


#: Column order of the flat CSV export (shared by ``repro run`` and
#: ``repro exp run``).
RESULT_CSV_COLUMNS = (
    "scope", "rank", "bank", "tracker", "trace", "intervals", "num_ranks",
    "num_banks", "demand_acts", "refreshes", "mitigations",
    "transitive_mitigations", "pseudo_mitigations", "failed", "flips",
    "max_disturbance",
)


def _csv_row(
    payload: Mapping[str, Any],
    scope: str,
    bank,
    rank="",
    num_ranks: int | None = None,
    num_banks: int | None = None,
) -> dict:
    # ``num_ranks``/``num_banks`` carry the *enclosing* geometry for
    # payload scopes that do not record it themselves (a bank payload
    # knows neither; a rank payload knows only its bank count), so a
    # multi-rank export renders consistent geometry columns on every
    # row instead of bank rows falling back to 1/1.
    return {
        "scope": scope,
        "rank": rank,
        "bank": bank,
        "tracker": payload.get("tracker", ""),
        "trace": payload.get("trace", ""),
        "intervals": payload.get("intervals", 0),
        "num_ranks": payload.get("num_ranks", 1 if num_ranks is None else num_ranks),
        "num_banks": payload.get("num_banks", 1 if num_banks is None else num_banks),
        "demand_acts": payload.get("demand_acts", 0),
        "refreshes": payload.get("refreshes", 0),
        "mitigations": payload.get("mitigations", 0),
        "transitive_mitigations": payload.get("transitive_mitigations", 0),
        "pseudo_mitigations": payload.get("pseudo_mitigations", 0),
        "failed": payload.get("failed", False),
        "flips": len(payload.get("flips", [])),
        "max_disturbance": payload.get("max_disturbance", 0.0),
    }


def result_csv_rows(payload: Mapping[str, Any]) -> list[dict]:
    """Flat CSV rows for one result payload.

    Accepts a :meth:`SimResult.to_payload` dict (one ``bank`` row), a
    :meth:`RankSimResult.to_payload` dict (one aggregate ``rank`` row
    followed by one row per bank), or a
    :meth:`ChannelSimResult.to_payload` dict (one ``channel`` row, then
    each rank's rows with the ``rank`` column filled in). Implemented
    once here so every exporter renders identical columns.
    """
    if "per_rank" in payload:
        rows = [_csv_row(payload, scope="channel", bank="")]
        channel_ranks = payload.get("num_ranks", len(payload["per_rank"]))
        for rank, rank_payload in enumerate(payload["per_rank"]):
            rank_banks = rank_payload.get(
                "num_banks", len(rank_payload.get("per_bank", []))
            )
            rows.append(_csv_row(rank_payload, scope="rank", bank="",
                                 rank=rank, num_ranks=channel_ranks))
            rows.extend(
                _csv_row(bank_payload, scope="bank", bank=bank, rank=rank,
                         num_ranks=channel_ranks, num_banks=rank_banks)
                for bank, bank_payload in enumerate(
                    rank_payload.get("per_bank", [])
                )
            )
        return rows
    if "per_bank" in payload:
        rows = [_csv_row(payload, scope="rank", bank="")]
        rank_ranks = payload.get("num_ranks", 1)
        rank_banks = payload.get("num_banks", len(payload["per_bank"]))
        rows.extend(
            _csv_row(bank_payload, scope="bank", bank=bank,
                     num_ranks=rank_ranks, num_banks=rank_banks)
            for bank, bank_payload in enumerate(payload["per_bank"])
        )
        return rows
    return [_csv_row(payload, scope="bank", bank=0)]


def system_mttf_years(
    per_bank_mttf_years: float, banks: int = CONCURRENT_BANKS
) -> float:
    """System MTTF given independent per-bank failure rates (§VIII-B).

    The paper: 64 banks, of which 22 can be attacked concurrently due
    to tFAW, so the system failure rate is 22x the per-bank rate
    (e.g. 10,000-year banks => 450-year system).
    """
    if per_bank_mttf_years <= 0:
        raise ValueError("per_bank_mttf_years must be positive")
    if banks < 1:
        raise ValueError("banks must be >= 1")
    return per_bank_mttf_years / banks
