"""Row-Press simulation (paper Appendix C).

Row-Press keeps a row open for a long time (tON up to ~5 tREFI); the
charge leaked into neighbours scales with the open time, so a row can
damage its victims with far fewer *activations* than TRH. Following
ImPress, we quantify the damage of one timed activation as its
Equivalent ACTivations, EACT = (tON + tPRE)/tRC, and weight the
disturbance oracle accordingly.

A tracker that counts plain activations (MINT's CAN) under-selects
long-open rows; the ImPress extension advances CAN by EACT instead,
restoring proportional selection. The simulator here drives both
through timed traces so the difference is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.rowpress import equivalent_activations
from ..dram.device import DeviceConfig, DramDevice
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from ..trackers.base import Tracker
from .results import SimResult


@dataclass(frozen=True)
class TimedAct:
    """One activation with an explicit row-open time."""

    row: int
    t_on_ns: float

    def __post_init__(self) -> None:
        if self.t_on_ns < 0:
            raise ValueError("t_on_ns must be non-negative")


@dataclass(frozen=True)
class TimedInterval:
    """One tREFI of timed activations."""

    acts: tuple[TimedAct, ...]


@dataclass
class TimedTrace:
    """A named stream of timed intervals."""

    name: str
    intervals: list[TimedInterval]

    def validate(self, timing: DDR5Timing) -> None:
        """Each interval's row-open + precharge time must fit in tREFI."""
        budget = timing.t_refi_ns - timing.t_rfc_ns
        for index, interval in enumerate(self.intervals):
            used = sum(
                act.t_on_ns + timing.t_rp_ns for act in interval.acts
            )
            if used > budget:
                raise ValueError(
                    f"interval {index} uses {used:.0f} ns of row time; "
                    f"only {budget:.0f} ns fit in one tREFI"
                )


def rowpress_trace(
    row: int,
    t_on_ns: float,
    intervals: int,
    timing: DDR5Timing = DEFAULT_TIMING,
    name: str | None = None,
) -> TimedTrace:
    """A Row-Press pattern: hold ``row`` open ``t_on_ns`` repeatedly.

    Each interval is packed with as many long-open activations as the
    tREFI budget allows (at least one).
    """
    if intervals < 1:
        raise ValueError("intervals must be >= 1")
    budget = timing.t_refi_ns - timing.t_rfc_ns
    per_interval = max(1, int(budget // (t_on_ns + timing.t_rp_ns)))
    interval = TimedInterval(tuple(TimedAct(row, t_on_ns) for _ in range(per_interval)))
    return TimedTrace(
        name=name or f"row-press(row={row},tON={t_on_ns:.0f}ns)",
        intervals=[interval] * intervals,
    )


class RowPressBankSimulator:
    """Drives timed traces through the EACT-weighted disturbance oracle.

    Trackers exposing ``on_activate_timed`` (the ImPress extension)
    receive the open time; plain trackers only see an activation event,
    which is precisely the blindness Row-Press exploits.
    """

    def __init__(
        self,
        tracker: Tracker,
        trh: float,
        timing: DDR5Timing = DEFAULT_TIMING,
        num_rows: int = 128 * 1024,
        blast_radius: int = 1,
    ) -> None:
        self.tracker = tracker
        self.timing = timing
        self.device = DramDevice(
            DeviceConfig(
                timing=timing,
                num_banks=1,
                rows_per_bank=num_rows,
                trh=trh,
                blast_radius=blast_radius,
            )
        )
        self.mitigations = 0
        self.demand_acts = 0

    def run(self, trace: TimedTrace) -> SimResult:
        trace.validate(self.timing)
        timed = hasattr(self.tracker, "on_activate_timed")
        model = self.device.banks[0]
        for index, interval in enumerate(trace.intervals):
            time_ns = index * self.timing.t_refi_ns
            for act in interval.acts:
                self.demand_acts += 1
                weight = equivalent_activations(act.t_on_ns, self.timing)
                model.activate(act.row, time_ns, weight=weight)
                if timed:
                    self.tracker.on_activate_timed(act.row, act.t_on_ns)
                else:
                    self.tracker.on_activate(act.row)
            self.device.auto_refresh(0, time_ns)
            for request in self.tracker.on_refresh():
                self.mitigations += 1
                self.device.mitigate(0, request.row, request.distance, time_ns)
        return SimResult(
            tracker=self.tracker.name,
            trace=trace.name,
            intervals=len(trace.intervals),
            demand_acts=self.demand_acts,
            refreshes=len(trace.intervals),
            mitigations=self.mitigations,
            transitive_mitigations=0,
            pseudo_mitigations=0,
            flips=list(model.flips),
            max_disturbance=model.max_disturbance(),
            most_disturbed_row=model.most_disturbed_row(),
        )
