"""Deterministic seed derivation for fan-out experiments.

Parallel sweeps need per-task randomness that is (a) independent
between tasks and (b) a pure function of *what the task is*, never of
scheduling order or worker count. The helpers here derive 64-bit seeds
from a stable SHA-256 hash of canonical-JSON-encoded coordinates, so a
grid point or Monte-Carlo window always sees the same random stream no
matter how the work is partitioned.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, is_dataclass
from typing import Any


def canonical_json(obj: Any) -> str:
    """Encode ``obj`` as sorted-key, whitespace-free JSON.

    Dataclasses are encoded via ``asdict``; sets are sorted. The output
    is byte-stable across processes and Python invocations (no hash
    randomisation), which makes it suitable for fingerprinting.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_encode
    )


def _encode(obj: Any) -> Any:
    if is_dataclass(obj) and not isinstance(obj, type):
        return asdict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"cannot canonicalise {type(obj).__name__} for hashing")


def stable_hash(*parts: Any) -> str:
    """Hex SHA-256 digest of the canonical encoding of ``parts``."""
    payload = canonical_json(list(parts)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def stable_seed(*parts: Any) -> int:
    """A 64-bit seed derived from ``parts`` (stable across processes)."""
    return int(stable_hash(*parts)[:16], 16)


def derive_rng(*parts: Any) -> random.Random:
    """A ``random.Random`` seeded by :func:`stable_seed` of ``parts``."""
    return random.Random(stable_seed(*parts))
