"""Attack-trace representation for the security simulator.

A trace is a sequence of :class:`Interval` objects — one per tREFI.
Each interval carries up to MaxACT row activations (the tRC budget)
and a flag asking the memory controller to postpone the REF that would
close the interval (granted only while fewer than four are owed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator


@dataclass(frozen=True)
class Interval:
    """One tREFI worth of demand activations."""

    acts: tuple[int, ...]
    postpone: bool = False

    @staticmethod
    def of(acts: Iterable[int], postpone: bool = False) -> "Interval":
        return Interval(tuple(acts), postpone)


@dataclass
class Trace:
    """A named, bounded stream of intervals."""

    name: str
    intervals: list[Interval] = field(default_factory=list)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    @property
    def total_acts(self) -> int:
        return sum(len(interval.acts) for interval in self.intervals)

    def rows_touched(self) -> set[int]:
        rows: set[int] = set()
        for interval in self.intervals:
            rows.update(interval.acts)
        return rows

    def validate(self, max_act: int) -> None:
        """Reject traces that exceed the per-interval ACT budget."""
        for index, interval in enumerate(self.intervals):
            if len(interval.acts) > max_act:
                raise ValueError(
                    f"interval {index} has {len(interval.acts)} ACTs, "
                    f"but at most {max_act} fit in one tREFI"
                )


def repeat_interval(
    acts: Iterable[int], count: int, postpone: bool = False
) -> list[Interval]:
    """``count`` identical intervals (the classic-attack building block)."""
    interval = Interval.of(acts, postpone)
    return [interval] * count
