"""Attack-trace representation for the security simulator.

A trace is a sequence of :class:`Interval` objects — one per tREFI.
Each interval carries up to MaxACT row activations (the tRC budget)
and a flag asking the memory controller to postpone the REF that would
close the interval (granted only while fewer than four are owed).

Traces come in two address widths:

* :class:`Trace` — row-only ACT streams, the historical single-bank
  format. The engine auto-lifts these to bank 0 (``Interval.per_bank``
  is the lifting seam), so every pre-rank caller keeps working and
  produces bit-identical results.
* :class:`RankTrace` — bank-addressed streams whose intervals carry
  ``(bank, row)`` pairs, the input of the rank-level engine. Per-bank
  projections (:meth:`RankTrace.bank_trace`) and the inverse merge
  (:meth:`RankTrace.from_bank_traces`) convert between the two widths.

The REF-postponement flag is rank-scoped in both formats: refresh
scheduling is a rank-level memory-controller decision, so merging
per-bank traces ORs their flags.

Above the materialized formats sits the *streaming* layer:
:class:`TraceStream` yields intervals in bounded chunks so attacks can
emit unbounded schedules lazily (a materialized :class:`RankTrace` is
the special case wrapped by :class:`MaterializedStream`), and
:class:`ChannelTrace` groups per-rank streams for the channel-level
engine. See the "Streaming traces" section below.

Both interval types additionally expose a structured-array view,
``per_bank_arrays`` — the same per-bank split with each bank's rows as
a NumPy ``intp`` array instead of a tuple. The vectorized engine
consumes this view; it is cached on the interval object, so traces
built from :func:`repeat_interval`/:func:`repeat_rank_interval` (one
shared interval object across thousands of tREFIs) pay the conversion
once. Attack generators can skip the tuple round-trip entirely with
:meth:`RankInterval.from_arrays`, which seeds the cache directly from
``bank``/``row`` column arrays — and also seeds
:attr:`RankInterval.column_arrays`, the packed flat view the fused
channel kernel folds into its ``rank × bank × row`` keys. Arrays handed
out by these views are owned by the interval and must not be mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Callable, Iterable, Iterator, Mapping, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]


def _split_by_bank(banks, rows):
    """Group ``rows`` by ``banks`` (ascending), issue order kept per bank."""
    order = np.argsort(banks, kind="stable")
    sorted_banks = banks[order]
    sorted_rows = rows[order]
    unique_banks, starts = np.unique(sorted_banks, return_index=True)
    chunks = np.split(sorted_rows, starts[1:])
    return tuple(
        (int(bank), chunk) for bank, chunk in zip(unique_banks.tolist(), chunks)
    )


@dataclass(frozen=True)
class Interval:
    """One tREFI worth of demand activations."""

    acts: tuple[int, ...]
    postpone: bool = False

    @staticmethod
    def of(acts: Iterable[int], postpone: bool = False) -> "Interval":
        return Interval(tuple(acts), postpone)

    @property
    def per_bank(self) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """Bank-addressed view: a row-only interval is bank 0's stream."""
        return ((0, self.acts),)

    @cached_property
    def per_bank_arrays(self):
        """Array view of :attr:`per_bank` (cached; arrays are read-only
        by contract). Requires NumPy."""
        return ((0, np.asarray(self.acts, dtype=np.intp)),)


@dataclass(frozen=True)
class RankInterval:
    """One tREFI worth of bank-addressed demand activations.

    ``acts`` holds ``(bank, row)`` pairs in issue order. The per-bank
    split is cached on the instance because attack generators share one
    interval object across thousands of tREFIs (``repeat_interval``),
    so the engine pays the grouping cost once per distinct interval.
    """

    acts: tuple[tuple[int, int], ...]
    postpone: bool = False

    @staticmethod
    def of(
        acts: Iterable[tuple[int, int]], postpone: bool = False
    ) -> "RankInterval":
        return RankInterval(tuple((b, r) for b, r in acts), postpone)

    @cached_property
    def per_bank(self) -> tuple[tuple[int, tuple[int, ...]], ...]:
        """ACTs grouped by bank (ascending), issue order kept per bank."""
        grouped: dict[int, list[int]] = {}
        for bank, row in self.acts:
            grouped.setdefault(bank, []).append(row)
        return tuple(
            (bank, tuple(rows)) for bank, rows in sorted(grouped.items())
        )

    @cached_property
    def per_bank_arrays(self):
        """ACTs grouped by bank with rows as NumPy ``intp`` arrays.

        The array analogue of :attr:`per_bank`, cached for the same
        reason; the vectorized engine iterates this view. Arrays are
        owned by the interval — callers must not mutate them. Requires
        NumPy.
        """
        if not self.acts:
            return ()
        pairs = np.asarray(self.acts, dtype=np.intp)
        return _split_by_bank(pairs[:, 0], pairs[:, 1])

    @cached_property
    def column_arrays(self):
        """The interval's ACT stream as ``(banks, rows)`` column arrays.

        The packed flat view next to :attr:`per_bank_arrays`: both
        columns are NumPy ``intp`` arrays in issue order, so channel-
        level kernels can fold a whole interval into a packed
        ``rank × bank × row`` key without touching the per-bank split.
        Cached and owned by the interval like the other views; callers
        must not mutate the arrays. Requires NumPy.
        """
        if not self.acts:
            empty = np.empty(0, dtype=np.intp)
            return (empty, empty)
        pairs = np.asarray(self.acts, dtype=np.intp)
        return (pairs[:, 0], pairs[:, 1])

    @classmethod
    def from_arrays(cls, banks, rows, postpone: bool = False) -> "RankInterval":
        """Build an interval straight from ``bank``/``row`` column arrays.

        Attack generators that already produce arrays avoid the
        tuple-of-pairs round-trip: the per-bank array split is computed
        here and seeded into the :attr:`per_bank_arrays` cache — and
        the columns themselves seed :attr:`column_arrays` (the ``acts``
        tuple is still materialized for the scalar API).
        """
        banks = np.asarray(banks, dtype=np.intp)
        rows = np.asarray(rows, dtype=np.intp)
        if banks.shape != rows.shape or banks.ndim != 1:
            raise ValueError("banks and rows must be 1-D arrays of equal length")
        interval = cls(tuple(zip(banks.tolist(), rows.tolist())), postpone)
        # cached_property stores through the instance __dict__, which a
        # frozen dataclass still allows.
        interval.__dict__["per_bank_arrays"] = (
            _split_by_bank(banks, rows) if banks.size else ()
        )
        interval.__dict__["column_arrays"] = (banks, rows)
        return interval

    def acts_for_bank(self, bank: int) -> tuple[int, ...]:
        for b, rows in self.per_bank:
            if b == bank:
                return rows
        return ()


@dataclass
class Trace:
    """A named, bounded stream of intervals."""

    name: str
    intervals: list[Interval] = field(default_factory=list)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    @property
    def total_acts(self) -> int:
        return sum(len(interval.acts) for interval in self.intervals)

    def rows_touched(self) -> set[int]:
        rows: set[int] = set()
        for interval in self.intervals:
            rows.update(interval.acts)
        return rows

    def validate(self, max_act: int) -> None:
        """Reject traces that exceed the per-interval ACT budget."""
        for index, interval in enumerate(self.intervals):
            if len(interval.acts) > max_act:
                raise ValueError(
                    f"interval {index} has {len(interval.acts)} ACTs, "
                    f"but at most {max_act} fit in one tREFI"
                )


@dataclass
class RankTrace:
    """A named, bounded stream of bank-addressed intervals."""

    name: str
    intervals: list[RankInterval] = field(default_factory=list)

    def __iter__(self) -> Iterator[RankInterval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    @property
    def total_acts(self) -> int:
        return sum(len(interval.acts) for interval in self.intervals)

    def banks_touched(self) -> set[int]:
        banks: set[int] = set()
        for interval in self.intervals:
            for bank, _rows in interval.per_bank:
                banks.add(bank)
        return banks

    def rows_touched(self, bank: int | None = None) -> set[int]:
        """Rows activated anywhere in the trace (optionally one bank's)."""
        rows: set[int] = set()
        for interval in self.intervals:
            for b, r in interval.acts:
                if bank is None or b == bank:
                    rows.add(r)
        return rows

    def validate(
        self,
        max_act: int,
        num_banks: int | None = None,
        concurrent_banks: int | None = None,
    ) -> None:
        """Reject traces that break the per-bank or rank-level budgets.

        ``max_act`` is the per-bank tRC budget of one tREFI;
        ``num_banks`` bounds the bank address space; ``concurrent_banks``
        enforces the tFAW ceiling on how many banks can sustain demand
        activations within one interval (22 of 64 in the paper's rank).
        """
        validate_rank_intervals(
            self.intervals,
            max_act,
            num_banks=num_banks,
            concurrent_banks=concurrent_banks,
        )

    # ------------------------------------------------------------------
    # Conversions to/from the row-only single-bank format
    # ------------------------------------------------------------------
    def bank_trace(self, bank: int) -> Trace:
        """Project one bank's stream (same length; other banks' ACTs
        dropped, rank-level postpone flags kept)."""
        return Trace(
            name=self.name,
            intervals=[
                Interval(interval.acts_for_bank(bank), interval.postpone)
                for interval in self.intervals
            ],
        )

    def bank_traces(self) -> dict[int, Trace]:
        """Per-bank projections for every bank the trace touches."""
        return {
            bank: self.bank_trace(bank) for bank in sorted(self.banks_touched())
        }

    @classmethod
    def from_bank_traces(
        cls,
        name: str,
        traces: Mapping[int, Trace] | Sequence[Trace],
    ) -> "RankTrace":
        """Merge per-bank row traces into one rank trace.

        A sequence assigns trace ``i`` to bank ``i``. Shorter traces are
        padded with idle intervals to the longest; an interval's
        postpone flag is the OR of the banks' flags (postponement is a
        rank-level REF decision).

        Identical merged intervals are interned — repeated hammer
        patterns collapse to one shared :class:`RankInterval` object, so
        downstream per-interval caches (the bank split, the engine's
        batch aggregation) are computed once per *distinct* interval
        rather than once per tREFI.
        """
        if not isinstance(traces, Mapping):
            traces = dict(enumerate(traces))
        if not traces:
            return cls(name=name, intervals=[])
        length = max(len(trace) for trace in traces.values())
        intervals = []
        interned: dict[tuple, RankInterval] = {}
        for i in range(length):
            acts: list[tuple[int, int]] = []
            postpone = False
            for bank in sorted(traces):
                trace = traces[bank]
                if i >= len(trace.intervals):
                    continue
                interval = trace.intervals[i]
                acts.extend((bank, row) for row in interval.acts)
                postpone = postpone or interval.postpone
            key = (tuple(acts), postpone)
            merged = interned.get(key)
            if merged is None:
                merged = RankInterval(key[0], postpone)
                interned[key] = merged
            intervals.append(merged)
        return cls(name=name, intervals=intervals)


def lift_trace(trace: Trace, bank: int = 0) -> RankTrace:
    """Lift a row-only trace onto one bank of a rank.

    Identical source intervals (e.g. from :func:`repeat_interval`) lift
    to one shared :class:`RankInterval`, preserving the per-distinct-
    interval caching the repeat idiom buys.
    """
    interned: dict[tuple, RankInterval] = {}
    intervals = []
    for interval in trace.intervals:
        key = (interval.acts, interval.postpone)
        lifted = interned.get(key)
        if lifted is None:
            lifted = RankInterval(
                tuple((bank, row) for row in interval.acts), interval.postpone
            )
            interned[key] = lifted
        intervals.append(lifted)
    return RankTrace(name=trace.name, intervals=intervals)


def repeat_interval(
    acts: Iterable[int], count: int, postpone: bool = False
) -> list[Interval]:
    """``count`` identical intervals (the classic-attack building block)."""
    interval = Interval.of(acts, postpone)
    return [interval] * count


def repeat_rank_interval(
    acts: Iterable[tuple[int, int]], count: int, postpone: bool = False
) -> list[RankInterval]:
    """``count`` identical bank-addressed intervals (sharing one object,
    so the engine's per-interval bank split is computed once)."""
    interval = RankInterval.of(acts, postpone)
    return [interval] * count


# ---------------------------------------------------------------------
# Streaming traces
# ---------------------------------------------------------------------

def validate_rank_intervals(
    intervals: Sequence[RankInterval],
    max_act: int,
    num_banks: int | None = None,
    concurrent_banks: int | None = None,
    start: int = 0,
) -> None:
    """Check a run of bank-addressed intervals against the budgets.

    The single source of the per-interval budget rules: the materialized
    :meth:`RankTrace.validate` checks its whole interval list through
    here, and the engine's streaming path checks each chunk as it
    arrives with ``start`` carrying the running interval offset — so a
    streamed trace is rejected under exactly the rules (and with exactly
    the messages) a materialized one would be, just lazily.
    """
    for index, interval in enumerate(intervals, start=start):
        split = interval.per_bank
        if concurrent_banks is not None and len(split) > concurrent_banks:
            raise ValueError(
                f"interval {index} activates {len(split)} banks, but "
                f"tFAW sustains at most {concurrent_banks} concurrently"
            )
        for bank, rows in split:
            if bank < 0:
                raise ValueError(
                    f"interval {index} addresses negative bank {bank}"
                )
            if num_banks is not None and bank >= num_banks:
                raise ValueError(
                    f"interval {index} addresses bank {bank}, but the "
                    f"rank has {num_banks} banks"
                )
            if len(rows) > max_act:
                raise ValueError(
                    f"interval {index} has {len(rows)} ACTs on bank "
                    f"{bank}, but at most {max_act} fit in one tREFI"
                )


#: Intervals per chunk handed to the engine by the stream classes. Big
#: enough that the per-chunk loop-restart cost vanishes, small enough
#: that a chunk of distinct intervals stays cache-friendly.
DEFAULT_CHUNK_INTERVALS = 4096


class TraceStream:
    """A lazily produced, bank-addressed activation schedule.

    The streaming counterpart of :class:`RankTrace`: instead of holding
    every interval in memory, a stream *yields* them in bounded chunks,
    so an attack can drive the engine across an arbitrarily long
    horizon — multi-refresh-window Monte-Carlo campaigns, adaptive
    attacks that never materialize their schedule — at O(chunk) memory.
    The engine consumes chunks in order and validates each against the
    same budget rules as a materialized trace
    (:func:`validate_rank_intervals`), and its per-interval work is
    identical either way, so a streamed schedule produces a
    :class:`~repro.sim.results.RankSimResult` bit-identical to running
    the materialized equivalent (pinned by the stream-equivalence
    tests).

    Subclasses implement :meth:`chunks`. ``horizon`` declares the total
    interval count when known (``None`` = unknown until exhausted);
    ``act_budget`` declares the maximum per-bank ACTs any interval
    carries, letting the engine reject an over-budget schedule before
    simulating a single interval. A stream must be re-iterable:
    every :meth:`chunks` call starts a fresh pass.
    """

    name: str = "stream"
    #: Declared total interval count (None = unknown/unbounded).
    horizon: int | None = None
    #: Declared max per-bank ACTs in any one interval (None = undeclared).
    act_budget: int | None = None

    def chunks(self) -> Iterator[Sequence[RankInterval]]:
        """Yield the schedule as successive runs of intervals."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[RankInterval]:
        for chunk in self.chunks():
            yield from chunk

    def materialize(self) -> RankTrace:
        """Collect the whole stream into a :class:`RankTrace`.

        The inverse of :func:`as_trace_stream` — useful for tests and
        short horizons; defeats the purpose for unbounded ones.
        """
        return RankTrace(name=self.name, intervals=list(self))


class MaterializedStream(TraceStream):
    """A :class:`RankTrace` viewed through the stream protocol.

    What :func:`as_trace_stream` wraps an already-built trace in: one
    pass yields the interval list in :data:`DEFAULT_CHUNK_INTERVALS`
    slices (slices of a list of shared interval objects are cheap), and
    the horizon is exact.
    """

    def __init__(self, trace: RankTrace,
                 chunk_intervals: int = DEFAULT_CHUNK_INTERVALS) -> None:
        if chunk_intervals < 1:
            raise ValueError("chunk_intervals must be >= 1")
        self.trace = trace
        self.name = trace.name
        self.horizon = len(trace)
        self.chunk_intervals = chunk_intervals

    def chunks(self) -> Iterator[Sequence[RankInterval]]:
        intervals = self.trace.intervals
        for lo in range(0, len(intervals), self.chunk_intervals):
            yield intervals[lo:lo + self.chunk_intervals]


class CycleStream(TraceStream):
    """A periodic schedule repeated out to a (possibly huge) horizon.

    The streaming form of the ``repeat_interval`` idiom: virtually every
    long-horizon attack is a short super-window played over and over
    (hammer intervals, a decoy-then-hammer cycle, a rotation pattern).
    A materialized ``[interval] * count`` list costs 8 bytes of pointer
    per tREFI — a billion-activation campaign would not fit in RAM —
    while this stream holds only the pattern and yields pointer blocks
    of at most ``chunk_intervals``, so memory is flat in the horizon.

    The same few interval *objects* recur throughout, which is exactly
    what the engine's per-distinct-interval caches want.
    """

    def __init__(
        self,
        name: str,
        pattern: Sequence[RankInterval],
        count: int,
        chunk_intervals: int = DEFAULT_CHUNK_INTERVALS,
    ) -> None:
        if not pattern:
            raise ValueError("pattern must carry at least one interval")
        if count < 0:
            raise ValueError("count must be >= 0")
        if chunk_intervals < len(pattern):
            chunk_intervals = len(pattern)
        self.name = name
        self.pattern = list(pattern)
        self.count = count
        self.horizon = count
        self.act_budget = max(
            (len(rows) for interval in self.pattern
             for _bank, rows in interval.per_bank),
            default=0,
        )
        # Whole pattern repetitions per chunk, so every chunk is a
        # phase-aligned prefix of the cycle.
        self._reps = max(1, chunk_intervals // len(self.pattern))

    def chunks(self) -> Iterator[Sequence[RankInterval]]:
        period = len(self.pattern)
        block = self.pattern * self._reps
        emitted = 0
        while emitted + len(block) <= self.count:
            yield block
            emitted += len(block)
        remainder = self.count - emitted
        if remainder:
            full, partial = divmod(remainder, period)
            yield self.pattern * full + self.pattern[:partial]


class GeneratorStream(TraceStream):
    """A stream over an arbitrary interval generator.

    ``intervals`` is a zero-argument callable returning an iterator of
    :class:`RankInterval` — a generator function, so every
    :meth:`chunks` call restarts the schedule from a clean slate (the
    stream contract). Use this for schedules that are computed on the
    fly (adaptive attacks, randomized placements) rather than periodic;
    give randomized generators their own seeded RNG inside the callable
    so replays are identical.
    """

    def __init__(
        self,
        name: str,
        intervals: Callable[[], Iterator[RankInterval]],
        horizon: int | None = None,
        act_budget: int | None = None,
        chunk_intervals: int = DEFAULT_CHUNK_INTERVALS,
    ) -> None:
        if not callable(intervals):
            raise TypeError(
                "intervals must be a zero-argument callable returning an "
                "iterator (a generator function), so the stream can be "
                "re-iterated"
            )
        if chunk_intervals < 1:
            raise ValueError("chunk_intervals must be >= 1")
        self.name = name
        self._intervals = intervals
        self.horizon = horizon
        self.act_budget = act_budget
        self.chunk_intervals = chunk_intervals

    def chunks(self) -> Iterator[Sequence[RankInterval]]:
        chunk: list[RankInterval] = []
        for interval in self._intervals():
            chunk.append(interval)
            if len(chunk) >= self.chunk_intervals:
                yield chunk
                chunk = []
        if chunk:
            yield chunk


def as_trace_stream(
    trace: "Trace | RankTrace | TraceStream", bank: int = 0
) -> TraceStream:
    """Coerce any trace shape into a :class:`TraceStream`.

    Streams pass through; a :class:`RankTrace` wraps in a
    :class:`MaterializedStream`; a row-only :class:`Trace` lifts onto
    ``bank`` first (the classic lifting seam, interning preserved).
    """
    if isinstance(trace, TraceStream):
        return trace
    if isinstance(trace, RankTrace):
        return MaterializedStream(trace)
    if isinstance(trace, Trace):
        return MaterializedStream(lift_trace(trace, bank))
    raise TypeError(
        f"cannot stream {type(trace).__name__}; expected Trace, "
        f"RankTrace, or TraceStream"
    )


@dataclass
class ChannelTrace:
    """Per-rank activation schedules under one channel clock.

    The channel-level input format: rank ``r``'s schedule is
    ``per_rank[r]`` — a :class:`RankTrace` or a :class:`TraceStream` —
    and the :class:`~repro.sim.engine.ChannelSimulator` marches every
    rank through the shared tREFI clock. Ranks absent from the mapping
    sit idle. REF postponement stays a per-rank flag (each rank has its
    own refresh schedule in DDR5), which is what keeps a channel run
    decomposable into independent rank runs — the property the
    channel-equivalence tests pin.
    """

    name: str
    per_rank: dict[int, "RankTrace | TraceStream"] = field(
        default_factory=dict
    )

    @property
    def num_ranks(self) -> int:
        """Ranks the trace addresses (1 + highest rank index)."""
        return max(self.per_rank, default=-1) + 1

    def ranks_touched(self) -> set[int]:
        return set(self.per_rank)

    def rank_stream(self, rank: int) -> TraceStream:
        """Rank ``rank``'s schedule as a stream (empty if unaddressed)."""
        trace = self.per_rank.get(rank)
        if trace is None:
            return MaterializedStream(RankTrace(name=f"{self.name}[idle]"))
        return as_trace_stream(trace)

    @property
    def horizon(self) -> int | None:
        """Channel horizon: the longest rank's declared horizon
        (``None`` if any rank's is unknown)."""
        horizons = [
            as_trace_stream(trace).horizon
            for trace in self.per_rank.values()
        ]
        if any(h is None for h in horizons):
            return None
        return max(horizons, default=0)
