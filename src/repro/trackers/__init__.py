"""The tracker zoo: every design the paper compares (Table III)."""

from .base import MitigationRequest, NullTracker, Tracker
from .graphene import GrapheneTracker
from .mithril import MithrilTracker
from .para import InDramParaTracker, McParaPolicy
from .parfm import ParfmTracker
from .prac import PracTracker, prac_throughput_cost, prac_timing
from .prct import PrctTracker
from .pride import PrideTracker
from .protrr import ProTrrTracker, VictimRefreshRequest
from .registry import (
    available_trackers,
    bank_tracker_factory,
    channel_tracker_factory,
    make_tracker,
    register,
)
from .trr import TrrTracker

__all__ = [
    "GrapheneTracker",
    "InDramParaTracker",
    "McParaPolicy",
    "MithrilTracker",
    "MitigationRequest",
    "NullTracker",
    "ParfmTracker",
    "PracTracker",
    "PrctTracker",
    "PrideTracker",
    "ProTrrTracker",
    "Tracker",
    "TrrTracker",
    "VictimRefreshRequest",
    "available_trackers",
    "bank_tracker_factory",
    "channel_tracker_factory",
    "make_tracker",
    "prac_throughput_cost",
    "prac_timing",
    "register",
]
