"""Common interface for in-DRAM (and MC-side) aggressor trackers.

Every tracker in the paper fits one life-cycle:

* :meth:`Tracker.on_activate` is called for each demand activation.
* :meth:`Tracker.on_refresh` is called at each REF command; the tracker
  returns the (possibly empty) list of mitigations to perform now.
* :meth:`Tracker.pseudo_refresh` is called by the Delayed Mitigation
  Queue when activations exceed MaxACT under refresh postponement: the
  tracker must hand over its current selection and reset its interval
  state exactly as if a REF had occurred, without any mitigation being
  executed yet.

A mitigation is a :class:`MitigationRequest` — an aggressor row plus a
*distance*: 1 for a normal victim refresh (aggressor±1), 2 for a
transitive mitigation (aggressor±2, Section V-E), etc.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class MitigationRequest:
    """Ask the device to refresh the victims of ``row`` at ``distance``."""

    row: int
    distance: int = 1

    def __post_init__(self) -> None:
        if self.distance < 1:
            raise ValueError("mitigation distance must be >= 1")


class Tracker(abc.ABC):
    """Abstract aggressor tracker.

    Class attributes describe the tracker for the comparison tables:

    ``name``
        Human-readable identifier used in reports.
    ``centric``
        The paper's taxonomy: ``"past"``, ``"present"`` or ``"future"``.
    ``observes_mitigations``
        True for counter-based designs whose counters are incremented by
        the activations that victim refreshes perform (this is what makes
        PRCT and Mithril immune to transitive attacks, Section V-G).
    ``pseudo_mitigations``
        Declared counter of :meth:`pseudo_refresh` hand-offs performed
        under refresh postponement. Plain trackers never pseudo-refresh,
        so the class default of 0 stands; wrappers that do (the Delayed
        Mitigation Queue) maintain an instance counter. The simulation
        engine reads this attribute directly when assembling results —
        it is part of the tracker interface, not duck-typed.
    """

    name: str = "tracker"
    centric: str = "past"
    observes_mitigations: bool = False
    pseudo_mitigations: int = 0

    @abc.abstractmethod
    def on_activate(self, row: int) -> None:
        """Observe one demand activation of ``row``."""

    @abc.abstractmethod
    def on_refresh(self) -> list[MitigationRequest]:
        """REF boundary: return mitigations to perform, reset interval."""

    def on_mitigation_activate(self, row: int) -> None:
        """Observe the silent activation a victim refresh performs.

        Only called when :attr:`observes_mitigations` is True. Default
        implementation treats it like a demand activation.
        """
        self.on_activate(row)

    def pseudo_refresh(self) -> list[MitigationRequest]:
        """Hand over the current selection for DMQ queueing.

        Default: identical to a refresh boundary. Trackers whose refresh
        has side effects beyond selection may override.
        """
        return self.on_refresh()

    def reset(self) -> None:
        """Restore power-on state. Subclasses should override."""

    @property
    def entries(self) -> int:
        """Number of row-tracking entries (for Table III)."""
        return 1

    @property
    def storage_bits(self) -> int:
        """SRAM bits used per bank (for Section VIII-C / Table IX)."""
        return 0


class NullTracker(Tracker):
    """A tracker that never mitigates — the unprotected baseline."""

    name = "none"
    centric = "none"

    def on_activate(self, row: int) -> None:
        pass

    def on_refresh(self) -> list[MitigationRequest]:
        return []

    @property
    def entries(self) -> int:
        return 0
