"""Common interface for in-DRAM (and MC-side) aggressor trackers.

Every tracker in the paper fits one life-cycle:

* :meth:`Tracker.on_activate` is called for each demand activation, or
  :meth:`Tracker.on_activate_batch` for a whole tREFI interval's batch
  at once (the vectorized engine's hot path).
* :meth:`Tracker.on_refresh` is called at each REF command; the tracker
  returns the (possibly empty) list of mitigations to perform now.
* :meth:`Tracker.pseudo_refresh` is called by the Delayed Mitigation
  Queue when activations exceed MaxACT under refresh postponement: the
  tracker must hand over its current selection and reset its interval
  state exactly as if a REF had occurred, without any mitigation being
  executed yet.

A mitigation is a :class:`MitigationRequest` — an aggressor row plus a
*distance*: 1 for a normal victim refresh (aggressor±1), 2 for a
transitive mitigation (aggressor±2, Section V-E), etc.

The batch contract (for third-party trackers)
---------------------------------------------

``on_activate_batch(rows, counts=None)`` must be *observably
equivalent* to calling ``on_activate`` once per entry of ``rows`` in
order: same table contents, same mitigation stream, and — for
randomized trackers — the same draws from the tracker's ``rng`` (so a
simulation produces bit-identical results whichever entry point the
engine uses; the property suite pins this for every registry tracker).
The default implementation is exactly that scalar loop; override it
only with an implementation that preserves the equivalence, falling
back to the scalar loop for batches whose outcome is order-dependent
(table overflow, mid-batch threshold crossings, ...).

``rows`` is the interval's act stream — a sequence or NumPy integer
array, never to be mutated. ``counts``, when provided, is the batch's
``(unique_rows, counts)`` pre-aggregation **in first-occurrence
order** (the order scalar processing would first insert each row),
computed once by the engine and shared with the disturbance oracle;
use :func:`batch_items` to consume it uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Union

BatchRows = Union[Sequence[int], "object"]  # Sequence[int] | np.ndarray


def batch_items(rows, counts=None) -> list[tuple[int, int]]:
    """``(row, count)`` pairs of a batch, in first-occurrence order.

    Uses the engine-provided ``counts`` pre-aggregation when available
    (array pairs convert via ``tolist`` so downstream dict keys are
    plain ints); otherwise aggregates ``rows`` directly.
    """
    if counts is not None:
        uniq, cnt = counts
        if hasattr(uniq, "tolist"):
            uniq = uniq.tolist()
        if hasattr(cnt, "tolist"):
            cnt = cnt.tolist()
        return list(zip(uniq, cnt))
    agg: dict[int, int] = {}
    for row in rows.tolist() if hasattr(rows, "tolist") else rows:
        agg[row] = agg.get(row, 0) + 1
    return list(agg.items())


@dataclass(frozen=True)
class MitigationRequest:
    """Ask the device to refresh the victims of ``row`` at ``distance``."""

    row: int
    distance: int = 1

    def __post_init__(self) -> None:
        if self.distance < 1:
            raise ValueError("mitigation distance must be >= 1")


class Tracker(abc.ABC):
    """Abstract aggressor tracker.

    Class attributes describe the tracker for the comparison tables:

    ``name``
        Human-readable identifier used in reports.
    ``centric``
        The paper's taxonomy: ``"past"``, ``"present"`` or ``"future"``.
    ``observes_mitigations``
        True for counter-based designs whose counters are incremented by
        the activations that victim refreshes perform (this is what makes
        PRCT and Mithril immune to transitive attacks, Section V-G).
    ``pseudo_mitigations``
        Declared counter of :meth:`pseudo_refresh` hand-offs performed
        under refresh postponement. Plain trackers never pseudo-refresh,
        so the class default of 0 stands; wrappers that do (the Delayed
        Mitigation Queue) maintain an instance counter. The simulation
        engine reads this attribute directly when assembling results —
        it is part of the tracker interface, not duck-typed.
    """

    name: str = "tracker"
    centric: str = "past"
    observes_mitigations: bool = False
    pseudo_mitigations: int = 0

    @abc.abstractmethod
    def on_activate(self, row: int) -> None:
        """Observe one demand activation of ``row``."""

    def on_activate_batch(self, rows: BatchRows, counts=None) -> None:
        """Observe one interval's demand activations at once.

        Must be observably equivalent to ``on_activate`` per row in
        order (see the module docstring for the full contract). This
        default is that scalar loop; ``counts`` is the optional shared
        ``(unique_rows, counts)`` pre-aggregation in first-occurrence
        order, which this default does not need.
        """
        on_activate = self.on_activate
        for row in rows.tolist() if hasattr(rows, "tolist") else rows:
            on_activate(row)

    @abc.abstractmethod
    def on_refresh(self) -> list[MitigationRequest]:
        """REF boundary: return mitigations to perform, reset interval."""

    def on_mitigation_activate(self, row: int) -> None:
        """Observe the silent activation a victim refresh performs.

        Only called when :attr:`observes_mitigations` is True. Default
        implementation treats it like a demand activation.
        """
        self.on_activate(row)

    def pseudo_refresh(self) -> list[MitigationRequest]:
        """Hand over the current selection for DMQ queueing.

        Default: identical to a refresh boundary. Trackers whose refresh
        has side effects beyond selection may override.
        """
        return self.on_refresh()

    def reset(self) -> None:
        """Restore power-on state. Subclasses should override."""

    @property
    def entries(self) -> int:
        """Number of row-tracking entries (for Table III)."""
        return 1

    @property
    def storage_bits(self) -> int:
        """SRAM bits used per bank (for Section VIII-C / Table IX)."""
        return 0


class NullTracker(Tracker):
    """A tracker that never mitigates — the unprotected baseline."""

    name = "none"
    centric = "none"

    def on_activate(self, row: int) -> None:
        pass

    def on_activate_batch(self, rows: BatchRows, counts=None) -> None:
        pass

    def on_refresh(self) -> list[MitigationRequest]:
        return []

    @property
    def entries(self) -> int:
        return 0
