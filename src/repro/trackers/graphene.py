"""Graphene: MC-side Misra-Gries tracking (paper Section IX, Table IX).

Graphene maintains a Misra-Gries frequent-items table at the memory
controller and issues a (directed) mitigation whenever a row's counter
crosses the hammer threshold divided by a safety factor. Its SRAM cost
grows inversely with the threshold (Table IX: 56.5 KB per bank at
TRH-D = 3K, 565 KB at 300), which is the point of comparison against
MINT's 15 bytes.

The Misra-Gries "decrement everything" step on an untracked activation
of a full table is implemented with the standard lazy global-offset
trick: counters store *absolute* values, a shared offset is bumped
instead of touching every entry, and an entry is live while its stored
value exceeds the offset. A count-indexed bucket map makes the purge of
newly-dead entries O(1) amortized (each entry dies at most once per
insertion), so the overflow path costs O(1) instead of O(entries) per
untracked ACT. The observable table (``counters``) is identical to the
naive implementation's, which the regression suite pins.
"""

from __future__ import annotations

import math

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker, batch_items


class GrapheneTracker(Tracker):
    """Misra-Gries aggressor table with threshold-triggered mitigation."""

    name = "Graphene"
    centric = "past"
    observes_mitigations = False  # MC-side: cannot see in-DRAM refreshes.

    def __init__(
        self,
        trh: int,
        acts_per_refw: int = 73 * 8192,
        safety_factor: int = 4,
        counter_bits: int | None = None,
    ) -> None:
        if trh < safety_factor:
            raise ValueError("trh must be >= safety_factor")
        self.trh = trh
        self.safety_factor = safety_factor
        #: Counter value at which a mitigation is issued immediately.
        self.mitigation_threshold = max(1, trh // safety_factor)
        #: Misra-Gries table size: enough entries that no row can cross
        #: the threshold untracked within one tREFW.
        self.num_entries = max(1, acts_per_refw // self.mitigation_threshold)
        self.counter_bits = counter_bits or max(
            1, math.ceil(math.log2(self.mitigation_threshold + 1))
        )
        # row -> absolute (offset-shifted) count; every entry is live:
        # dead entries are purged the moment the offset reaches them.
        self._counters: dict[int, int] = {}
        #: The lazy decrement-all offset; effective = stored - offset.
        self._offset = 0
        # absolute count -> rows stored at it, for O(1) amortized purge.
        self._buckets: dict[int, set[int]] = {}
        self._pending: list[MitigationRequest] = []
        self.mitigations_issued = 0

    @property
    def counters(self) -> dict[int, int]:
        """The observable Misra-Gries table (effective counts).

        Built on demand from the offset representation; matches the
        naive decrement-every-entry implementation row for row.
        """
        offset = self._offset
        return {row: stored - offset for row, stored in self._counters.items()}

    # ------------------------------------------------------------------
    def _bucket_move(self, row: int, old: int, new: int) -> None:
        bucket = self._buckets[old]
        bucket.discard(row)
        if not bucket:
            del self._buckets[old]
        self._buckets.setdefault(new, set()).add(row)

    def _remove(self, row: int) -> None:
        stored = self._counters.pop(row)
        bucket = self._buckets[stored]
        bucket.discard(row)
        if not bucket:
            del self._buckets[stored]

    def _insert(self, row: int, stored: int) -> None:
        self._counters[row] = stored
        self._buckets.setdefault(stored, set()).add(row)

    def _trip(self, row: int) -> None:
        # Graphene mitigates as soon as the threshold trips, not at
        # REF; queue it for the next command slot.
        self._remove(row)
        self._pending.append(MitigationRequest(row))
        self.mitigations_issued += 1

    def on_activate(self, row: int) -> None:
        stored = self._counters.get(row)
        if stored is not None:
            self._bucket_move(row, stored, stored + 1)
            self._counters[row] = stored + 1
            if stored + 1 - self._offset >= self.mitigation_threshold:
                self._trip(row)
        elif len(self._counters) < self.num_entries:
            self._insert(row, self._offset + 1)
            if 1 >= self.mitigation_threshold:
                self._trip(row)
        else:
            # Misra-Gries decrement-all, O(1) amortized: bump the offset
            # and purge the entries that just hit zero.
            self._offset += 1
            dead = self._buckets.pop(self._offset, None)
            if dead:
                for dead_row in dead:
                    del self._counters[dead_row]

    def on_activate_batch(self, rows, counts=None) -> None:
        """Aggregated batch observation with an exact fast path.

        When the table can absorb the whole batch without overflow and
        without any counter reaching the mitigation threshold, the
        outcome is order-independent and each row's counter advances by
        its batch count in one move. Otherwise (overflow decrements or
        mid-batch threshold trips are order-sensitive) the batch replays
        through the scalar loop.
        """
        items = batch_items(rows, counts)
        counters = self._counters
        offset = self._offset
        threshold = self.mitigation_threshold
        new_rows = 0
        for row, count in items:
            stored = counters.get(row)
            if stored is None:
                new_rows += 1
                effective = count
            else:
                effective = stored - offset + count
            if effective >= threshold:
                break
        else:
            if len(counters) + new_rows <= self.num_entries:
                for row, count in items:
                    stored = counters.get(row)
                    if stored is None:
                        self._insert(row, offset + count)
                    else:
                        self._bucket_move(row, stored, stored + count)
                        counters[row] = stored + count
                return
        super().on_activate_batch(rows, counts)

    def on_refresh(self) -> list[MitigationRequest]:
        pending, self._pending = self._pending, []
        return pending

    def drain(self) -> list[MitigationRequest]:
        """Collect threshold-triggered mitigations between refreshes."""
        pending, self._pending = self._pending, []
        return pending

    def reset(self) -> None:
        self._counters.clear()
        self._buckets.clear()
        self._offset = 0
        self._pending.clear()
        self.mitigations_issued = 0

    @property
    def entries(self) -> int:
        return self.num_entries

    @property
    def storage_bits(self) -> int:
        return self.num_entries * (SAR_BITS + self.counter_bits)
