"""Graphene: MC-side Misra-Gries tracking (paper Section IX, Table IX).

Graphene maintains a Misra-Gries frequent-items table at the memory
controller and issues a (directed) mitigation whenever a row's counter
crosses the hammer threshold divided by a safety factor. Its SRAM cost
grows inversely with the threshold (Table IX: 56.5 KB per bank at
TRH-D = 3K, 565 KB at 300), which is the point of comparison against
MINT's 15 bytes.
"""

from __future__ import annotations

import math

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker


class GrapheneTracker(Tracker):
    """Misra-Gries aggressor table with threshold-triggered mitigation."""

    name = "Graphene"
    centric = "past"
    observes_mitigations = False  # MC-side: cannot see in-DRAM refreshes.

    def __init__(
        self,
        trh: int,
        acts_per_refw: int = 73 * 8192,
        safety_factor: int = 4,
        counter_bits: int | None = None,
    ) -> None:
        if trh < safety_factor:
            raise ValueError("trh must be >= safety_factor")
        self.trh = trh
        self.safety_factor = safety_factor
        #: Counter value at which a mitigation is issued immediately.
        self.mitigation_threshold = max(1, trh // safety_factor)
        #: Misra-Gries table size: enough entries that no row can cross
        #: the threshold untracked within one tREFW.
        self.num_entries = max(1, acts_per_refw // self.mitigation_threshold)
        self.counter_bits = counter_bits or max(
            1, math.ceil(math.log2(self.mitigation_threshold + 1))
        )
        self.counters: dict[int, int] = {}
        self._pending: list[MitigationRequest] = []
        self.mitigations_issued = 0

    def on_activate(self, row: int) -> None:
        if row in self.counters:
            self.counters[row] += 1
        elif len(self.counters) < self.num_entries:
            self.counters[row] = 1
        else:
            for key in list(self.counters):
                self.counters[key] -= 1
                if self.counters[key] <= 0:
                    del self.counters[key]
            return
        if self.counters[row] >= self.mitigation_threshold:
            # Graphene mitigates as soon as the threshold trips, not at
            # REF; queue it for the next command slot.
            del self.counters[row]
            self._pending.append(MitigationRequest(row))
            self.mitigations_issued += 1

    def on_refresh(self) -> list[MitigationRequest]:
        pending, self._pending = self._pending, []
        return pending

    def drain(self) -> list[MitigationRequest]:
        """Collect threshold-triggered mitigations between refreshes."""
        pending, self._pending = self._pending, []
        return pending

    def reset(self) -> None:
        self.counters.clear()
        self._pending.clear()
        self.mitigations_issued = 0

    @property
    def entries(self) -> int:
        return self.num_entries

    @property
    def storage_bits(self) -> int:
        return self.num_entries * (SAR_BITS + self.counter_bits)
