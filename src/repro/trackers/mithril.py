"""Mithril: counter-based summary tracking (paper Sections II-G, V-G).

Mithril keeps an m-entry Counter-based Summary (a Space-Saving sketch)
of heavily activated rows. On an activation of a tracked row its counter
increments; an untracked row replaces the minimum-count entry, adopting
``min + 1``. At each REF the row with the highest counter is mitigated
and — per the paper — "the counter value is reduced by the min count".

Victim-refresh activations increment counters too, giving transitive
immunity. The closed-form entries-vs-threshold bound lives in
:mod:`repro.analysis.mithril_bound`.
"""

from __future__ import annotations

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker, batch_items


class MithrilTracker(Tracker):
    """m-entry Space-Saving summary with proactive mitigation."""

    name = "Mithril"
    centric = "past"
    observes_mitigations = True

    def __init__(self, num_entries: int = 677, counter_bits: int = 12) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        self.counter_bits = counter_bits
        self.counters: dict[int, int] = {}

    def on_activate(self, row: int) -> None:
        if row in self.counters:
            self.counters[row] += 1
        elif len(self.counters) < self.num_entries:
            self.counters[row] = 1
        else:
            # Space-Saving replacement: evict a min-count entry and
            # charge the newcomer with min + 1 (overestimate, never
            # underestimate a tracked row).
            victim = min(self.counters, key=self.counters.__getitem__)
            min_count = self.counters[victim]
            del self.counters[victim]
            self.counters[row] = min_count + 1

    def on_activate_batch(self, rows, counts=None) -> None:
        """Pre-aggregated batch: counters advance by whole batch counts.

        Exact while no Space-Saving eviction can occur, i.e. the table
        has room for every row the batch introduces (additions commute
        and a new row's insert-at-1-then-increment ends at its batch
        count). Eviction picks a minimum — an order-sensitive choice —
        so batches that would overflow replay through the scalar loop.
        """
        items = batch_items(rows, counts)
        counters = self.counters
        new_rows = sum(1 for row, _ in items if row not in counters)
        if len(counters) + new_rows <= self.num_entries:
            for row, count in items:
                counters[row] = counters.get(row, 0) + count
            return
        super().on_activate_batch(rows, counts)

    def on_mitigation_activate(self, row: int) -> None:
        self.on_activate(row)

    def on_refresh(self) -> list[MitigationRequest]:
        if not self.counters:
            return []
        top = max(self.counters, key=self.counters.__getitem__)
        # The paper says the mitigated counter is "reduced by the min
        # count". In Mithril's steady state every entry rides the same
        # water level, so that lands the row at the bottom of the table.
        # We implement that fixed point directly — set the counter *to*
        # the minimum — because in sparse-table regimes (few attack
        # rows, hence min ~ 0) a literal subtraction leaves the hottest
        # row permanently maximal and starves its twin's victims, which
        # is an artefact, not a property of the design.
        min_count = min(self.counters.values())
        if min_count <= 0 or self.counters[top] == min_count:
            del self.counters[top]
        else:
            self.counters[top] = min_count
        return [MitigationRequest(top)]

    def reset(self) -> None:
        self.counters.clear()

    def count(self, row: int) -> int:
        return self.counters.get(row, 0)

    @property
    def entries(self) -> int:
        return self.num_entries

    @property
    def storage_bits(self) -> int:
        return self.num_entries * (SAR_BITS + self.counter_bits)
