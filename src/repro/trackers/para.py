"""InDRAM-PARA: PARA adapted to the in-DRAM setting (paper Section III).

Each activation is sampled with probability ``p`` into the single-entry
Sampled Address Register (SAR); at REF the SAR (if valid) is mitigated.

Two variants, matching the paper's Figures 2 and 4:

* **Overwrite** (default): a later sample evicts the current SAR, so
  early positions in the tREFI window have low survival probability
  (Equation 2, Fig 3).
* **No-overwrite**: sampling stops once SAR is valid, so late positions
  have low sampling probability (Equation 3, Fig 5).

Both exhibit a 2.7x dip in mitigation probability at the most vulnerable
position and a 37% chance of selecting nothing even when all 73 slots
are used (Equation 4), which is why the paper proposes MINT instead.
This design is also equivalent to single-entry PrIDE (Section IX).
"""

from __future__ import annotations

import random

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker


class InDramParaTracker(Tracker):
    """Present-centric single-entry probabilistic tracker.

    Parameters
    ----------
    sample_probability:
        p; the paper uses 1/73 (one over MaxACT).
    overwrite:
        True for the classic variant (Fig 2), False for the
        no-overwrite variant (Fig 4).
    """

    centric = "present"
    observes_mitigations = False

    def __init__(
        self,
        sample_probability: float = 1.0 / 73.0,
        overwrite: bool = True,
        rng: random.Random | None = None,
    ) -> None:
        if not 0.0 < sample_probability <= 1.0:
            raise ValueError("sample_probability must be in (0, 1]")
        self.p = sample_probability
        self.overwrite = overwrite
        # ad-hoc convenience default: every engine/Session path
        # repro-lint: allow[seed-policy] passes a derived rng
        self.rng = rng or random.Random()
        self.sar: int | None = None
        self.name = "InDRAM-PARA" if overwrite else "InDRAM-PARA(NoOW)"
        self.samples = 0
        self.overwrites = 0

    def on_activate(self, row: int) -> None:
        if not self.overwrite and self.sar is not None:
            return
        if self.rng.random() < self.p:
            if self.sar is not None:
                self.overwrites += 1
            self.sar = row
            self.samples += 1

    def on_activate_batch(self, rows, counts=None) -> None:
        """Batched sampling that preserves the scalar RNG stream.

        The overwrite variant draws exactly once per activation no
        matter what, so the batch draws the same ``len(rows)`` uniforms
        from the same ``random.Random`` the scalar loop would — bit-for-
        bit identical SAR outcomes — and only then reduces: the SAR ends
        on the *last* sampled position. (A single binomial draw per
        batch would be distributionally equivalent but would desync the
        RNG stream and break scalar/vectorized result identity, which
        the engine pins.) The no-overwrite variant stops consuming
        randomness once the SAR latches, so its draw count is
        data-dependent and the scalar loop is the only exact form.
        """
        if not self.overwrite:
            super().on_activate_batch(rows, counts)
            return
        n = len(rows)
        if n == 0:
            return
        random_ = self.rng.random
        p = self.p
        hits = [i for i in range(n) if random_() < p]
        if not hits:
            return
        if self.sar is not None:
            self.overwrites += len(hits)
        else:
            self.overwrites += len(hits) - 1
        self.samples += len(hits)
        self.sar = int(rows[hits[-1]])

    def on_refresh(self) -> list[MitigationRequest]:
        requests = []
        if self.sar is not None:
            requests.append(MitigationRequest(self.sar))
        self.sar = None
        return requests

    def reset(self) -> None:
        self.sar = None
        self.samples = 0
        self.overwrites = 0

    @property
    def entries(self) -> int:
        return 1

    @property
    def storage_bits(self) -> int:
        # SAR only; no CAN/SAN needed (sampling is per-activation).
        return SAR_BITS


class McParaPolicy:
    """Memory-controller-side PARA (Section VIII-E).

    Not a :class:`Tracker`: MC-PARA does not live in the DRAM. On every
    activation it decides, with probability p, to issue a blocking DRFM
    for that row. Used by the performance model for Fig 17.
    """

    name = "MC-PARA"

    def __init__(
        self, probability: float, rng: random.Random | None = None
    ) -> None:
        if not 0.0 < probability <= 1.0:
            raise ValueError("probability must be in (0, 1]")
        self.p = probability
        # ad-hoc convenience default: every engine/Session path
        # repro-lint: allow[seed-policy] passes a derived rng
        self.rng = rng or random.Random()
        self.drfms_issued = 0

    def should_mitigate(self, row: int) -> bool:
        """Decide whether this activation triggers a DRFM."""
        if self.rng.random() < self.p:
            self.drfms_issued += 1
            return True
        return False
