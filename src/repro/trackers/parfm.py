"""PARFM: buffer every activation, pick one at random at REF (§V-G).

A past-centric probabilistic design from the Mithril paper: all (up to
M) activations of the tREFI window are buffered; at REF one buffered
entry is selected uniformly at random and mitigated, and the buffer is
cleared. Needs M = 73 entries per bank and is vulnerable to transitive
attacks because only demand activations are buffered.
"""

from __future__ import annotations

import random

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker


class ParfmTracker(Tracker):
    """73-entry buffered uniform-random selector."""

    name = "PARFM"
    centric = "past"
    observes_mitigations = False

    def __init__(
        self, max_act: int = 73, rng: random.Random | None = None
    ) -> None:
        if max_act < 1:
            raise ValueError("max_act must be >= 1")
        self.max_act = max_act
        # ad-hoc convenience default: every engine/Session path
        # repro-lint: allow[seed-policy] passes a derived rng
        self.rng = rng or random.Random()
        self.buffer: list[int] = []
        self.dropped_activations = 0

    def on_activate(self, row: int) -> None:
        if len(self.buffer) < self.max_act:
            self.buffer.append(row)
        else:
            # Refresh postponement: activations beyond M are invisible.
            # This is precisely the vulnerability Table IV quantifies.
            self.dropped_activations += 1

    def on_activate_batch(self, rows, counts=None) -> None:
        # One slice-extend up to the buffer's remaining space; the
        # overflow tail is dropped exactly as the scalar loop would.
        n = len(rows)
        space = self.max_act - len(self.buffer)
        if space > 0:
            taken = rows[:space]
            self.buffer.extend(
                taken.tolist() if hasattr(taken, "tolist") else taken
            )
        self.dropped_activations += max(0, n - max(0, space))

    def on_refresh(self) -> list[MitigationRequest]:
        requests = []
        if self.buffer:
            requests.append(MitigationRequest(self.rng.choice(self.buffer)))
        self.buffer.clear()
        return requests

    def reset(self) -> None:
        self.buffer.clear()
        self.dropped_activations = 0

    @property
    def entries(self) -> int:
        return self.max_act

    @property
    def storage_bits(self) -> int:
        return self.max_act * SAR_BITS
