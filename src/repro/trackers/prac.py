"""PRAC: Per-Row Activation Counting (paper Section IX, related work).

JEDEC's JESD79-5C update adds PRAC: a counter embedded in each DRAM
row, read-modify-written on every activation, with an ALERT back-off
that forces mitigation when a counter crosses the threshold. It is the
principled-but-costly alternative MINT exists to avoid: ~9% area and
~10% slower tRC (46-48 ns -> 52 ns).

The tracker model is deterministic: a row crossing ``alert_threshold``
is mitigated at the next opportunity, so the tolerated TRH is bounded
by the threshold plus the mitigation latency — no probabilistic tail at
all. The costs are modelled separately: storage via
:meth:`storage_bits` (DRAM-array bits, not SRAM) and timing via
:func:`prac_timing`.
"""

from __future__ import annotations

import math

from ..constants import ROWS_PER_BANK
from ..dram.timing import DDR5Timing, DEFAULT_TIMING
from .base import MitigationRequest, Tracker, batch_items

#: tRC with PRAC's read-modify-write of the in-row counter (§IX).
PRAC_TRC_NS = 52.0

#: Area overhead of per-row counters reported by Hynix (§IX).
PRAC_AREA_OVERHEAD = 0.09


class PracTracker(Tracker):
    """Deterministic per-row activation counting with ALERT back-off."""

    name = "PRAC"
    centric = "past"
    observes_mitigations = True

    def __init__(
        self,
        alert_threshold: int = 512,
        counter_bits: int = 10,
        num_rows: int = ROWS_PER_BANK,
    ) -> None:
        if alert_threshold < 1:
            raise ValueError("alert_threshold must be >= 1")
        self.alert_threshold = alert_threshold
        self.counter_bits = counter_bits
        self.num_rows = num_rows
        self.counters: dict[int, int] = {}
        self._alerts: list[int] = []
        self.alerts_raised = 0

    def on_activate(self, row: int) -> None:
        count = self.counters.get(row, 0) + 1
        self.counters[row] = count
        if count >= self.alert_threshold:
            # ALERT: the device demands mitigation time from the
            # controller; the row is queued for back-off mitigation.
            self.counters[row] = 0
            self._alerts.append(row)
            self.alerts_raised += 1

    def on_activate_batch(self, rows, counts=None) -> None:
        """Bincount-style accumulation: each counter advances by its
        batch count in one add.

        Exact while no counter reaches the ALERT threshold within the
        batch — an alert resets the counter mid-stream and the alert
        *order* across rows follows the act order, so threshold-crossing
        batches replay through the scalar loop.
        """
        items = batch_items(rows, counts)
        counters = self.counters
        threshold = self.alert_threshold
        if any(counters.get(row, 0) + count >= threshold for row, count in items):
            super().on_activate_batch(rows, counts)
            return
        for row, count in items:
            counters[row] = counters.get(row, 0) + count

    def on_mitigation_activate(self, row: int) -> None:
        self.on_activate(row)

    def on_refresh(self) -> list[MitigationRequest]:
        pending, self._alerts = self._alerts, []
        return [MitigationRequest(row) for row in pending]

    def pseudo_refresh(self) -> list[MitigationRequest]:
        # PRAC's counters live in the rows; postponement cannot dislodge
        # them, so the pseudo boundary simply drains pending alerts.
        return self.on_refresh()

    def reset(self) -> None:
        self.counters.clear()
        self._alerts.clear()
        self.alerts_raised = 0

    def count(self, row: int) -> int:
        return self.counters.get(row, 0)

    @property
    def entries(self) -> int:
        return self.num_rows

    @property
    def storage_bits(self) -> int:
        """Counter bits live in the DRAM array, not SRAM — reported for
        completeness (the real cost is the ~9% array area)."""
        return self.num_rows * self.counter_bits

    def mintrh_d(self, max_act: int = 73) -> int:
        """Deterministic per-row double-sided bound.

        Each aggressor of a double-sided pair can land up to
        ``alert_threshold`` activations before its ALERT fires, plus up
        to one tREFI of activations while the alert is serviced; the
        sandwiched victim tolerates the pattern iff its per-row TRH-D is
        at least that sum.
        """
        return self.alert_threshold + max_act


def prac_timing(base: DDR5Timing = DEFAULT_TIMING) -> DDR5Timing:
    """The PRAC-revised timing: tRC stretched to 52 ns (Section IX)."""
    return DDR5Timing(
        t_refw_ms=base.t_refw_ms,
        t_refi_ns=base.t_refi_ns,
        t_rfc_ns=base.t_rfc_ns,
        t_rc_ns=PRAC_TRC_NS,
        t_rcd_ns=base.t_rcd_ns,
        t_cl_ns=base.t_cl_ns,
        t_rp_ns=base.t_rp_ns,
        t_rfm_sb_ns=base.t_rfm_sb_ns,
        t_drfm_sb_ns=base.t_drfm_sb_ns,
    )


def prac_throughput_cost(base: DDR5Timing = DEFAULT_TIMING) -> float:
    """Peak activation-throughput loss from the slower tRC (~8-10%)."""
    return 1.0 - base.t_rc_ns / PRAC_TRC_NS
