"""PRCT: the idealized Per-Row Counter-Table (paper Section II-H).

One counter per row in SRAM. At each REF the row with the highest count
is mitigated and its counter cleared. Impractical (128K counters per
bank) but it bounds what *any* tracker can achieve at a given mitigation
rate; the paper measures MINT's gap against it (2.25x, 1.9x under
postponement).

Counters are also incremented by the activations victim refreshes
perform, which makes PRCT immune to transitive attacks (Section V-G).
"""

from __future__ import annotations

from ..constants import ROWS_PER_BANK
from .base import MitigationRequest, Tracker, batch_items


class PrctTracker(Tracker):
    """Idealized one-counter-per-row tracker."""

    name = "PRCT"
    centric = "past"
    observes_mitigations = True

    def __init__(
        self,
        num_rows: int = ROWS_PER_BANK,
        counter_bits: int = 12,
        mitigation_threshold: int = 1,
    ) -> None:
        if num_rows < 1:
            raise ValueError("num_rows must be >= 1")
        self.num_rows = num_rows
        self.counter_bits = counter_bits
        # The paper's PRCT mitigates whenever any counter is non-zero
        # (footnote 1); a practical design would use a higher threshold.
        self.mitigation_threshold = mitigation_threshold
        self.counters: dict[int, int] = {}

    def on_activate(self, row: int) -> None:
        self.counters[row] = self.counters.get(row, 0) + 1

    def on_activate_batch(self, rows, counts=None) -> None:
        # Pure counting commutes: always exact on the aggregation (new
        # rows appear in first-occurrence order, matching the scalar
        # insertion order that on_refresh's max tie-break observes).
        counters = self.counters
        for row, count in batch_items(rows, counts):
            counters[row] = counters.get(row, 0) + count

    def on_mitigation_activate(self, row: int) -> None:
        # Victim-refresh activations count too: transitive immunity.
        self.on_activate(row)

    def on_refresh(self) -> list[MitigationRequest]:
        if not self.counters:
            return []
        top = max(self.counters, key=self.counters.__getitem__)
        if self.counters[top] < self.mitigation_threshold:
            return []
        del self.counters[top]
        return [MitigationRequest(top)]

    def reset(self) -> None:
        self.counters.clear()

    def count(self, row: int) -> int:
        """Current activation count of ``row``."""
        return self.counters.get(row, 0)

    @property
    def entries(self) -> int:
        return self.num_rows

    @property
    def storage_bits(self) -> int:
        return self.num_rows * self.counter_bits
