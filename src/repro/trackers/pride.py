"""PrIDE: sampled FIFO tracking (paper Section IX, related work).

PrIDE samples each activation with probability p into a small FIFO; at
each REF the oldest FIFO entry (if any) is mitigated. The 4-entry FIFO
reduces the loss probability of single-entry sampling (an overwritten
sample) from ~63% to ~10%, but a sampled row still waits in the FIFO —
"tardiness" — letting the attacker land extra activations before the
mitigation executes.

In the paper's terminology, single-entry PrIDE *is* InDRAM-PARA. MINT
dominates PrIDE: zero loss probability and zero tardiness for the
worst-case pattern (MinTRH-D 1400 vs 1750).
"""

from __future__ import annotations

import random
from collections import deque

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker


class PrideTracker(Tracker):
    """Sampled-FIFO probabilistic tracker."""

    name = "PrIDE"
    centric = "present"
    observes_mitigations = False

    def __init__(
        self,
        fifo_depth: int = 4,
        sample_probability: float = 1.0 / 73.0,
        rng: random.Random | None = None,
    ) -> None:
        if fifo_depth < 1:
            raise ValueError("fifo_depth must be >= 1")
        if not 0.0 < sample_probability <= 1.0:
            raise ValueError("sample_probability must be in (0, 1]")
        self.fifo_depth = fifo_depth
        self.p = sample_probability
        # ad-hoc convenience default: every engine/Session path
        # repro-lint: allow[seed-policy] passes a derived rng
        self.rng = rng or random.Random()
        self.fifo: deque[int] = deque()
        self.samples = 0
        self.losses = 0

    def on_activate(self, row: int) -> None:
        if self.rng.random() < self.p:
            self.samples += 1
            if len(self.fifo) >= self.fifo_depth:
                # FIFO full: the oldest sample is lost without mitigation.
                self.fifo.popleft()
                self.losses += 1
            self.fifo.append(row)

    def on_activate_batch(self, rows, counts=None) -> None:
        # Sampling draws once per activation unconditionally, so the
        # batch consumes the same RNG stream as the scalar loop (the
        # stream-equality contract of on_activate_batch), then replays
        # only the sampled positions through the FIFO.
        n = len(rows)
        if n == 0:
            return
        random_ = self.rng.random
        p = self.p
        hits = [i for i in range(n) if random_() < p]
        if not hits:
            return
        self.samples += len(hits)
        fifo = self.fifo
        for i in hits:
            if len(fifo) >= self.fifo_depth:
                fifo.popleft()
                self.losses += 1
            fifo.append(int(rows[i]))

    def on_refresh(self) -> list[MitigationRequest]:
        if not self.fifo:
            return []
        return [MitigationRequest(self.fifo.popleft())]

    def reset(self) -> None:
        self.fifo.clear()
        self.samples = 0
        self.losses = 0

    @property
    def loss_probability(self) -> float:
        """Observed fraction of samples lost to FIFO overflow."""
        if self.samples == 0:
            return 0.0
        return self.losses / self.samples

    @property
    def entries(self) -> int:
        return self.fifo_depth

    @property
    def storage_bits(self) -> int:
        return self.fifo_depth * SAR_BITS
