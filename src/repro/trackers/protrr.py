"""ProTRR: Misra-Gries *victim* tracking (paper Section II-G).

ProTRR tracks the top victim rows with a Misra-Gries frequent-items
sketch: each activation of row r credits its neighbours r-1 and r+1.
At REF the victim with the highest counter is refreshed and removed.

Because ProTRR tracks victims directly (rather than aggressors), a
victim refresh is recorded as a reset of that victim's counter; the
silent activations the refresh performs credit *their* neighbours,
preserving transitive immunity.
"""

from __future__ import annotations

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker, batch_items


class ProTrrTracker(Tracker):
    """m-entry Misra-Gries victim tracker with proactive refresh."""

    name = "ProTRR"
    centric = "past"
    observes_mitigations = True

    def __init__(
        self,
        num_entries: int = 677,
        counter_bits: int = 12,
        blast_radius: int = 1,
        num_rows: int | None = None,
    ) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        self.counter_bits = counter_bits
        self.blast_radius = blast_radius
        self.num_rows = num_rows
        self.counters: dict[int, int] = {}

    def _credit(self, victim: int) -> None:
        if self.num_rows is not None and not 0 <= victim < self.num_rows:
            return
        if victim in self.counters:
            self.counters[victim] += 1
        elif len(self.counters) < self.num_entries:
            self.counters[victim] = 1
        else:
            # Misra-Gries: decrement everything; drop zeros.
            for key in list(self.counters):
                self.counters[key] -= 1
                if self.counters[key] <= 0:
                    del self.counters[key]

    def on_activate(self, row: int) -> None:
        for distance in range(1, self.blast_radius + 1):
            self._credit(row - distance)
            self._credit(row + distance)

    def on_activate_batch(self, rows, counts=None) -> None:
        """Accumulate victim credits from the batch aggregation.

        Each aggressor's count fans out to its in-bounds neighbours
        (victim order mirrors the scalar loop's first-credit order).
        Exact while the table can hold every new victim; the
        decrement-all eviction is order-sensitive, so overflowing
        batches replay through the scalar loop.
        """
        credits: dict[int, int] = {}
        num_rows = self.num_rows
        for row, count in batch_items(rows, counts):
            for distance in range(1, self.blast_radius + 1):
                for victim in (row - distance, row + distance):
                    if num_rows is not None and not 0 <= victim < num_rows:
                        continue
                    credits[victim] = credits.get(victim, 0) + count
        counters = self.counters
        new_rows = sum(1 for victim in credits if victim not in counters)
        if len(counters) + new_rows <= self.num_entries:
            for victim, credit in credits.items():
                counters[victim] = counters.get(victim, 0) + credit
            return
        super().on_activate_batch(rows, counts)

    def on_mitigation_activate(self, row: int) -> None:
        self.on_activate(row)

    def on_refresh(self) -> list[MitigationRequest]:
        if not self.counters:
            return []
        victim = max(self.counters, key=self.counters.__getitem__)
        del self.counters[victim]
        # ProTRR refreshes the victim row itself. Our mitigation
        # interface is aggressor-based, so we express "refresh row v"
        # as a distance-1 mitigation centred on v's neighbour — instead
        # we return the victim directly with distance 0 semantics via
        # the VictimRefresh request type below.
        return [VictimRefreshRequest(victim)]

    def reset(self) -> None:
        self.counters.clear()

    @property
    def entries(self) -> int:
        return self.num_entries

    @property
    def storage_bits(self) -> int:
        return self.num_entries * (SAR_BITS + self.counter_bits)


class VictimRefreshRequest(MitigationRequest):
    """A request to refresh ``row`` itself (victim-centric mitigation).

    ProTRR names victims, not aggressors. The simulation engine checks
    for this subtype and refreshes the named row directly (the refresh
    still performs a silent activation disturbing the row's neighbours).
    """

    def __init__(self, row: int) -> None:
        # Distance is irrelevant for a direct victim refresh; keep 1 to
        # satisfy the base-class invariant.
        object.__setattr__(self, "row", row)
        object.__setattr__(self, "distance", 1)
