"""Factory registry: build any tracker from a name plus parameters.

Used by the benchmark harness and examples so that experiments can be
described as data ("run pattern-2 against MINT, Mithril, PARFM ...").
"""

from __future__ import annotations

import random
from typing import Callable

from .base import NullTracker, Tracker
from .graphene import GrapheneTracker
from .mithril import MithrilTracker
from .para import InDramParaTracker
from .parfm import ParfmTracker
from .prac import PracTracker
from .prct import PrctTracker
from .pride import PrideTracker
from .protrr import ProTrrTracker
from .trr import TrrTracker

_FACTORIES: dict[str, Callable[..., Tracker]] = {}


def register(name: str, factory: Callable[..., Tracker]) -> None:
    """Register a tracker factory under ``name`` (case-insensitive)."""
    _FACTORIES[name.lower()] = factory


def make_tracker(
    name: str,
    rng: random.Random | None = None,
    dmq: bool = False,
    max_act: int = 73,
    seed: int | None = None,
    dmq_depth: int = 4,
    **kwargs,
) -> Tracker:
    """Build a tracker by name.

    ``dmq=True`` wraps the tracker in a ``dmq_depth``-entry Delayed
    Mitigation Queue sized for ``max_act``. ``seed`` is a convenience
    for fan-out workers that ship plain integers instead of RNG
    objects: when ``rng`` is not given, the tracker gets
    ``random.Random(seed)``.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown tracker {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    if rng is None and seed is not None:
        rng = random.Random(seed)
    tracker = factory(rng=rng, max_act=max_act, **kwargs)
    if dmq:
        # Imported lazily: repro.core depends on repro.trackers.base, so
        # a module-level import here would be circular.
        from ..core.dmq import DelayedMitigationQueue

        tracker = DelayedMitigationQueue(
            tracker, max_act=max_act, depth=dmq_depth
        )
    return tracker


def available_trackers() -> list[str]:
    """Names accepted by :func:`make_tracker`."""
    return sorted(_FACTORIES)


def bank_tracker_factory(
    name: str,
    base_seed: int | None = None,
    dmq: bool = False,
    max_act: int = 73,
    dmq_depth: int = 4,
    **kwargs,
) -> Callable[[int], Tracker]:
    """A per-bank tracker factory for :class:`~repro.sim.engine.RankSimulator`.

    Returns a callable mapping a bank index to a *fresh* tracker
    instance. Each bank's randomness derives from ``stable_seed(base_seed,
    "bank-tracker", bank)``, so rank runs are reproducible and the
    per-bank streams are independent — sharing one RNG (or one tracker)
    across banks would couple their sampling decisions.
    """

    def factory(bank: int) -> Tracker:
        rng = None
        if base_seed is not None:
            # Imported lazily: repro.sim imports repro.trackers.base at
            # package init, so a module-level import here would be
            # circular.
            from ..sim.seeding import stable_seed

            rng = random.Random(stable_seed(base_seed, "bank-tracker", bank))
        return make_tracker(
            name, rng=rng, dmq=dmq, max_act=max_act, dmq_depth=dmq_depth,
            **kwargs,
        )

    return factory


def channel_tracker_factory(
    name: str,
    base_seed: int | None = None,
    dmq: bool = False,
    max_act: int = 73,
    dmq_depth: int = 4,
    **kwargs,
) -> Callable[[int, int], Tracker]:
    """A per-(rank, bank) tracker factory for
    :class:`~repro.sim.engine.ChannelSimulator`.

    Returns a callable mapping ``(rank, bank)`` to a fresh tracker.
    Rank ``r``'s bank streams derive exactly as
    :func:`bank_tracker_factory` would with base seed
    ``stable_seed(base_seed, "channel-rank", r)`` — so a channel run is
    bit-for-bit N independent rank runs under those derived seeds (the
    channel-equivalence property the tests pin).
    """

    def rank_seed(rank: int) -> int | None:
        if base_seed is None:
            return None
        from ..sim.seeding import stable_seed

        return stable_seed(base_seed, "channel-rank", rank)

    def factory(rank: int, bank: int) -> Tracker:
        return bank_tracker_factory(
            name, base_seed=rank_seed(rank), dmq=dmq, max_act=max_act,
            dmq_depth=dmq_depth, **kwargs,
        )(bank)

    factory.rank_seed = rank_seed  # type: ignore[attr-defined]
    return factory


# ---------------------------------------------------------------------
# Built-in factories. Each accepts (rng, max_act, **extra) even when it
# ignores one of them, so make_tracker can treat them uniformly.
# ---------------------------------------------------------------------

def _mint(rng=None, max_act=73, transitive=True):
    from ..core.mint import MintTracker

    return MintTracker(max_act=max_act, transitive=transitive, rng=rng)


def _para(rng=None, max_act=73, overwrite=True):
    return InDramParaTracker(
        sample_probability=1.0 / max_act, overwrite=overwrite, rng=rng
    )


def _parfm(rng=None, max_act=73):
    return ParfmTracker(max_act=max_act, rng=rng)


def _prct(rng=None, max_act=73, num_rows=128 * 1024):
    return PrctTracker(num_rows=num_rows)


def _mithril(rng=None, max_act=73, num_entries=677):
    return MithrilTracker(num_entries=num_entries)


def _protrr(rng=None, max_act=73, num_entries=677):
    return ProTrrTracker(num_entries=num_entries)


def _trr(rng=None, max_act=73, num_entries=4):
    return TrrTracker(num_entries=num_entries)


def _pride(rng=None, max_act=73, fifo_depth=4):
    return PrideTracker(
        fifo_depth=fifo_depth, sample_probability=1.0 / max_act, rng=rng
    )


def _graphene(rng=None, max_act=73, trh=3000):
    return GrapheneTracker(trh=trh, acts_per_refw=max_act * 8192)


def _prac(rng=None, max_act=73, alert_threshold=512):
    return PracTracker(alert_threshold=alert_threshold)


def _null(rng=None, max_act=73):
    return NullTracker()


register("mint", _mint)
register("indram-para", _para)
register("para", _para)
register("parfm", _parfm)
register("prct", _prct)
register("mithril", _mithril)
register("protrr", _protrr)
register("trr", _trr)
register("pride", _pride)
register("graphene", _graphene)
register("prac", _prac)
register("none", _null)
