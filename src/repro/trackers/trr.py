"""DDR4-style TRR: the deployed-but-broken low-cost tracker (§II-F).

Vendor TRR implementations track 1-30 entries with simple frequency
heuristics and mitigate the hottest entry during (some) REF commands.
TRRespass and Blacksmith defeat them by hammering more aggressor rows
than the tracker has entries, or by inserting decoys that thrash the
table.

This model captures the *mechanism* that makes TRR breakable: a small
Misra-Gries-style table whose entries are evicted by decoy traffic, so
a many-sided pattern keeps true aggressors out of the table. It is the
foil for the "secure" trackers in the comparison experiments.
"""

from __future__ import annotations

from ..constants import SAR_BITS
from .base import MitigationRequest, Tracker, batch_items


class TrrTracker(Tracker):
    """A small, thrashable in-DRAM tracker modelled on DDR4 TRR."""

    name = "TRR"
    centric = "past"
    observes_mitigations = False

    def __init__(self, num_entries: int = 4, counter_bits: int = 10) -> None:
        if num_entries < 1:
            raise ValueError("num_entries must be >= 1")
        self.num_entries = num_entries
        self.counter_bits = counter_bits
        self.counters: dict[int, int] = {}

    def on_activate(self, row: int) -> None:
        if row in self.counters:
            self.counters[row] += 1
        elif len(self.counters) < self.num_entries:
            self.counters[row] = 1
        else:
            # The thrash-friendly eviction real TRRs exhibit: decrement
            # all entries; a stream of distinct decoys drains the table
            # before any true aggressor accumulates weight.
            for key in list(self.counters):
                self.counters[key] -= 1
                if self.counters[key] <= 0:
                    del self.counters[key]

    def on_activate_batch(self, rows, counts=None) -> None:
        # Exact while the table never thrashes mid-batch (room for every
        # new row); eviction cascades are order-sensitive, so
        # overflowing batches replay through the scalar loop.
        items = batch_items(rows, counts)
        counters = self.counters
        new_rows = sum(1 for row, _ in items if row not in counters)
        if len(counters) + new_rows <= self.num_entries:
            for row, count in items:
                counters[row] = counters.get(row, 0) + count
            return
        super().on_activate_batch(rows, counts)

    def on_refresh(self) -> list[MitigationRequest]:
        if not self.counters:
            return []
        top = max(self.counters, key=self.counters.__getitem__)
        # TRR mitigates only rows that look "hot enough"; a single
        # observation is ignored, which many-sided patterns exploit.
        if self.counters[top] < 2:
            return []
        del self.counters[top]
        return [MitigationRequest(top)]

    def reset(self) -> None:
        self.counters.clear()

    @property
    def entries(self) -> int:
        return self.num_entries

    @property
    def storage_bits(self) -> int:
        return self.num_entries * (SAR_BITS + self.counter_bits)
