"""Tests for the adaptive-attack Markov model (paper Appendix B)."""

import numpy as np
import pytest

from repro.analysis.adaptive import (
    AdaConfig,
    ada_curve,
    ada_failure_probability,
    ada_mintrh,
    count_distribution,
    worst_case_ada_mintrh,
)


class TestMarkovChain:
    def test_distribution_sums_to_one(self):
        dist = count_distribution(mp=100, p=1 / 74)
        assert dist.sum() == pytest.approx(1.0)

    def test_geometric_shape(self):
        """P(A = a) = p q^a for a < MP (paper Fig 20)."""
        p = 0.1
        dist = count_distribution(mp=20, p=p)
        for a in range(20):
            assert dist[a] == pytest.approx(p * (1 - p) ** a)
        assert dist[20] == pytest.approx(0.9 ** 20)

    def test_tail_telescopes(self):
        """P(A >= a0) = q^a0 — the identity the model exploits."""
        p = 1 / 74
        dist = count_distribution(mp=500, p=p)
        for a0 in (0, 100, 400):
            assert dist[a0:].sum() == pytest.approx((1 - p) ** a0, rel=1e-9)

    def test_never_negative(self):
        dist = count_distribution(mp=1000, p=1 / 74)
        assert np.all(dist >= 0)


class TestAdaConfig:
    def test_extra_acts_is_365(self):
        """5 batched windows x 73 ACTs = 365 (Appendix B)."""
        assert AdaConfig().extra_acts == 365

    def test_selection_probability(self):
        assert AdaConfig(transitive=True).selection_p == pytest.approx(1 / 74)
        assert AdaConfig(transitive=False).selection_p == pytest.approx(1 / 73)


class TestFailureModel:
    def test_monotone_decreasing_in_trh(self):
        cfg = AdaConfig()
        values = [
            ada_failure_probability(t, 2000, cfg) for t in (1000, 2000, 3000)
        ]
        assert values[0] >= values[1] >= values[2]

    def test_guaranteed_failure_when_extra_covers_trh(self):
        cfg = AdaConfig()
        assert ada_failure_probability(300, 1000, cfg) == 1.0

    def test_mp_too_small_no_ada_contribution(self):
        cfg = AdaConfig()
        # TRH far above what MP intervals + 365 can reach.
        assert ada_failure_probability(5000, 100, cfg) == 0.0


class TestPaperNumbers:
    def test_double_sided_peak_near_1482(self):
        """Appendix B: MinTRH-D of MINT+DMQ under ADA = 1482."""
        mp, value = worst_case_ada_mintrh(double_sided=True)
        assert value == pytest.approx(1482, rel=0.02)

    def test_double_sided_peak_mp_in_paper_range(self):
        """Paper: peak between MP 1299 and 1456."""
        mp, _value = worst_case_ada_mintrh(double_sided=True)
        assert 1200 <= mp <= 1600

    def test_single_sided_peak_near_2899(self):
        _mp, value = worst_case_ada_mintrh(double_sided=False)
        assert value == pytest.approx(2899, rel=0.03)

    def test_floor_is_pattern2_plus_dmq(self):
        """Below the effective MP the curve sits at the no-ADA value."""
        floor = ada_mintrh(200, double_sided=True)
        assert floor == pytest.approx(1404, rel=0.02)


class TestFig21Shape:
    def test_curve_rises_then_declines(self):
        curve = dict(
            ada_curve([400, 1400, 4000, 8000], double_sided=True)
        )
        assert curve[1400] > curve[400]      # ADA kicks in
        assert curve[1400] >= curve[4000] >= curve[8000]  # repeats decline

    def test_double_sided_effective_earlier_than_single(self):
        """Paper: D-ADA effective after MP ~1200, S-ADA after ~2400."""
        d_floor = ada_mintrh(200, double_sided=True)
        d_at_1400 = ada_mintrh(1400, double_sided=True)
        s_at_1400 = ada_mintrh(1400, double_sided=False)
        s_floor = ada_mintrh(200, double_sided=False)
        assert d_at_1400 > d_floor          # already effective
        assert s_at_1400 == pytest.approx(s_floor, rel=0.01)  # not yet

    def test_validation(self):
        with pytest.raises(ValueError):
            ada_mintrh(0)
        with pytest.raises(ValueError):
            ada_failure_probability(0, 100, AdaConfig())
