"""Tests for the Feinting analysis (PRCT) and the Mithril bound (§V-G)."""

import pytest

from repro.analysis.feinting import (
    feinting_attack_prct,
    feinting_level_closed_form,
    prct_mintrh_d,
)
from repro.analysis.mithril_bound import (
    mithril_entries_for,
    mithril_mintrh_d,
    mithril_mintrh_d_postponed,
)


class TestFeinting:
    def test_prct_mintrh_d_near_623(self):
        """Section V-G: the Feinting attack bounds PRCT at ~623 D."""
        result = feinting_attack_prct()
        assert result.mintrh_d == pytest.approx(623, rel=0.02)

    def test_victim_sees_double(self):
        result = feinting_attack_prct()
        assert result.mintrh == 2 * result.mintrh_d

    def test_closed_form_matches_simulation(self):
        """Water level ~ M * (H_8192 - 1)."""
        simulated = feinting_attack_prct().per_row_activations
        analytic = feinting_level_closed_form()
        assert simulated == pytest.approx(analytic, rel=0.02)

    def test_completes_within_refresh_window(self):
        result = feinting_attack_prct()
        assert result.rounds_used <= 8192

    def test_more_mitigations_hurt_attacker(self):
        slow = feinting_attack_prct(mitigations_per_round=1)
        fast = feinting_attack_prct(mitigations_per_round=2)
        assert fast.mintrh_d < slow.mintrh_d

    def test_postponement_adds_146(self):
        """Section VI-A: PRCT 623 -> 769 under postponement."""
        base = prct_mintrh_d()
        postponed = prct_mintrh_d(postponed_refreshes=4)
        assert postponed - base == 146
        assert postponed == pytest.approx(769, rel=0.02)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            feinting_attack_prct(initial_rows=1)
        with pytest.raises(ValueError):
            feinting_attack_prct(mitigations_per_round=0)


class TestMithrilBound:
    def test_677_entries_give_1400(self):
        """The paper's calibration point (Table III)."""
        assert mithril_mintrh_d(677) == pytest.approx(1400, rel=0.01)

    def test_inverse_near_677(self):
        entries = mithril_entries_for(1400)
        assert entries == pytest.approx(677, abs=5)

    def test_bound_decreases_then_increases(self):
        """M*H_m + W/m has a minimum in m: more entries help until the
        feinting term dominates."""
        assert mithril_mintrh_d(100) > mithril_mintrh_d(1000)
        assert mithril_mintrh_d(100_000) > mithril_mintrh_d(8192)

    def test_postponement_adds_146(self):
        """Table IV: Mithril 1400 -> 1546."""
        base = mithril_mintrh_d(677)
        assert mithril_mintrh_d_postponed(677) - base == pytest.approx(146)

    def test_lower_threshold_needs_more_entries(self):
        assert mithril_entries_for(1000) > mithril_entries_for(1400)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            mithril_entries_for(10)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            mithril_entries_for(0)
