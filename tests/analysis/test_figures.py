"""Tests for the ASCII figure renderer."""

import pytest

from repro.analysis.figures import ascii_multi_plot, ascii_plot


class TestAsciiPlot:
    def test_contains_extremes(self):
        chart = ascii_plot([1, 2, 3, 4, 5], width=10, height=5)
        assert "5" in chart and "1" in chart
        assert "*" in chart

    def test_label_line(self):
        chart = ascii_plot([1, 2], label="Fig X", width=8, height=4)
        assert chart.splitlines()[0] == "Fig X"

    def test_monotone_series_renders_diagonal(self):
        chart = ascii_plot(list(range(10)), width=10, height=10)
        lines = [l.split("|")[1] for l in chart.splitlines() if "|" in l]
        first_stars = [line.index("*") for line in lines if "*" in line]
        # Higher rows (earlier lines) hold later x positions.
        assert first_stars == sorted(first_stars, reverse=True)

    def test_flat_series_single_row(self):
        chart = ascii_plot([3, 3, 3], width=12, height=6)
        star_rows = [
            i for i, line in enumerate(chart.splitlines()) if "*" in line
        ]
        assert len(star_rows) == 1

    def test_x_axis_annotation(self):
        chart = ascii_plot([1, 2], xs=[65, 80], width=30, height=4)
        assert "65" in chart and "80" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_plot([])
        with pytest.raises(ValueError):
            ascii_plot([1], height=1)


class TestMultiPlot:
    def test_legend_and_glyphs(self):
        chart = ascii_multi_plot({"a": [1, 2, 3], "b": [3, 2, 1]}, width=12)
        assert "*=a" in chart and "o=b" in chart
        assert "*" in chart and "o" in chart

    def test_shared_scale(self):
        chart = ascii_multi_plot({"low": [0, 1], "high": [9, 10]}, width=12)
        assert "10" in chart and any(
            line.startswith(" " * 9 + "0") for line in chart.splitlines()
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ascii_multi_plot({})
