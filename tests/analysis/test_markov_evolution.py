"""Cross-validation of the Fig 20 Markov chain implementations."""

import numpy as np
import pytest

from repro.analysis.adaptive import count_distribution, evolve_markov_chain


class TestChainEquivalence:
    @pytest.mark.parametrize("mp,p", [(10, 0.1), (50, 1 / 74), (200, 1 / 33)])
    def test_explicit_evolution_matches_closed_form(self, mp, p):
        """Stepping the Fig 20 chain state-by-state reproduces the
        geometric closed form used by the ADA analysis."""
        explicit = evolve_markov_chain(mp, p)
        closed = count_distribution(mp, p)
        np.testing.assert_allclose(explicit, closed, atol=1e-12)

    def test_mass_conserved(self):
        dist = evolve_markov_chain(100, 1 / 74)
        assert dist.sum() == pytest.approx(1.0)

    def test_single_step(self):
        dist = evolve_markov_chain(1, 0.25)
        # One step from A=0: reset (p) stays 0, escape (q) reaches 1.
        assert dist[0] == pytest.approx(0.25)
        assert dist[1] == pytest.approx(0.75)
