"""Tests for the MaxACT sweep (Fig 18) and postponement analysis (§VI)."""

import pytest

from repro.analysis.maxact import (
    maxact_sweep,
    mint_mintrh_d_for_maxact,
    para_mintrh_d_for_maxact,
)
from repro.analysis.postponement import (
    counter_tracker_postponement_delta,
    deterministic_unmitigated_acts,
    para_postponed_mintrh_d,
)


class TestFig18:
    def test_thresholds_grow_with_maxact(self):
        """More slots per interval => lower mitigation probability."""
        mint = [mint_mintrh_d_for_maxact(m) for m in (65, 73, 80)]
        para = [para_mintrh_d_for_maxact(m) for m in (65, 73, 80)]
        assert mint == sorted(mint)
        assert para == sorted(para)

    def test_gap_roughly_constant(self):
        """Appendix A: the MINT advantage holds across the DDR5 range.

        The paper quotes the 2.7x *probability* gap; the exact threshold
        ratio computed from the full model is ~2.4x and stays flat.
        """
        points = maxact_sweep([65, 70, 73, 77, 80])
        ratios = [point.ratio for point in points]
        assert max(ratios) - min(ratios) < 0.3
        for ratio in ratios:
            assert 2.2 <= ratio <= 2.8

    def test_default_point_matches_table3(self):
        from repro.analysis.comparison import mint_comparison

        assert mint_mintrh_d_for_maxact(73) == mint_comparison().mintrh_d


class TestPostponementPrimitives:
    def test_blowup_formula(self):
        """478K = 4/5 of the tREFW activation budget (Section VI-B)."""
        assert deterministic_unmitigated_acts() == 73 * 8192 * 4 // 5

    def test_blowup_scales_with_ceiling(self):
        assert deterministic_unmitigated_acts(postponed=2) < (
            deterministic_unmitigated_acts(postponed=4)
        )

    def test_counter_delta_is_146(self):
        assert counter_tracker_postponement_delta() == 146

    def test_para_postponed_much_worse_than_base(self):
        """The sampled entry cannot survive a 365-activation window."""
        from repro.analysis.comparison import indram_para_comparison

        base = indram_para_comparison().mintrh_d
        postponed = para_postponed_mintrh_d()
        assert postponed > 3 * base
