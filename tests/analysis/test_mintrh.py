"""Tests for the MinTRH search machinery (paper Section IV-C)."""

import pytest

from repro.analysis.mintrh import (
    PatternSpec,
    mintrh,
    mintrh_double_sided,
    refw_failure_probability,
)
from repro.analysis.saroiu_wolman import target_refw_probability


def basic_spec(**overrides):
    defaults = dict(p=1 / 73, trials_per_refw=8192, acts_per_trial=1.0,
                    rows=1.0, refi_per_trial=1.0)
    defaults.update(overrides)
    return PatternSpec(**defaults)


class TestFailureProbability:
    def test_monotone_decreasing_in_trh(self):
        spec = basic_spec()
        values = [refw_failure_probability(spec, t) for t in (500, 1000, 2000)]
        assert values[0] > values[1] > values[2]

    def test_rows_union_bound(self):
        one = refw_failure_probability(basic_spec(rows=1), 1500)
        many = refw_failure_probability(basic_spec(rows=50), 1500)
        assert many == pytest.approx(50 * one, rel=1e-9)

    def test_impossible_pattern_is_safe(self):
        # Needing more trials than fit in a window: cannot fail.
        spec = basic_spec(trials_per_refw=100)
        assert refw_failure_probability(spec, 200) == 0.0

    def test_guaranteed_mitigation_is_safe(self):
        spec = basic_spec(p=1.0)
        assert refw_failure_probability(spec, 10) == 0.0

    def test_acts_per_trial_scaling(self):
        # 4 acts per trial: threshold 400 needs only 100 escaping trials.
        grouped = basic_spec(acts_per_trial=4.0)
        single = basic_spec()
        assert refw_failure_probability(grouped, 400) > refw_failure_probability(
            single, 400
        )

    def test_exact_and_approx_agree(self):
        spec = basic_spec(rows=73.0)
        for trh in (1500, 2500):
            a = refw_failure_probability(spec, trh, exact=False)
            b = refw_failure_probability(spec, trh, exact=True)
            assert a == pytest.approx(b, rel=1e-6)


class TestMintrhSearch:
    def test_boundary_is_tight(self):
        """MinTRH is the *smallest* safe threshold: T-1 must fail."""
        spec = basic_spec(rows=73.0)
        result = mintrh(spec)
        target = target_refw_probability(10_000.0)
        assert refw_failure_probability(spec, result) <= target
        assert refw_failure_probability(spec, result - 1) > target

    def test_monotone_in_target_ttf(self):
        spec = basic_spec(rows=73.0)
        loose = mintrh(spec, target_ttf_years=1e3)
        strict = mintrh(spec, target_ttf_years=1e6)
        assert strict > loose

    def test_monotone_in_mitigation_probability(self):
        weak = mintrh(basic_spec(p=1 / 146))
        strong = mintrh(basic_spec(p=1 / 36))
        assert weak > strong

    def test_double_sided_halves(self):
        assert mintrh_double_sided(2800) == 1400
        assert mintrh_double_sided(2801) == 1400


class TestValidation:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            PatternSpec(p=0.0, trials_per_refw=10)
        with pytest.raises(ValueError):
            PatternSpec(p=1.5, trials_per_refw=10)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            PatternSpec(p=0.5, trials_per_refw=0)
        with pytest.raises(ValueError):
            PatternSpec(p=0.5, trials_per_refw=10, rows=0.5)

    def test_rejects_bad_trh(self):
        with pytest.raises(ValueError):
            refw_failure_probability(basic_spec(), 0)
