"""Coverage for the smaller analysis helpers and attack utilities."""

import pytest

from repro.analysis.mintrh import PatternSpec, scale_pattern
from repro.attacks.base import AttackParams, build_trace
from repro.attacks.halfdouble import half_double_distance


class TestScalePattern:
    def test_returns_modified_copy(self):
        spec = PatternSpec(p=0.1, trials_per_refw=100)
        scaled = scale_pattern(spec, rows=5.0)
        assert scaled.rows == 5.0
        assert scaled.p == 0.1
        assert spec.rows == 1.0  # original untouched

    def test_validation_still_applies(self):
        spec = PatternSpec(p=0.1, trials_per_refw=100)
        with pytest.raises(ValueError):
            scale_pattern(spec, p=2.0)


class TestBuildTrace:
    def test_postpone_mask(self):
        trace = build_trace("t", [[1], [2]], [True, False])
        assert trace.intervals[0].postpone
        assert not trace.intervals[1].postpone

    def test_mask_length_checked(self):
        with pytest.raises(ValueError):
            build_trace("t", [[1], [2]], [True])

    def test_default_mask_is_no_postpone(self):
        trace = build_trace("t", [[1], [2]])
        assert not any(i.postpone for i in trace.intervals)


class TestHalfDoubleDistance:
    def test_labels_distance(self):
        trace = half_double_distance(3, AttackParams(intervals=5), center=700)
        assert "distance=3" in trace.name
        assert trace.rows_touched() == {700}

    def test_rejects_direct_distances(self):
        with pytest.raises(ValueError):
            half_double_distance(1, AttackParams(intervals=5))


class TestAttackParamsValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_act": 0},
            {"intervals": 0},
            {"base_row": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            AttackParams(**kwargs)


class TestFeintingClosedForm:
    def test_scales_with_initial_rows(self):
        from repro.analysis.feinting import feinting_level_closed_form

        small = feinting_level_closed_form(initial_rows=256)
        large = feinting_level_closed_form(initial_rows=8192)
        assert large > small
        # Harmonic growth: doubling rows adds ~M * ln 2.
        delta = feinting_level_closed_form(initial_rows=512) - small
        assert delta == pytest.approx(73 * 0.693, rel=0.02)
