"""Tests for the pattern analysis (paper Section V-D, Figs 10/11)."""

import pytest

from repro.analysis.patterns import (
    mint_mintrh,
    mint_mintrh_d,
    pattern1_mintrh,
    pattern2_mintrh,
    pattern2_sweep,
    pattern3_mintrh,
    pattern3_sweep,
)


class TestPaperNumbers:
    def test_pattern1_is_2461(self):
        """Section V-D: single-row single-copy MinTRH = 2461."""
        assert pattern1_mintrh() == pytest.approx(2461, abs=10)

    def test_pattern2_k73_is_2763(self):
        """Section V-D: 73-row pattern MinTRH = 2763."""
        assert pattern2_mintrh(73) == pytest.approx(2763, abs=10)

    def test_mint_with_transitive_is_2800(self):
        """Section V-E: the 74-slot MINT MinTRH = 2800."""
        assert mint_mintrh() == pytest.approx(2800, rel=0.01)

    def test_mint_double_sided_is_1400(self):
        assert mint_mintrh_d() == pytest.approx(1400, rel=0.01)


class TestFig10Shape:
    def test_increases_with_k_up_to_max(self):
        values = [pattern2_mintrh(k) for k in (1, 10, 30, 50, 73)]
        assert values == sorted(values)

    def test_peaks_at_k_equals_m(self):
        peak = pattern2_mintrh(73)
        assert peak >= pattern2_mintrh(72)
        assert peak >= pattern2_mintrh(100)
        assert peak >= pattern2_mintrh(146)

    def test_multi_trefi_declines(self):
        """Beyond k = M the per-row trial count shrinks (Fig 10)."""
        assert pattern2_mintrh(146) < pattern2_mintrh(73)

    def test_sweep_shape(self):
        sweep = dict(pattern2_sweep(ks=[1, 73, 146]))
        assert sweep[1] < sweep[73]
        assert sweep[146] < sweep[73]

    def test_range_matches_fig10_axis(self):
        """Fig 10's y-axis runs ~2450-2770."""
        sweep = pattern2_sweep(ks=list(range(1, 147, 5)))
        values = [v for _, v in sweep]
        assert min(values) > 2400
        assert max(values) < 2850


class TestFig11Shape:
    def test_flat_for_one_to_three_copies(self):
        """Within ~0.5-1% for c in 1..3 (Section V-D)."""
        base = pattern3_mintrh(1)
        for copies in (2, 3):
            assert pattern3_mintrh(copies) == pytest.approx(base, rel=0.01)

    def test_drops_for_four_plus(self):
        assert pattern3_mintrh(8) < pattern3_mintrh(1)
        assert pattern3_mintrh(24) < pattern3_mintrh(8)

    def test_collapses_at_full_occupancy(self):
        """c = 73 fills every slot: guaranteed selection, tiny MinTRH."""
        assert pattern3_mintrh(73) < 300

    def test_sweep_monotone_after_knee(self):
        sweep = dict(pattern3_sweep(copies_list=[4, 8, 16, 32, 64]))
        values = [sweep[c] for c in (4, 8, 16, 32, 64)]
        assert values == sorted(values, reverse=True)

    def test_copies_validated(self):
        with pytest.raises(ValueError):
            pattern3_mintrh(0)
        with pytest.raises(ValueError):
            pattern3_mintrh(74)


class TestKeyTakeaway:
    def test_pattern2_dominates(self):
        """The worst case for MINT is pattern-2 at k = M: stealthy
        single activations (Section V-D key takeaway). The paper notes
        pattern-3 with 1-3 copies sits within 0.5% of pattern-2, so the
        dominance check allows that sliver.
        """
        p2 = pattern2_mintrh(73, transitive=True)
        assert p2 >= pattern1_mintrh(transitive=True)
        for copies in (2, 4, 16):
            assert p2 >= pattern3_mintrh(copies, transitive=True) * 0.99

    def test_transitive_slot_costs_a_little(self):
        """Going from 73 to 74 slots raises MinTRH slightly (2763->2800)."""
        without = pattern2_mintrh(73, transitive=False)
        with_slot = pattern2_mintrh(73, transitive=True)
        assert 0 < with_slot - without < 100
