"""Tests for the PrIDE analysis (paper Section IX)."""

import random

import pytest

from repro.analysis.pride import (
    mint_vs_pride_gap,
    pride_loss_probability,
    pride_mintrh_d,
    pride_tardiness_acts,
    pride_worst_position_loss,
)
from repro.trackers.pride import PrideTracker


class TestLossProbability:
    def test_worst_position_depth1_is_63_percent(self):
        """The paper's 63% figure: first-position loss, single entry."""
        assert pride_worst_position_loss(1) == pytest.approx(0.63, abs=0.01)

    def test_mean_loss_matches_live_tracker(self):
        """The exact queue chain matches the implementation."""
        for depth in (1, 2, 4):
            tracker = PrideTracker(
                fifo_depth=depth,
                sample_probability=1 / 73,
                rng=random.Random(3),
            )
            for _ in range(40_000):
                for _ in range(73):
                    tracker.on_activate(7)
                tracker.on_refresh()
            predicted = pride_loss_probability(depth)
            assert tracker.loss_probability == pytest.approx(
                predicted, abs=0.02
            )

    def test_loss_decreases_with_depth(self):
        values = [pride_loss_probability(d) for d in (1, 2, 4, 8)]
        assert values == sorted(values, reverse=True)

    def test_depth4_near_paper_10_percent(self):
        assert pride_loss_probability(4) == pytest.approx(0.10, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            pride_loss_probability(0)
        with pytest.raises(ValueError):
            pride_worst_position_loss(0)


class TestThreshold:
    def test_tardiness(self):
        assert pride_tardiness_acts(4) == 3 * 73
        assert pride_tardiness_acts(1) == 0

    def test_mintrh_d_near_paper(self):
        """Paper: 1750; our exact-loss model lands ~5% below."""
        assert pride_mintrh_d(4) == pytest.approx(1750, rel=0.07)

    def test_dmq_version_near_paper(self):
        """Paper: 1900 with DMQ."""
        assert pride_mintrh_d(4, with_dmq=True) == pytest.approx(1900, rel=0.07)

    def test_pride_worse_than_mint(self):
        """Section IX: PrIDE's threshold sits above MINT's (~25%)."""
        gap = mint_vs_pride_gap()
        assert 1.05 < gap < 1.35

    def test_deeper_fifo_tradeoff(self):
        """More depth cuts loss but adds tardiness: the threshold is not
        monotone in depth (the reason PrIDE stops at 4)."""
        shallow = pride_mintrh_d(1)
        standard = pride_mintrh_d(4)
        deep = pride_mintrh_d(16)
        assert standard < shallow  # 4 entries beat single-entry
        assert deep > standard     # tardiness eventually dominates
