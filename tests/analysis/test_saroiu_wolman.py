"""Tests for the Saroiu-Wolman failure model (paper Section IV)."""

import math

import numpy as np
import pytest

from repro.analysis.saroiu_wolman import (
    approx_failure_probability,
    auto_refresh_correction,
    failure_probability,
    failure_probability_sequence,
    mttf_years,
    target_refw_probability,
)


def reference_recurrence(num_acts, p, trh):
    """Direct, unoptimised transcription of Equations 5-7."""
    probs = [0.0] * (num_acts + 1)
    q_pow_t = (1.0 - p) ** trh
    for k in range(1, num_acts + 1):
        if k < trh:
            probs[k] = 0.0
        elif k == trh:
            probs[k] = q_pow_t
        else:
            lagged = probs[k - trh - 1] if k - trh - 1 >= 1 else 0.0
            probs[k] = p * q_pow_t * (1.0 - lagged) + probs[k - 1]
    return probs[1:]


class TestRecurrenceCorrectness:
    @pytest.mark.parametrize(
        "num_acts,p,trh",
        [(50, 0.2, 5), (200, 0.05, 20), (500, 1 / 73, 40), (64, 0.5, 3)],
    )
    def test_matches_reference_implementation(self, num_acts, p, trh):
        fast = failure_probability_sequence(num_acts, p, trh)
        slow = reference_recurrence(num_acts, p, trh)
        np.testing.assert_allclose(fast, slow, rtol=1e-12)

    def test_zero_below_threshold(self):
        probs = failure_probability_sequence(10, 0.1, 20)
        assert np.all(probs == 0.0)

    def test_at_threshold_equals_escape_probability(self):
        probs = failure_probability_sequence(5, 0.3, 5)
        assert probs[-1] == pytest.approx(0.7 ** 5)

    def test_monotone_in_k(self):
        probs = failure_probability_sequence(300, 0.05, 10)
        assert np.all(np.diff(probs) >= -1e-15)

    def test_monotone_decreasing_in_trh(self):
        values = [failure_probability(500, 1 / 73, t) for t in (50, 100, 200)]
        assert values[0] > values[1] > values[2]

    def test_bounded_by_one(self):
        probs = failure_probability_sequence(10_000, 0.001, 5)
        assert np.all(probs <= 1.0)

    def test_certain_mitigation_never_fails(self):
        assert failure_probability(1000, 1.0, 10) == 0.0


class TestApproximation:
    @pytest.mark.parametrize("trh", [1000, 2000, 2800])
    def test_matches_exact_in_secure_regime(self, trh):
        """The closed form's relative error is on the order of P itself,
        so in the ~1e-13 regime it is essentially exact."""
        exact = failure_probability(8192, 1 / 74, trh)
        approx = approx_failure_probability(8192, 1 / 74, trh)
        assert approx == pytest.approx(exact, rel=max(1e-9, 3 * exact))

    def test_zero_below_threshold(self):
        assert approx_failure_probability(100, 0.1, 200) == 0.0

    def test_upper_bounds_exact(self):
        # Dropping the (1 - P) factors can only overestimate.
        for trh in (5, 10, 20):
            exact = failure_probability(500, 0.05, trh)
            approx = approx_failure_probability(500, 0.05, trh)
            assert approx >= exact - 1e-15


class TestAutoRefreshCorrection:
    def test_short_sequence_barely_corrected(self):
        assert auto_refresh_correction(1) == pytest.approx(1 - 1 / 8192)

    def test_full_window_fully_corrected(self):
        assert auto_refresh_correction(8192) == 0.0

    def test_never_negative(self):
        assert auto_refresh_correction(10_000) == 0.0

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError):
            auto_refresh_correction(-1)


class TestMttf:
    def test_equation_eight(self):
        """MTTF = tREFW / P_REFW."""
        p_refw = 1e-10
        years = mttf_years(p_refw)
        expected = 0.032 / p_refw / (365.25 * 24 * 3600)
        assert years == pytest.approx(expected)

    def test_banks_scale_failure_rate(self):
        assert mttf_years(1e-10, banks=22) == pytest.approx(
            mttf_years(1e-10) / 22
        )

    def test_zero_probability_is_infinite(self):
        assert math.isinf(mttf_years(0.0))

    def test_target_round_trip(self):
        target = target_refw_probability(10_000.0)
        assert mttf_years(target) == pytest.approx(10_000.0)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            target_refw_probability(0.0)
