"""Tests for the InDRAM-PARA survival analysis (paper Section III)."""

import numpy as np
import pytest

from repro.analysis.survival import (
    effective_mitigation_probability,
    mitigation_probability,
    most_vulnerable_position,
    non_selection_probability,
    relative_mitigation_curve,
    sampling_probability_no_overwrite,
    simulate_position_mitigation_rates,
    survival_probability,
    vulnerability_factor,
)


class TestEquations:
    def test_equation2_endpoints(self):
        """Fig 3: position 1 survives with 0.37, position 73 with 1.0."""
        assert survival_probability(73) == 1.0
        assert survival_probability(1) == pytest.approx(0.372, abs=0.005)

    def test_equation3_endpoints(self):
        """Fig 5: position 1 samples with p; position 73 with 0.37 p."""
        p = 1 / 73
        assert sampling_probability_no_overwrite(1) == pytest.approx(p)
        assert sampling_probability_no_overwrite(73) == pytest.approx(
            0.372 * p, rel=0.02
        )

    def test_equation4_non_selection(self):
        """37% of full windows select nothing."""
        assert non_selection_probability() == pytest.approx(0.366, abs=0.005)

    def test_survival_monotone_in_position(self):
        values = [survival_probability(k) for k in range(1, 74)]
        assert values == sorted(values)

    def test_sampling_monotone_decreasing(self):
        values = [sampling_probability_no_overwrite(k) for k in range(1, 74)]
        assert values == sorted(values, reverse=True)

    def test_position_bounds_enforced(self):
        with pytest.raises(ValueError):
            survival_probability(0)
        with pytest.raises(ValueError):
            survival_probability(74)


class TestVulnerability:
    def test_factor_is_2_7_both_variants(self):
        """Fig 6: both variants dip 2.7x below ideal."""
        assert vulnerability_factor(overwrite=True) == pytest.approx(2.7, abs=0.05)
        assert vulnerability_factor(overwrite=False) == pytest.approx(2.7, abs=0.05)

    def test_most_vulnerable_positions_differ(self):
        """Overwrite: first position; no-overwrite: last position."""
        assert most_vulnerable_position(overwrite=True) == 1
        assert most_vulnerable_position(overwrite=False) == 73

    def test_curves_mirror_each_other(self):
        over = relative_mitigation_curve(overwrite=True)
        no_over = relative_mitigation_curve(overwrite=False)
        np.testing.assert_allclose(over, no_over[::-1], rtol=0.05)

    def test_effective_probability_is_weakest_position(self):
        p_eff = effective_mitigation_probability()
        assert p_eff == pytest.approx(
            mitigation_probability(1, overwrite=True)
        )
        assert 1 / p_eff == pytest.approx(73 * 2.7, rel=0.02)


class TestMonteCarloValidation:
    def test_overwrite_curve_matches_tracker(self):
        """The analytic Fig 3 curve matches the actual tracker code."""
        measured = simulate_position_mitigation_rates(
            overwrite=True, windows=30_000, seed=5
        )
        predicted = np.array(
            [mitigation_probability(k, overwrite=True) for k in range(1, 74)]
        )
        # Aggregate agreement (per-position noise is ~10% at this depth).
        assert measured.sum() == pytest.approx(predicted.sum(), rel=0.05)
        assert measured[0] == pytest.approx(predicted[0], rel=0.25)
        assert measured[-1] == pytest.approx(predicted[-1], rel=0.25)

    def test_no_overwrite_curve_matches_tracker(self):
        measured = simulate_position_mitigation_rates(
            overwrite=False, windows=30_000, seed=6
        )
        predicted = np.array(
            [mitigation_probability(k, overwrite=False) for k in range(1, 74)]
        )
        assert measured.sum() == pytest.approx(predicted.sum(), rel=0.05)
        assert measured[0] == pytest.approx(predicted[0], rel=0.25)
        assert measured[-1] == pytest.approx(predicted[-1], rel=0.25)
