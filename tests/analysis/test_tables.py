"""Tests for the assembled comparison tables (Tables III, IV, V, VII, IX)."""

import pytest

from repro.analysis.comparison import (
    mc_para_probability_for,
    mint_comparison,
    mint_vs_prct_gap,
    table3,
)
from repro.analysis.postponement import (
    deterministic_unmitigated_acts,
    dmq_tardiness_delta_d,
    mint_dmq_vs_prct_gap,
    table4,
)
from repro.analysis.rfm_scaling import table5, ttf_sensitivity
from repro.analysis.storage import (
    graphene_storage,
    mint_dmq_storage,
    mint_storage,
    table9,
)
from repro.analysis.literature import TRH_HISTORY, lowest_known_trh_d


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.name: row for row in table3()}

    def test_all_designs_present(self, rows):
        assert set(rows) == {"PRCT", "Mithril", "PARFM", "InDRAM-PARA", "MINT"}

    def test_mint_single_entry(self, rows):
        assert rows["MINT"].entries == 1
        assert rows["MINT"].centric == "future"

    def test_mint_matches_mithril_threshold(self, rows):
        """The headline: 1 entry matches a ~677-entry Mithril."""
        assert rows["MINT"].mintrh_d == pytest.approx(
            rows["Mithril"].mintrh_d, rel=0.02
        )
        assert rows["Mithril"].entries == pytest.approx(677, abs=10)

    def test_ordering_matches_paper(self, rows):
        """PRCT < MINT ~ Mithril < InDRAM-PARA < PARFM."""
        assert rows["PRCT"].mintrh_d < rows["MINT"].mintrh_d
        assert rows["MINT"].mintrh_d < rows["InDRAM-PARA"].mintrh_d
        assert rows["InDRAM-PARA"].mintrh_d < rows["PARFM"].mintrh_d

    def test_parfm_transitive_vulnerable(self, rows):
        assert rows["PARFM"].transitive_vulnerable
        assert not rows["MINT"].transitive_vulnerable
        assert not rows["PRCT"].transitive_vulnerable

    def test_parfm_is_4096(self, rows):
        """Half of the 8192 per-tREFW victim refreshes (Section V-G)."""
        assert rows["PARFM"].mintrh_d == 4096

    def test_gap_to_prct_near_2_25(self):
        """Section V-G: MINT within 2.25x of the idealized PRCT."""
        assert mint_vs_prct_gap() == pytest.approx(2.25, abs=0.15)


class TestTable4:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row.name: row for row in table4()}

    def test_counter_trackers_gain_146(self, rows):
        for name in ("PRCT", "Mithril"):
            row = rows[name]
            assert row.mintrh_d_no_dmq - row.mintrh_d_no_postpone == 146
            assert row.mintrh_d_with_dmq == row.mintrh_d_no_dmq

    def test_mint_and_parfm_demolished_without_dmq(self, rows):
        """Section VI-B: ~478K deterministic activations."""
        blowup = deterministic_unmitigated_acts()
        assert blowup == pytest.approx(478_000, rel=0.01)
        assert rows["MINT"].mintrh_d_no_dmq == blowup
        assert rows["PARFM"].mintrh_d_no_dmq == blowup

    def test_para_degrades_without_dmq(self, rows):
        row = rows["InDRAM-PARA"]
        assert row.mintrh_d_no_dmq > 3 * row.mintrh_d_no_postpone

    def test_dmq_restores_mint_to_1482(self, rows):
        assert rows["MINT"].mintrh_d_with_dmq == pytest.approx(1482, rel=0.02)

    def test_dmq_restores_parfm_to_4242(self, rows):
        assert rows["PARFM"].mintrh_d_with_dmq == pytest.approx(4242, rel=0.01)

    def test_gap_to_prct_under_2x(self):
        """Section VI-D: MINT+DMQ within 1.9x of PRCT."""
        assert mint_dmq_vs_prct_gap() == pytest.approx(1.9, abs=0.15)

    def test_tardiness_delta(self):
        assert dmq_tardiness_delta_d() == 4


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        return table5()

    def test_paper_values(self, rows):
        """MINT 0.5x=2.70K, 1x=1.48K, RFM32=689, RFM16=356."""
        values = [row.mintrh_d for row in rows]
        paper = [2700, 1482, 689, 356]
        for measured, expected in zip(values, paper):
            assert measured == pytest.approx(expected, rel=0.05)

    def test_threshold_scales_with_rate(self, rows):
        values = [row.mintrh_d for row in rows]
        assert values == sorted(values, reverse=True)

    def test_rfm16_lowest(self, rows):
        assert rows[-1].name == "MINT+RFM16"
        assert rows[-1].mintrh_d < 400


class TestTable7:
    def test_threshold_grows_with_target(self):
        rows = ttf_sensitivity([1e3, 1e4, 1e5, 1e6])
        mints = [row["mint"] for row in rows]
        assert mints == sorted(mints)

    def test_paper_10k_row(self):
        row = ttf_sensitivity([1e4])[0]
        assert row["mint"] == pytest.approx(1482, rel=0.02)
        assert row["rfm32"] == pytest.approx(689, rel=0.05)
        assert row["rfm16"] == pytest.approx(356, rel=0.05)

    def test_sensitivity_is_mild(self):
        """Three decades of Target-TTF move MinTRH-D by < 20% (Table VII)."""
        rows = ttf_sensitivity([1e3, 1e6])
        assert rows[1]["mint"] / rows[0]["mint"] < 1.25


class TestTable9AndStorage:
    def test_mint_four_bytes(self):
        assert mint_storage().bytes == 4.0

    def test_mint_dmq_under_15_bytes(self):
        assert mint_dmq_storage().bytes < 15.0

    def test_graphene_calibration_points(self):
        """Table IX: 56.5 KB @ 3K, 565 KB @ 300."""
        assert graphene_storage(3000).bytes / 1024 == pytest.approx(56.5, rel=0.01)
        assert graphene_storage(300).bytes / 1024 == pytest.approx(565.0, rel=0.01)

    def test_table9_rows(self):
        rows = table9()
        assert rows[0]["trh_d"] == 3000
        # The point of the table: three-plus orders of magnitude apart.
        ratio = (
            rows[0]["graphene_kb_per_bank"] * 1024
            / rows[0]["mint_dmq_bytes_per_bank"]
        )
        assert ratio > 1000

    def test_per_rank_is_32x(self):
        budget = mint_dmq_storage()
        assert budget.per_rank_bytes() == pytest.approx(32 * budget.bytes)


class TestMcParaTuning:
    def test_matched_probability_near_mint(self):
        """Fig 17 setup: MC-PARA tuned to MINT's threshold needs
        p ~ 1/74-1/80 — the same ballpark as MINT's selection odds."""
        p = mc_para_probability_for(1482)
        assert 1 / 90 < p < 1 / 65

    def test_lower_threshold_needs_more_drfm(self):
        aggressive = mc_para_probability_for(400)
        relaxed = mc_para_probability_for(2000)
        assert aggressive > relaxed

    def test_validation(self):
        with pytest.raises(ValueError):
            mc_para_probability_for(0)


class TestTable2:
    def test_history_is_decreasing(self):
        """Table II: thresholds drop monotonically across generations."""
        lows = []
        for row in TRH_HISTORY:
            values = row.trh_single_sided or row.trh_double_sided
            lows.append(values[0])
        assert lows == sorted(lows, reverse=True)

    def test_lowest_is_4800(self):
        assert lowest_known_trh_d() == 4800
