"""Attack-vs-tracker matchups: the qualitative security claims (§II, §V)."""

import random

import pytest

from repro.attacks import (
    AttackParams,
    double_sided,
    many_sided,
    pattern2,
    random_blacksmith,
    run_feinting,
    single_sided,
)
from repro.core.mint import MintTracker
from repro.sim.engine import BankSimulator, EngineConfig, run_attack
from repro.trackers.mithril import MithrilTracker
from repro.trackers.prct import PrctTracker
from repro.trackers.trr import TrrTracker

PARAMS = AttackParams(max_act=73, intervals=300)


class TestDeployedTrackersAreBreakable:
    def test_trr_defeated_by_many_sided(self):
        """The TRRespass result (Section II-F): more aggressors than
        entries thrash the table and rows hammer unmitigated."""
        result = run_attack(
            TrrTracker(num_entries=4), many_sided(12, PARAMS), trh=1300
        )
        assert result.mitigations == 0  # table fully thrashed
        assert result.failed

    def test_trr_defeated_by_blacksmith(self):
        result = run_attack(
            TrrTracker(num_entries=4),
            random_blacksmith(16, PARAMS),
            trh=2000,
        )
        # Blacksmith needs enough intervals to accumulate; use peak.
        assert result.failed or result.max_unmitigated

    def test_trr_stops_naive_single_sided(self):
        """TRR does catch the textbook attack — that is why it shipped."""
        result = run_attack(
            TrrTracker(num_entries=4), single_sided(PARAMS), trh=2000
        )
        assert not result.failed


class TestMintHoldsWhereTrrFalls:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mint_stops_many_sided(self, seed):
        tracker = MintTracker(rng=random.Random(seed))
        result = run_attack(tracker, many_sided(12, PARAMS), trh=1300)
        assert not result.failed

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mint_stops_blacksmith(self, seed):
        """Section V-D property 2: layout within tREFI is irrelevant to
        MINT, so frequency-domain structure buys nothing."""
        tracker = MintTracker(rng=random.Random(seed))
        result = run_attack(tracker, random_blacksmith(16, PARAMS), trh=2000)
        assert not result.failed

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mint_stops_classic_double_sided(self, seed):
        tracker = MintTracker(rng=random.Random(seed))
        result = run_attack(tracker, double_sided(PARAMS), trh=500)
        assert not result.failed

    def test_mint_stops_pattern2_at_realistic_trh(self):
        """Pattern-2 is MINT's worst case, and still needs ~2800
        unmitigated chances: far beyond a 300-interval run."""
        tracker = MintTracker(rng=random.Random(9))
        result = run_attack(tracker, pattern2(73, PARAMS), trh=2800)
        assert not result.failed


class TestFeintingDriver:
    def test_feinting_raises_water_level_on_prct(self):
        """The adaptive feinting driver achieves a water level well
        above what a static pattern gets against PRCT."""
        params = AttackParams(max_act=73, intervals=260)
        outcome = run_feinting(
            PrctTracker(num_rows=128 * 1024),
            initial_rows=256,
            params=params,
        )
        # Closed form for 256 rows: 73 * (H_256 - 1) ~ 365.
        assert outcome.peak_unmitigated > 250

    def test_feinting_weaker_against_mithril_with_many_entries(self):
        params = AttackParams(max_act=73, intervals=260)
        prct = run_feinting(
            PrctTracker(num_rows=128 * 1024), initial_rows=256, params=params
        )
        # Mithril with few entries can be fooled harder than PRCT.
        mithril = run_feinting(
            MithrilTracker(num_entries=16), initial_rows=256, params=params
        )
        assert mithril.peak_unmitigated >= prct.peak_unmitigated * 0.5
