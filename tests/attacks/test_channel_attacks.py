"""Shape and budget pins for the channel-level attack generators."""

import pytest

from repro.attacks import AttackParams, make_channel_attack
from repro.attacks.channel import (
    channel_stripe_decoy,
    rank_rotation,
    rank_synchronized,
    replicate_across_ranks,
)
from repro.attacks.classic import double_sided
from repro.attacks.rank import rank_stripe
from repro.attacks.registry import (
    available_channel_attacks,
    is_channel_attack,
)
from repro.sim.trace import ChannelTrace, CycleStream

PARAMS = AttackParams(max_act=8, intervals=120, base_row=64)


class TestRankRotation:
    def test_each_interval_lands_on_exactly_one_rank(self):
        base = double_sided(PARAMS)
        trace = rank_rotation(base, 3)
        assert trace.num_ranks == 3
        materialized = {
            rank: trace.rank_stream(rank).materialize() for rank in range(3)
        }
        for i in range(len(base)):
            active = [
                rank
                for rank, rank_trace in materialized.items()
                if rank_trace.intervals[i].acts
            ]
            assert active == [i % 3]

    def test_single_rank_rotation_is_the_lifted_base(self):
        base = double_sided(PARAMS)
        trace = rank_rotation(base, 1)
        lifted = trace.rank_stream(0).materialize()
        assert lifted.total_acts == base.total_acts
        assert len(lifted) == len(base)


class TestRankSynchronized:
    def test_every_rank_gets_the_same_schedule(self):
        trace = rank_synchronized(6, 3, PARAMS, num_banks=2)
        streams = [trace.rank_stream(rank) for rank in range(3)]
        assert all(isinstance(s, CycleStream) for s in streams)
        assert all(s.horizon == PARAMS.intervals for s in streams)
        acts = [s.materialize().total_acts for s in streams]
        assert len(set(acts)) == 1 and acts[0] > 0

    def test_respects_per_bank_budget(self):
        trace = rank_synchronized(6, 2, PARAMS, num_banks=2)
        for rank in range(2):
            trace.rank_stream(rank).materialize().validate(
                PARAMS.max_act, num_banks=2
            )


class TestChannelStripeDecoy:
    def test_target_rank_plays_decoy_siblings_stripe(self):
        trace = channel_stripe_decoy(
            500, 3, PARAMS, num_banks=2, target_rank=1
        )
        target = trace.rank_stream(1).materialize()
        assert any(interval.postpone for interval in target.intervals)
        for rank in (0, 2):
            sibling = trace.rank_stream(rank).materialize()
            assert not any(i.postpone for i in sibling.intervals)
            assert sibling.total_acts > 0
            # Striped decoys touch every bank of the sibling rank.
            assert sibling.banks_touched() == {0, 1}

    def test_horizons_align_across_ranks(self):
        trace = channel_stripe_decoy(500, 2, PARAMS, num_banks=2)
        horizons = {
            trace.rank_stream(rank).horizon for rank in range(2)
        }
        assert len(horizons) == 1

    def test_rejects_bad_target_rank(self):
        with pytest.raises(ValueError, match="target_rank"):
            channel_stripe_decoy(500, 2, PARAMS, target_rank=5)


class TestChannelRegistry:
    def test_builtins_registered(self):
        names = available_channel_attacks()
        assert {"rank-rotation", "rank-synchronized",
                "channel-stripe-decoy"} <= set(names)
        assert all(is_channel_attack(name) for name in names)
        assert not is_channel_attack("double-sided")

    @pytest.mark.parametrize("name", [
        "rank-rotation", "rank-synchronized", "channel-stripe-decoy",
    ])
    def test_factories_build_channel_traces(self, name):
        trace = make_channel_attack(name, PARAMS, num_ranks=2, num_banks=2)
        assert isinstance(trace, ChannelTrace)
        assert trace.num_ranks == 2

    def test_fallback_replicates_rank_attacks(self):
        trace = make_channel_attack(
            "rank-stripe", PARAMS, num_ranks=2, num_banks=2, sides=4
        )
        assert isinstance(trace, ChannelTrace)
        # Replication shares one underlying trace object across ranks.
        assert trace.per_rank[0] is trace.per_rank[1]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown channel attack"):
            make_channel_attack("no-such-attack", PARAMS)


class TestReplicate:
    def test_replicate_preserves_totals_per_rank(self):
        base = rank_stripe(4, 2, PARAMS)
        trace = replicate_across_ranks(base, 3)
        for rank in range(3):
            assert (
                trace.rank_stream(rank).materialize().total_acts
                == base.total_acts
            )
