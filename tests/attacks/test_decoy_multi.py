"""Tests for the multi-target decoy generator and rate-limited DRFM."""

import pytest

from repro.attacks import AttackParams, postponement_decoy_multi


class TestMultiTargetDecoy:
    def test_one_target_per_postponed_interval(self):
        params = AttackParams(max_act=73, intervals=20)
        targets = [100, 200, 300, 400]
        trace = postponement_decoy_multi(targets, params)
        window = trace.intervals[:5]
        assert window[0].postpone  # decoy interval
        for i, target in enumerate(targets):
            assert set(window[1 + i].acts) == {target}
        assert not window[4].postpone  # last interval refreshes

    def test_targets_repeat_across_windows(self):
        params = AttackParams(max_act=73, intervals=20)
        targets = [100, 200, 300, 400]
        trace = postponement_decoy_multi(targets, params)
        # Window 2 spans intervals 5-9: decoy then the same 4 targets.
        assert set(trace.intervals[6].acts) == {100}
        assert set(trace.intervals[7].acts) == {200}

    def test_requires_enough_targets(self):
        params = AttackParams(max_act=73, intervals=20)
        with pytest.raises(ValueError):
            postponement_decoy_multi([1, 2], params, postponed=4)

    def test_budget_respected(self):
        params = AttackParams(max_act=73, intervals=30)
        trace = postponement_decoy_multi([1, 2, 3, 4], params)
        trace.validate(73)


class TestDrfmRateLimit:
    def test_rate_limit_suppresses_drfms(self):
        from repro.perf.memctrl import MemorySystemSim, MitigationPolicy
        from repro.perf.workloads import RATE_WORKLOADS, rate_mix

        cores = rate_mix(RATE_WORKLOADS[0])
        limited = MemorySystemSim(
            cores,
            MitigationPolicy(
                "mc-para", para_probability=1 / 20, drfm_per_trefi=2.0
            ),
            seed=5,
        )
        result = limited.run(400_000.0)
        assert limited.drfm_suppressed > 0
        # At most one DRFM per bank per two tREFI.
        ceiling = 32 * (400_000.0 / 3900.0) / 2.0
        assert result.drfm_commands <= ceiling + 32

    def test_unlimited_issues_more(self):
        from repro.perf.memctrl import MemorySystemSim, MitigationPolicy
        from repro.perf.workloads import RATE_WORKLOADS, rate_mix

        cores = rate_mix(RATE_WORKLOADS[0])
        free = MemorySystemSim(
            cores,
            MitigationPolicy("mc-para", para_probability=1 / 20),
            seed=5,
        )
        limited = MemorySystemSim(
            cores,
            MitigationPolicy(
                "mc-para", para_probability=1 / 20, drfm_per_trefi=2.0
            ),
            seed=5,
        )
        assert (
            free.run(400_000.0).drfm_commands
            > limited.run(400_000.0).drfm_commands
        )

    def test_negative_limit_rejected(self):
        from repro.perf.memctrl import MitigationPolicy

        with pytest.raises(ValueError):
            MitigationPolicy("mc-para", drfm_per_trefi=-1.0)
