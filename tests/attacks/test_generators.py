"""Tests for the attack-trace generators."""

import random

import pytest

from repro.attacks import (
    AttackParams,
    adaptive_attack,
    blacksmith,
    decoy_assisted,
    double_sided,
    expected_unmitigated_acts,
    fuzz_aggressors,
    half_double,
    many_sided,
    one_location,
    pattern2,
    pattern2_double_sided,
    pattern3,
    postponement_decoy,
    random_blacksmith,
    repeated_adaptive_attack,
    single_sided,
    spaced_rows,
)

PARAMS = AttackParams(max_act=73, intervals=20)


class TestClassic:
    def test_single_sided_fills_every_slot(self):
        trace = single_sided(PARAMS)
        assert all(len(i.acts) == 73 for i in trace)
        assert trace.rows_touched() == {PARAMS.base_row}

    def test_double_sided_alternates_neighbours(self):
        trace = double_sided(PARAMS, victim=500)
        assert trace.rows_touched() == {499, 501}
        first = trace.intervals[0].acts
        assert first[0] != first[1]

    def test_one_location_is_single_act(self):
        trace = one_location(PARAMS)
        assert all(len(i.acts) == 1 for i in trace)

    def test_double_sided_needs_lower_neighbour(self):
        with pytest.raises(ValueError):
            double_sided(PARAMS, victim=0)


class TestMultiRow:
    def test_pattern2_touches_k_rows(self):
        trace = pattern2(10, PARAMS)
        assert len(trace.rows_touched()) == 10

    def test_pattern2_single_copy_per_interval(self):
        """Stealth property: at most one activation per row per tREFI."""
        trace = pattern2(73, PARAMS)
        for interval in trace:
            counts = {}
            for row in interval.acts:
                counts[row] = counts.get(row, 0) + 1
            assert max(counts.values()) == 1

    def test_pattern2_multi_trefi(self):
        """k > M spans multiple intervals per round."""
        trace = pattern2(146, PARAMS)
        assert len(trace.rows_touched()) == 146
        assert all(len(i.acts) == 73 for i in trace)

    def test_pattern3_copies_per_interval(self):
        trace = pattern3(4, PARAMS)
        interval = trace.intervals[0]
        counts = {}
        for row in interval.acts:
            counts[row] = counts.get(row, 0) + 1
        assert max(counts.values()) == 4

    def test_pattern2_double_sided_pairs(self):
        trace = pattern2_double_sided(pairs=5, params=PARAMS)
        rows = trace.rows_touched()
        assert len(rows) == 10
        victims = spaced_rows(5, PARAMS.base_row, 8)
        for victim in victims:
            assert victim - 1 in rows and victim + 1 in rows

    def test_budget_respected(self):
        for trace in (pattern2(30, PARAMS), pattern3(8, PARAMS)):
            trace.validate(73)


class TestManySidedAndBlacksmith:
    def test_many_sided_rotates(self):
        trace = many_sided(9, PARAMS)
        assert len(trace.rows_touched()) == 9

    def test_decoy_assisted_mixes_target_and_decoys(self):
        trace = decoy_assisted(42, decoys=8, hammers_per_interval=5, params=PARAMS)
        interval = trace.intervals[0]
        assert interval.acts.count(42) == 5
        assert len(interval.acts) == 73

    def test_decoy_hammer_budget_checked(self):
        with pytest.raises(ValueError):
            decoy_assisted(42, decoys=8, hammers_per_interval=80, params=PARAMS)

    def test_blacksmith_respects_budget(self):
        trace = random_blacksmith(16, PARAMS)
        trace.validate(73)

    def test_blacksmith_frequencies_respected(self):
        aggressors = fuzz_aggressors(4, random.Random(1))
        trace = blacksmith(aggressors, PARAMS)
        for aggressor in aggressors:
            hit_intervals = [
                index
                for index, interval in enumerate(trace)
                if aggressor.row in interval.acts
            ]
            for index in hit_intervals:
                assert index % aggressor.frequency == aggressor.phase

    def test_blacksmith_requires_aggressors(self):
        with pytest.raises(ValueError):
            blacksmith([], PARAMS)


class TestPostponementAttacks:
    def test_decoy_pattern_structure(self):
        trace = postponement_decoy(999, PARAMS)
        # 5-interval super-windows: decoy interval then 4 hammer ones.
        assert trace.intervals[0].postpone
        assert 999 not in trace.intervals[0].acts
        assert set(trace.intervals[1].acts) == {999}
        # Last interval of the super-window stops postponing.
        assert not trace.intervals[4].postpone

    def test_expected_blowup_478k_at_full_scale(self):
        params = AttackParams(max_act=73, intervals=8192)
        assert expected_unmitigated_acts(params) == pytest.approx(478_000, rel=0.01)

    def test_adaptive_attack_phases(self):
        trace = adaptive_attack(morphing_point=5, params=PARAMS)
        # First 5 intervals: pattern-2 (many rows); then DMQ hammering.
        assert len(set(trace.intervals[0].acts)) > 1
        assert len(set(trace.intervals[5].acts)) == 1
        assert trace.intervals[5].postpone

    def test_repeated_ada_rounds_fit_budget(self):
        params = AttackParams(max_act=73, intervals=100)
        trace = repeated_adaptive_attack(morphing_point=5, params=params)
        assert len(trace) <= 100 + 10
        trace.validate(73)

    def test_ada_validates_mp(self):
        with pytest.raises(ValueError):
            adaptive_attack(0, PARAMS)


class TestHalfDouble:
    def test_trace_is_single_sided(self):
        trace = half_double(PARAMS, center=300)
        assert trace.rows_touched() == {300}

    def test_distance_validated(self):
        with pytest.raises(ValueError):
            half_double_distance_bad()


def half_double_distance_bad():
    from repro.attacks.halfdouble import half_double_distance

    return half_double_distance(1, PARAMS)


class TestSpacedRows:
    def test_spacing(self):
        rows = spaced_rows(4, 1000, spacing=8)
        assert rows == [1000, 1008, 1016, 1024]

    def test_count_validated(self):
        with pytest.raises(ValueError):
            spaced_rows(0, 1000)
