"""Tests for the cross-bank attack generators and the rank registry."""

import random

import pytest

from repro.attacks import (
    AttackParams,
    available_rank_attacks,
    bank_interleaved,
    cross_bank_decoy,
    double_sided,
    is_rank_attack,
    make_rank_attack,
    rank_stripe,
)
from repro.sim.trace import RankTrace

PARAMS = AttackParams(max_act=8, intervals=24, base_row=1000)


class TestBankInterleaved:
    def test_interval_scheme_round_robins_whole_intervals(self):
        base = double_sided(PARAMS, victim=1000)
        trace = bank_interleaved(base, 4)
        assert len(trace) == len(base)
        for i, interval in enumerate(trace):
            banks = {bank for bank, _row in interval.acts}
            assert banks == {i % 4}

    def test_act_scheme_splits_each_interval(self):
        base = double_sided(PARAMS, victim=1000)
        trace = bank_interleaved(base, 4, scheme="act")
        first = trace.intervals[0]
        assert {bank for bank, _row in first.acts} == {0, 1, 2, 3}
        # Per-bank slices respect the per-bank ACT budget by construction.
        trace.validate(max_act=PARAMS.max_act, num_banks=4)

    def test_preserves_rows_and_postpone(self):
        base = double_sided(PARAMS, victim=1000)
        trace = bank_interleaved(base, 2)
        assert trace.rows_touched() == base.rows_touched()
        assert [i.postpone for i in trace] == [
            i.postpone for i in base.intervals
        ]

    def test_validates_inputs(self):
        base = double_sided(PARAMS, victim=1000)
        with pytest.raises(ValueError):
            bank_interleaved(base, 0)
        with pytest.raises(ValueError):
            bank_interleaved(base, 2, scheme="diagonal")


class TestCrossBankDecoy:
    def test_decoys_and_target_live_on_different_banks(self):
        trace = cross_bank_decoy(900, 4, PARAMS, postponed=4)
        assert 900 in trace.rows_touched(bank=0)
        for bank in (1, 2, 3):
            assert 900 not in trace.rows_touched(bank=bank)
            assert trace.rows_touched(bank=bank)  # decoys present

    def test_postpone_pattern_matches_super_window(self):
        trace = cross_bank_decoy(900, 2, PARAMS, postponed=4)
        flags = [interval.postpone for interval in trace]
        # Window: decoy(True), 3x hammer(True), final hammer(False).
        assert flags[:5] == [True, True, True, True, False]

    def test_respects_per_bank_budget(self):
        trace = cross_bank_decoy(900, 4, PARAMS, postponed=4)
        trace.validate(max_act=PARAMS.max_act, num_banks=4)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            cross_bank_decoy(900, 1, PARAMS)
        with pytest.raises(ValueError):
            cross_bank_decoy(900, 4, PARAMS, postponed=0)
        with pytest.raises(ValueError):
            cross_bank_decoy(900, 4, PARAMS, target_bank=4)


class TestRankStripe:
    def test_every_bank_hammered_at_full_rate(self):
        trace = rank_stripe(12, 4, PARAMS)
        assert trace.banks_touched() == {0, 1, 2, 3}
        first = trace.intervals[0]
        for _bank, rows in first.per_bank:
            assert len(rows) == PARAMS.max_act

    def test_aggressor_sets_disjoint_across_banks(self):
        trace = rank_stripe(12, 4, PARAMS)
        rows = [trace.rows_touched(bank=b) for b in range(4)]
        for a in range(4):
            for b in range(a + 1, 4):
                assert not rows[a] & rows[b]

    def test_fewer_sides_than_banks_leaves_banks_idle(self):
        """The aggressor count is exactly ``sides`` — never inflated to
        fill the rank."""
        trace = rank_stripe(2, 4, PARAMS)
        assert trace.banks_touched() == {0, 1}
        assert len(trace.rows_touched()) == 2

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            rank_stripe(0, 4, PARAMS)
        with pytest.raises(ValueError):
            rank_stripe(12, 0, PARAMS)


class TestRankRegistry:
    def test_rank_attacks_registered(self):
        assert available_rank_attacks() == [
            "bank-interleaved", "cross-bank-decoy", "rank-stripe",
        ]
        assert is_rank_attack("RANK-STRIPE")
        assert not is_rank_attack("double-sided")

    def test_make_rank_attack_builds_rank_traces(self):
        for name in available_rank_attacks():
            trace = make_rank_attack(name, PARAMS, num_banks=2)
            assert isinstance(trace, RankTrace)
            assert trace.banks_touched() <= {0, 1}

    def test_row_only_names_auto_interleave(self):
        trace = make_rank_attack("double-sided", PARAMS, num_banks=3)
        assert isinstance(trace, RankTrace)
        assert trace.banks_touched() == {0, 1, 2}

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_rank_attack("no-such-attack", PARAMS)

    def test_deterministic_under_seeded_rng(self):
        a = make_rank_attack(
            "bank-interleaved", PARAMS, rng=random.Random(5),
            num_banks=4, base="blacksmith", count=4,
        )
        b = make_rank_attack(
            "bank-interleaved", PARAMS, rng=random.Random(5),
            num_banks=4, base="blacksmith", count=4,
        )
        assert [i.acts for i in a] == [i.acts for i in b]
        assert a.name == b.name
